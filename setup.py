"""Legacy setup shim: this environment has no `wheel` package, so PEP 660
editable installs fail; `pip install -e . --no-build-isolation` falls back
to `setup.py develop` when invoked with --no-use-pep517. Configuration
lives in pyproject.toml."""
from setuptools import setup

setup()
