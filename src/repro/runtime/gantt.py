"""Text rendering of execution traces.

A terminal Gantt chart (one row per node, time bucketed into columns,
glyph = dominant kernel in the bucket) plus a utilization profile —
the runtime-behavior visuals of a trace without a plotting stack.
Resilience events from the fault-aware simulator render as their own
glyphs (``C`` = checkpoint write, ``R`` = crash recovery), so failure
stalls are visible directly in the chart.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .trace import ExecutionTrace

__all__ = ["render_gantt", "utilization_profile"]

_OP_GLYPH = {
    "potrf": "P",
    "trsm": "T",
    "syrk": "S",
    "gemm": "G",
    # Resilience events of the fault-aware simulator.
    "ckpt": "C",
    "recover": "R",
}


def render_gantt(
    trace: ExecutionTrace, *, width: int = 80, max_nodes: int = 16
) -> str:
    """ASCII Gantt chart of a trace.

    Each row is one node; each column a time bucket of
    ``makespan / width``; the glyph is the op with the most busy time
    in that bucket ('.' = idle).  Rows beyond ``max_nodes`` are elided.
    """
    if width < 2:
        raise ShapeError("width must be >= 2")
    makespan = trace.makespan
    if makespan <= 0.0:
        return "(empty trace)"
    shown = min(trace.nodes, max_nodes)
    bucket = makespan / width
    # busy[node][col][op] -> time
    busy: list[list[dict[str, float]]] = [
        [dict() for _ in range(width)] for _ in range(shown)
    ]
    for rec in trace.records:
        if rec.node >= shown:
            continue
        c0 = min(int(rec.start / bucket), width - 1)
        c1 = min(int(max(rec.end - 1e-15, rec.start) / bucket), width - 1)
        for col in range(c0, c1 + 1):
            lo = max(rec.start, col * bucket)
            hi = min(rec.end, (col + 1) * bucket)
            if hi > lo:
                cell = busy[rec.node][col]
                cell[rec.op] = cell.get(rec.op, 0.0) + (hi - lo)
    lines = [f"gantt: {makespan:.6g}s over {trace.nodes} nodes "
             f"({_legend()})"]
    for node in range(shown):
        row = []
        for col in range(width):
            cell = busy[node][col]
            if not cell:
                row.append(".")
            else:
                op = max(cell, key=cell.get)
                row.append(_OP_GLYPH.get(op, "?"))
        lines.append(f"n{node:02d} |" + "".join(row) + "|")
    if trace.nodes > shown:
        lines.append(f"... ({trace.nodes - shown} more nodes)")
    return "\n".join(lines)


def _legend() -> str:
    return ", ".join(f"{g}={op}" for op, g in _OP_GLYPH.items())


def utilization_profile(
    trace: ExecutionTrace, *, buckets: int = 20
) -> np.ndarray:
    """Fraction of core-time busy in each of ``buckets`` equal time
    windows — the classic fill/drain curve of a Cholesky run."""
    if buckets < 1:
        raise ShapeError("need at least one bucket")
    makespan = trace.makespan
    capacity = trace.nodes * trace.cores_per_node
    out = np.zeros(buckets)
    if makespan <= 0.0 or capacity == 0:
        return out
    width = makespan / buckets
    for rec in trace.records:
        c0 = min(int(rec.start / width), buckets - 1)
        c1 = min(int(max(rec.end - 1e-15, rec.start) / width), buckets - 1)
        for col in range(c0, c1 + 1):
            lo = max(rec.start, col * width)
            hi = min(rec.end, (col + 1) * width)
            if hi > lo:
                out[col] += hi - lo
    return out / (width * capacity)
