"""Task priorities for list scheduling.

The simulator schedules ready tasks highest-priority-first; priority is
the classic *upward rank* (critical-path-to-exit length), the heuristic
dynamic runtimes approximate with panel-index priorities.  A cheaper
panel-based priority is provided for comparison/ablation.
"""

from __future__ import annotations

import networkx as nx

__all__ = ["upward_ranks", "panel_priorities", "panel_priorities_tasks"]

_OP_WEIGHT = {"potrf": 3.0, "trsm": 2.0, "syrk": 1.0, "gemm": 0.0}


def upward_ranks(dag: nx.DiGraph, durations: dict[int, float]) -> dict[int, float]:
    """Upward rank of every task: its duration plus the longest
    downstream chain.  Computed in reverse topological order."""
    rank: dict[int, float] = {}
    for uid in reversed(list(nx.topological_sort(dag))):
        downstream = max((rank[s] for s in dag.successors(uid)), default=0.0)
        rank[uid] = durations[uid] + downstream
    return rank


def panel_priorities(dag: nx.DiGraph) -> dict[int, float]:
    """PLASMA-style static priority: earlier panels first, POTRF >
    TRSM > SYRK > GEMM within a panel."""
    out: dict[int, float] = {}
    for uid, data in dag.nodes(data=True):
        task = data["task"]
        out[uid] = -(task.k * 4.0) + _OP_WEIGHT[task.op]
    return out


def panel_priorities_tasks(tasks) -> dict[int, float]:
    """:func:`panel_priorities` straight from a task stream — the
    priority depends only on each task's ``(k, op)``, so no DAG is
    needed; this is what the lru-cached Cholesky plan memoizes."""
    return {t.uid: -(t.k * 4.0) + _OP_WEIGHT[t.op] for t in tasks}
