"""Sequential execution engine: runs a task stream *for real*.

The engine interprets the task stream from
:mod:`repro.runtime.taskgraph` against an actual
:class:`~repro.tile.matrix.TileMatrix`, dispatching to the numerical
kernels.  It is the single-worker instantiation of the runtime — used
to validate that the task-graph path computes bit-identical results to
the direct loop in :func:`repro.tile.cholesky.tile_cholesky`, and to
attach real wall-clock timings to a trace.
"""

from __future__ import annotations

import time

from ..exceptions import SchedulingError
from ..perfmodel.kernelmodel import task_flops
from ..tile import kernels as K
from ..tile.matrix import TileMatrix
from .simulator import shape_for_task
from .task import Task
from .trace import ExecutionTrace, TaskRecord

__all__ = ["execute_cholesky_tasks", "execute_forward_solve_tasks"]


def execute_cholesky_tasks(
    matrix: TileMatrix,
    tasks: list[Task],
    *,
    tile_tol: float = 0.0,
    max_rank: int | None = None,
    fp16_accumulate_fp32: bool = True,
) -> tuple[TileMatrix, ExecutionTrace]:
    """Execute a Cholesky task stream in order on ``matrix``.

    The stream must be a valid sequential order (the generator output
    or any topological order of its DAG).  Returns the factored matrix
    and a trace with real durations and modeled flop counts.
    """
    trace = ExecutionTrace(nodes=1, cores_per_node=1)
    clock = 0.0
    for task in tasks:
        t0 = time.perf_counter()
        if task.op == "potrf":
            out = K.potrf(matrix.get(*task.output), index=task.output)
        elif task.op == "trsm":
            (lkk,) = task.inputs
            out = K.trsm(
                matrix.get(*lkk),
                matrix.get(*task.output),
                fp16_accumulate_fp32=fp16_accumulate_fp32,
            )
        elif task.op == "syrk":
            (amk,) = task.inputs
            out = K.syrk(
                matrix.get(*amk),
                matrix.get(*task.output),
                fp16_accumulate_fp32=fp16_accumulate_fp32,
            )
        elif task.op == "gemm":
            amk, ank = task.inputs
            out = K.gemm(
                matrix.get(*amk),
                matrix.get(*ank),
                matrix.get(*task.output),
                tol=tile_tol,
                max_rank=max_rank,
                fp16_accumulate_fp32=fp16_accumulate_fp32,
            )
        else:  # pragma: no cover - Task validates ops
            raise SchedulingError(f"unknown op {task.op!r}")
        matrix.set(*task.output, out)
        elapsed = time.perf_counter() - t0
        shape = shape_for_task(task, matrix.layout, _plan_from_matrix(matrix, task))
        trace.add(
            TaskRecord(
                uid=task.uid,
                op=task.op,
                node=0,
                core=0,
                start=clock,
                end=clock + elapsed,
                flops=task_flops(shape),
            )
        )
        clock += elapsed
    return matrix, trace


def execute_forward_solve_tasks(
    factor: TileMatrix,
    tasks: list[Task],
    b: np.ndarray,
) -> np.ndarray:
    """Execute a forward-substitution task stream against a real
    factor and right-hand side.

    The stream is :func:`repro.runtime.taskgraph.forward_solve_tasks`
    (RHS blocks keyed ``(i, -1)``): GEMM tasks apply ``y_i -= L_ij y_j``
    and TRSM tasks the diagonal solve.  Validates that the task-graph
    formulation of the solve matches
    :func:`repro.tile.solve.forward_solve` and gives the simulator a
    real counterpart for the prediction phase.
    """
    import numpy as _np
    from scipy import linalg as sla

    from ..tile.solve import tile_apply

    layout = factor.layout
    y = _np.asarray(b, dtype=_np.float64).copy()
    if y.shape[0] != factor.n:
        raise SchedulingError("rhs dimension does not match the factor")
    for task in tasks:
        i = task.output[0]
        sl_i = layout.block_slice(i)
        if task.op == "gemm":
            (lij, rhs_j) = task.inputs
            j = rhs_j[0]
            y[sl_i] -= tile_apply(factor.get(*lij), y[layout.block_slice(j)])
        elif task.op == "trsm":
            (lii,) = task.inputs
            y[sl_i] = sla.solve_triangular(
                factor.get(*lii).to_dense64(), y[sl_i],
                lower=True, check_finite=False,
            )
        else:
            raise SchedulingError(
                f"unexpected op {task.op!r} in a solve stream"
            )
    return y


def _plan_from_matrix(matrix: TileMatrix, task: Task):
    """Minimal plan-like view over the live matrix (structure and
    precision read from the actual tiles, ranks from LR tiles)."""
    return _LivePlanView(matrix)


class _LivePlanView:
    """Adapter exposing the TilePlan interface the simulator's
    shape builder needs, backed by live tiles."""

    def __init__(self, matrix: TileMatrix):
        self._m = matrix
        self.layout = matrix.layout
        self.meta = {"ranks": {}}

    def is_low_rank(self, i: int, j: int) -> bool:
        return self._m.get(i, j).is_low_rank

    def precision_of(self, i: int, j: int):
        return self._m.get(i, j).precision

    def rank_of(self, i: int, j: int) -> int:
        tile = self._m.get(i, j)
        return tile.rank if tile.is_low_rank else self.layout.tile_size
