"""Task objects of the PaRSEC-like runtime.

A :class:`Task` names one tile kernel invocation: the operation, the
panel step ``k`` it belongs to, the tile it overwrites (its *output*)
and the tiles it reads.  Tasks are produced in the sequential
(reference) order by :mod:`repro.runtime.taskgraph`; the dataflow
analysis in :mod:`repro.runtime.dag` recovers the parallelism exactly
the way a task-insertion runtime would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Task", "TILE_OPS"]

TILE_OPS = ("potrf", "trsm", "syrk", "gemm")


@dataclass(frozen=True)
class Task:
    """One tile kernel invocation.

    ``uid`` is the position in the sequential reference order and
    doubles as the node id in the DAG.  ``inputs`` lists read-only tile
    operands; ``output`` is read-write.  ``k`` is the Cholesky panel
    index (used for priorities and progress grouping).
    """

    uid: int
    op: str
    k: int
    output: tuple[int, int]
    inputs: tuple[tuple[int, int], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.op not in TILE_OPS:
            raise ValueError(f"unknown op {self.op!r}")

    @property
    def tiles(self) -> tuple[tuple[int, int], ...]:
        """All tiles touched (output first)."""
        return (self.output,) + self.inputs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ins = ",".join(f"({i},{j})" for i, j in self.inputs)
        return f"Task#{self.uid} {self.op}[k={self.k}] out={self.output} in=[{ins}]"
