"""Process-parallel execution engine: tile Cholesky beyond the GIL.

The threaded executor (:mod:`repro.runtime.parallel`) parallelizes
only as far as BLAS releases the GIL; this engine runs the *same* task
DAG across persistent **worker processes** over a shared-memory tile
store (:mod:`repro.tile.shm`) — a working single-node analogue of
PaRSEC's distributed owner-computes execution:

* workers are forked/spawned **once** per engine (one per fit when the
  :class:`~repro.core.engine.EvaluationEngine` owns it) and reused by
  every likelihood evaluation; per evaluation the parent ships one
  small config message plus task descriptors — uids and tile handles,
  never payloads or task streams;
* tiles are partitioned 2-D block-cyclic
  (:class:`~repro.runtime.distribution.BlockCyclic2D`) and each task
  executes on the rank owning its output tile; inputs owned by other
  ranks are explicit counted copies
  (:class:`~repro.runtime.comm.CommStats`), cross-checkable against
  the simulator's comm model;
* dispatch reuses the lru-cached plan — dependence counters,
  successor lists, and panel priorities are all functions of ``nt``
  alone — and releases ready tasks in per-owner message batches;
* per-worker BLAS threads are clamped against oversubscription
  (:mod:`repro.runtime.blasclamp`), and the clamp is reported;
* failure semantics match the threaded engine: worker exceptions wrap
  in :class:`~repro.exceptions.SchedulingError` after the pool drains,
  deadlines/cancellation stop dispatch and surface
  :class:`~repro.exceptions.DeadlineExceededError`, seeded chaos keys
  on ``(seed, epoch, uid, attempt)``; a worker killed mid-task raises
  :class:`~repro.exceptions.WorkerLostError` (never a hang), with the
  pool torn down and the store unlinked.

Determinism: identical kernels, identical per-tile dependence order,
byte-exact shared-memory round-trips — results are bit-identical to
the sequential, threaded, and batched engines (pinned by tests).
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
import queue as queue_mod
import time
from collections import Counter

from ..exceptions import (
    ChaosError,
    CompressionError,
    ConfigurationError,
    DeadlineExceededError,
    NotPositiveDefiniteError,
    NumericalCorruptionError,
    SchedulingError,
    ShapeError,
    WorkerLostError,
)
from ..obs.tracer import current_span_id
from ..tile.cholesky import CholeskyStats
from ..tile.compression import fast_lr_enabled
from ..tile.matrix import TileMatrix
from ..tile.shm import SharedTileStore
from .blasclamp import blas_clamp_for, clamp_blas_threads
from .comm import CommStats
from .distribution import BlockCyclic2D
from .parallel import ParallelRunReport
from .procworker import worker_main
from .trace import ExecutionTrace, TaskRecord

__all__ = ["ProcessPoolEngine"]

#: Result-queue poll interval: long enough to stay off the CPU, short
#: enough that deadlines and dead workers are noticed promptly.
_POLL_S = 0.02

#: Hard ceiling on waiting for an in-flight task with every worker
#: alive — a backstop against a silently wedged worker, far above any
#: real kernel time.
_STALL_S = float(os.environ.get("REPRO_PROC_STALL_S", "600"))

_EXC_TYPES: dict[str, type] = {
    "NotPositiveDefiniteError": NotPositiveDefiniteError,
    "NumericalCorruptionError": NumericalCorruptionError,
    "ChaosError": ChaosError,
    "CompressionError": CompressionError,
    "ShapeError": ShapeError,
    "SchedulingError": SchedulingError,
}


def _rebuild_exc(info: dict) -> BaseException:
    """The worker-side exception, reconstructed parent-side so callers
    (NPD unwrapping, retry classification in tests) see the same types
    as with the threaded engine."""
    exc_type = _EXC_TYPES.get(info["type"])
    if exc_type in (NotPositiveDefiniteError, NumericalCorruptionError):
        return exc_type(info["message"], tile_index=info["tile_index"])
    if exc_type is ChaosError:
        return ChaosError(info["message"], site=info["site"])
    if exc_type is not None:
        return exc_type(info["message"])
    return RuntimeError(f"{info['type']}: {info['message']}")


class ProcessPoolEngine:
    """Persistent owner-computes worker pool for tile Cholesky.

    Parameters
    ----------
    workers:
        Process count; the 2-D block-cyclic grid defaults to the
        squarest ``p x q`` factorization of it.
    grid:
        Explicit :class:`~repro.runtime.distribution.BlockCyclic2D`
        override (its ``nodes`` must equal ``workers``).
    start_method:
        ``"fork"`` (default where available — workers inherit the
        loaded BLAS and start in milliseconds) or ``"spawn"``
        (portable; the env-based BLAS clamp applies at library load).
        Also settable via ``REPRO_PROC_START_METHOD``.

    The pool starts lazily on the first :meth:`execute` and survives
    across evaluations; :meth:`close` (or context-manager exit) stops
    the workers.  After a :class:`~repro.exceptions.WorkerLostError`
    the pool is torn down but the engine stays usable — the next
    :meth:`execute` starts a fresh pool.
    """

    def __init__(
        self,
        workers: int = 4,
        *,
        grid: BlockCyclic2D | None = None,
        start_method: str | None = None,
    ):
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = int(workers)
        self.grid = BlockCyclic2D.squarest(workers) if grid is None else grid
        if self.grid.nodes != self.workers:
            raise ConfigurationError(
                f"grid has {self.grid.nodes} nodes for {self.workers} workers"
            )
        if start_method is None:
            start_method = os.environ.get("REPRO_PROC_START_METHOD")
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self.start_method = start_method
        self.blas_clamp = blas_clamp_for(self.workers)
        self._ctx = mp.get_context(start_method)
        self._procs: list = []
        self._task_qs: list = []
        self._result_q = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._procs)

    def start(self) -> None:
        """Spawn the workers and wait for their ready handshakes."""
        if self._procs:
            return
        ctx = self._ctx
        self._result_q = ctx.Queue()
        self._task_qs = [ctx.Queue() for _ in range(self.workers)]
        init = {"blas_threads": self.blas_clamp if self.workers > 1 else 0}
        # Clamp while creating processes: spawned children read the
        # clamped env at BLAS load time; the clamp restores on exit.
        with clamp_blas_threads(self.workers):
            for rank in range(self.workers):
                proc = ctx.Process(
                    target=worker_main,
                    args=(rank, self._task_qs[rank], self._result_q, init),
                    name=f"repro-worker-{rank}",
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
        pending = set(range(self.workers))
        t_end = time.monotonic() + 120.0
        while pending:
            try:
                msg = self._result_q.get(timeout=_POLL_S)
            except queue_mod.Empty:
                dead = self._dead_worker()
                if dead is not None:
                    self._teardown()
                    raise WorkerLostError(
                        f"worker {dead[0]} died during startup "
                        f"(exitcode {dead[1]})",
                        rank=dead[0], exitcode=dead[1],
                    )
                if time.monotonic() > t_end:  # pragma: no cover
                    self._teardown()
                    raise SchedulingError("worker pool failed to start")
                continue
            if msg[0] == "ready":
                pending.discard(msg[1])

    def close(self) -> None:
        """Stop the workers and release the queues (idempotent)."""
        if not self._procs:
            return
        for q in self._task_qs:
            try:
                q.put(("stop",))
            except (ValueError, OSError):  # pragma: no cover - closed
                continue
        for proc in self._procs:
            proc.join(timeout=5.0)
        self._teardown()

    def _teardown(self) -> None:
        """Terminate anything still alive and drop queue resources."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs = []
        for q in [*self._task_qs, self._result_q]:
            if q is None:
                continue
            try:
                q.cancel_join_thread()
                q.close()
            except (ValueError, OSError):  # pragma: no cover
                continue  # already closed
        self._task_qs = []
        self._result_q = None

    def __enter__(self) -> "ProcessPoolEngine":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            return  # interpreter teardown; daemon workers die with us

    def _dead_worker(self) -> tuple[int, int] | None:
        for rank, proc in enumerate(self._procs):
            if not proc.is_alive():
                return rank, proc.exitcode
        return None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self,
        matrix: TileMatrix,
        *,
        tile_tol: float = 0.0,
        max_rank: int | None = None,
        fp16_accumulate_fp32: bool = True,
        deadline=None,
        cancel=None,
        retry=None,
        chaos=None,
        check_finite: bool | None = None,
        batch: bool = False,
        telemetry=None,
        collect_trace: bool | None = None,
    ) -> tuple[TileMatrix, ParallelRunReport]:
        """Factor ``matrix`` in place across the worker processes.

        Same contract as
        :func:`~repro.runtime.parallel.execute_cholesky_parallel`:
        raises :class:`~repro.exceptions.SchedulingError` on task
        failure (first worker exception chained; a dead worker raises
        the :class:`~repro.exceptions.WorkerLostError` subclass) and
        :class:`~repro.exceptions.DeadlineExceededError` on
        deadline/cancellation — in every case only after in-flight
        tasks have drained (or the pool has been torn down) and the
        shared-memory store has been unlinked.  ``batch=True`` lets
        workers run homogeneous groups of one dispatch as stacked BLAS
        calls (dense results bit-identical; ignored under retry/chaos,
        which need per-task semantics).

        ``telemetry`` merges the workers' shipped span timings into
        the parent tracer (worker ``rank`` appears as process
        ``rank + 1``), giving one cross-process timeline;
        ``collect_trace`` attaches the wall-clock
        :class:`~repro.runtime.trace.ExecutionTrace` (``node`` =
        worker rank) to the report.  Workers and parent share the
        ``time.perf_counter`` epoch (CLOCK_MONOTONIC), so no clock
        translation happens anywhere.
        """
        self.start()
        spans_on = telemetry is not None and telemetry.tracer.enabled
        tracing = (
            spans_on if collect_trace is None else bool(collect_trace)
        )
        tracing = tracing or spans_on
        parent_sid = current_span_id() if spans_on else None
        from .batchdispatch import _cholesky_plan

        tasks, indegree0, successors, prio = _cholesky_plan(matrix.nt)
        task_by_uid = {t.uid: t for t in tasks}
        indegree = dict(indegree0)

        if chaos is not None and not hasattr(chaos, "perturb_task"):
            from ..resilience.chaos import ChaosInjector

            chaos = ChaosInjector(chaos)
        epoch = chaos.next_epoch() if chaos is not None else 0
        if check_finite is None:
            check_finite = retry is not None or chaos is not None

        store = SharedTileStore(matrix.layout)
        t0 = time.perf_counter()
        try:
            handles = store.put_matrix(matrix)
            cfg = {
                "nt": matrix.nt,
                "tile_tol": tile_tol,
                "max_rank": max_rank,
                "fp16_accumulate_fp32": fp16_accumulate_fp32,
                "fast_lr": fast_lr_enabled(),
                "epoch": epoch,
                "check_finite": check_finite,
                "chaos": None if chaos is None else chaos.config,
                "retry": retry,
                "grid": self.grid,
                "batch": batch,
                "trace": tracing,
            }
            for q in self._task_qs:
                q.put(("eval", cfg))

            ready = [
                (-prio[uid], uid) for uid, deg in indegree.items() if deg == 0
            ]
            heapq.heapify(ready)
            remaining = len(tasks)
            in_flight: dict[int, int] = {}
            errors: list[BaseException] = []
            draining = False
            cancel_reason = ""
            comm = CommStats()
            opcounts: Counter[str] = Counter()
            stats = CholeskyStats()
            retries = 0
            chaos_delta = [0, 0, 0]
            max_busy = 0
            last_progress = time.monotonic()
            # Merged worker timeline: (uid, op, rank, tile, start_abs,
            # end_abs, attempts, batched).
            timeline: list[tuple] = []

            def flush() -> None:
                """Dispatch every ready task to its owner, one message
                per owner (the tasks of one flush are pairwise
                independent: all were simultaneously ready)."""
                nonlocal max_busy
                if draining:
                    return
                buckets: dict[int, list] = {}
                while ready:
                    _, uid = heapq.heappop(ready)
                    task = task_by_uid[uid]
                    rank = self.grid.owner(*task.output)
                    buckets.setdefault(rank, []).append((
                        uid, handles[task.output],
                        tuple(handles[key] for key in task.inputs),
                    ))
                    in_flight[uid] = rank
                for rank, items in buckets.items():
                    self._task_qs[rank].put(("run", items))
                max_busy = max(max_busy, len(set(in_flight.values())))

            def start_drain(reason: str) -> None:
                nonlocal draining, cancel_reason
                if not draining:
                    draining = True
                    cancel_reason = cancel_reason or reason

            flush()
            while True:
                if remaining == 0:
                    break
                if draining and not in_flight:
                    break
                if not in_flight:  # pragma: no cover - DAG invariant
                    raise SchedulingError(
                        f"stalled with {remaining} tasks unreached"
                    )
                if deadline is not None and deadline.expired:
                    start_drain(
                        f"deadline of {deadline.budget_s:.3g}s exceeded"
                    )
                if cancel is not None and cancel.cancelled:
                    start_drain(cancel.reason or "cancelled")
                try:
                    msg = self._result_q.get(timeout=_POLL_S)
                except queue_mod.Empty:
                    dead = self._dead_worker()
                    if dead is not None:
                        self._teardown()
                        raise WorkerLostError(
                            f"worker {dead[0]} died mid-factorization "
                            f"(exitcode {dead[1]}) with "
                            f"{len(in_flight)} tasks in flight",
                            rank=dead[0], exitcode=dead[1],
                        )
                    if time.monotonic() - last_progress > _STALL_S:
                        self._teardown()  # pragma: no cover - backstop
                        raise WorkerLostError(
                            f"no progress for {_STALL_S:.0f}s with "
                            f"{len(in_flight)} tasks in flight"
                        )
                    continue
                last_progress = time.monotonic()
                kind = msg[0]
                if kind == "ok":
                    _, rank, uid, handle, info = msg
                    in_flight.pop(uid, None)
                    remaining -= 1
                    handles[handle.index] = handle
                    store.handles[handle.index] = handle
                    opcounts[info["op"]] += 1
                    span = info.get("span")
                    if tracing and span is not None:
                        timeline.append((
                            uid, info["op"], rank, handle.index,
                            span[0], span[1], span[2], span[3],
                        ))
                    comm.remote_reads += info["remote_reads"]
                    comm.remote_bytes += info["remote_bytes"]
                    comm.local_reads += info["local_reads"]
                    retries += info["retries"]
                    for i in range(3):
                        chaos_delta[i] += info["chaos"][i]
                    if info["densified"]:
                        stats.densified_tiles += 1
                    if info["lr_rank"] is not None:
                        stats.max_rank_seen = max(
                            stats.max_rank_seen, info["lr_rank"]
                        )
                    for succ in successors[uid]:
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            heapq.heappush(ready, (-prio[succ], succ))
                    flush()
                elif kind == "err":
                    _, _, uid, info = msg
                    in_flight.pop(uid, None)
                    remaining -= 1
                    retries += info.get("retries", 0)
                    for i in range(3):
                        chaos_delta[i] += info.get("chaos", (0, 0, 0))[i]
                    errors.append(_rebuild_exc(info))
                    start_drain(f"task {uid} failed")
                # "ready" handshakes from a restart are ignored here

            wall = time.perf_counter() - t0
            if chaos is not None:
                with chaos._lock:
                    chaos.stats.corrupted_tiles += chaos_delta[0]
                    chaos.stats.failed_tasks += chaos_delta[1]
                    chaos.stats.delayed_tasks += chaos_delta[2]
            if errors:
                first = errors[0]
                raise SchedulingError(
                    f"process execution failed: {first!r}"
                ) from first
            if draining:
                raise DeadlineExceededError(
                    f"execution cancelled after {wall:.3g}s: "
                    f"{cancel_reason}",
                    budget_s=None if deadline is None else deadline.budget_s,
                    where="ProcessPoolEngine.execute",
                )
            store.read_into(matrix)
            stats.retries = retries
            stats.count_batch(opcounts)
            trace_obj = None
            if tracing and timeline:
                timeline.sort(key=lambda r: (r[4], r[0]))
                trace_obj = ExecutionTrace(
                    records=[
                        TaskRecord(
                            uid=uid, op=op, node=rank, core=rank,
                            start=start - t0, end=end - t0,
                            attempts=attempts,
                        )
                        for uid, op, rank, _tile, start, end,
                        attempts, _batched in timeline
                    ],
                    nodes=self.workers, cores_per_node=1,
                )
                if spans_on:
                    add_span = telemetry.tracer.add_span
                    for (uid, op, rank, tile, start, end, attempts,
                         batched) in timeline:
                        add_span(
                            op, start, end, parent=parent_sid,
                            pid=rank + 1, tid=rank,
                            attrs={"uid": uid, "tile": list(tile),
                                   "worker": rank,
                                   "attempt": attempts,
                                   "batched": batched},
                        )
            report = ParallelRunReport(
                workers=self.workers,
                tasks=len(tasks),
                wall_time_s=wall,
                max_concurrency=max_busy,
                stats=stats,
                retries=retries,
                chaos_events=sum(chaos_delta),
                blas_clamp=self.blas_clamp if self.workers > 1 else None,
                comm=comm,
                trace=trace_obj,
            )
            return matrix, report
        finally:
            store.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "started" if self.started else "idle"
        return (
            f"ProcessPoolEngine(workers={self.workers}, "
            f"grid={self.grid.p}x{self.grid.q}, "
            f"start_method={self.start_method!r}, {state})"
        )
