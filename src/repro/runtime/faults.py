"""Failure injection for the discrete-event simulator.

At 48,384 nodes the paper's machine is not failure-free, yet the
simulator (like the paper's runs) modeled one.  This module adds a
seeded, MTBF-parameterized :class:`FaultModel` covering the two failure
classes a task runtime sees:

* **node crashes** — Poisson per node with mean :attr:`node_mtbf_s`;
  a crash destroys the node's in-memory tiles, so work completed since
  the node's last durable checkpoint must be re-executed (lost-tile
  recovery), plus a fixed :attr:`restart_s` re-spawn delay;
* **transient task failures** — each task attempt independently fails
  with probability :attr:`transient_prob` (soft errors, killed
  processes), wasting a random fraction of the task's duration before
  the runtime re-executes it; more than :attr:`max_task_retries`
  consecutive failures raise
  :class:`~repro.exceptions.TaskFailedError`.

Determinism: every draw is keyed by ``(seed, stream, node-or-uid)``
through :class:`numpy.random.SeedSequence` spawn keys, so the failure
schedule is a pure function of the seed and the task set — independent
of scheduling order.  Same seed in, bit-identical makespan out, which
is what the resilience tests pin.

:class:`CheckpointConfig` describes the periodic coordinated tile
checkpoint the simulator charges against the fault model; its
:meth:`CheckpointConfig.tuned` constructor picks the Young/Daly optimal
interval from :mod:`repro.perfmodel.resilience`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config import (
    DEFAULT_CHECKPOINT_BW_GBS,
    DEFAULT_NODE_MTBF_S,
    DEFAULT_RESTART_S,
)
from ..exceptions import ConfigurationError, TaskFailedError
from ..perfmodel.resilience import checkpoint_cost_s, daly_interval

__all__ = ["FaultModel", "CheckpointConfig", "CrashTimes"]

# SeedSequence spawn-key stream tags (crash times vs transient draws).
_STREAM_CRASH = 1
_STREAM_TRANSIENT = 2


class CrashTimes:
    """Lazy per-node crash-time generator (exponential inter-arrivals).

    ``next_after(t)`` returns the first crash strictly after time ``t``,
    extending the sampled sequence on demand; the sequence for a given
    ``(seed, node)`` never depends on how far other nodes were queried.
    """

    def __init__(self, seed: int, node: int, mtbf_s: float):
        self._rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(_STREAM_CRASH, node))
        )
        self._mtbf = mtbf_s
        self._times: list[float] = []

    def _extend_past(self, t: float) -> None:
        last = self._times[-1] if self._times else 0.0
        while last <= t:
            last += float(self._rng.exponential(self._mtbf))
            self._times.append(last)

    def next_after(self, t: float) -> float:
        if not math.isfinite(self._mtbf):
            return math.inf
        self._extend_past(t)
        for crash in self._times:
            if crash > t:
                return crash
        raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class FaultModel:
    """Seeded failure-injection parameters for one simulated run.

    ``node_mtbf_s=math.inf`` disables crashes; ``transient_prob=0``
    disables transient task failures.  The default MTBF is the
    per-*node* value — at ``P`` nodes the application-level MTBF the
    run experiences is ``node_mtbf_s / P``.
    """

    node_mtbf_s: float = DEFAULT_NODE_MTBF_S
    transient_prob: float = 0.0
    restart_s: float = DEFAULT_RESTART_S
    max_task_retries: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.node_mtbf_s <= 0:
            raise ConfigurationError("node_mtbf_s must be positive")
        if not 0.0 <= self.transient_prob < 1.0:
            raise ConfigurationError("transient_prob must be in [0, 1)")
        if self.restart_s < 0:
            raise ConfigurationError("restart_s must be >= 0")
        if self.max_task_retries < 0:
            raise ConfigurationError("max_task_retries must be >= 0")

    # ------------------------------------------------------------------
    def crash_times(self, node: int) -> CrashTimes:
        """The node's deterministic crash-time stream."""
        return CrashTimes(self.seed, node, self.node_mtbf_s)

    def task_waste_fractions(self, uid: int) -> tuple[float, ...]:
        """Wasted-duration fractions of the failed attempts of task
        ``uid`` (empty when the first attempt succeeds).

        Each attempt fails independently with :attr:`transient_prob`,
        losing a uniform fraction of the task's duration.  Raises
        :class:`~repro.exceptions.TaskFailedError` when the retry
        budget is exhausted.
        """
        if self.transient_prob == 0.0:
            return ()
        rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(_STREAM_TRANSIENT, uid))
        )
        wasted: list[float] = []
        while float(rng.random()) < self.transient_prob:
            if len(wasted) >= self.max_task_retries:
                raise TaskFailedError(
                    f"task {uid} failed {len(wasted) + 1} times "
                    f"(retry budget {self.max_task_retries})",
                    uid=uid,
                    attempts=len(wasted) + 1,
                )
            wasted.append(float(rng.random()))
        return tuple(wasted)


@dataclass(frozen=True)
class CheckpointConfig:
    """Periodic coordinated tile checkpoint charged by the simulator.

    Every ``interval_s`` of wall-clock time each node writes its
    resident tile state (``cost_s`` per checkpoint) and its durable
    state advances; a subsequent crash only re-executes work since the
    last completed checkpoint instead of since time zero.
    """

    interval_s: float
    cost_s: float

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigurationError("checkpoint interval must be positive")
        if self.cost_s < 0:
            raise ConfigurationError("checkpoint cost must be >= 0")

    @classmethod
    def tuned(
        cls,
        nbytes_per_node: float,
        *,
        nodes: int,
        node_mtbf_s: float = DEFAULT_NODE_MTBF_S,
        restart_s: float = DEFAULT_RESTART_S,
        io_bw_gbs: float = DEFAULT_CHECKPOINT_BW_GBS,
    ) -> "CheckpointConfig":
        """Young/Daly-optimal configuration for a node footprint.

        ``nbytes_per_node`` is the planned tile storage per node (e.g.
        ``matrix.nbytes / nodes``); the interval is Daly's optimum at
        the *application-level* MTBF ``node_mtbf_s / nodes``.
        """
        cost = checkpoint_cost_s(nbytes_per_node, io_bw_gbs)
        mtbf = node_mtbf_s / max(nodes, 1)
        interval = daly_interval(cost, mtbf, restart_s)
        return cls(interval_s=max(interval, cost, 1e-12), cost_s=cost)
