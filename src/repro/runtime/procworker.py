"""Worker process of the process-parallel backend.

:func:`worker_main` is the entry point
:class:`~repro.runtime.procpool.ProcessPoolEngine` spawns N times.  A
worker is a small loop over three message kinds:

* ``("eval", cfg)`` — arm for one factorization: which plan (``nt``),
  the kernel knobs, the ownership grid, the chaos/retry policies, the
  fast-LR flag, and the chaos epoch.  The task stream itself is
  rebuilt locally from ``nt`` (and cached across evaluations) — the
  parent never ships tasks, only uids;
* ``("run", items)`` — execute task descriptors ``(uid, out_handle,
  in_handles)`` against shared-memory tile views, one result message
  per task (the parent's dependence counters need per-task
  completion).  Items in one message are pairwise independent by
  construction (they were simultaneously ready), so when batching is
  armed the worker groups them exactly like
  :mod:`~repro.runtime.batchdispatch` and runs stacked BLAS calls;
* ``("stop",)`` — detach from every segment and exit.

Owner-computes accounting: every input tile whose
:class:`~repro.runtime.distribution.BlockCyclic2D` owner differs from
this worker's rank is copied out of the other rank's home slab (the
"wire transfer") and counted per consuming task — the same per-task
charging :func:`~repro.runtime.comm.model_comm_volume` predicts, so
measured and modeled traffic are directly comparable.  Local inputs
are zero-copy views.

Determinism: the kernels, the per-tile dependence order, and the
chaos/retry keying ``(seed, epoch, uid, attempt)`` are identical to
the threaded executor's, and payloads round-trip through shared memory
byte-exactly — so results are bit-identical to the sequential and
threaded engines, and chaos schedules are independent of how tasks
land on workers.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass

from ..resilience.chaos import ChaosInjector
from ..tile import kernels as K
from ..tile.batch import (
    ScratchPool,
    batched_gemm,
    batched_potrf,
    batched_syrk,
    batched_trsm,
)
from ..tile.compression import use_fast_lr
from ..tile.shm import SegmentCache, payload_nbytes
from ..tile.tile import DenseTile, LowRankTile, Tile
from .batchdispatch import _group_key
from .blasclamp import _set_inprocess
from .parallel import _tile_is_finite
from .task import Task

__all__ = ["worker_main"]

#: Minimum homogeneous group size worth a stacked call (same value as
#: the in-process batched dispatcher).
_MIN_BATCH = 2


@dataclass
class _EvalState:
    """One factorization's worth of worker-side configuration."""

    rank: int
    task_by_uid: dict[int, Task]
    grid: object
    tile_tol: float
    max_rank: int | None
    fp16_accumulate_fp32: bool
    fast_lr: bool
    epoch: int
    check_finite: bool
    batch: bool
    retry: object | None
    chaos: ChaosInjector | None
    #: Ship per-task span timings back with results.  Clocks are
    #: ``time.perf_counter`` (CLOCK_MONOTONIC, shared epoch with the
    #: parent on Linux), so the parent merges them into one timeline
    #: without any clock translation.
    trace: bool = False


_plan_cache: dict[int, dict[int, Task]] = {}


def _tasks_for(nt: int) -> dict[int, Task]:
    plan = _plan_cache.get(nt)
    if plan is None:
        from .taskgraph import cholesky_tasks

        plan = _plan_cache[nt] = {t.uid: t for t in cholesky_tasks(nt)}
    return plan


def _arm(rank: int, cfg: dict) -> _EvalState:
    chaos_cfg = cfg["chaos"]
    return _EvalState(
        rank=rank,
        task_by_uid=_tasks_for(cfg["nt"]),
        grid=cfg["grid"],
        tile_tol=cfg["tile_tol"],
        max_rank=cfg["max_rank"],
        fp16_accumulate_fp32=cfg["fp16_accumulate_fp32"],
        fast_lr=cfg["fast_lr"],
        epoch=cfg["epoch"],
        check_finite=cfg["check_finite"],
        batch=cfg["batch"],
        retry=cfg["retry"],
        chaos=None if chaos_cfg is None else ChaosInjector(chaos_cfg),
        trace=cfg.get("trace", False),
    )


def _exc_info(exc: BaseException) -> dict:
    """Picklable description of a worker-side failure; the parent
    rebuilds the matching exception type from it."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "tile_index": getattr(exc, "tile_index", None),
        "site": getattr(exc, "site", ""),
    }


def _kernel(task: Task, tiles: dict, st: _EvalState) -> Tile:
    """The per-tile kernels, identical to the threaded executor's."""
    if task.op == "potrf":
        return K.potrf(tiles[task.output], index=task.output)
    if task.op == "trsm":
        (lkk,) = task.inputs
        return K.trsm(
            tiles[lkk], tiles[task.output],
            fp16_accumulate_fp32=st.fp16_accumulate_fp32,
        )
    if task.op == "syrk":
        (amk,) = task.inputs
        return K.syrk(
            tiles[amk], tiles[task.output],
            fp16_accumulate_fp32=st.fp16_accumulate_fp32,
        )
    amk, ank = task.inputs
    return K.gemm(
        tiles[amk], tiles[ank], tiles[task.output],
        tol=st.tile_tol, max_rank=st.max_rank,
        fp16_accumulate_fp32=st.fp16_accumulate_fp32,
    )


def _compute(task: Task, tiles: dict, st: _EvalState, attempt: int) -> Tile:
    """One attempt: chaos perturbation, kernel, chaos corruption,
    finite check — no state update, so a failed attempt is retryable
    (mirrors the threaded executor's ``compute_task``)."""
    if st.chaos is not None:
        st.chaos.perturb_task(st.epoch, task.uid, attempt)
    out = _kernel(task, tiles, st)
    if st.chaos is not None:
        out = st.chaos.corrupt_tile(out, st.epoch, task.uid, attempt)
    if st.check_finite and not _tile_is_finite(out):
        from ..exceptions import NumericalCorruptionError

        raise NumericalCorruptionError(
            f"task {task.op}@{task.output} produced non-finite values "
            f"(attempt {attempt})",
            tile_index=task.output,
        )
    return out


def _gather_tiles(items, st: _EvalState, cache: SegmentCache):
    """Tile objects for every handle a run message references, plus
    the per-task comm tallies.

    A remote input (owner != this rank) is copied out of shared memory
    — the explicit "wire transfer" — and charged once per *consuming
    task* (the model's convention); the physical copy is deduplicated
    within the message.  Local tiles are zero-copy views.
    """
    tiles: dict[tuple[int, int], Tile] = {}
    comm = {"remote_reads": 0, "remote_bytes": 0, "local_reads": 0}
    per_task_comm: dict[int, dict] = {}

    def materialize(handle, remote: bool) -> None:
        if handle.index in tiles:
            return
        tile = cache.view(handle)
        if remote:
            # Private copy: the consuming kernels must not race with
            # the owner's subsequent overwrites of this home slab (the
            # dependence edges order tasks, and the copy pins bytes).
            tile = (
                LowRankTile(tile.u.copy(), tile.v.copy())
                if tile.is_low_rank
                else DenseTile(tile.data.copy())
            )
        tiles[handle.index] = tile

    for uid, out_handle, in_handles in items:
        task_comm = {"remote_reads": 0, "remote_bytes": 0, "local_reads": 0}
        materialize(out_handle, False)  # owner-computes: always local
        for handle in in_handles:
            remote = st.grid.owner(*handle.index) != st.rank
            materialize(handle, remote)
            if remote:
                task_comm["remote_reads"] += 1
                task_comm["remote_bytes"] += payload_nbytes(handle)
            else:
                task_comm["local_reads"] += 1
        for key in task_comm:
            comm[key] += task_comm[key]
        per_task_comm[uid] = task_comm
    return tiles, per_task_comm


def _result_info(task: Task, out: Tile, was_lr: bool, task_comm: dict,
                 retries: int, chaos_delta: tuple[int, int, int],
                 span: tuple | None = None) -> dict:
    info = dict(task_comm)
    info["op"] = task.op
    info["retries"] = retries
    info["chaos"] = chaos_delta
    info["densified"] = bool(
        task.op == "gemm" and was_lr and not out.is_low_rank
    )
    info["lr_rank"] = out.rank if out.is_low_rank else None
    if span is not None:
        # (start_abs, end_abs, attempts, batched) — the task's
        # wall-clock interval on this worker, for the parent's merged
        # trace.  Group members share their stacked call's interval.
        info["span"] = span
    return info


def _chaos_snapshot(st: _EvalState) -> tuple[int, int, int]:
    if st.chaos is None:
        return (0, 0, 0)
    s = st.chaos.stats
    return (s.corrupted_tiles, s.failed_tasks, s.delayed_tasks)


def _run_items(rank, items, st: _EvalState, cache: SegmentCache,
               pool: ScratchPool, result_q) -> None:
    tiles, per_task_comm = _gather_tiles(items, st, cache)
    handles = {uid: out_handle for uid, out_handle, _ in items}

    def finish(task: Task, out: Tile, was_lr: bool, retries: int,
               delta: tuple[int, int, int],
               span: tuple | None = None) -> None:
        new_handle = cache.write(handles[task.uid], out)
        result_q.put((
            "ok", rank, task.uid, new_handle,
            _result_info(task, out, was_lr, per_task_comm[task.uid],
                         retries, delta, span=span),
        ))

    def run_single(task: Task) -> None:
        before = _chaos_snapshot(st)
        retries = 0
        was_lr = tiles[task.output].is_low_rank
        t_start = time.perf_counter() if st.trace else 0.0
        try:
            if st.retry is None:
                out = _compute(task, tiles, st, 1)
            else:

                def note_retry(attempt, exc):
                    nonlocal retries
                    retries += 1

                out = st.retry.call(
                    lambda attempt: _compute(task, tiles, st, attempt),
                    site=task.uid, on_retry=note_retry,
                )
        except BaseException as exc:
            after = _chaos_snapshot(st)
            info = _exc_info(exc)
            info["retries"] = retries
            info["chaos"] = tuple(a - b for a, b in zip(after, before))
            result_q.put(("err", rank, task.uid, info))
            return
        after = _chaos_snapshot(st)
        tiles[task.output] = out
        span = (
            (t_start, time.perf_counter(), retries + 1, False)
            if st.trace else None
        )
        finish(task, out, was_lr, retries,
               tuple(a - b for a, b in zip(after, before)), span=span)

    tasks = [st.task_by_uid[uid] for uid, _, _ in items]
    # Batched grouping mirrors the in-process dispatcher: only when
    # armed, only without per-task resilience semantics, and only for
    # homogeneous dense groups — everything else runs per-tile.
    use_groups = (
        st.batch and st.retry is None and st.chaos is None
        and len(tasks) >= _MIN_BATCH
    )
    groups: dict[tuple, list[Task]] = {}
    singles: list[Task] = []
    if use_groups:
        for task in tasks:
            key = _group_key(task, tiles, st.fp16_accumulate_fp32)
            if key is None:
                singles.append(task)
            else:
                groups.setdefault(key, []).append(task)
    else:
        singles = tasks

    with use_fast_lr(st.fast_lr):
        for key, batch in groups.items():
            if len(batch) < _MIN_BATCH:
                singles.extend(batch)
                continue
            group_t0 = time.perf_counter() if st.trace else 0.0
            try:
                op = key[0]
                if op == "potrf":
                    outs = batched_potrf(
                        [tiles[t.output] for t in batch],
                        [t.output for t in batch], pool=pool, validate=False,
                    )
                elif op == "trsm":
                    outs = batched_trsm(
                        tiles[batch[0].inputs[0]],
                        [tiles[t.output] for t in batch],
                        fp16_accumulate_fp32=st.fp16_accumulate_fp32,
                        pool=pool, validate=False,
                    )
                elif op == "syrk":
                    outs = batched_syrk(
                        [tiles[t.inputs[0]] for t in batch],
                        [tiles[t.output] for t in batch],
                        fp16_accumulate_fp32=st.fp16_accumulate_fp32,
                        pool=pool, validate=False,
                    )
                else:
                    outs = batched_gemm(
                        [tiles[t.inputs[0]] for t in batch],
                        [tiles[t.inputs[1]] for t in batch],
                        [tiles[t.output] for t in batch],
                        fp16_accumulate_fp32=st.fp16_accumulate_fp32,
                        pool=pool, validate=False,
                    )
            except BaseException:
                # A stacked call cannot attribute its failure to one
                # task; nothing was written, so replay the group
                # per-tile (bit-identical) to pin the failing uid.
                singles.extend(batch)
                continue
            group_span = (
                (group_t0, time.perf_counter(), 1, True)
                if st.trace else None
            )
            for task, out in zip(batch, outs):
                was_lr = tiles[task.output].is_low_rank
                tiles[task.output] = out
                finish(task, out, was_lr, 0, (0, 0, 0), span=group_span)
        for task in singles:
            run_single(task)


def worker_main(rank: int, task_q, result_q, init: dict) -> None:
    """Entry point of one worker process (fork- and spawn-safe)."""
    cache = SegmentCache()
    pool = ScratchPool()
    state: _EvalState | None = None
    try:
        if init.get("blas_threads"):
            # Spawned workers already picked the clamp up from the
            # environment at BLAS load; forked workers inherited the
            # parent's in-process clamp.  Re-applying is a cheap no-op
            # that also covers exotic start paths.
            _set_inprocess(init["blas_threads"])
        result_q.put(("ready", rank))
        while True:
            msg = task_q.get()
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "eval":
                state = _arm(rank, msg[1])
            elif kind == "run":
                _run_items(rank, msg[1], state, cache, pool, result_q)
    except (KeyboardInterrupt, EOFError, OSError):  # pragma: no cover
        state = None  # parent died or is tearing the pool down; exit
    finally:
        cache.close()
