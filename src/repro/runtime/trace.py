"""Execution traces: per-task records and aggregate statistics.

Both the real engine and the discrete-event simulator emit an
:class:`ExecutionTrace`; reports (load imbalance, per-kernel breakdown,
sustained rate) come from here, mirroring the "Timers; Flops"
measurement mechanism row of the paper's performance-attributes table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TaskRecord", "ExecutionTrace"]


#: Record kinds: ``"compute"`` is a DAG task; ``"checkpoint"`` and
#: ``"recovery"`` are resilience events injected by the fault-aware
#: simulator (periodic tile checkpoint; post-crash restart plus lost-work
#: re-execution).  Non-compute records carry negative synthetic uids so
#: they never collide with DAG node ids.
RECORD_KINDS = ("compute", "checkpoint", "recovery")


@dataclass(frozen=True)
class TaskRecord:
    """One executed task (or resilience event)."""

    uid: int
    op: str
    node: int
    core: int
    start: float
    end: float
    flops: float = 0.0
    comm_bytes: float = 0.0
    conversions: int = 0
    kind: str = "compute"
    attempts: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """Collection of task records plus schedule-level aggregates."""

    records: list[TaskRecord] = field(default_factory=list)
    nodes: int = 1
    cores_per_node: int = 1

    def add(self, record: TaskRecord) -> None:
        self.records.append(record)

    @property
    def compute_records(self) -> list[TaskRecord]:
        """DAG-task records only (checkpoint/recovery events excluded)."""
        return [r for r in self.records if r.kind == "compute"]

    @property
    def makespan(self) -> float:
        return max((r.end for r in self.records), default=0.0)

    @property
    def total_flops(self) -> float:
        return sum(r.flops for r in self.records)

    @property
    def total_comm_bytes(self) -> float:
        return sum(r.comm_bytes for r in self.records)

    @property
    def total_conversions(self) -> int:
        return sum(r.conversions for r in self.records)

    def busy_time_by_node(self) -> dict[int, float]:
        busy: dict[int, float] = {}
        for r in self.records:
            busy[r.node] = busy.get(r.node, 0.0) + r.duration
        return busy

    def load_imbalance(self) -> float:
        """max/mean node busy time; 1.0 is perfectly balanced.
        Nodes with no tasks count as zero busy time."""
        busy = self.busy_time_by_node()
        if not busy:
            return 1.0
        values = [busy.get(n, 0.0) for n in range(self.nodes)]
        mean = sum(values) / len(values)
        return max(values) / mean if mean > 0 else float("inf")

    def time_by_op(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for r in self.records:
            out[r.op] = out.get(r.op, 0.0) + r.duration
        return out

    def sustained_flops(self) -> float:
        """Aggregate flop rate over the makespan (flop/s)."""
        ms = self.makespan
        return self.total_flops / ms if ms > 0 else 0.0

    def parallel_efficiency(self) -> float:
        """Busy time over available core-time within the makespan."""
        capacity = self.makespan * self.nodes * self.cores_per_node
        if capacity <= 0:
            return 0.0
        return sum(r.duration for r in self.records) / capacity

    def start_end_maps(self) -> tuple[dict[int, float], dict[int, float]]:
        """(start, end) keyed by uid, for schedule validation.

        Only compute records participate: resilience events are not DAG
        nodes (their synthetic uids are negative).
        """
        compute = self.compute_records
        return (
            {r.uid: r.start for r in compute},
            {r.uid: r.end for r in compute},
        )

    # ------------------------------------------------------------------
    # resilience accounting (fault-aware simulation)
    # ------------------------------------------------------------------
    def overhead_by_kind(self) -> dict[str, float]:
        """Busy time of non-compute (resilience) records by kind."""
        out: dict[str, float] = {}
        for r in self.records:
            if r.kind != "compute":
                out[r.kind] = out.get(r.kind, 0.0) + r.duration
        return out

    @property
    def checkpoint_count(self) -> int:
        return sum(1 for r in self.records if r.kind == "checkpoint")

    @property
    def recovery_count(self) -> int:
        """Number of node-crash recoveries charged during the run."""
        return sum(1 for r in self.records if r.kind == "recovery")

    @property
    def reexecuted_tasks(self) -> int:
        """Compute tasks that needed more than one attempt (transient
        failures re-executed in place)."""
        return sum(1 for r in self.compute_records if r.attempts > 1)

    def to_chrome_trace(self) -> list[dict]:
        """Chrome ``about://tracing`` / Perfetto event list.

        One complete-duration (``"ph": "X"``) event per task, with the
        node as the process id and the core as the thread id — drop the
        JSON into any trace viewer to inspect the schedule.
        """
        events: list[dict] = []
        for r in self.records:
            events.append({
                "name": r.op,
                "cat": "tile-task" if r.kind == "compute" else r.kind,
                "ph": "X",
                "ts": r.start * 1e6,     # microseconds
                "dur": r.duration * 1e6,
                "pid": r.node,
                "tid": r.core,
                "args": {
                    "uid": r.uid,
                    "gflops": r.flops / 1e9,
                    "comm_bytes": r.comm_bytes,
                    "conversions": r.conversions,
                    "attempts": r.attempts,
                },
            })
        return events

    def summary(self) -> dict[str, float]:
        overhead = self.overhead_by_kind()
        return {
            "tasks": float(len(self.compute_records)),
            "makespan_s": self.makespan,
            "total_gflops": self.total_flops / 1e9,
            "sustained_gflops": self.sustained_flops() / 1e9,
            "comm_gbytes": self.total_comm_bytes / 1e9,
            "conversions": float(self.total_conversions),
            "load_imbalance": self.load_imbalance(),
            "parallel_efficiency": self.parallel_efficiency(),
            "checkpoints": float(self.checkpoint_count),
            "recoveries": float(self.recovery_count),
            "reexecuted_tasks": float(self.reexecuted_tasks),
            "resilience_overhead_s": float(sum(overhead.values())),
        }
