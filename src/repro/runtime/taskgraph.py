"""Parameterized task-graph generators (PTG style).

PaRSEC describes the whole DAG with a compact parameterized
representation; these generators play that role.  They emit the task
stream of the tile Cholesky (Algorithm 1) and of the block triangular
solves in the sequential reference order used by
:func:`repro.tile.cholesky.tile_cholesky`, so a consistency test can
pin the two code paths together.
"""

from __future__ import annotations

from collections.abc import Iterator

from .task import Task

__all__ = ["cholesky_tasks", "cholesky_task_count", "forward_solve_tasks"]


def cholesky_tasks(nt: int) -> Iterator[Task]:
    """Yield the tile Cholesky tasks for an ``nt x nt`` tile matrix."""
    uid = 0
    for k in range(nt):
        yield Task(uid, "potrf", k, output=(k, k))
        uid += 1
        for m in range(k + 1, nt):
            yield Task(uid, "trsm", k, output=(m, k), inputs=((k, k),))
            uid += 1
        for m in range(k + 1, nt):
            yield Task(uid, "syrk", k, output=(m, m), inputs=((m, k),))
            uid += 1
            for n in range(k + 1, m):
                yield Task(
                    uid, "gemm", k, output=(m, n), inputs=((m, k), (n, k))
                )
                uid += 1


def cholesky_task_count(nt: int) -> int:
    """Closed-form size of the Cholesky task stream:
    ``nt`` POTRFs, ``nt(nt-1)/2`` TRSMs and SYRKs each, and
    ``nt(nt-1)(nt-2)/6`` GEMMs."""
    return nt + nt * (nt - 1) + nt * (nt - 1) * (nt - 2) // 6


def forward_solve_tasks(nt: int, *, base_uid: int = 0) -> Iterator[Task]:
    """Task stream of the block forward substitution ``L y = b``.

    RHS blocks are denoted as tiles ``(i, -1)`` (column -1), which the
    dependence analysis treats like any other data key.  GEMM here is
    the ``y_i -= L_ij y_j`` block update, TRSM the diagonal solve.
    """
    uid = base_uid
    for i in range(nt):
        for j in range(i):
            yield Task(
                uid, "gemm", j, output=(i, -1), inputs=((i, j), (j, -1))
            )
            uid += 1
        yield Task(uid, "trsm", i, output=(i, -1), inputs=((i, i),))
        uid += 1
