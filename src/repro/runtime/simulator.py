"""Discrete-event simulation of the distributed runtime.

The simulator executes the *real* task DAG on ``P`` simulated nodes
with ``C`` cores each, 2-D block-cyclic ownership ("owner computes"),
per-task durations from the roofline kernel model, and communication
charged per remote input tile in its wire representation (structure +
storage precision, converted at the receiver).  This is the documented
substitution for Fugaku: identical DAG, modeled hardware.

Scheduling is priority list scheduling (upward rank by default), which
is how PaRSEC's locality-aware heuristics behave to first order.  The
resulting schedule is validated against the DAG by the test suite.

Fault-tolerant execution
------------------------

With ``SimConfig.faults`` set (a seeded
:class:`~repro.runtime.faults.FaultModel`), the simulator injects node
crashes and transient task failures and charges their recovery:

* a *transient* task failure wastes a random fraction of the task's
  duration and re-executes it in place (``TaskRecord.attempts > 1``);
* a *node crash* destroys the node's volatile tiles: every core of the
  node stalls for the restart delay plus re-execution of all compute
  completed on that node since its last durable checkpoint (lost-tile
  recovery), recorded as a ``kind="recovery"`` trace record.

``SimConfig.checkpoint`` adds periodic coordinated tile checkpoints
(``kind="checkpoint"`` records): each node pays the write cost when its
timeline crosses a checkpoint epoch, and crashes then only lose work
since the last epoch.  Two documented simplifications keep the model
tractable: tasks on *sibling* cores whose records already ended after
the crash instant are treated as surviving (optimistic, since their
output tiles are re-derived by the charged re-execution), and a
mid-task checkpoint preserves the in-flight task's inputs but not its
partial progress.  With ``faults=None`` and ``checkpoint=None`` the
schedule is bit-identical to the fault-free simulator.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import networkx as nx

from ..exceptions import ConfigurationError, SchedulingError
from ..perfmodel.kernelmodel import TaskShape, task_flops, task_time
from ..perfmodel.machine import A64FX, MachineSpec
from ..tile.layout import TileLayout
from ..tile.precision import Precision
from .comm import tile_wire_bytes
from .dag import build_dag
from .distribution import BlockCyclic2D
from .faults import CheckpointConfig, FaultModel
from .scheduler import panel_priorities, upward_ranks
from .task import Task
from .trace import ExecutionTrace, TaskRecord

__all__ = ["SimConfig", "shape_for_task", "plan_rank_of", "simulate_tasks"]


def plan_rank_of(plan, i: int, j: int) -> int:
    """Rank of tile ``(i, j)`` under a plan: its compression rank when
    low-rank, else the (dense) tile size."""
    if hasattr(plan, "rank_of"):
        if plan.is_low_rank(i, j):
            return plan.rank_of(i, j)
        return plan.layout.tile_size
    if plan.is_low_rank(i, j):
        return plan.meta.get("ranks", {}).get((i, j), plan.layout.tile_size // 2)
    return plan.layout.tile_size


def shape_for_task(task: Task, layout: TileLayout, plan) -> TaskShape:
    """Geometric :class:`TaskShape` of a task under a tile plan."""
    b = layout.tile_size
    i, j = task.output
    if j < 0:
        # Solve tasks: treat RHS updates as width-1 dense kernels.
        return TaskShape(task.op if task.op in ("trsm", "gemm") else "gemm", b)
    precision = plan.precision_of(i, j)
    out_lr = plan.is_low_rank(i, j)
    if task.op == "potrf":
        return TaskShape("potrf", b, precision)
    if task.op == "trsm":
        ranks = (plan_rank_of(plan, i, j),) if out_lr else ()
        return TaskShape("trsm", b, precision, low_rank=out_lr, ranks=ranks)
    if task.op == "syrk":
        (amk,) = task.inputs
        in_lr = plan.is_low_rank(*amk)
        ranks = (plan_rank_of(plan, *amk),) if in_lr else ()
        return TaskShape("syrk", b, precision, low_rank=False, ranks=ranks)
    # gemm
    amk, ank = task.inputs
    ra = plan_rank_of(plan, *amk)
    rb = plan_rank_of(plan, *ank)
    rc = plan_rank_of(plan, i, j)
    if out_lr:
        return TaskShape("gemm", b, precision, low_rank=True, ranks=(ra, rb, rc))
    lr_inputs = [
        r
        for r, key in ((ra, amk), (rb, ank))
        if plan.is_low_rank(*key)
    ]
    return TaskShape("gemm", b, precision, ranks=tuple(lr_inputs))


@dataclass
class SimConfig:
    """Simulation parameters."""

    machine: MachineSpec = A64FX
    nodes: int = 1
    cores_per_node: int | None = None
    grid: BlockCyclic2D | None = None
    shgemm_mode: str = "sgemm_fallback"
    priority: str = "upward"  # or "panel"
    model_comm: bool = True
    faults: FaultModel | None = None
    checkpoint: CheckpointConfig | None = None
    extras: dict = field(default_factory=dict)

    def resolved_grid(self) -> BlockCyclic2D:
        return self.grid or BlockCyclic2D.squarest(self.nodes)

    def resolved_cores(self) -> int:
        return self.cores_per_node or self.machine.cores_per_node


def _wire_bytes(plan, layout: TileLayout, key: tuple[int, int]) -> int:
    i, j = key
    if j < 0:
        return tile_wire_bytes(layout, key, Precision.FP64)
    return tile_wire_bytes(
        layout,
        key,
        plan.precision_of(i, j),
        low_rank=plan.is_low_rank(i, j),
        rank=plan_rank_of(plan, i, j),
    )


def simulate_tasks(
    tasks: list[Task],
    layout: TileLayout,
    plan,
    config: SimConfig,
    *,
    dag: nx.DiGraph | None = None,
    validate_plan: bool = False,
) -> ExecutionTrace:
    """List-schedule the DAG on the simulated machine; returns a trace
    whose records carry simulated times, modeled flops and comm bytes.

    With ``validate_plan=True`` the static verifiers
    (:mod:`repro.analysis`) check the task stream + DAG for dependence
    hazards and — when ``plan`` is a real
    :class:`~repro.tile.decisions.TilePlan` — the plan against the
    paper invariants, raising
    :class:`~repro.exceptions.PlanValidationError` on error-severity
    findings before any simulated time is spent.
    """
    if dag is None:
        dag = build_dag(tasks)
    if validate_plan:
        # Imported lazily: repro.analysis imports the runtime layer.
        from ..analysis.dagcheck import check_taskgraph
        from ..analysis.plancheck import check_plan
        from ..exceptions import PlanValidationError

        report = check_taskgraph(tasks, dag, layout=layout)
        if hasattr(plan, "precisions"):
            report.extend(check_plan(
                plan,
                machine=config.machine,
                nodes=config.nodes,
                faults=config.faults,
                checkpoint=config.checkpoint,
            ))
        if not report.ok:
            raise PlanValidationError(
                "static task-graph/plan verification failed: "
                + "; ".join(d.render() for d in report.errors),
                report=report,
            )
    machine = config.machine
    grid = config.resolved_grid()
    if grid.nodes != config.nodes:
        raise SchedulingError(
            f"grid {grid.p}x{grid.q} does not match node count {config.nodes}"
        )
    cores = config.resolved_cores()

    shapes: dict[int, TaskShape] = {}
    durations: dict[int, float] = {}
    for t in tasks:
        shape = shape_for_task(t, layout, plan)
        shapes[t.uid] = shape
        durations[t.uid] = task_time(shape, machine, shgemm_mode=config.shgemm_mode)

    if not nx.is_directed_acyclic_graph(dag):
        raise SchedulingError("task graph contains a cycle")
    if config.priority == "upward":
        prio = upward_ranks(dag, durations)
    elif config.priority == "panel":
        prio = panel_priorities(dag)
    else:
        raise SchedulingError(f"unknown priority {config.priority!r}")

    task_by_uid = {t.uid: t for t in tasks}
    indegree = {uid: dag.in_degree(uid) for uid in dag.nodes}
    ready: list[tuple[float, int]] = [
        (-prio[uid], uid) for uid, deg in indegree.items() if deg == 0
    ]
    heapq.heapify(ready)

    # Per-node min-heaps of (available_time, core_index): popping yields
    # the earliest-free core *and* its identity for the trace record.
    core_free: list[list[tuple[float, int]]] = [
        [(0.0, c) for c in range(cores)] for _ in range(config.nodes)
    ]
    for heap in core_free:
        heapq.heapify(heap)
    finish: dict[int, float] = {}
    node_of: dict[int, int] = {}
    trace = ExecutionTrace(nodes=config.nodes, cores_per_node=cores)

    faults = config.faults
    checkpoint = config.checkpoint
    resilient = faults is not None or checkpoint is not None
    if faults is not None and faults.restart_s >= faults.node_mtbf_s:
        # A node expects to crash again before its restart completes:
        # the simulated run would (correctly, but uselessly) never end.
        raise ConfigurationError(
            f"restart_s ({faults.restart_s:g}) >= node_mtbf_s "
            f"({faults.node_mtbf_s:g}): recovery can never outpace failures"
        )
    if resilient:
        crash_streams = (
            [faults.crash_times(n) for n in range(config.nodes)]
            if faults is not None
            else None
        )
        next_crash = [
            crash_streams[n].next_after(0.0) if crash_streams else math.inf
            for n in range(config.nodes)
        ]
        next_ckpt = [
            checkpoint.interval_s if checkpoint is not None else math.inf
        ] * config.nodes
        work_since = [0.0] * config.nodes  # volatile compute since durable state
        synth_uid = -1  # synthetic uids for checkpoint/recovery records

    scheduled = 0
    while ready:
        _, uid = heapq.heappop(ready)
        task = task_by_uid[uid]
        node = grid.owner(*task.output)
        comm_bytes = 0.0
        cast_bytes = 0.0
        conversions = 0
        est = 0.0
        for pred in dag.predecessors(uid):
            ready_at = finish[pred]
            if config.model_comm and node_of[pred] != node:
                pred_out = task_by_uid[pred].output
                nbytes = _wire_bytes(plan, layout, pred_out)
                ready_at += machine.comm_time(nbytes)
                comm_bytes += nbytes
                if (
                    pred_out[1] >= 0
                    and task.output[1] >= 0
                    and plan.precision_of(*pred_out)
                    is not plan.precision_of(*task.output)
                ):
                    conversions += 1
                    cast_bytes += nbytes
            est = max(est, ready_at)
        heap = core_free[node]
        core_available, core = heapq.heappop(heap)
        start = max(est, core_available)
        duration = durations[uid]
        if config.model_comm and cast_bytes:
            # Receiver-side cast: one bandwidth-bound pass over each
            # converted predecessor's wire bytes.
            duration += cast_bytes / machine.core_mem_bw()
        attempts = 1
        if faults is not None and faults.transient_prob > 0.0:
            wasted = faults.task_waste_fractions(uid)
            attempts += len(wasted)
            duration *= 1.0 + sum(wasted)
        if resilient:
            start, extra, events = _apply_node_events(
                node, start, duration,
                next_crash, next_ckpt, work_since,
                crash_streams, faults, checkpoint,
            )
            # Volatile work to re-execute on a later crash: the compute
            # time, not the checkpoint stalls folded into `extra`.
            work_since[node] += duration
            duration += extra
            for ev_kind, ev_op, ev_start, ev_end in events:
                synth_uid -= 1
                trace.add(
                    TaskRecord(
                        uid=synth_uid, op=ev_op, node=node, core=core,
                        start=ev_start, end=ev_end, kind=ev_kind,
                    )
                )
                if ev_kind == "recovery":
                    # The whole node stalls until recovery completes.
                    rebumped = [
                        (max(t, ev_end), c) for t, c in core_free[node]
                    ]
                    heapq.heapify(rebumped)
                    core_free[node] = rebumped
                    heap = core_free[node]
        end = start + duration
        heapq.heappush(heap, (end, core))
        finish[uid] = end
        node_of[uid] = node
        trace.add(
            TaskRecord(
                uid=uid,
                op=task.op,
                node=node,
                core=core,
                start=start,
                end=end,
                flops=task_flops(shapes[uid]),
                comm_bytes=comm_bytes,
                conversions=conversions,
                attempts=attempts,
            )
        )
        scheduled += 1
        for succ in dag.successors(uid):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, (-prio[succ], succ))

    if scheduled != dag.number_of_nodes():
        raise SchedulingError(
            f"only {scheduled}/{dag.number_of_nodes()} tasks were scheduled "
            "(dependence cycle?)"
        )
    return trace


def _apply_node_events(
    node: int,
    start: float,
    duration: float,
    next_crash: list[float],
    next_ckpt: list[float],
    work_since: list[float],
    crash_streams,
    faults: FaultModel | None,
    checkpoint: CheckpointConfig | None,
) -> tuple[float, float, list[tuple[str, str, float, float]]]:
    """Process checkpoint/crash events of ``node`` that occur before the
    task tentatively placed at ``[start, start + duration)`` completes.

    Returns the adjusted start, extra mid-task stall time, and the
    resilience trace events as ``(kind, op, start, end)`` tuples.
    Mutates the per-node ``next_crash``/``next_ckpt``/``work_since``
    state in place (events are consumed exactly once, in time order).
    """
    extra = 0.0
    events: list[tuple[str, str, float, float]] = []
    while True:
        end = start + duration + extra
        t_crash = next_crash[node]
        t_ckpt = next_ckpt[node]
        if min(t_crash, t_ckpt) >= end:
            return start, extra, events
        if t_crash <= t_ckpt:
            # Node crash: restart, then re-execute volatile work.  The
            # in-flight task's partial progress is lost too.
            assert faults is not None and crash_streams is not None
            tc = t_crash
            lost = work_since[node] + max(0.0, tc - start)
            rec_end = tc + faults.restart_s + lost
            events.append(("recovery", "recover", tc, rec_end))
            # Re-executed work is volatile again until the next
            # checkpoint; the current task restarts from scratch.
            work_since[node] = lost
            start = rec_end if tc >= start else max(start, rec_end)
            extra = 0.0
            next_crash[node] = crash_streams[node].next_after(tc)
            if checkpoint is not None:
                while next_ckpt[node] <= rec_end:
                    next_ckpt[node] += checkpoint.interval_s
        else:
            # Coordinated checkpoint epoch: pay the write cost, durable
            # state advances (input tiles of the in-flight task are
            # saved; its partial progress is not).
            assert checkpoint is not None
            c = t_ckpt
            events.append(("checkpoint", "ckpt", c, c + checkpoint.cost_s))
            if c <= start:
                start = max(start, c + checkpoint.cost_s)
            else:
                extra += checkpoint.cost_s
            work_since[node] = 0.0
            next_ckpt[node] += checkpoint.interval_s
