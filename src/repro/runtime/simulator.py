"""Discrete-event simulation of the distributed runtime.

The simulator executes the *real* task DAG on ``P`` simulated nodes
with ``C`` cores each, 2-D block-cyclic ownership ("owner computes"),
per-task durations from the roofline kernel model, and communication
charged per remote input tile in its wire representation (structure +
storage precision, converted at the receiver).  This is the documented
substitution for Fugaku: identical DAG, modeled hardware.

Scheduling is priority list scheduling (upward rank by default), which
is how PaRSEC's locality-aware heuristics behave to first order.  The
resulting schedule is validated against the DAG by the test suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import networkx as nx

from ..exceptions import SchedulingError
from ..perfmodel.kernelmodel import TaskShape, task_flops, task_time
from ..perfmodel.machine import A64FX, MachineSpec
from ..tile.layout import TileLayout
from ..tile.precision import Precision
from .comm import tile_wire_bytes
from .dag import build_dag
from .distribution import BlockCyclic2D
from .scheduler import panel_priorities, upward_ranks
from .task import Task
from .trace import ExecutionTrace, TaskRecord

__all__ = ["SimConfig", "shape_for_task", "plan_rank_of", "simulate_tasks"]


def plan_rank_of(plan, i: int, j: int) -> int:
    """Rank of tile ``(i, j)`` under a plan: its compression rank when
    low-rank, else the (dense) tile size."""
    if hasattr(plan, "rank_of"):
        if plan.is_low_rank(i, j):
            return plan.rank_of(i, j)
        return plan.layout.tile_size
    if plan.is_low_rank(i, j):
        return plan.meta.get("ranks", {}).get((i, j), plan.layout.tile_size // 2)
    return plan.layout.tile_size


def shape_for_task(task: Task, layout: TileLayout, plan) -> TaskShape:
    """Geometric :class:`TaskShape` of a task under a tile plan."""
    b = layout.tile_size
    i, j = task.output
    if j < 0:
        # Solve tasks: treat RHS updates as width-1 dense kernels.
        return TaskShape(task.op if task.op in ("trsm", "gemm") else "gemm", b)
    precision = plan.precision_of(i, j)
    out_lr = plan.is_low_rank(i, j)
    if task.op == "potrf":
        return TaskShape("potrf", b, precision)
    if task.op == "trsm":
        ranks = (plan_rank_of(plan, i, j),) if out_lr else ()
        return TaskShape("trsm", b, precision, low_rank=out_lr, ranks=ranks)
    if task.op == "syrk":
        (amk,) = task.inputs
        in_lr = plan.is_low_rank(*amk)
        ranks = (plan_rank_of(plan, *amk),) if in_lr else ()
        return TaskShape("syrk", b, precision, low_rank=False, ranks=ranks)
    # gemm
    amk, ank = task.inputs
    ra = plan_rank_of(plan, *amk)
    rb = plan_rank_of(plan, *ank)
    rc = plan_rank_of(plan, i, j)
    if out_lr:
        return TaskShape("gemm", b, precision, low_rank=True, ranks=(ra, rb, rc))
    lr_inputs = [
        r
        for r, key in ((ra, amk), (rb, ank))
        if plan.is_low_rank(*key)
    ]
    return TaskShape("gemm", b, precision, ranks=tuple(lr_inputs))


@dataclass
class SimConfig:
    """Simulation parameters."""

    machine: MachineSpec = A64FX
    nodes: int = 1
    cores_per_node: int | None = None
    grid: BlockCyclic2D | None = None
    shgemm_mode: str = "sgemm_fallback"
    priority: str = "upward"  # or "panel"
    model_comm: bool = True
    extras: dict = field(default_factory=dict)

    def resolved_grid(self) -> BlockCyclic2D:
        return self.grid or BlockCyclic2D.squarest(self.nodes)

    def resolved_cores(self) -> int:
        return self.cores_per_node or self.machine.cores_per_node


def _wire_bytes(plan, layout: TileLayout, key: tuple[int, int]) -> int:
    i, j = key
    if j < 0:
        return tile_wire_bytes(layout, key, Precision.FP64)
    return tile_wire_bytes(
        layout,
        key,
        plan.precision_of(i, j),
        low_rank=plan.is_low_rank(i, j),
        rank=plan_rank_of(plan, i, j),
    )


def simulate_tasks(
    tasks: list[Task],
    layout: TileLayout,
    plan,
    config: SimConfig,
    *,
    dag: nx.DiGraph | None = None,
) -> ExecutionTrace:
    """List-schedule the DAG on the simulated machine; returns a trace
    whose records carry simulated times, modeled flops and comm bytes.
    """
    if dag is None:
        dag = build_dag(tasks)
    machine = config.machine
    grid = config.resolved_grid()
    if grid.nodes != config.nodes:
        raise SchedulingError(
            f"grid {grid.p}x{grid.q} does not match node count {config.nodes}"
        )
    cores = config.resolved_cores()

    shapes: dict[int, TaskShape] = {}
    durations: dict[int, float] = {}
    for t in tasks:
        shape = shape_for_task(t, layout, plan)
        shapes[t.uid] = shape
        durations[t.uid] = task_time(shape, machine, shgemm_mode=config.shgemm_mode)

    if not nx.is_directed_acyclic_graph(dag):
        raise SchedulingError("task graph contains a cycle")
    if config.priority == "upward":
        prio = upward_ranks(dag, durations)
    elif config.priority == "panel":
        prio = panel_priorities(dag)
    else:
        raise SchedulingError(f"unknown priority {config.priority!r}")

    task_by_uid = {t.uid: t for t in tasks}
    indegree = {uid: dag.in_degree(uid) for uid in dag.nodes}
    ready: list[tuple[float, int]] = [
        (-prio[uid], uid) for uid, deg in indegree.items() if deg == 0
    ]
    heapq.heapify(ready)

    core_free: list[list[float]] = [[0.0] * cores for _ in range(config.nodes)]
    for heap in core_free:
        heapq.heapify(heap)
    finish: dict[int, float] = {}
    node_of: dict[int, int] = {}
    trace = ExecutionTrace(nodes=config.nodes, cores_per_node=cores)

    scheduled = 0
    while ready:
        _, uid = heapq.heappop(ready)
        task = task_by_uid[uid]
        node = grid.owner(*task.output)
        comm_bytes = 0.0
        conversions = 0
        est = 0.0
        for pred in dag.predecessors(uid):
            ready_at = finish[pred]
            if config.model_comm and node_of[pred] != node:
                pred_out = task_by_uid[pred].output
                nbytes = _wire_bytes(plan, layout, pred_out)
                ready_at += machine.comm_time(nbytes)
                comm_bytes += nbytes
                if pred_out[1] >= 0 and task.output[1] >= 0:
                    conversions += int(
                        plan.precision_of(*pred_out)
                        is not plan.precision_of(*task.output)
                    )
            est = max(est, ready_at)
        heap = core_free[node]
        core_available = heapq.heappop(heap)
        start = max(est, core_available)
        duration = durations[uid]
        if config.model_comm and conversions:
            # Receiver-side cast: one bandwidth-bound pass over the data.
            duration += conversions * (
                comm_bytes / machine.core_mem_bw() if comm_bytes else 0.0
            )
        end = start + duration
        heapq.heappush(heap, end)
        finish[uid] = end
        node_of[uid] = node
        trace.add(
            TaskRecord(
                uid=uid,
                op=task.op,
                node=node,
                core=0,
                start=start,
                end=end,
                flops=task_flops(shapes[uid]),
                comm_bytes=comm_bytes,
                conversions=conversions,
            )
        )
        scheduled += 1
        for succ in dag.successors(uid):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, (-prio[succ], succ))

    if scheduled != dag.number_of_nodes():
        raise SchedulingError(
            f"only {scheduled}/{dag.number_of_nodes()} tasks were scheduled "
            "(dependence cycle?)"
        )
    return trace
