"""Dataflow dependence analysis: sequential task stream -> DAG.

Given tasks in their sequential reference order, the analysis derives
the exact parallelism a superscalar task runtime discovers:

* RAW — a read depends on the last writer of that tile;
* WAW — a write depends on the previous writer;
* WAR — a write depends on every reader since the previous write.

The result is a :class:`networkx.DiGraph` whose nodes are task uids.
Helpers compute the critical path under a per-task duration map and
validate that a schedule respects every edge — the property tests of
the runtime hang off these.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx

from ..exceptions import SchedulingError
from .task import Task

__all__ = ["build_dag", "critical_path_length", "validate_schedule"]


def build_dag(tasks: Sequence[Task]) -> nx.DiGraph:
    """Dependence DAG of a sequential task stream.

    Nodes carry the task object under the ``"task"`` attribute.
    Transitively implied edges are *not* removed (the schedulers only
    need correctness, and reduction costs O(V E)).
    """
    dag = nx.DiGraph()
    last_writer: dict[tuple[int, int], int] = {}
    readers_since_write: dict[tuple[int, int], list[int]] = {}
    for task in tasks:
        if dag.has_node(task.uid):
            raise SchedulingError(f"duplicate task uid {task.uid}")
        dag.add_node(task.uid, task=task)
        deps: set[int] = set()
        # RAW for each input (the output is read-modify-write: RAW+WAW).
        for tile in task.tiles:
            if tile in last_writer:
                deps.add(last_writer[tile])
        # WAR on the output tile.
        for reader in readers_since_write.get(task.output, ()):
            deps.add(reader)
        deps.discard(task.uid)
        for dep in deps:
            dag.add_edge(dep, task.uid)
        # Update bookkeeping: this task writes `output`, reads `inputs`.
        last_writer[task.output] = task.uid
        readers_since_write[task.output] = []
        for tile in task.inputs:
            readers_since_write.setdefault(tile, []).append(task.uid)
    if not nx.is_directed_acyclic_graph(dag):  # pragma: no cover - invariant
        raise SchedulingError("dependence analysis produced a cycle")
    return dag


def critical_path_length(
    dag: nx.DiGraph, durations: dict[int, float]
) -> float:
    """Length of the longest path weighting each node by its duration
    (edges are free) — the makespan lower bound on infinite resources."""
    finish: dict[int, float] = {}
    for uid in nx.topological_sort(dag):
        est = max((finish[p] for p in dag.predecessors(uid)), default=0.0)
        finish[uid] = est + durations[uid]
    return max(finish.values(), default=0.0)


def validate_schedule(
    dag: nx.DiGraph,
    start: dict[int, float],
    end: dict[int, float],
    *,
    eps: float = 1.0e-12,
) -> None:
    """Raise :class:`~repro.exceptions.SchedulingError` unless every
    task starts after all its predecessors ended and every task in the
    DAG was scheduled."""
    missing = [uid for uid in dag.nodes if uid not in start or uid not in end]
    if missing:
        raise SchedulingError(f"{len(missing)} tasks were never scheduled")
    for u, v in dag.edges:
        if start[v] + eps < end[u]:
            raise SchedulingError(
                f"task {v} starts at {start[v]} before dependency {u} "
                f"ends at {end[u]}"
            )


def topological_tasks(dag: nx.DiGraph) -> Iterable[Task]:
    """Tasks in one valid topological order."""
    for uid in nx.topological_sort(dag):
        yield dag.nodes[uid]["task"]
