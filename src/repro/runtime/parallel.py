"""Threaded parallel execution engine.

The discrete-event simulator predicts schedules; this engine *runs*
them: a worker pool consumes ready tasks from a priority queue,
dependence counters release successors as results land, and each tile
kernel executes for real.  NumPy/BLAS releases the GIL inside the
heavy kernels, so on a multi-core host the DAG parallelism is genuine
— a working single-node analogue of PaRSEC's shared-memory scheduling.

Determinism note: tiles are replaced atomically under a lock and the
dependence structure serializes conflicting accesses, so results are
bit-identical to the sequential engine for dense FP64 and
representation-identical for approximate variants.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
import time

import networkx as nx

from ..exceptions import SchedulingError
from ..tile import kernels as K
from ..tile.cholesky import CholeskyStats
from ..tile.matrix import TileMatrix
from .dag import build_dag
from .scheduler import panel_priorities
from .task import Task

__all__ = ["ParallelRunReport", "execute_cholesky_parallel"]


@dataclass
class ParallelRunReport:
    """Outcome of a threaded run."""

    workers: int
    tasks: int
    wall_time_s: float
    max_concurrency: int = 1
    errors: list[str] = field(default_factory=list)
    #: Kernel counts / densification tallies of the run, matching what
    #: the sequential :func:`~repro.tile.cholesky.tile_cholesky` reports.
    stats: CholeskyStats = field(default_factory=CholeskyStats)


def execute_cholesky_parallel(
    matrix: TileMatrix,
    *,
    workers: int = 4,
    tile_tol: float = 0.0,
    max_rank: int | None = None,
    fp16_accumulate_fp32: bool = True,
    tasks: list[Task] | None = None,
    dag: nx.DiGraph | None = None,
) -> tuple[TileMatrix, ParallelRunReport]:
    """Factor ``matrix`` in place using a thread pool over the task DAG.

    Raises :class:`~repro.exceptions.SchedulingError` if any task
    failed (the first underlying exception is chained).
    """
    if workers < 1:
        raise SchedulingError("need at least one worker")
    if tasks is None:
        from .taskgraph import cholesky_tasks

        tasks = list(cholesky_tasks(matrix.nt))
    if dag is None:
        dag = build_dag(tasks)
    task_by_uid = {t.uid: t for t in tasks}
    prio = panel_priorities(dag)

    lock = threading.Lock()
    indegree = {uid: dag.in_degree(uid) for uid in dag.nodes}
    ready: list[tuple[float, int]] = [
        (-prio[uid], uid) for uid, deg in indegree.items() if deg == 0
    ]
    heapq.heapify(ready)
    remaining = len(tasks)
    done = threading.Condition(lock)
    errors: list[BaseException] = []
    running = 0
    max_running = 0

    stats = CholeskyStats()

    def run_task(task: Task) -> None:
        if task.op == "potrf":
            out = K.potrf(matrix.get(*task.output), index=task.output)
        elif task.op == "trsm":
            (lkk,) = task.inputs
            out = K.trsm(
                matrix.get(*lkk), matrix.get(*task.output),
                fp16_accumulate_fp32=fp16_accumulate_fp32,
            )
        elif task.op == "syrk":
            (amk,) = task.inputs
            out = K.syrk(
                matrix.get(*amk), matrix.get(*task.output),
                fp16_accumulate_fp32=fp16_accumulate_fp32,
            )
        else:
            amk, ank = task.inputs
            was_lr = matrix.get(*task.output).is_low_rank
            out = K.gemm(
                matrix.get(*amk), matrix.get(*ank),
                matrix.get(*task.output),
                tol=tile_tol, max_rank=max_rank,
                fp16_accumulate_fp32=fp16_accumulate_fp32,
            )
            with lock:
                if was_lr and not out.is_low_rank:
                    stats.densified_tiles += 1
                if out.is_low_rank:
                    stats.max_rank_seen = max(stats.max_rank_seen, out.rank)
        matrix.set(*task.output, out)
        with lock:
            stats.count(task.op)

    def worker_loop() -> None:
        nonlocal remaining, running, max_running
        while True:
            with done:
                while not ready and remaining > 0 and not errors:
                    done.wait()
                if remaining == 0 or errors:
                    done.notify_all()
                    return
                _, uid = heapq.heappop(ready)
                running += 1
                max_running = max(max_running, running)
            task = task_by_uid[uid]
            try:
                run_task(task)
            except BaseException as exc:  # propagate to the caller
                with done:
                    errors.append(exc)
                    running -= 1
                    done.notify_all()
                return
            with done:
                running -= 1
                remaining -= 1
                for succ in dag.successors(uid):
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        heapq.heappush(ready, (-prio[succ], succ))
                done.notify_all()

    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(worker_loop) for _ in range(workers)]
        for f in futures:
            f.result()
    wall = time.perf_counter() - t0

    if errors:
        raise SchedulingError(
            f"parallel execution failed: {errors[0]!r}"
        ) from errors[0]
    if remaining != 0:  # pragma: no cover - invariant
        raise SchedulingError(f"{remaining} tasks never executed")
    report = ParallelRunReport(
        workers=workers,
        tasks=len(tasks),
        wall_time_s=wall,
        max_concurrency=max_running,
        stats=stats,
    )
    return matrix, report
