"""Threaded parallel execution engine.

The discrete-event simulator predicts schedules; this engine *runs*
them: a worker pool consumes ready tasks from a priority queue,
dependence counters release successors as results land, and each tile
kernel executes for real.  NumPy/BLAS releases the GIL inside the
heavy kernels, so on a multi-core host the DAG parallelism is genuine
— a working single-node analogue of PaRSEC's shared-memory scheduling.

Determinism note: tiles are replaced atomically under a lock and the
dependence structure serializes conflicting accesses, so results are
bit-identical to the sequential engine for dense FP64 and
representation-identical for approximate variants.

Resilience (all opt-in, no-op when the knobs are ``None``):

* any worker failure — a kernel exception *or* a dispatch bug —
  records the first error, poisons the queue through a
  :class:`~repro.resilience.deadline.CancellationToken`, wakes every
  waiter, and lets the pool drain; the caller gets one exception and
  zero leaked threads instead of a deadlock;
* a ``deadline`` (or external ``cancel`` token) is polled at every
  dispatch boundary: in-flight kernels finish, nothing new starts,
  and :class:`~repro.exceptions.DeadlineExceededError` surfaces after
  the join;
* a ``retry`` policy re-runs transiently failing tasks (injected
  chaos, non-finite kernel output) with seeded backoff before the
  failure escalates;
* a ``chaos`` injector corrupts/delays/fails tasks deterministically
  per ``(seed, epoch, uid, attempt)`` — thread-schedule independent.
"""

from __future__ import annotations

import heapq
import threading
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
import time

import networkx as nx
import numpy as np

from ..exceptions import (
    DeadlineExceededError,
    NumericalCorruptionError,
    SchedulingError,
)
from ..obs.tracer import current_span_id
from ..tile import kernels as K
from ..tile.cholesky import CholeskyStats
from ..tile.matrix import TileMatrix
from ..tile.tile import LowRankTile, Tile
from .blasclamp import clamp_blas_threads
from .comm import CommStats
from .scheduler import panel_priorities
from .task import Task
from .trace import ExecutionTrace, TaskRecord

__all__ = ["ParallelRunReport", "execute_cholesky_parallel"]


def _make_lock():
    """Executor-internal lock constructor.

    The concurrency sanitizer (:mod:`repro.analysis.sanitize`)
    monkeypatches this seam to observe the dispatch lock's
    acquire/release edges; the plain path pays one extra call per run.
    """
    return threading.Lock()


@dataclass
class ParallelRunReport:
    """Outcome of a threaded run."""

    workers: int
    tasks: int
    wall_time_s: float
    max_concurrency: int = 1
    errors: list[str] = field(default_factory=list)
    #: Kernel counts / densification tallies of the run, matching what
    #: the sequential :func:`~repro.tile.cholesky.tile_cholesky` reports.
    stats: CholeskyStats = field(default_factory=CholeskyStats)
    #: Transient task failures absorbed by the retry policy.
    retries: int = 0
    #: Chaos injections that fired during this run (0 without chaos).
    chaos_events: int = 0
    #: Homogeneous groups executed as single stacked-BLAS calls (only
    #: non-zero for :func:`~repro.runtime.batchdispatch.execute_cholesky_batched`).
    batches: int = 0
    #: Tasks that ran inside a batched group.
    batched_tasks: int = 0
    #: Tasks that fell back to the per-tile kernels (low-rank or
    #: otherwise non-batchable groups).
    fallback_tasks: int = 0
    #: Per-worker BLAS thread clamp applied for this run (``None`` when
    #: no clamp was needed — a single worker keeps the library default).
    blas_clamp: int | None = None
    #: Measured cross-owner tile traffic (process backend only).
    comm: CommStats | None = None
    #: Real wall-clock task timeline (monotonic start/end relative to
    #: run start, ``node``/``core`` = worker slot) — same shape the
    #: simulator emits, so :func:`repro.runtime.gantt.render_gantt`
    #: renders real runs too.  Only populated when tracing was
    #: requested; ``None`` keeps the untraced path free.
    trace: "ExecutionTrace | None" = None


def _tile_is_finite(tile: Tile) -> bool:
    """Cheap non-finite scan of a task's output representation."""
    if isinstance(tile, LowRankTile):
        return bool(
            np.isfinite(tile.u).all() and np.isfinite(tile.v).all()
        )
    return bool(np.isfinite(tile.data).all())


def execute_cholesky_parallel(
    matrix: TileMatrix,
    *,
    workers: int = 4,
    tile_tol: float = 0.0,
    max_rank: int | None = None,
    fp16_accumulate_fp32: bool = True,
    tasks: list[Task] | None = None,
    dag: nx.DiGraph | None = None,
    deadline=None,
    cancel=None,
    retry=None,
    chaos=None,
    check_finite: bool | None = None,
    telemetry=None,
    collect_trace: bool | None = None,
) -> tuple[TileMatrix, ParallelRunReport]:
    """Factor ``matrix`` in place using a thread pool over the task DAG.

    Raises :class:`~repro.exceptions.SchedulingError` if any task
    failed (the first underlying exception is chained), or
    :class:`~repro.exceptions.DeadlineExceededError` directly when the
    ``deadline`` expired / the ``cancel`` token was cancelled — in
    both cases only after every worker has returned.

    ``retry`` (a :class:`~repro.resilience.retry.RetryPolicy`) retries
    transiently failing tasks; ``chaos`` (a
    :class:`~repro.resilience.chaos.ChaosConfig` or
    :class:`~repro.resilience.chaos.ChaosInjector`) opts into seeded
    fault injection.  ``check_finite`` scans each task's output for
    NaN/inf, raising :class:`~repro.exceptions.NumericalCorruptionError`
    (default: enabled exactly when ``retry`` or ``chaos`` is set, so
    the plain path pays nothing).

    ``telemetry`` (a :class:`~repro.obs.Telemetry`) records one span
    per executed task, parented to the caller's enclosing span;
    ``collect_trace`` forces the wall-clock
    :class:`~repro.runtime.trace.ExecutionTrace` on the report even
    without a telemetry bundle (default: collect exactly when an
    enabled telemetry is passed).  Tasks buffer their timing
    per-worker and flush once at worker exit, so the hot loop takes no
    extra locks; with both off, the execution path is unchanged.
    """
    if workers < 1:
        raise SchedulingError("need at least one worker")
    spans_on = telemetry is not None and telemetry.tracer.enabled
    tracing = spans_on if collect_trace is None else bool(collect_trace)
    tracing = tracing or spans_on
    parent_sid = current_span_id() if spans_on else None
    if tasks is None and dag is None:
        # The default path of every likelihood evaluation: dependence
        # structure AND priority map come from the lru-cached plan
        # (both are functions of nt alone — theta-independent), so one
        # MLE fit pays the analysis once, not once per evaluation.
        from .batchdispatch import _cholesky_plan

        cached_tasks, cached_indegree, successors, prio = _cholesky_plan(
            matrix.nt
        )
        tasks = list(cached_tasks)
        indegree = dict(cached_indegree)
    elif dag is not None:
        if tasks is None:
            from .taskgraph import cholesky_tasks

            tasks = list(cholesky_tasks(matrix.nt))
        indegree = {uid: dag.in_degree(uid) for uid in dag.nodes}
        successors = {uid: list(dag.successors(uid)) for uid in dag.nodes}
        prio = panel_priorities(dag)
    else:
        from .batchdispatch import _dependences
        from .scheduler import panel_priorities_tasks

        indegree, successors = _dependences(tuple(tasks))
        prio = panel_priorities_tasks(tasks)
    task_by_uid = {t.uid: t for t in tasks}

    if chaos is not None and not hasattr(chaos, "perturb_task"):
        from ..resilience.chaos import ChaosInjector

        chaos = ChaosInjector(chaos)
    epoch = chaos.next_epoch() if chaos is not None else 0
    if check_finite is None:
        check_finite = retry is not None or chaos is not None
    if cancel is None:
        from ..resilience.deadline import CancellationToken

        cancel = CancellationToken()

    lock = _make_lock()
    ready: list[tuple[float, int]] = [
        (-prio[uid], uid) for uid, deg in indegree.items() if deg == 0
    ]
    heapq.heapify(ready)
    remaining = len(tasks)
    done = threading.Condition(lock)
    errors: list[BaseException] = []
    running = 0
    max_running = 0
    retries = 0
    chaos_before = chaos.stats.events if chaos is not None else 0

    stats = CholeskyStats()

    def compute_task(task: Task, attempt: int) -> Tile:
        """One attempt at ``task``: chaos perturbation, the kernel,
        chaos corruption, and the finite check — but no state update,
        so a failed attempt is retryable."""
        if chaos is not None:
            chaos.perturb_task(epoch, task.uid, attempt)
        if task.op == "potrf":
            out = K.potrf(matrix.get(*task.output), index=task.output)
        elif task.op == "trsm":
            (lkk,) = task.inputs
            out = K.trsm(
                matrix.get(*lkk), matrix.get(*task.output),
                fp16_accumulate_fp32=fp16_accumulate_fp32,
            )
        elif task.op == "syrk":
            (amk,) = task.inputs
            out = K.syrk(
                matrix.get(*amk), matrix.get(*task.output),
                fp16_accumulate_fp32=fp16_accumulate_fp32,
            )
        else:
            amk, ank = task.inputs
            out = K.gemm(
                matrix.get(*amk), matrix.get(*ank),
                matrix.get(*task.output),
                tol=tile_tol, max_rank=max_rank,
                fp16_accumulate_fp32=fp16_accumulate_fp32,
            )
        if chaos is not None:
            out = chaos.corrupt_tile(out, epoch, task.uid, attempt)
        if check_finite and not _tile_is_finite(out):
            raise NumericalCorruptionError(
                f"task {task.op}@{task.output} produced non-finite "
                f"values (attempt {attempt})",
                tile_index=task.output,
            )
        return out

    def run_task(task: Task) -> int:
        nonlocal retries
        attempts = 1
        if retry is None:
            out = compute_task(task, 1)
        else:

            def note_retry(attempt: int, exc: BaseException) -> None:
                nonlocal retries, attempts
                attempts += 1
                with lock:
                    retries += 1
                    stats.retries += 1

            out = retry.call(
                lambda attempt: compute_task(task, attempt),
                site=task.uid, on_retry=note_retry,
            )
        if task.op == "gemm":
            was_lr = matrix.get(*task.output).is_low_rank
            with lock:
                if was_lr and not out.is_low_rank:
                    stats.densified_tiles += 1
                if out.is_low_rank:
                    stats.max_rank_seen = max(stats.max_rank_seen, out.rank)
        matrix.set(*task.output, out)
        return attempts

    # Flushed per-worker task timings: (uid, op, tile, slot, start_abs,
    # end_abs, attempts).  Absolute perf_counter values — the trace
    # rebases to t0 and the tracer keeps absolutes.
    timeline: list[tuple] = []

    def worker_loop(slot: int = 0) -> None:
        nonlocal remaining, running, max_running
        dispatched = False
        # Per-worker tally, flushed once under the lock at worker exit
        # (Counter bulk update instead of one locked dict write per
        # task).
        tally: Counter[str] = Counter()
        # Per-worker trace buffer, flushed with the tally — the hot
        # loop never touches a shared structure for telemetry.
        recs: list[tuple] = []
        try:
            while True:
                with done:
                    while (
                        ready or remaining > 0
                    ) and not errors and not cancel.cancelled:
                        if deadline is not None and deadline.expired:
                            cancel.cancel(
                                f"deadline of {deadline.budget_s:.3g}s "
                                "exceeded"
                            )
                            break
                        if ready:
                            break
                        if remaining == 0:
                            break
                        # Bounded wait so deadline expiry is noticed
                        # even when no task ever completes.
                        done.wait(
                            timeout=None if deadline is None
                            else max(min(deadline.remaining(), 0.05), 0.001)
                        )
                    if remaining == 0 or errors or cancel.cancelled:
                        done.notify_all()
                        return
                    _, uid = heapq.heappop(ready)
                    running += 1
                    dispatched = True
                    max_running = max(max_running, running)
                task = task_by_uid[uid]
                if tracing:
                    t_start = time.perf_counter()
                    attempts = run_task(task)
                    recs.append((
                        uid, task.op, task.output, slot, t_start,
                        time.perf_counter(), attempts,
                    ))
                else:
                    run_task(task)
                tally[task.op] += 1
                with done:
                    dispatched = False
                    running -= 1
                    remaining -= 1
                    for succ in successors[uid]:
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            heapq.heappush(ready, (-prio[succ], succ))
                    done.notify_all()
        except BaseException as exc:
            # Poison the queue: record the first error, wake every
            # waiter, stop all dispatching.  This covers kernel
            # failures AND dispatch bookkeeping bugs — either way the
            # pool drains instead of deadlocking on `done.wait()`.
            with done:
                errors.append(exc)
                if dispatched:
                    running -= 1
                cancel.cancel(f"worker failed: {exc!r}")
                done.notify_all()
        finally:
            if tally or recs:
                with lock:
                    stats.count_batch(tally)
                    timeline.extend(recs)

    t0 = time.perf_counter()
    # Oversubscription guard: each worker thread issues BLAS calls, so
    # the per-call BLAS thread count is clamped to cores/workers for
    # the duration of the pool (restored on exit, no-op at workers=1).
    with clamp_blas_threads(workers) as blas_clamp:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(worker_loop, slot) for slot in range(workers)
            ]
            for f in futures:
                f.result()
    wall = time.perf_counter() - t0

    if errors:
        first = errors[0]
        if isinstance(first, DeadlineExceededError):
            raise first
        raise SchedulingError(
            f"parallel execution failed: {first!r}"
        ) from first
    if cancel.cancelled:
        # Deadline expiry / external cancellation noticed at a
        # dispatch boundary: the pool has drained, no task raised.
        raise DeadlineExceededError(
            f"execution cancelled after {wall:.3g}s: {cancel.reason}",
            budget_s=None if deadline is None else deadline.budget_s,
            where="execute_cholesky_parallel",
        )
    if remaining != 0:  # pragma: no cover - invariant
        raise SchedulingError(f"{remaining} tasks never executed")
    trace_obj = None
    if tracing and timeline:
        timeline.sort(key=lambda r: r[4])
        trace_obj = ExecutionTrace(
            records=[
                TaskRecord(
                    uid=uid, op=op, node=slot, core=slot,
                    start=start - t0, end=end - t0, attempts=attempts,
                )
                for uid, op, _tile, slot, start, end, attempts in timeline
            ],
            nodes=workers, cores_per_node=1,
        )
        if spans_on:
            add_span = telemetry.tracer.add_span
            for uid, op, tile, slot, start, end, attempts in timeline:
                add_span(
                    op, start, end, parent=parent_sid, tid=slot,
                    attrs={"uid": uid, "tile": list(tile),
                           "worker": slot, "attempt": attempts},
                )
    report = ParallelRunReport(
        workers=workers,
        tasks=len(tasks),
        wall_time_s=wall,
        max_concurrency=max_running,
        stats=stats,
        retries=retries,
        chaos_events=(
            chaos.stats.events - chaos_before if chaos is not None else 0
        ),
        blas_clamp=blas_clamp,
        trace=trace_obj,
    )
    return matrix, report
