"""2-D block-cyclic tile-to-node ownership.

PaRSEC decouples data distribution from task code; the standard
distribution for tile Cholesky is the 2-D block cyclic map, which
bounds the panel-broadcast fan-out at ``p + q`` instead of ``P``.
Tasks execute on the node owning their output tile ("owner computes").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = ["BlockCyclic2D", "square_process_grid"]


def square_process_grid(nodes: int) -> tuple[int, int]:
    """The most square ``(p, q)`` factorization with ``p * q == nodes``
    and ``p <= q``."""
    if nodes < 1:
        raise ConfigurationError("node count must be positive")
    p = int(math.isqrt(nodes))
    while nodes % p:
        p -= 1
    return p, nodes // p


@dataclass(frozen=True)
class BlockCyclic2D:
    """Ownership map ``owner(i, j) = (i mod p) * q + (j mod q)``."""

    p: int
    q: int

    def __post_init__(self) -> None:
        if self.p < 1 or self.q < 1:
            raise ConfigurationError("process grid dimensions must be >= 1")

    @classmethod
    def squarest(cls, nodes: int) -> "BlockCyclic2D":
        return cls(*square_process_grid(nodes))

    @property
    def nodes(self) -> int:
        return self.p * self.q

    def owner(self, i: int, j: int) -> int:
        """Node rank owning tile ``(i, j)``.  RHS blocks ``(i, -1)``
        follow their row's cyclic owner in column 0."""
        jj = j if j >= 0 else 0
        return (i % self.p) * self.q + (jj % self.q)

    def tiles_of(self, node: int, nt: int) -> list[tuple[int, int]]:
        """Lower-triangle tiles owned by ``node``."""
        return [
            (i, j)
            for i in range(nt)
            for j in range(i + 1)
            if self.owner(i, j) == node
        ]

    def row_fanout(self) -> int:
        """Number of distinct owners in one tile row — the broadcast
        fan-out of a panel tile."""
        return self.q

    def col_fanout(self) -> int:
        return self.p
