"""Communication volume model with on-demand precision conversion.

PaRSEC's key data-movement feature in the paper is that a tile travels
in its *storage* representation (structure + precision) and is
converted at the receiver, so an FP16 tile costs a quarter of the FP64
bytes on the wire and a rank-``r`` tile ``r (m + n) / (m n)`` of its
dense footprint.  :func:`tile_wire_bytes` encodes exactly that and
feeds both the DAG simulator and the aggregate scaling estimator.
"""

from __future__ import annotations

from ..tile.decisions import TilePlan
from ..tile.layout import TileLayout
from ..tile.precision import Precision

__all__ = ["tile_wire_bytes", "plan_wire_bytes", "conversion_count"]


def tile_wire_bytes(
    layout: TileLayout,
    key: tuple[int, int],
    precision: Precision,
    *,
    low_rank: bool = False,
    rank: int = 0,
) -> int:
    """Bytes on the wire for one tile in its storage representation.

    RHS blocks ``(i, -1)`` are vectors of the block length in FP64.
    """
    i, j = key
    if j < 0:
        return 8 * layout.block_size(i)
    m, n = layout.tile_shape(i, j)
    if low_rank:
        return precision.itemsize * rank * (m + n)
    return precision.itemsize * m * n


def plan_wire_bytes(plan: TilePlan, key: tuple[int, int]) -> int:
    """Wire bytes of a planned tile (rank from the plan metadata)."""
    if key[1] < 0:
        return tile_wire_bytes(plan.layout, key, Precision.FP64)
    precision = plan.precisions[key]
    if plan.use_lr[key]:
        rank = plan.meta.get("ranks", {}).get(key, plan.layout.tile_size // 2)
        return tile_wire_bytes(
            plan.layout, key, precision, low_rank=True, rank=rank
        )
    return tile_wire_bytes(plan.layout, key, precision)


def conversion_count(
    sender_precision: Precision, receiver_precision: Precision
) -> int:
    """1 when the receiver must cast the payload, else 0 — the
    simulator charges a bandwidth-bound conversion pass for it."""
    return int(sender_precision is not receiver_precision)
