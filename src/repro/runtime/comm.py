"""Communication volume model with on-demand precision conversion.

PaRSEC's key data-movement feature in the paper is that a tile travels
in its *storage* representation (structure + precision) and is
converted at the receiver, so an FP16 tile costs a quarter of the FP64
bytes on the wire and a rank-``r`` tile ``r (m + n) / (m n)`` of its
dense footprint.  :func:`tile_wire_bytes` encodes exactly that and
feeds both the DAG simulator and the aggregate scaling estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tile.decisions import TilePlan
from ..tile.layout import TileLayout
from ..tile.precision import Precision

__all__ = [
    "CommStats",
    "tile_wire_bytes",
    "plan_wire_bytes",
    "conversion_count",
    "model_comm_volume",
]


@dataclass
class CommStats:
    """Tile traffic across owners under an owner-computes mapping.

    The process backend *measures* this (every input tile a worker
    reads from another rank's home is one remote read of the tile's
    current wire representation); :func:`model_comm_volume` *predicts*
    it from a tile plan.  For dense plans — where the representation
    the simulator assumes is the representation execution keeps — the
    two must match exactly (pinned by a golden check).
    """

    #: Input-tile reads whose owner differs from the executing rank.
    remote_reads: int = 0
    #: Bytes of those reads, in each tile's wire representation at
    #: read time (:func:`tile_wire_bytes`).
    remote_bytes: int = 0
    #: Input-tile reads satisfied by the executing rank's own tiles
    #: (zero-copy in the shared-memory store).
    local_reads: int = 0

    def add(self, other: "CommStats") -> None:
        self.remote_reads += other.remote_reads
        self.remote_bytes += other.remote_bytes
        self.local_reads += other.local_reads


def model_comm_volume(plan: TilePlan, grid, tasks) -> CommStats:
    """Predicted owner-computes traffic of a task stream.

    Each task executes on ``grid.owner(*task.output)``
    (:class:`~repro.runtime.distribution.BlockCyclic2D`); every input
    tile owned by a different rank is charged one remote read at the
    plan's wire representation (:func:`plan_wire_bytes`).  This is the
    simulator-side prediction the process backend's measured
    :class:`CommStats` is cross-checked against; the prediction is
    exact for plans whose representations execution never changes
    (dense variants), and diverges for TLR plans exactly where ranks
    drift from the planned ones.
    """
    out = CommStats()
    for task in tasks:
        rank = grid.owner(*task.output)
        for key in task.inputs:
            if grid.owner(*key) == rank:
                out.local_reads += 1
            else:
                out.remote_reads += 1
                out.remote_bytes += plan_wire_bytes(plan, key)
    return out


def tile_wire_bytes(
    layout: TileLayout,
    key: tuple[int, int],
    precision: Precision,
    *,
    low_rank: bool = False,
    rank: int = 0,
) -> int:
    """Bytes on the wire for one tile in its storage representation.

    RHS blocks ``(i, -1)`` are vectors of the block length in FP64.
    """
    i, j = key
    if j < 0:
        return 8 * layout.block_size(i)
    m, n = layout.tile_shape(i, j)
    if low_rank:
        return precision.itemsize * rank * (m + n)
    return precision.itemsize * m * n


def plan_wire_bytes(plan: TilePlan, key: tuple[int, int]) -> int:
    """Wire bytes of a planned tile (rank from the plan metadata)."""
    if key[1] < 0:
        return tile_wire_bytes(plan.layout, key, Precision.FP64)
    precision = plan.precisions[key]
    if plan.use_lr[key]:
        rank = plan.meta.get("ranks", {}).get(key, plan.layout.tile_size // 2)
        return tile_wire_bytes(
            plan.layout, key, precision, low_rank=True, rank=rank
        )
    return tile_wire_bytes(plan.layout, key, precision)


def conversion_count(
    sender_precision: Precision, receiver_precision: Precision
) -> int:
    """1 when the receiver must cast the payload, else 0 — the
    simulator charges a bandwidth-bound conversion pass for it."""
    return int(sender_precision is not receiver_precision)
