"""Homogeneous ready-set dispatch: wave-based batched DAG execution.

The heap executor (:mod:`repro.runtime.parallel`) pops one task at a
time and pays Python dispatch per tile.  This executor instead drains
the *entire ready set* each step — tasks that are simultaneously ready
share no DAG edge, so they are mutually independent — groups it by a
homogeneity key, and executes each group as **one** stacked BLAS call
from :mod:`repro.tile.batch`:

======  =============================================================
group   key
======  =============================================================
POTRF   ``("potrf", tile shape, precision)``
TRSM    ``("trsm", L index, tile shape, precision)`` — one wide-RHS
        solve needs a *shared* triangular factor, so the diagonal
        tile's index joins the key
SYRK    ``("syrk", A shape, precision of C)``
GEMM    ``("gemm", A shape, B shape, precision of C)``
======  =============================================================

A task joins a group only when every operand is dense and the group's
compute dtype is not binary16 (the emulated HGEMM mode); everything
else — low-rank TLR tiles, mixed structures after densification —
falls back to the per-tile kernels in deterministic uid order.

Determinism: waves are a function of the DAG alone, groups are built
in sorted-uid order, large groups are chunked by *slice* (stacked
gufuncs are slice-independent), and each tile's sequence of updates is
fully ordered by its DAG edges — so the accumulate order within every
tile matches the sequential reference exactly, and dense-FP64 results
are bit-identical to both other executors (pinned by tests).

This executor intentionally supports no deadlines, retry, or chaos —
:func:`~repro.core.likelihood._factor_planned` routes to the resilient
heap executor whenever those knobs are set.
"""

from __future__ import annotations

import os
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING

from ..exceptions import NotPositiveDefiniteError, SchedulingError
from ..obs.tracer import current_span_id
from ..tile import kernels as K
from ..tile.batch import (
    ScratchPool,
    batched_gemm,
    batched_potrf,
    batched_syrk,
    batched_trsm,
)
from ..tile.cholesky import CholeskyStats
from ..tile.matrix import TileMatrix
from ..tile.precision import Precision
from . import parallel as _parallel
from .blasclamp import clamp_blas_threads
from .parallel import ParallelRunReport
from .task import Task
from .trace import ExecutionTrace, TaskRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx as nx

__all__ = ["execute_cholesky_batched"]

#: Below this group size a stacked call buys nothing over the per-tile
#: kernel; singletons run through :mod:`repro.tile.kernels` directly.
_MIN_BATCH = 2


def _dependences(
    tasks: tuple[Task, ...],
) -> tuple[dict[int, int], dict[int, list[int]]]:
    """Indegrees and successor lists of a sequential task stream.

    Same RAW/WAW/WAR analysis as :func:`repro.runtime.dag.build_dag`,
    but producing plain dicts — the wave loop only ever needs these
    two, and a :class:`networkx.DiGraph` costs more to build than a
    whole factorization panel takes to run.
    """
    last_writer: dict[tuple[int, int], int] = {}
    readers_since_write: dict[tuple[int, int], list[int]] = {}
    indegree: dict[int, int] = {}
    successors: dict[int, list[int]] = {}
    for task in tasks:
        deps: set[int] = set()
        for tile in task.tiles:
            writer = last_writer.get(tile)
            if writer is not None:
                deps.add(writer)
        for reader in readers_since_write.get(task.output, ()):
            deps.add(reader)
        deps.discard(task.uid)
        successors[task.uid] = []
        indegree[task.uid] = len(deps)
        for dep in deps:
            successors[dep].append(task.uid)
        last_writer[task.output] = task.uid
        readers_since_write[task.output] = []
        for tile in task.inputs:
            readers_since_write.setdefault(tile, []).append(task.uid)
    return indegree, successors


@lru_cache(maxsize=8)
def _cholesky_plan(
    nt: int,
) -> tuple[
    tuple[Task, ...],
    dict[int, int],
    dict[int, list[int]],
    dict[int, float],
]:
    """Task stream + dependence structure + panel priorities for an
    ``nt x nt`` Cholesky.

    Everything here is a function of ``nt`` alone (theta-independent),
    so the evaluations of one MLE fit all share it; callers must *copy*
    the indegree dict before mutating (the successor lists and the
    priority map are read-only in the executors).
    """
    from .scheduler import panel_priorities_tasks
    from .taskgraph import cholesky_tasks

    tasks = tuple(cholesky_tasks(nt))
    indegree, successors = _dependences(tasks)
    return tasks, indegree, successors, panel_priorities_tasks(tasks)


@dataclass(frozen=True)
class _Group:
    """One homogeneous batch: the tasks and the batched kernel to run."""

    op: str
    tasks: tuple[Task, ...]


def _group_key(task: Task, tiles: dict[tuple[int, int], object], f16_ok: bool):
    """Homogeneity key for ``task``, or ``None`` when it must run
    per-tile (low-rank operand / binary16 compute / HGEMM mode)."""
    out = tiles[task.output]
    if out.is_low_rank:
        return None
    op = task.op
    if op == "potrf":
        # potrf always computes in compute_dtype(precision) (fp16 ->
        # f32), so it is always batchable when dense.
        return ("potrf", out.shape, out.precision)
    if not f16_ok and out.precision is Precision.FP16:
        # compute_dtype would be binary16: the emulated pure-HGEMM mode.
        return None
    a = tiles[task.inputs[0]]
    if a.is_low_rank:
        return None
    if op == "trsm":
        return ("trsm", task.inputs[0], out.shape, out.precision)
    if op == "syrk":
        return ("syrk", a.shape, a.precision, out.precision)
    b = tiles[task.inputs[1]]
    if b.is_low_rank:
        return None
    return ("gemm", a.shape, a.precision, b.shape, b.precision, out.precision)


def execute_cholesky_batched(
    matrix: TileMatrix,
    *,
    workers: int = 1,
    tile_tol: float = 0.0,
    max_rank: int | None = None,
    fp16_accumulate_fp32: bool = True,
    tasks: list[Task] | None = None,
    dag: nx.DiGraph | None = None,
    pool: ScratchPool | None = None,
    min_batch: int = _MIN_BATCH,
    clamp: bool = True,
    telemetry=None,
    collect_trace: bool | None = None,
) -> tuple[TileMatrix, ParallelRunReport]:
    """Factor ``matrix`` in place by draining the DAG in waves of
    homogeneous batched kernel calls.

    ``workers > 1`` chunks each wave's groups (and large groups by
    slice) across a thread pool; results are identical to ``workers=1``
    because tasks within a wave are mutually independent and stacked
    gufuncs are slice-independent.  The pool is sized to
    ``min(workers, physical cores)`` — oversubscribed dispatch threads
    only add overhead around stacked calls, and since chunking never
    changes results, clamping cannot either.  ``pool`` is the
    scratch-buffer pool (fresh per call when ``None``); pass one in to
    reuse buffers across the evaluations of a fit.

    Raises :class:`~repro.exceptions.NotPositiveDefiniteError` directly
    on an indefinite diagonal tile (same contract as the sequential
    reference) and wraps any other kernel failure in
    :class:`~repro.exceptions.SchedulingError`.

    ``telemetry`` records one span per wave with one child span per
    stacked group / scalar fallback; ``collect_trace`` (default: on
    exactly when an enabled telemetry is passed) attaches the
    wall-clock :class:`~repro.runtime.trace.ExecutionTrace` — group
    members share their stacked call's interval — to the report.
    """
    if workers < 1:
        raise SchedulingError("need at least one worker")
    spans_on = telemetry is not None and telemetry.tracer.enabled
    tracing = spans_on if collect_trace is None else bool(collect_trace)
    tracing = tracing or spans_on
    parent_sid = current_span_id() if spans_on else None
    if tasks is None and dag is None:
        cached_tasks, cached_indegree, successors, _ = _cholesky_plan(matrix.nt)
        tasks = list(cached_tasks)
        indegree = dict(cached_indegree)
    elif dag is not None:
        if tasks is None:
            from .taskgraph import cholesky_tasks

            tasks = list(cholesky_tasks(matrix.nt))
        indegree = {uid: dag.in_degree(uid) for uid in dag.nodes}
        successors = {uid: list(dag.successors(uid)) for uid in dag.nodes}
    else:
        indegree, successors = _dependences(tuple(tasks))
    if pool is None:
        pool = ScratchPool()
    task_by_uid = {t.uid: t for t in tasks}
    tiles = matrix._tiles  # hot-loop access; keys come from the task plan
    f16_ok = bool(fp16_accumulate_fp32)
    # Extra dispatch threads beyond the physical cores only add pool
    # overhead around stacked calls; the batched layer sizes itself to
    # the hardware (results are identical either way — see below).
    # ``clamp=False`` keeps the requested width (the concurrency
    # sanitizer uses it to drive real thread interleavings).
    eff_workers = workers
    if clamp:
        eff_workers = max(1, min(workers, os.cpu_count() or 1))

    ready = sorted(uid for uid, deg in indegree.items() if deg == 0)
    remaining = len(tasks)
    stats = CholeskyStats()
    # Guards the LR-gemm stat updates of concurrent per-tile fallbacks
    # (same seam the sanitizer patches in the heap executor).
    stats_lock = _parallel._make_lock()
    batches = 0
    batched_tasks = 0
    fallback_tasks = 0
    max_wave = 0
    # Wall-clock timeline of stacked/scalar calls: one ``(op, tasks,
    # slot, start_abs, end_abs, batched)`` entry per *call* (not per
    # task), appended under ``stats_lock``; dispatch threads map
    # lazily onto small worker-slot ids.
    timeline: list[tuple] = []
    slot_of: dict[int, int] = {}

    def note_call(op, batch, start, end, batched_flag) -> None:
        ident = threading.get_ident()
        with stats_lock:
            slot = slot_of.setdefault(ident, len(slot_of))
            timeline.append((op, batch, slot, start, end, batched_flag))

    def run_single(task: Task) -> None:
        """Per-tile fallback, identical to the heap executor's kernels."""
        if task.op == "potrf":
            out = K.potrf(tiles[task.output], index=task.output)
        elif task.op == "trsm":
            (lkk,) = task.inputs
            out = K.trsm(
                tiles[lkk], tiles[task.output],
                fp16_accumulate_fp32=fp16_accumulate_fp32,
            )
        elif task.op == "syrk":
            (amk,) = task.inputs
            out = K.syrk(
                tiles[amk], tiles[task.output],
                fp16_accumulate_fp32=fp16_accumulate_fp32,
            )
        else:
            amk, ank = task.inputs
            out = K.gemm(
                tiles[amk], tiles[ank], tiles[task.output],
                tol=tile_tol, max_rank=max_rank,
                fp16_accumulate_fp32=fp16_accumulate_fp32,
            )
        if task.op == "gemm":
            was_lr = tiles[task.output].is_low_rank
            with stats_lock:
                if was_lr and not out.is_low_rank:
                    stats.densified_tiles += 1
                if out.is_low_rank:
                    stats.max_rank_seen = max(
                        stats.max_rank_seen, out.rank
                    )
        tiles[task.output] = out

    def run_group(group: _Group) -> None:
        """One stacked call for a whole homogeneous group."""
        op = group.op
        batch = group.tasks
        # Groups are homogeneous by construction (``_group_key``), so the
        # kernels' direct-caller validation is skipped here.
        if op == "potrf":
            outs = batched_potrf(
                [tiles[t.output] for t in batch],
                [t.output for t in batch], pool=pool, validate=False,
            )
        elif op == "trsm":
            outs = batched_trsm(
                tiles[batch[0].inputs[0]],
                [tiles[t.output] for t in batch],
                fp16_accumulate_fp32=fp16_accumulate_fp32, pool=pool,
                validate=False,
            )
        elif op == "syrk":
            outs = batched_syrk(
                [tiles[t.inputs[0]] for t in batch],
                [tiles[t.output] for t in batch],
                fp16_accumulate_fp32=fp16_accumulate_fp32, pool=pool,
                validate=False,
            )
        else:
            outs = batched_gemm(
                [tiles[t.inputs[0]] for t in batch],
                [tiles[t.inputs[1]] for t in batch],
                [tiles[t.output] for t in batch],
                fp16_accumulate_fp32=fp16_accumulate_fp32, pool=pool,
                validate=False,
            )
        for task, out in zip(batch, outs):
            tiles[task.output] = out

    def traced_single(task: Task) -> None:
        start = time.perf_counter()
        run_single(task)
        note_call(task.op, (task,), start, time.perf_counter(), False)

    def traced_group(group: _Group) -> None:
        start = time.perf_counter()
        run_group(group)
        note_call(group.op, group.tasks, start, time.perf_counter(), True)

    # The untraced path dispatches the original closures unchanged.
    exec_single = traced_single if tracing else run_single
    exec_group = traced_group if tracing else run_group

    def chunk_group(group: _Group, nchunks: int) -> list[_Group]:
        """Split a large group into slice chunks for worker-level
        parallelism; stacked gufuncs are slice-independent, so the
        per-tile results do not change."""
        batch = group.tasks
        if nchunks <= 1 or len(batch) < 2 * min_batch:
            return [group]
        size = max(min_batch, (len(batch) + nchunks - 1) // nchunks)
        return [
            _Group(group.op, batch[i:i + size])
            for i in range(0, len(batch), size)
        ]

    t0 = time.perf_counter()
    # Oversubscription guard: eff_workers dispatch threads each issuing
    # BLAS calls must share the physical cores (restored on exit).
    clamp_cm = clamp_blas_threads(eff_workers)
    blas_clamp = clamp_cm.__enter__()
    executor = (
        ThreadPoolExecutor(max_workers=eff_workers)
        if eff_workers > 1 else None
    )
    wave_index = 0
    try:
        while remaining:
            if not ready:  # pragma: no cover - DAG invariant
                raise SchedulingError(
                    f"stalled with {remaining} tasks unreached"
                )
            wave = [task_by_uid[uid] for uid in ready]
            max_wave = max(max_wave, len(wave))
            wave_t0 = time.perf_counter() if spans_on else 0.0
            wave_mark = len(timeline)

            # Group the wave in sorted-uid order (deterministic).
            groups: dict[tuple, list[Task]] = {}
            singles: list[Task] = []
            for task in wave:
                key = _group_key(task, tiles, f16_ok)
                if key is None:
                    singles.append(task)
                else:
                    groups.setdefault(key, []).append(task)
            batched: list[_Group] = []
            for key, batch in groups.items():
                if len(batch) >= min_batch:
                    batched.append(_Group(key[0], tuple(batch)))
                else:
                    singles.extend(batch)

            units: list[_Group] = []
            if executor is not None:
                for group in batched:
                    units.extend(chunk_group(group, eff_workers))
            else:
                units = batched

            if executor is not None and (len(units) + len(singles)) > 1:
                futures = [
                    executor.submit(exec_group, g) for g in units
                ] + [executor.submit(exec_single, t) for t in singles]
                first_exc: BaseException | None = None
                for f in futures:
                    try:
                        f.result()
                    except BaseException as exc:
                        if first_exc is None:
                            first_exc = exc
                if first_exc is not None:
                    raise first_exc
            else:
                for group in units:
                    exec_group(group)
                for task in singles:
                    exec_single(task)

            batches += len(units)
            batched_tasks += sum(len(g.tasks) for g in units)
            fallback_tasks += len(singles)
            stats.count_batch(Counter(t.op for t in wave))

            if spans_on:
                # The wave's futures have all resolved, so the slice
                # below has no concurrent writers.
                wave_sid = telemetry.tracer.add_span(
                    "wave", wave_t0, time.perf_counter(),
                    parent=parent_sid,
                    attrs={"wave": wave_index, "tasks": len(wave),
                           "groups": len(units),
                           "singles": len(singles)},
                )
                add_span = telemetry.tracer.add_span
                for op, batch, slot, start, end, batched_flag in (
                    timeline[wave_mark:]
                ):
                    add_span(
                        op, start, end, parent=wave_sid, tid=slot,
                        attrs={"batched": batched_flag,
                               "tasks": len(batch), "worker": slot},
                    )
            wave_index += 1

            # Release successors: the whole wave completed.
            next_ready: list[int] = []
            for task in wave:
                remaining -= 1
                for succ in successors[task.uid]:
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        next_ready.append(succ)
            ready = sorted(next_ready)
    except NotPositiveDefiniteError:
        raise
    except SchedulingError:
        raise
    except BaseException as exc:
        raise SchedulingError(
            f"batched execution failed: {exc!r}"
        ) from exc
    finally:
        if executor is not None:
            executor.shutdown(wait=True)
        clamp_cm.__exit__(None, None, None)
    wall = time.perf_counter() - t0

    trace_obj = None
    if tracing and timeline:
        records = []
        for op, batch, slot, start, end, _batched in timeline:
            # Group members share their stacked call's interval.
            records.extend(
                TaskRecord(
                    uid=task.uid, op=op, node=slot, core=slot,
                    start=start - t0, end=end - t0,
                )
                for task in batch
            )
        records.sort(key=lambda r: (r.start, r.uid))
        trace_obj = ExecutionTrace(
            records=records, nodes=max(len(slot_of), 1),
            cores_per_node=1,
        )

    report = ParallelRunReport(
        workers=eff_workers,
        tasks=len(tasks),
        wall_time_s=wall,
        max_concurrency=max_wave if eff_workers > 1 else 1,
        stats=stats,
        batches=batches,
        batched_tasks=batched_tasks,
        fallback_tasks=fallback_tasks,
        blas_clamp=blas_clamp,
        trace=trace_obj,
    )
    return matrix, report
