"""BLAS thread clamping: the oversubscription guard.

Every parallel backend in this package multiplies its own workers by
whatever thread count the BLAS library was started with.  On a host
with C cores, W workers each driving a C-thread OpenBLAS oversubscribe
the machine W-fold — the classic silent slowdown of nested
parallelism.  :func:`clamp_blas_threads` bounds the product: it picks
``max(1, cores // workers)`` BLAS threads per worker, exports it
through the portable environment variables (which newly *spawned*
worker processes honor at BLAS load time), and best-effort applies it
to the already-loaded BLAS of the current process (which forked
workers inherit).  Everything restores on exit.

Clamping never changes results: OpenBLAS/MKL partition GEMM over the
output dimensions, so per-element accumulation order — and therefore
bit-exactness — is independent of the thread count.
"""

from __future__ import annotations

import ctypes
import os
import sys
from contextlib import contextmanager
from functools import lru_cache

__all__ = ["BLAS_THREAD_ENV", "blas_clamp_for", "clamp_blas_threads"]

#: Environment variables the mainstream BLAS/OpenMP runtimes read at
#: library initialization.
BLAS_THREAD_ENV: tuple[str, ...] = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "BLIS_NUM_THREADS",
)

_BLAS_SO_MARKERS = ("openblas", "libblas", "mkl_rt", "blis")


def blas_clamp_for(workers: int, *, cores: int | None = None) -> int:
    """Per-worker BLAS thread budget for ``workers`` parallel workers:
    ``max(1, cores // workers)``."""
    if cores is None:
        cores = os.cpu_count() or 1
    return max(1, int(cores) // max(1, int(workers)))


def _loaded_blas_libraries() -> list[str]:
    """Paths of BLAS shared objects mapped into this process (linux
    ``/proc/self/maps``; empty elsewhere — the env clamp still covers
    spawned workers)."""
    if not sys.platform.startswith("linux"):  # pragma: no cover
        return []
    paths: list[str] = []
    try:
        with open("/proc/self/maps") as maps:
            for line in maps:
                path = line.rstrip("\n").partition(" ")[2]
                idx = path.find("/")
                if idx < 0:
                    continue
                path = path[idx:]
                name = os.path.basename(path).lower()
                if any(marker in name for marker in _BLAS_SO_MARKERS):
                    if path not in paths:
                        paths.append(path)
    except OSError:  # pragma: no cover - /proc unavailable
        return []
    return paths


@lru_cache(maxsize=1)
def _blas_controls() -> tuple:
    """Thread-count setter/getter pairs of every BLAS runtime loaded in
    this process, discovered once per process (clamping runs on every
    likelihood evaluation, so the ``/proc`` scan must not)."""
    controls = []
    for path in _loaded_blas_libraries():
        try:
            lib = ctypes.CDLL(path)  # ref-counted handle to the mapped .so
        except OSError:  # pragma: no cover - unloadable mapping
            continue
        for setter, getter in (
            ("openblas_set_num_threads", "openblas_get_num_threads"),
            ("MKL_Set_Num_Threads", "MKL_Get_Max_Threads"),
            ("bli_thread_set_num_threads", "bli_thread_get_num_threads"),
        ):
            set_fn = getattr(lib, setter, None)
            if set_fn is None:
                continue
            controls.append((set_fn, getattr(lib, getter, None)))
            break
    return tuple(controls)


def _set_inprocess(n: int) -> list[tuple]:
    """Best-effort in-process clamp of already-loaded BLAS runtimes
    (what threadpoolctl does, minus the dependency).  Returns the
    undo list of ``(setter, previous_value)``."""
    undo: list[tuple] = []
    for set_fn, get_fn in _blas_controls():
        previous = int(get_fn()) if get_fn is not None else 0
        try:
            set_fn(int(n))
        except Exception:  # pragma: no cover - defensive
            continue
        if previous > 0:
            undo.append((set_fn, previous))
    return undo


@contextmanager
def clamp_blas_threads(workers: int, *, cores: int | None = None):
    """Scope in which each of ``workers`` parallel workers gets
    ``max(1, cores // workers)`` BLAS threads.

    Yields the chosen clamp (for run reports).  Both the environment
    (read by freshly spawned processes) and the current process's
    loaded BLAS runtimes (inherited by forked workers and used by
    thread workers) are clamped; both restore on exit.  ``workers <= 1``
    is a no-op that yields ``None`` — the sequential paths keep the
    library default.
    """
    if workers <= 1:
        yield None
        return
    clamp = blas_clamp_for(workers, cores=cores)
    saved_env = {name: os.environ.get(name) for name in BLAS_THREAD_ENV}
    for name in BLAS_THREAD_ENV:
        os.environ[name] = str(clamp)
    undo = _set_inprocess(clamp)
    try:
        yield clamp
    finally:
        for set_fn, previous in undo:
            try:
                set_fn(previous)
            except Exception:  # pragma: no cover - defensive
                continue  # a runtime that rejects restore keeps the clamp
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
