"""PaRSEC-like dynamic task runtime (simulated distributed execution).

Components:

* :mod:`~repro.runtime.task` / :mod:`~repro.runtime.taskgraph` —
  parameterized task-stream generators (Algorithm 1 as tasks);
* :mod:`~repro.runtime.dag` — dataflow dependence analysis;
* :mod:`~repro.runtime.distribution` — 2-D block-cyclic ownership;
* :mod:`~repro.runtime.scheduler` — list-scheduling priorities;
* :mod:`~repro.runtime.engine` — real sequential execution (numbers);
* :mod:`~repro.runtime.simulator` — discrete-event distributed
  simulation (time), the documented stand-in for Fugaku;
* :mod:`~repro.runtime.comm` / :mod:`~repro.runtime.trace` —
  wire-format volume model and execution traces;
* :mod:`~repro.runtime.faults` — seeded MTBF fault injection and
  checkpoint/restart modeling for the simulator;
* :mod:`~repro.runtime.procpool` / :mod:`~repro.runtime.procworker` —
  the multiprocess shared-memory execution backend (owner-computes
  tile Cholesky across persistent worker processes);
* :mod:`~repro.runtime.blasclamp` — BLAS thread-oversubscription
  guard shared by the threaded and process executors.
"""

from .batchdispatch import execute_cholesky_batched
from .blasclamp import BLAS_THREAD_ENV, blas_clamp_for, clamp_blas_threads
from .comm import (
    CommStats,
    conversion_count,
    model_comm_volume,
    plan_wire_bytes,
    tile_wire_bytes,
)
from .dag import build_dag, critical_path_length, validate_schedule
from .distribution import BlockCyclic2D, square_process_grid
from .engine import execute_cholesky_tasks, execute_forward_solve_tasks
from .faults import CheckpointConfig, CrashTimes, FaultModel
from .gantt import render_gantt, utilization_profile
from .parallel import ParallelRunReport, execute_cholesky_parallel
from .procpool import ProcessPoolEngine
from .scheduler import panel_priorities, panel_priorities_tasks, upward_ranks
from .simulator import SimConfig, plan_rank_of, shape_for_task, simulate_tasks
from .task import TILE_OPS, Task
from .taskgraph import cholesky_task_count, cholesky_tasks, forward_solve_tasks
from .trace import ExecutionTrace, TaskRecord

__all__ = [
    "Task",
    "TILE_OPS",
    "cholesky_tasks",
    "cholesky_task_count",
    "forward_solve_tasks",
    "build_dag",
    "critical_path_length",
    "validate_schedule",
    "BlockCyclic2D",
    "square_process_grid",
    "upward_ranks",
    "panel_priorities",
    "panel_priorities_tasks",
    "execute_cholesky_tasks",
    "execute_forward_solve_tasks",
    "render_gantt",
    "execute_cholesky_parallel",
    "execute_cholesky_batched",
    "ProcessPoolEngine",
    "ParallelRunReport",
    "BLAS_THREAD_ENV",
    "blas_clamp_for",
    "clamp_blas_threads",
    "utilization_profile",
    "FaultModel",
    "CheckpointConfig",
    "CrashTimes",
    "SimConfig",
    "simulate_tasks",
    "shape_for_task",
    "plan_rank_of",
    "tile_wire_bytes",
    "plan_wire_bytes",
    "conversion_count",
    "CommStats",
    "model_comm_volume",
    "ExecutionTrace",
    "TaskRecord",
]
