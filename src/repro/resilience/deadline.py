"""Deadlines and cooperative cancellation for the real executors.

A :class:`Deadline` is a wall-clock budget on the monotonic clock; a
:class:`CancellationToken` is a thread-safe latch a worker pool checks
between units of work.  Both are *cooperative*: execution sites poll
``check()`` at task/batch boundaries, so a deadline never interrupts a
BLAS call mid-flight — it stops the next dispatch, lets in-flight work
finish, drains the pool, and surfaces one
:class:`~repro.exceptions.DeadlineExceededError` with no leaked
threads and no partial results.

Both objects are cheap to poll (one monotonic read / one attribute
read); passing ``None`` everywhere keeps the hot paths untouched.
"""

from __future__ import annotations

import threading
import time

from ..exceptions import DeadlineExceededError

__all__ = ["Deadline", "CancellationToken"]


class CancellationToken:
    """Thread-safe one-way latch: once cancelled, stays cancelled.

    The parallel executor cancels its internal token on the first
    worker error, poisoning the ready queue so the remaining workers
    stop dispatching and the pool drains instead of deadlocking.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str = ""

    def cancel(self, reason: str = "") -> None:
        """Latch the token (idempotent; first reason wins)."""
        if not self._event.is_set():
            self.reason = reason or self.reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def check(self, where: str = "") -> None:
        """Raise :class:`~repro.exceptions.DeadlineExceededError` if
        cancelled (cancellation and expiry surface identically to
        callers: the operation did not complete)."""
        if self._event.is_set():
            raise DeadlineExceededError(
                f"operation cancelled{f' at {where}' if where else ''}"
                f"{f': {self.reason}' if self.reason else ''}",
                where=where,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"cancelled: {self.reason!r}" if self.cancelled else "live"
        return f"CancellationToken({state})"


class Deadline:
    """A monotonic-clock budget shared across an operation's layers.

    One ``Deadline`` threads from ``fit_mle(time_budget_s=...)`` (or
    ``PredictionEngine.predict(deadline_s=...)``) down through the
    likelihood, the DAG executor, and each worker loop, so every layer
    measures the *same* remaining budget instead of re-slicing its own.
    """

    __slots__ = ("budget_s", "_t_end")

    def __init__(self, budget_s: float):
        self.budget_s = float(budget_s)
        self._t_end = time.monotonic() + self.budget_s

    @classmethod
    def after(cls, budget_s: float | None) -> "Deadline | None":
        """``None``-propagating constructor (``None`` = no deadline)."""
        return None if budget_s is None else cls(budget_s)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._t_end - time.monotonic()

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._t_end

    def check(self, where: str = "") -> None:
        """Raise :class:`~repro.exceptions.DeadlineExceededError` when
        the budget has run out."""
        if self.expired:
            raise DeadlineExceededError(
                f"deadline of {self.budget_s:.3g}s exceeded"
                f"{f' at {where}' if where else ''}",
                budget_s=self.budget_s,
                where=where,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Deadline(budget_s={self.budget_s:.3g}, "
            f"remaining={self.remaining():.3g}s)"
        )
