"""Error budgets and the serving circuit breaker.

Both real engines expose ``health()``: an error-budget style
:class:`HealthReport` of how many calls failed, how many transient
retries the resilience layer absorbed, and whether the
:class:`CircuitBreaker` has tripped.  The breaker watches *consecutive*
failures — the signature of persistent corruption rather than an
occasional bad theta — and on tripping fires a callback that resets
the engine's caches to a safe state (the serving engine drops its
cross-covariance LRU so no possibly-poisoned entry survives), then
half-opens: the next success closes it again.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["HealthReport", "CircuitBreaker"]


@dataclass(frozen=True)
class HealthReport:
    """Point-in-time error budget of one engine."""

    calls: int
    failures: int
    consecutive_failures: int
    retries: int = 0
    recoveries: int = 0
    breaker_trips: int = 0
    breaker_open: bool = False

    @property
    def error_rate(self) -> float:
        """Failed fraction of all calls (0 when nothing ran yet)."""
        return self.failures / self.calls if self.calls else 0.0

    @property
    def ok(self) -> bool:
        """Healthy = breaker closed and the last call did not fail."""
        return not self.breaker_open and self.consecutive_failures == 0

    def summary(self) -> str:
        state = "OPEN" if self.breaker_open else "closed"
        return (
            f"{self.calls} call(s), {self.failures} failure(s) "
            f"({self.error_rate:.1%}), {self.consecutive_failures} "
            f"consecutive, {self.retries} retr(y/ies), "
            f"breaker {state} ({self.breaker_trips} trip(s))"
        )


class CircuitBreaker:
    """Consecutive-failure breaker with a reset callback.

    Thread-safe; the callback runs outside the lock (it typically
    takes the owning engine's own lock to clear caches).
    """

    def __init__(self, threshold: int = 3, on_trip=None):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = int(threshold)
        self._on_trip = on_trip
        self._lock = threading.Lock()
        self._consecutive = 0
        self._trips = 0
        self._open = False

    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """A call completed: reset the streak, close a tripped breaker
        (the safe-rebuild worked)."""
        with self._lock:
            self._consecutive = 0
            self._open = False

    def record_failure(self) -> bool:
        """A call failed; returns True when this failure trips the
        breaker (and runs the reset callback)."""
        with self._lock:
            self._consecutive += 1
            tripped = not self._open and self._consecutive >= self.threshold
            if tripped:
                self._open = True
                self._trips += 1
        if tripped and self._on_trip is not None:
            self._on_trip()
        return tripped

    # ------------------------------------------------------------------
    def snapshot(self) -> tuple[int, int, bool]:
        """Atomic ``(consecutive_failures, trips, open)`` read.

        The three properties below each take the lock separately, so a
        caller composing them (e.g. an engine's ``health()``) could see
        a torn state — a streak at the threshold with the trip not yet
        counted.  One locked read keeps the report consistent.
        """
        with self._lock:
            return self._consecutive, self._trips, self._open

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    @property
    def open(self) -> bool:
        with self._lock:
            return self._open

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.open else "closed"
        return (
            f"CircuitBreaker({state}, threshold={self.threshold}, "
            f"trips={self.trips})"
        )
