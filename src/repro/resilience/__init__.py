"""Production resilience layer for the real execution paths.

The simulator's fault tolerance (:mod:`repro.runtime.faults`) models
failures; this package *survives* them in the executors that actually
compute:

* :mod:`~repro.resilience.deadline` — :class:`Deadline` budgets and
  :class:`CancellationToken` poisoning, threaded through the DAG
  executor, the likelihood, ``fit_mle(time_budget_s=...)`` and
  ``PredictionEngine.predict(deadline_s=...)``; pools drain, threads
  join, partial results are discarded;
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` with
  exponential backoff and deterministic seeded jitter for transient
  tile failures, applied *before* the per-factorization recovery
  ladder escalates;
* :mod:`~repro.resilience.degrade` — :class:`DegradationPolicy`:
  a fit that keeps breaking down numerically downgrades its variant
  (TLR -> wider dense band -> dense FP64), every step recorded on the
  extended :class:`~repro.tile.recovery.RecoveryReport`;
* :mod:`~repro.resilience.chaos` — seeded, opt-in
  :class:`ChaosConfig` injection (NaN/overflow tile corruption,
  worker delays/failures, batch failures) against the real executors;
* :mod:`~repro.resilience.health` — :class:`HealthReport` error
  budgets and the serving :class:`CircuitBreaker`;
* :mod:`~repro.resilience.validate` — :func:`require_finite` input
  rejection at the API boundary.

Everything is opt-in through one :class:`ResilienceConfig`; with it
absent (``None``) every hook short-circuits and results are
bit-identical to the unhardened paths.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .chaos import ChaosConfig, ChaosInjector, ChaosStats
from .deadline import CancellationToken, Deadline
from .degrade import (
    DEFAULT_DEGRADATION,
    DegradationPolicy,
    degradation_steps,
)
from .health import CircuitBreaker, HealthReport
from .retry import DEFAULT_RETRY, DEFAULT_RETRYABLE, RetryPolicy
from .validate import require_finite

__all__ = [
    "ResilienceConfig",
    "DEFAULT_RESILIENCE",
    "Deadline",
    "CancellationToken",
    "RetryPolicy",
    "DEFAULT_RETRY",
    "DEFAULT_RETRYABLE",
    "DegradationPolicy",
    "DEFAULT_DEGRADATION",
    "degradation_steps",
    "ChaosConfig",
    "ChaosInjector",
    "ChaosStats",
    "CircuitBreaker",
    "HealthReport",
    "require_finite",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """One bundle of resilience knobs threaded through a fit or an
    engine.

    ``retry`` handles transient tile failures inside the executor;
    ``degradation`` downgrades the variant across fit attempts;
    ``chaos`` opts into seeded fault injection — either a
    :class:`ChaosConfig`, or an already-bound :class:`ChaosInjector`
    when an engine shares one across evaluations (see :meth:`bind`).
    Any field may be ``None`` to disable that layer; a wholly-``None``
    config is equivalent to passing no config at all.
    """

    retry: RetryPolicy | None = None
    degradation: DegradationPolicy | None = None
    chaos: "ChaosConfig | ChaosInjector | None" = None

    @property
    def chaos_enabled(self) -> bool:
        """Whether any chaos injection can fire."""
        if self.chaos is None:
            return False
        config = getattr(self.chaos, "config", self.chaos)
        return config.enabled

    @property
    def task_level(self) -> bool:
        """Whether the factorization needs the instrumented executor
        (retry or chaos hooks); degradation alone is fit-level and
        leaves the factorization path untouched."""
        return self.retry is not None or self.chaos_enabled

    @property
    def active(self) -> bool:
        """Whether any layer can change execution behavior."""
        return self.task_level or self.degradation is not None

    def resolve_chaos(self) -> "ChaosInjector | None":
        """The injector for :attr:`chaos` (pass-through when already
        bound, fresh otherwise, ``None`` when chaos is off)."""
        if not self.chaos_enabled:
            return None
        if isinstance(self.chaos, ChaosInjector):
            return self.chaos
        return ChaosInjector(self.chaos)

    def bind(self) -> "ResilienceConfig":
        """Config whose chaos field is a stateful injector, so every
        evaluation of one engine shares epochs and tallies (identical
        configs stay reproducible: draws key on the seed and epoch,
        not on object identity)."""
        injector = self.resolve_chaos()
        if injector is None or injector is self.chaos:
            return self
        return replace(self, chaos=injector)


#: Retry + degradation enabled with defaults, no chaos — what a
#: production fit should run.
DEFAULT_RESILIENCE = ResilienceConfig(
    retry=DEFAULT_RETRY, degradation=DEFAULT_DEGRADATION,
)
