"""Deterministic chaos injection for the real executors.

Opt-in fault injection aimed at the *production* paths — the threaded
DAG Cholesky executor and the prediction serving engine — rather than
the discrete-event simulator (:mod:`repro.runtime.faults` covers
that).  A :class:`ChaosConfig` declares seeded failure rates; a
:class:`ChaosInjector` draws every decision from a generator keyed on
``(seed, epoch, site, attempt)``, so

* two runs of the same configuration inject the *identical* fault
  schedule regardless of thread scheduling (chaos suites are
  bit-reproducible), and
* a retried task (``attempt + 1``) re-rolls its fate — exactly the
  transient-failure model the retry policy is built for.

With every rate at zero the injector is inert and the hooks cost one
``None``/rate check per task; with no injector configured the
executors skip the hooks entirely (bit-identical to the plain path).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_SEED
from ..exceptions import ChaosError, ConfigurationError
from ..tile.precision import Precision
from ..tile.tile import DenseTile, LowRankTile, Tile

__all__ = ["ChaosConfig", "ChaosInjector", "ChaosStats"]


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded chaos knobs (all rates are per-attempt probabilities).

    ``tile_nan_rate`` / ``tile_overflow_rate`` corrupt a task's output
    tile with NaNs or an FP16-overflowing magnitude (``~1e6``, far
    beyond binary16's 65504 max) — the two real failure modes of the
    mixed-precision pipeline.  ``task_fail_rate`` raises
    :class:`~repro.exceptions.ChaosError` from the worker instead of
    running the kernel; ``task_delay_rate`` / ``task_delay_s`` stall a
    worker (exercising deadline cancellation).  ``batch_fail_rate``
    targets the serving engine's per-batch predictions.
    """

    seed: int = DEFAULT_SEED
    tile_nan_rate: float = 0.0
    tile_overflow_rate: float = 0.0
    task_fail_rate: float = 0.0
    task_delay_rate: float = 0.0
    task_delay_s: float = 0.0
    batch_fail_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "tile_nan_rate", "tile_overflow_rate", "task_fail_rate",
            "task_delay_rate", "batch_fail_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.task_delay_s < 0.0:
            raise ConfigurationError("task_delay_s must be >= 0")

    @property
    def enabled(self) -> bool:
        """Whether any injection can ever fire."""
        return bool(
            self.tile_nan_rate or self.tile_overflow_rate
            or self.task_fail_rate
            or (self.task_delay_rate and self.task_delay_s)
            or self.batch_fail_rate
        )


@dataclass
class ChaosStats:
    """Tally of injections that actually fired."""

    corrupted_tiles: int = 0
    failed_tasks: int = 0
    delayed_tasks: int = 0
    failed_batches: int = 0

    @property
    def events(self) -> int:
        return (
            self.corrupted_tiles + self.failed_tasks
            + self.delayed_tasks + self.failed_batches
        )


#: Magnitude used for "overflow" corruption: overflows binary16
#: (max 65504) on the next cast, the paper's FP16 failure mode.
_OVERFLOW_MAGNITUDE = 1.0e6


class ChaosInjector:
    """Stateful injector: one per engine/fit, shared across its
    factorizations.

    ``epoch`` advances once per factorization (see :meth:`next_epoch`)
    so repeated likelihood evaluations within one fit draw independent
    — but still deterministic — fault schedules.
    """

    def __init__(self, config: ChaosConfig):
        self.config = config
        self.stats = ChaosStats()
        self._lock = threading.Lock()
        self._epoch = 0

    # ------------------------------------------------------------------
    def next_epoch(self) -> int:
        """Advance to (and return) the next factorization epoch."""
        with self._lock:
            self._epoch += 1
            return self._epoch

    def _rng(self, epoch: int, site: int, attempt: int, salt: int) -> np.random.Generator:
        return np.random.default_rng(
            (self.config.seed, epoch, site & 0x7FFFFFFF, attempt, salt)
        )

    # ------------------------------------------------------------------
    # task-level injections (threaded DAG executor)
    # ------------------------------------------------------------------
    def perturb_task(self, epoch: int, uid: int, attempt: int) -> None:
        """Maybe delay, then maybe fail, task ``uid`` on this attempt."""
        cfg = self.config
        if cfg.task_delay_rate and cfg.task_delay_s:
            if self._rng(epoch, uid, attempt, 1).random() < cfg.task_delay_rate:
                with self._lock:
                    self.stats.delayed_tasks += 1
                time.sleep(cfg.task_delay_s)
        if cfg.task_fail_rate:
            if self._rng(epoch, uid, attempt, 2).random() < cfg.task_fail_rate:
                with self._lock:
                    self.stats.failed_tasks += 1
                raise ChaosError(
                    f"injected task failure (uid={uid}, attempt={attempt})",
                    site=f"task#{uid}",
                )

    def corrupt_tile(self, out: Tile, epoch: int, uid: int, attempt: int) -> Tile:
        """Maybe replace one entry of the task's output with NaN or an
        FP16-overflowing value; returns a corrupted *copy* (tiles are
        immutable value objects).

        NaN corruption hits any tile (modeling generic data
        corruption); *overflow* corruption only fires on FP16-storage
        tiles — ``1e6`` rounds to ``inf`` in binary16 but is perfectly
        representable above it, which is exactly why degrading the
        variant to an FP64 floor genuinely eliminates this failure
        mode (the paper's precision-ladder fallback).
        """
        cfg = self.config
        overflow_rate = (
            cfg.tile_overflow_rate
            if out.precision is Precision.FP16 else 0.0
        )
        total = cfg.tile_nan_rate + overflow_rate
        if not total:
            return out
        rng = self._rng(epoch, uid, attempt, 3)
        draw = float(rng.random())
        if draw >= total:
            return out
        poison = (
            np.nan if draw < cfg.tile_nan_rate else _OVERFLOW_MAGNITUDE
        )
        with self._lock:
            self.stats.corrupted_tiles += 1
        if isinstance(out, LowRankTile):
            if out.rank == 0:
                return out
            u = np.array(out.u, dtype=np.float64)
            u.flat[int(rng.integers(u.size))] = poison
            return LowRankTile(u, np.array(out.v, dtype=np.float64),
                               out.precision)
        data = np.array(out.to_dense64(), dtype=np.float64)
        data.flat[int(rng.integers(data.size))] = poison
        return DenseTile(data, out.precision)

    # ------------------------------------------------------------------
    # batch-level injections (prediction serving)
    # ------------------------------------------------------------------
    def perturb_batch(self, site: int, attempt: int) -> None:
        """Maybe fail one serving batch (keyed by the batch's start
        offset, scheduling-independent)."""
        cfg = self.config
        if cfg.batch_fail_rate:
            if self._rng(0, site, attempt, 4).random() < cfg.batch_fail_rate:
                with self._lock:
                    self.stats.failed_batches += 1
                raise ChaosError(
                    f"injected batch failure (offset={site}, "
                    f"attempt={attempt})",
                    site=f"batch@{site}",
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChaosInjector(seed={self.config.seed}, events={self.stats.events})"
