"""Retry with exponential backoff and deterministic seeded jitter.

Transient tile failures — an SVD that fails to converge on one
compression call, a NaN produced by an FP16 cast under chaos, an
injected worker fault — are much cheaper to retry at the task level
than to escalate straight into the numerical recovery ladder, which
rebuilds the whole matrix.  :class:`RetryPolicy` classifies which
exceptions are transient, bounds the attempts, and spaces them with
exponential backoff whose jitter is *seeded per (site, attempt)*:
two runs of the same seeded configuration retry at identical instants
relative to each other, keeping chaos experiments bit-reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_SEED
from ..exceptions import (
    ChaosError,
    CompressionError,
    ConfigurationError,
    NumericalCorruptionError,
)

__all__ = ["RetryPolicy", "DEFAULT_RETRYABLE"]

#: Exception types the default policy treats as transient.  A plain
#: :class:`~repro.exceptions.NotPositiveDefiniteError` is deliberately
#: *not* here: an indefinite covariance is deterministic and retrying
#: the identical computation cannot fix it — that is the recovery
#: ladder's job.  (:class:`NumericalCorruptionError` subclasses it but
#: is listed explicitly: corruption can be attempt-dependent.)
DEFAULT_RETRYABLE: tuple[type, ...] = (
    NumericalCorruptionError,
    ChaosError,
    CompressionError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How transient failures are retried.

    ``max_attempts`` counts the first try: 3 means "try, then retry
    twice".  Attempt ``k`` (1-based) sleeps
    ``min(base_delay_s * backoff**(k-1), max_delay_s)`` scaled by a
    jitter factor in ``[1, 1 + jitter]`` drawn from a generator seeded
    on ``(seed, site, attempt)`` — deterministic regardless of thread
    scheduling.
    """

    max_attempts: int = 3
    base_delay_s: float = 1.0e-3
    backoff: float = 2.0
    max_delay_s: float = 0.05
    jitter: float = 0.5
    seed: int = DEFAULT_SEED
    retryable: tuple[type, ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("retry delays must be >= 0")
        if self.backoff < 1.0:
            raise ConfigurationError("backoff must be >= 1")
        if self.jitter < 0:
            raise ConfigurationError("jitter must be >= 0")

    # ------------------------------------------------------------------
    def is_retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is a transient failure worth retrying.

        A :class:`~repro.exceptions.NumericalCorruptionError` matches
        through :data:`DEFAULT_RETRYABLE` even though its parent
        ``NotPositiveDefiniteError`` does not — classification is by
        the listed types, most-derived semantics included.
        """
        return isinstance(exc, self.retryable)

    def delay_s(self, attempt: int, site: int = 0) -> float:
        """Backoff delay before attempt ``attempt + 1`` (after the
        ``attempt``-th failure), with deterministic seeded jitter."""
        base = min(
            self.base_delay_s * self.backoff ** max(attempt - 1, 0),
            self.max_delay_s,
        )
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = np.random.default_rng(
            (self.seed, site & 0x7FFFFFFF, attempt)
        )
        return base * (1.0 + self.jitter * float(rng.random()))

    def call(self, fn, *, site: int = 0, on_retry=None):
        """Run ``fn()`` under this policy.

        Retries transient failures up to ``max_attempts`` total tries,
        sleeping the jittered backoff in between; ``on_retry(attempt,
        exc)`` (if given) observes each retry.  Non-retryable
        exceptions and the final transient failure propagate.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn(attempt)
            except BaseException as exc:
                if attempt >= self.max_attempts or not self.is_retryable(exc):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                delay = self.delay_s(attempt, site)
                if delay > 0.0:
                    time.sleep(delay)


#: A conservative default: three attempts, millisecond-scale backoff.
DEFAULT_RETRY = RetryPolicy()

__all__.append("DEFAULT_RETRY")
