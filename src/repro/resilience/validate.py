"""API-boundary input validation.

A NaN smuggled into ``fit_mle`` surfaces hundreds of evaluations later
as an inscrutable non-finite loglikelihood deep in the tile stack —
or, worse, as a silently wrong fit.  :func:`require_finite` rejects
non-finite user inputs at the public entry points with a
:class:`~repro.exceptions.ParameterError` (a ``ValueError``) that
names the offending argument and the first bad index.

The check is O(n) over the argument — noise next to the O(n^3) work
it guards — and never copies a float64 array.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError

__all__ = ["require_finite"]


def require_finite(name: str, array) -> None:
    """Raise :class:`~repro.exceptions.ParameterError` (a
    ``ValueError``) unless every entry of ``array`` is finite.

    ``name`` is the user-facing argument name quoted in the message.
    Validates; does not convert — callers keep their own coercion.
    """
    arr = np.asarray(array, dtype=np.float64)
    if arr.size == 0:
        raise ParameterError(f"argument {name!r} is empty")
    finite = np.isfinite(arr)
    if not finite.all():
        flat_index = int(np.flatnonzero(~finite.ravel())[0])
        bad = arr.ravel()[flat_index]
        kind = "NaN" if np.isnan(bad) else "infinite value"
        raise ParameterError(
            f"argument {name!r} contains a {kind} at flat index "
            f"{flat_index} (of {arr.size} entries); reject or impute "
            "non-finite inputs before calling"
        )
