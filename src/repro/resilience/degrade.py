"""Graceful variant degradation for fits that keep breaking down.

The per-factorization recovery ladder (:mod:`repro.tile.recovery`)
rescues *one* evaluation; when a whole fit keeps hitting numerical
breakdowns — chaos-corrupted tiles escaping the retry budget, FP16
overflow at every trial theta — the right production move is to stop
paying the rescue cost per evaluation and *downgrade the variant for
the rest of the fit*, trading the paper's speedups for a factorization
that cannot break:

    mp-dense-tlr  ->  widen the dense band (x``widen_band_factor``)
                  ->  dense FP64

Each fit attempt that ends unhealthy (non-finite loglikelihood, or
more than ``max_failure_fraction`` of its evaluations rejected)
records one ``downgrade`` :class:`~repro.tile.recovery.RecoveryAction`
in the fit-level report, so the degradation history reads exactly like
the per-factorization recovery history it extends.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = ["DegradationPolicy", "degradation_steps"]


@dataclass(frozen=True)
class DegradationPolicy:
    """When and how a fit downgrades its compute variant.

    A completed fit attempt is *unhealthy* when its best loglikelihood
    is non-finite, or when more than ``max_failure_fraction`` of at
    least ``min_evaluations`` evaluations were rejected (indefinite /
    corrupted / unrecovered).  Unhealthy attempts fall to the next
    ladder rung; the final rung's result is returned regardless.
    """

    max_failure_fraction: float = 0.5
    min_evaluations: int = 2
    widen_band_factor: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_failure_fraction <= 1.0:
            raise ConfigurationError(
                "max_failure_fraction must be in [0, 1]"
            )
        if self.min_evaluations < 1:
            raise ConfigurationError("min_evaluations must be >= 1")
        if self.widen_band_factor < 2:
            raise ConfigurationError("widen_band_factor must be >= 2")


#: Downgrade on any failure majority — the sensible production default.
DEFAULT_DEGRADATION = DegradationPolicy()

__all__.append("DEFAULT_DEGRADATION")


def degradation_steps(variant, policy: DegradationPolicy = DEFAULT_DEGRADATION):
    """The degradation ladder below ``variant`` (safest last).

    * TLR variants first *widen the dense band*: low-rank structure is
      pushed further off-diagonal, where tiles are tamest, while the
      mixed-precision plan survives;
    * any approximate variant finally falls to ``dense-fp64`` (same
      ``workers`` so the execution engine is unchanged) — the
      reference configuration that cannot break down numerically.

    Returns a list of :class:`~repro.core.variants.VariantConfig`
    (empty for ``dense-fp64`` itself, which has nowhere to fall).
    """
    # Imported lazily: core.variants is higher in the layering.
    from ..core.variants import DENSE_FP64

    steps = []
    if variant.use_tlr:
        band = variant.band_size if isinstance(variant.band_size, int) else 2
        wide = max(band * policy.widen_band_factor, band + 1)
        steps.append(variant.with_(
            name=f"{variant.name}+band{wide}", band_size=wide,
        ))
    if variant.use_mp or variant.use_tlr:
        steps.append(DENSE_FP64.with_(
            name="dense-fp64", workers=variant.workers,
        ))
    return steps
