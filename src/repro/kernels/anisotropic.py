"""Geometrically anisotropic Matérn kernel.

Environmental fields are rarely isotropic (prevailing winds, drainage
direction); the standard fix keeps the Matérn form but measures
distance in a rotated, axis-scaled metric:

    h_eff = || D^{-1} R(-angle) (s_i - s_j) ||,
    D = diag(range_major, range_minor)

``theta = (variance, range_major, range_minor, angle, smoothness)``;
``angle`` is the orientation of the major axis in radians within
``(-pi/2, pi/2]``.  At ``range_major == range_minor`` it reduces
exactly to the isotropic :class:`~repro.kernels.matern.MaternKernel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import CovarianceKernel, ParameterSpec
from .distance import as_locations
from .matern import matern_correlation

__all__ = ["AnisotropicMaternKernel", "CoordinateDiffGeometry"]


@dataclass(frozen=True)
class CoordinateDiffGeometry:
    """Cached per-axis coordinate differences ``dx, dy`` (each
    ``(n1, n2)``).  The anisotropic metric is theta-dependent, so the
    reusable quantity is the raw separation vector, not a distance."""

    dx: np.ndarray
    dy: np.ndarray
    same: bool


class AnisotropicMaternKernel(CovarianceKernel):
    """2-D Matérn with geometric anisotropy."""

    ndim_locations = 2

    @property
    def param_specs(self) -> tuple[ParameterSpec, ...]:
        return (
            ParameterSpec("variance", 0.0, np.inf, 1.0),
            ParameterSpec("range_major", 0.0, np.inf, 0.2),
            ParameterSpec("range_minor", 0.0, np.inf, 0.1),
            ParameterSpec("angle", -np.pi / 2, np.pi / 2 + 1e-9, 0.0),
            ParameterSpec("smoothness", 0.0, 5.0, 0.5),
        )

    @staticmethod
    def _metric(theta: np.ndarray) -> np.ndarray:
        """The 2x2 transform T with h_eff = ||T (s_i - s_j)||."""
        _, a_major, a_minor, angle, _ = theta
        c, s = np.cos(angle), np.sin(angle)
        rot = np.array([[c, s], [-s, c]])  # rotate major axis onto x
        scale = np.diag([1.0 / a_major, 1.0 / a_minor])
        return scale @ rot

    def _cross(self, theta: np.ndarray, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        transform = self._metric(theta)
        t1 = x1 @ transform.T
        t2 = t1 if x1 is x2 else x2 @ transform.T
        from .distance import cross_distance

        r = cross_distance(t1, t2)
        return theta[0] * matern_correlation(r, theta[4])

    def geometry_key(self) -> str:
        return "coorddiff/2"

    def prepare_geometry(
        self, x1: np.ndarray, x2: np.ndarray | None = None
    ) -> CoordinateDiffGeometry:
        x1 = as_locations(x1, dim=self.ndim_locations)
        same = x2 is None
        x2v = x1 if same else as_locations(x2, dim=self.ndim_locations)
        return CoordinateDiffGeometry(
            x1[:, 0][:, None] - x2v[:, 0][None, :],
            x1[:, 1][:, None] - x2v[:, 1][None, :],
            same,
        )

    def _cross_geometry(
        self, theta: np.ndarray, geom: CoordinateDiffGeometry
    ) -> np.ndarray:
        # h_eff = ||T (s_i - s_j)|| from the cached separations.  Exact
        # zeros on the same-set diagonal (dx = dy = 0) keep the
        # correlation exactly 1 there, as in the direct path; off the
        # diagonal this differs from the expanded quadratic form of
        # cross_distance only by rounding.
        t = self._metric(theta)
        a = t[0, 0] * geom.dx + t[0, 1] * geom.dy
        b = t[1, 0] * geom.dx + t[1, 1] * geom.dy
        r = np.sqrt(a * a + b * b)
        return theta[0] * matern_correlation(r, theta[4])

    def effective_range(self, theta: np.ndarray, direction: np.ndarray) -> float:
        """Range along a unit ``direction`` — used to verify the
        anisotropy axes in tests."""
        theta = self.validate_theta(theta)
        transform = self._metric(theta)
        d = np.asarray(direction, dtype=np.float64)
        d = d / np.linalg.norm(d)
        return float(1.0 / np.linalg.norm(transform @ d))
