"""Matérn covariance family (paper Section IV-A.3).

The Matérn correlation with smoothness ``nu`` and range ``a`` is

    M_nu(r) = 2^(1-nu) / Gamma(nu) * (r/a)^nu * K_nu(r/a),   M_nu(0) = 1,

where ``K_nu`` is the modified Bessel function of the second kind.  The
paper's space experiments use ``theta = (variance, range, smoothness)``
— the three columns of Table I.

Implementation notes
--------------------
* Half-integer smoothness (1/2, 3/2, 5/2) uses the closed forms, which
  are both faster and more accurate than the Bessel route.
* The generic path evaluates in the log domain to dodge the
  overflow/underflow of ``(r/a)^nu * K_nu`` at extreme arguments, and
  returns exactly 1 at ``r = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from .base import CovarianceKernel, ParameterSpec, concat_flat, split_flat
from .distance import as_locations, cross_distance

__all__ = ["matern_correlation", "DistanceGeometry", "MaternKernel"]


@dataclass(frozen=True)
class DistanceGeometry:
    """Cached Euclidean distances for isotropic kernels.

    ``r`` carries the exact-zero diagonal of same-set evaluation when
    ``same`` is true; consumers must not mutate it.
    """

    r: np.ndarray
    same: bool

_HALF_INTEGER_TOL = 1.0e-12


# Closed forms in the geostatistical convention M_nu(r) =
# 2^(1-nu)/Gamma(nu) r^nu K_nu(r) (plain argument, as in ExaGeoStat and
# the paper's Eq. 6 — NOT the machine-learning sqrt(2 nu) scaling).


def _matern_half(scaled: np.ndarray) -> np.ndarray:
    return np.exp(-scaled)


def _matern_three_half(scaled: np.ndarray) -> np.ndarray:
    return (1.0 + scaled) * np.exp(-scaled)


def _matern_five_half(scaled: np.ndarray) -> np.ndarray:
    return (1.0 + scaled + scaled * scaled / 3.0) * np.exp(-scaled)


_CLOSED_FORMS = {0.5: _matern_half, 1.5: _matern_three_half, 2.5: _matern_five_half}


def matern_correlation(r: np.ndarray, nu: float, *, scaled: bool = True) -> np.ndarray:
    """Matérn correlation ``M_nu`` evaluated at (already range-scaled,
    unless ``scaled=False`` is a misnomer here — ``r`` must be ``dist/a``)
    distances ``r >= 0``.

    Parameters
    ----------
    r:
        Nonnegative array of distances divided by the range parameter.
    nu:
        Smoothness ``nu > 0``.
    scaled:
        Kept for API clarity; must remain True (``r`` is ``dist/range``).
    """
    if not scaled:  # pragma: no cover - guard against misuse
        raise ValueError("pass distances already divided by the range")
    if nu <= 0.0:
        raise ValueError(f"Matérn smoothness must be positive, got {nu}")
    r = np.asarray(r, dtype=np.float64)

    for half, fn in _CLOSED_FORMS.items():
        if abs(nu - half) < _HALF_INTEGER_TOL:
            return fn(r)

    out = np.ones_like(r)
    positive = r > 0.0
    if np.any(positive):
        rp = r[positive]
        # log(2^{1-nu}/Gamma(nu)) + nu*log(r) + log K_nu(r); kve returns
        # exp(r) * K_nu(r), so subtract r in the log domain.
        log_kve = np.log(special.kve(nu, rp))
        log_val = (
            (1.0 - nu) * np.log(2.0)
            - special.gammaln(nu)
            + nu * np.log(rp)
            + log_kve
            - rp
        )
        vals = np.exp(log_val)
        # Guard round-off: correlation is in [0, 1].
        np.clip(vals, 0.0, 1.0, out=vals)
        out[positive] = vals
    return out


class MaternKernel(CovarianceKernel):
    """Stationary isotropic Matérn kernel.

    ``theta = (variance, range, smoothness)`` matching Table I of the
    paper (``theta_0 = sigma^2``, ``theta_1 = a``, ``theta_2 = nu``).

    Parameters
    ----------
    ndim:
        Spatial dimension of the locations (default 2, the paper's 2-D
        space experiments).  ``None`` accepts any dimension.
    nugget:
        Fixed micro-scale variance added on exact-zero distances.  The
        paper's model has no nugget; it is exposed for robustness
        studies and defaults to 0.
    """

    def __init__(self, ndim: int | None = 2, nugget: float = 0.0):
        if nugget < 0.0:
            raise ValueError("nugget must be nonnegative")
        self.ndim_locations = ndim
        self.nugget = float(nugget)

    @property
    def param_specs(self) -> tuple[ParameterSpec, ...]:
        return (
            ParameterSpec("variance", 0.0, np.inf, 1.0),
            ParameterSpec("range", 0.0, np.inf, 0.1),
            ParameterSpec("smoothness", 0.0, 5.0, 0.5),
        )

    def _cross(self, theta: np.ndarray, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        variance, rng, nu = theta
        r = cross_distance(x1, x2)
        r /= rng
        c = variance * matern_correlation(r, nu)
        if self.nugget:
            c[r == 0.0] += self.nugget
        return c

    def geometry_key(self) -> str:
        # Plain Euclidean distances: shareable with every other
        # isotropic kernel over the same locations.
        return f"dist/{self.ndim_locations}"

    def prepare_geometry(
        self, x1: np.ndarray, x2: np.ndarray | None = None
    ) -> DistanceGeometry:
        x1 = as_locations(x1, dim=self.ndim_locations)
        same = x2 is None
        x2v = x1 if same else as_locations(x2, dim=self.ndim_locations)
        return DistanceGeometry(cross_distance(x1, x2v), same)

    def _cross_geometry(
        self, theta: np.ndarray, geom: DistanceGeometry
    ) -> np.ndarray:
        # Same operation sequence as _cross on a fresh scaled-distance
        # array, so cached evaluation is bit-identical to the direct one.
        variance, rng, nu = theta
        r = geom.r / rng
        c = variance * matern_correlation(r, nu)
        if self.nugget:
            c[r == 0.0] += self.nugget
        return c

    def _cross_geometry_batch(
        self, theta: np.ndarray, geoms: list[DistanceGeometry]
    ) -> list[np.ndarray]:
        # One matern_correlation call (hence one special.kve sweep on
        # the generic-nu path) over all tiles; element-wise math on the
        # concatenation is bit-identical to the per-tile loop.
        variance, rng, nu = theta
        flat, shapes = concat_flat([g.r for g in geoms])
        r = flat / rng
        c = variance * matern_correlation(r, nu)
        if self.nugget:
            c[r == 0.0] += self.nugget
        return split_flat(c, shapes)

    def correlation_at(self, theta: np.ndarray, distance: float) -> float:
        """Scalar correlation at a given distance — handy for
        classifying weak/medium/strong dependence as in Fig. 6."""
        theta = self.validate_theta(theta)
        r = np.asarray([distance], dtype=np.float64) / theta[1]
        return float(matern_correlation(r, theta[2])[0])
