"""Parsimonious bivariate Matérn kernel (Gneiting, Kleiber &
Schlather, 2010).

The paper's covariance dimension is "the product of the number of
observation locations and the number of variables observed at each";
ExaGeoStat ships the parsimonious bivariate Matérn for the two-variable
case.  Locations here follow the same convention as space-time data: a
``(n, 3)`` array whose last column is the *variable index* (0 or 1), so
the kernel slots into every tile/runtime component unchanged.

Model:

    C_kl(h) = rho_kl * sigma_k * sigma_l * M_{nu_kl}(h / a)

with a common range ``a``, ``nu_12 = (nu_1 + nu_2) / 2``,
``rho_11 = rho_22 = 1`` and the cross-correlation ``rho_12 = beta *
rho_max(nu_1, nu_2, d)`` where ``rho_max`` is the parsimonious validity
bound

    rho_max = Gamma(nu_1 + d/2)^{1/2} Gamma(nu_2 + d/2)^{1/2}
              / (Gamma(nu_1)^{1/2} Gamma(nu_2)^{1/2})
              * Gamma(nu_12) / Gamma(nu_12 + d/2)

(GKS Theorem 3 specialized to common ranges).  Parameterizing with
``beta in (-1, 1)`` keeps every admissible ``theta`` valid by
construction.

``theta = (sigma1^2, sigma2^2, range, nu1, nu2, beta)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from ..exceptions import ShapeError
from .base import CovarianceKernel, ParameterSpec
from .distance import as_locations, cross_distance
from .matern import matern_correlation

__all__ = ["BivariateMaternKernel", "BivariateGeometry", "parsimonious_rho_max", "stack_bivariate"]


@dataclass(frozen=True)
class BivariateGeometry:
    """Cached spatial distances plus the variable-index masks of a
    bivariate tile (the variable column is theta-independent)."""

    h: np.ndarray
    v1: np.ndarray
    v2: np.ndarray
    same: bool


def parsimonious_rho_max(nu1: float, nu2: float, d: int = 2) -> float:
    """Validity bound on the colocated cross-correlation."""
    nu12 = 0.5 * (nu1 + nu2)
    log_bound = (
        0.5 * (special.gammaln(nu1 + d / 2) - special.gammaln(nu1))
        + 0.5 * (special.gammaln(nu2 + d / 2) - special.gammaln(nu2))
        + special.gammaln(nu12)
        - special.gammaln(nu12 + d / 2)
    )
    return float(np.exp(log_bound))


def stack_bivariate(space: np.ndarray) -> np.ndarray:
    """Stack spatial locations into the (location, variable) layout:
    variable 0 block first, then variable 1 (each row ``(x, y, v)``)."""
    space = np.asarray(space, dtype=np.float64)
    if space.ndim != 2 or space.shape[1] != 2:
        raise ShapeError("expected (n, 2) spatial locations")
    n = len(space)
    return np.vstack([
        np.column_stack([space, np.zeros(n)]),
        np.column_stack([space, np.ones(n)]),
    ])


class BivariateMaternKernel(CovarianceKernel):
    """Parsimonious bivariate Matérn over ``(x, y, variable)`` rows."""

    ndim_locations = 3
    spatial_dim = 2

    @property
    def param_specs(self) -> tuple[ParameterSpec, ...]:
        return (
            ParameterSpec("variance1", 0.0, np.inf, 1.0),
            ParameterSpec("variance2", 0.0, np.inf, 1.0),
            ParameterSpec("range", 0.0, np.inf, 0.1),
            ParameterSpec("smoothness1", 0.0, 5.0, 0.5),
            ParameterSpec("smoothness2", 0.0, 5.0, 1.0),
            ParameterSpec("beta", -1.0, 1.0, 0.5),
        )

    def _cross(self, theta: np.ndarray, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        s1, v1 = x1[:, :2], x1[:, 2]
        if x1 is x2:
            s2, v2 = s1, v1
        else:
            s2, v2 = x2[:, :2], x2[:, 2]
        if not (np.all(np.isin(v1, (0.0, 1.0))) and np.all(np.isin(v2, (0.0, 1.0)))):
            raise ShapeError("variable column must contain only 0 or 1")
        var1, var2, rng, nu1, nu2, beta = theta
        nu12 = 0.5 * (nu1 + nu2)
        rho12 = beta * parsimonious_rho_max(nu1, nu2, self.spatial_dim)
        sigmas = np.array([np.sqrt(var1), np.sqrt(var2)])
        nus = {
            (0, 0): nu1,
            (1, 1): nu2,
            (0, 1): nu12,
            (1, 0): nu12,
        }
        rhos = {
            (0, 0): 1.0,
            (1, 1): 1.0,
            (0, 1): rho12,
            (1, 0): rho12,
        }
        h = cross_distance(s1, s2)
        h /= rng
        out = np.empty_like(h)
        for a in (0, 1):
            mask1 = v1 == a
            if not np.any(mask1):
                continue
            for b in (0, 1):
                mask2 = v2 == b
                if not np.any(mask2):
                    continue
                block = matern_correlation(h[np.ix_(mask1, mask2)], nus[(a, b)])
                out[np.ix_(mask1, mask2)] = (
                    rhos[(a, b)] * sigmas[a] * sigmas[b] * block
                )
        return out

    def geometry_key(self) -> str:
        return f"bivariate/{self.spatial_dim}"

    def prepare_geometry(
        self, x1: np.ndarray, x2: np.ndarray | None = None
    ) -> BivariateGeometry:
        x1 = as_locations(x1, dim=self.ndim_locations)
        same = x2 is None
        x2v = x1 if same else as_locations(x2, dim=self.ndim_locations)
        s1, v1 = x1[:, :2], x1[:, 2]
        s2, v2 = (s1, v1) if same else (x2v[:, :2], x2v[:, 2])
        if not (np.all(np.isin(v1, (0.0, 1.0))) and np.all(np.isin(v2, (0.0, 1.0)))):
            raise ShapeError("variable column must contain only 0 or 1")
        return BivariateGeometry(cross_distance(s1, s2), v1, v2, same)

    def _cross_geometry(
        self, theta: np.ndarray, geom: BivariateGeometry
    ) -> np.ndarray:
        var1, var2, rng, nu1, nu2, beta = theta
        nu12 = 0.5 * (nu1 + nu2)
        rho12 = beta * parsimonious_rho_max(nu1, nu2, self.spatial_dim)
        sigmas = np.array([np.sqrt(var1), np.sqrt(var2)])
        nus = {(0, 0): nu1, (1, 1): nu2, (0, 1): nu12, (1, 0): nu12}
        rhos = {(0, 0): 1.0, (1, 1): 1.0, (0, 1): rho12, (1, 0): rho12}
        h = geom.h / rng
        out = np.empty_like(h)
        for a in (0, 1):
            mask1 = geom.v1 == a
            if not np.any(mask1):
                continue
            for b in (0, 1):
                mask2 = geom.v2 == b
                if not np.any(mask2):
                    continue
                block = matern_correlation(h[np.ix_(mask1, mask2)], nus[(a, b)])
                out[np.ix_(mask1, mask2)] = (
                    rhos[(a, b)] * sigmas[a] * sigmas[b] * block
                )
        return out

    def colocated_correlation(self, theta: np.ndarray) -> float:
        """The realized cross-correlation ``rho_12`` at distance 0."""
        theta = self.validate_theta(theta)
        return float(
            theta[5] * parsimonious_rho_max(theta[3], theta[4], self.spatial_dim)
        )
