"""Vectorized pairwise-distance computations.

The tile covariance assembly (:mod:`repro.tile.assembly`) never
materializes the full ``n x n`` distance matrix; it calls
:func:`cross_distance` per tile on row/column slices of the location
array, which keeps peak memory at one tile.

Locations are stored as ``(n, d)`` float arrays.  For space-time
kernels the convention throughout the package is that the *last* column
is time and the leading ``d - 1`` columns are space; helpers
:func:`split_space_time` and :func:`cross_space_time_lags` implement
that split.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError

__all__ = [
    "as_locations",
    "cross_distance",
    "cross_sq_distance",
    "pairwise_distance",
    "split_space_time",
    "cross_space_time_lags",
    "great_circle_distance",
]


def as_locations(x: np.ndarray, *, dim: int | None = None) -> np.ndarray:
    """Validate and canonicalize a location array to ``(n, d)`` float64.

    A 1-D array is interpreted as ``n`` points on the line.  Raises
    :class:`~repro.exceptions.ShapeError` on non-finite input or on a
    dimensionality mismatch with ``dim``.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ShapeError(f"locations must be a (n, d) array, got shape {arr.shape}")
    if dim is not None and arr.shape[1] != dim:
        raise ShapeError(
            f"locations must have dimension {dim}, got {arr.shape[1]}"
        )
    if arr.size and not np.all(np.isfinite(arr)):
        raise ShapeError("locations contain non-finite values")
    return arr


def cross_sq_distance(x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between two point sets.

    Returns a ``(len(x1), len(x2))`` matrix.  Uses the expanded
    quadratic form with a clip at zero to absorb cancellation error.
    When both arguments are the *same object*, the diagonal is set to
    exactly zero — the expanded form leaves ~1e-16 residue there, which
    short-range kernels amplify to ~1e-7 correlation errors.
    """
    same = x1 is x2
    x1 = np.atleast_2d(np.asarray(x1, dtype=np.float64))
    x2 = x1 if same else np.atleast_2d(np.asarray(x2, dtype=np.float64))
    if x1.shape[1] != x2.shape[1]:
        raise ShapeError(
            f"dimension mismatch: {x1.shape[1]} vs {x2.shape[1]}"
        )
    sq1 = np.einsum("ij,ij->i", x1, x1)
    sq2 = sq1 if same else np.einsum("ij,ij->i", x2, x2)
    d2 = sq1[:, None] + sq2[None, :] - 2.0 * (x1 @ x2.T)
    np.maximum(d2, 0.0, out=d2)
    if same:
        np.fill_diagonal(d2, 0.0)
    return d2


def cross_distance(x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    """Euclidean distances between two point sets, shape ``(n1, n2)``."""
    d2 = cross_sq_distance(x1, x2)
    return np.sqrt(d2, out=d2)


def pairwise_distance(x: np.ndarray) -> np.ndarray:
    """Symmetric ``(n, n)`` Euclidean distance matrix with exact zero
    diagonal (the quadratic form can leave tiny positive residue)."""
    d = cross_distance(x, x)
    np.fill_diagonal(d, 0.0)
    return d


def split_space_time(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split ``(n, d)`` space-time locations into ``(n, d-1)`` space
    coordinates and ``(n,)`` times (last column is time)."""
    arr = as_locations(x)
    if arr.shape[1] < 2:
        raise ShapeError(
            "space-time locations need at least 2 columns (space..., time)"
        )
    return arr[:, :-1], arr[:, -1]


def cross_space_time_lags(
    x1: np.ndarray, x2: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Spatial distances ``‖h‖`` and absolute temporal lags ``|u|``
    between two space-time point sets, each shaped ``(n1, n2)``.

    Identity of the arguments is preserved down to the distance call so
    same-set evaluations get the exact-zero diagonal treatment."""
    s1, t1 = split_space_time(x1)
    if x1 is x2:
        s2, t2 = s1, t1
    else:
        s2, t2 = split_space_time(x2)
    h = cross_distance(s1, s2)
    u = np.abs(t1[:, None] - t2[None, :])
    return h, u


_EARTH_RADIUS_KM = 6371.0088


def great_circle_distance(
    lonlat1: np.ndarray, lonlat2: np.ndarray, *, radius: float = _EARTH_RADIUS_KM
) -> np.ndarray:
    """Great-circle (haversine) distances in kilometres between two sets
    of ``(lon, lat)`` points given in degrees.

    Provided for completeness with the paper's geographic datasets;
    the surrogate generators work on planar unit-square coordinates, so
    most of the package uses :func:`cross_distance`.
    """
    p1 = np.radians(np.atleast_2d(np.asarray(lonlat1, dtype=np.float64)))
    p2 = np.radians(np.atleast_2d(np.asarray(lonlat2, dtype=np.float64)))
    if p1.shape[1] != 2 or p2.shape[1] != 2:
        raise ShapeError("great_circle_distance expects (lon, lat) pairs")
    lon1, lat1 = p1[:, 0][:, None], p1[:, 1][:, None]
    lon2, lat2 = p2[:, 0][None, :], p2[:, 1][None, :]
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    np.clip(a, 0.0, 1.0, out=a)
    return 2.0 * radius * np.arcsin(np.sqrt(a))
