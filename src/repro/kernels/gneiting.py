"""Nonseparable space-time Matérn covariance (paper Eq. 6).

The paper's space-time experiments (Table II, Fig. 11) use the
Gneiting-class model

    psi(u)   = a_t * |u|^(2*alpha) + 1
    C(h, u)  = sigma^2 / psi(u) * M_nu( ||h|| / (a_s * psi(u)^(beta/2)) )

with parameter vector (matching the columns of Table II)

    theta = (variance sigma^2,        theta_0
             range-space a_s,         theta_1
             smoothness-space nu,     theta_2
             range-time a_t,          theta_3
             smoothness-time alpha,   theta_4
             nonseparability beta)    theta_5

``beta = 0`` factors the model into a purely spatial Matérn times a
purely temporal Cauchy-type correlation (*separable*); ``beta > 0``
couples space and time (*nonseparable*, "deemed more realistic").

Note on ``alpha``: Gneiting's validity theorem requires
``alpha in (0, 1]``, yet the paper's fitted value for the ET dataset is
3.49 (Table II).  Evaluating Eq. (6) as printed at that value yields
*strongly indefinite* matrices (we measure lambda_min ~ -13 on a
monthly lattice), so it cannot be what the production code evaluated
bound-free.  This implementation therefore enforces the validity
constraint ``alpha in (0, 1]``; the surrogate dataset generator uses
the paper's Table II vector with alpha clamped to 0.9 and documents
the substitution (see :mod:`repro.data.evapotranspiration`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import CovarianceKernel, ParameterSpec, concat_flat, split_flat
from .distance import as_locations, cross_space_time_lags
from .matern import matern_correlation

__all__ = ["GneitingMaternKernel", "SpaceTimeGeometry", "temporal_decay"]


@dataclass(frozen=True)
class SpaceTimeGeometry:
    """Cached spatial distances ``‖h‖`` and temporal lags ``|u|`` —
    everything of Eq. (6) that does not depend on theta."""

    h: np.ndarray
    u: np.ndarray
    same: bool


def temporal_decay(u: np.ndarray, a_t: float, alpha: float) -> np.ndarray:
    """``psi(u) = a_t * |u|^(2 alpha) + 1`` evaluated element-wise."""
    u = np.abs(np.asarray(u, dtype=np.float64))
    out = np.zeros_like(u)
    positive = u > 0.0
    # |u|^(2 alpha) via exp/log for stability at large alpha.
    out[positive] = np.exp(2.0 * alpha * np.log(u[positive]))
    out *= a_t
    out += 1.0
    return out


class GneitingMaternKernel(CovarianceKernel):
    """Space-time Matérn kernel of Eq. (6).

    Locations are ``(n, space_dim + 1)`` arrays whose last column is
    time.  Default ``space_dim = 2`` (the paper's 2-D space-time data).
    """

    def __init__(self, space_dim: int = 2):
        if space_dim < 1:
            raise ValueError("space_dim must be >= 1")
        self.space_dim = int(space_dim)
        self.ndim_locations = space_dim + 1

    @property
    def param_specs(self) -> tuple[ParameterSpec, ...]:
        return (
            ParameterSpec("variance", 0.0, np.inf, 1.0),
            ParameterSpec("range_space", 0.0, np.inf, 1.0),
            ParameterSpec("smooth_space", 0.0, 5.0, 0.5),
            ParameterSpec("range_time", 0.0, np.inf, 0.5),
            ParameterSpec("smooth_time", 0.0, 1.0 + 1.0e-9, 0.5),
            ParameterSpec("beta", -1.0e-12, 1.0 + 1.0e-9, 0.5),
        )

    def _cross(self, theta: np.ndarray, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        variance, a_s, nu, a_t, alpha, beta = theta
        h, u = cross_space_time_lags(x1, x2)
        psi = temporal_decay(u, a_t, alpha)
        # Effective space argument ||h|| / (a_s * psi^{beta/2}).
        if beta > 0.0:
            scale = np.exp((beta / 2.0) * np.log(psi))
            arg = h / (a_s * scale)
        else:
            arg = h / a_s
        c = matern_correlation(arg, nu)
        c *= variance
        c /= psi
        return c

    def geometry_key(self) -> str:
        return f"spacetime/{self.space_dim}"

    def prepare_geometry(
        self, x1: np.ndarray, x2: np.ndarray | None = None
    ) -> SpaceTimeGeometry:
        x1 = as_locations(x1, dim=self.ndim_locations)
        same = x2 is None
        x2v = x1 if same else as_locations(x2, dim=self.ndim_locations)
        h, u = cross_space_time_lags(x1, x2v)
        return SpaceTimeGeometry(h, u, same)

    def _cross_geometry(
        self, theta: np.ndarray, geom: SpaceTimeGeometry
    ) -> np.ndarray:
        # Mirrors _cross from the (h, u) lags onward; no cached array is
        # mutated (temporal_decay and matern_correlation both allocate).
        variance, a_s, nu, a_t, alpha, beta = theta
        psi = temporal_decay(geom.u, a_t, alpha)
        if beta > 0.0:
            scale = np.exp((beta / 2.0) * np.log(psi))
            arg = geom.h / (a_s * scale)
        else:
            arg = geom.h / a_s
        c = matern_correlation(arg, nu)
        c *= variance
        c /= psi
        return c

    def _cross_geometry_batch(
        self, theta: np.ndarray, geoms: list[SpaceTimeGeometry]
    ) -> list[np.ndarray]:
        # Concatenate the spatial and temporal lags of every tile and
        # run Eq. (6) once — element-wise throughout (temporal_decay,
        # matern_correlation, the scalings), so bit-identical to the
        # per-tile loop but with a single special.kve sweep per fit.
        variance, a_s, nu, a_t, alpha, beta = theta
        h, shapes = concat_flat([g.h for g in geoms])
        u, _ = concat_flat([g.u for g in geoms])
        psi = temporal_decay(u, a_t, alpha)
        if beta > 0.0:
            scale = np.exp((beta / 2.0) * np.log(psi))
            arg = h / (a_s * scale)
        else:
            arg = h / a_s
        c = matern_correlation(arg, nu)
        c *= variance
        c /= psi
        return split_flat(c, shapes)

    def is_separable(self, theta: np.ndarray, *, tol: float = 1.0e-12) -> bool:
        """True when the interaction parameter ``beta`` is (numerically)
        zero, i.e. ``C(h, u)`` factors into space and time parts."""
        theta = self.validate_theta(theta)
        return abs(float(theta[5])) <= tol

    def spatial_margin(self, theta: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Purely spatial section ``C(h, 0)``."""
        theta = self.validate_theta(theta)
        variance, a_s, nu = theta[0], theta[1], theta[2]
        h = np.asarray(h, dtype=np.float64)
        return variance * matern_correlation(h / a_s, nu)

    def temporal_margin(self, theta: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Purely temporal section ``C(0, u)``."""
        theta = self.validate_theta(theta)
        variance, a_t, alpha = theta[0], theta[3], theta[4]
        return variance / temporal_decay(np.asarray(u, dtype=np.float64), a_t, alpha)
