"""Nugget-augmented kernels: estimating micro-scale variance.

Real sensor data carries measurement error; the standard model adds a
"nugget" ``tau^2`` on the diagonal:

    C_nugget(s_i, s_j) = C(s_i, s_j) + tau^2 * 1{i == j}

:class:`NuggetKernel` wraps any base kernel, appending ``tau^2`` as a
*fitted* parameter (the fixed-nugget constructor arguments elsewhere
are regularizers, not model parameters).  Exact-zero distance is
detected via row identity, so only genuinely colocated pairs receive
the nugget — consistent with the tile-wise assembly, which evaluates
diagonal tiles on a single location set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import CovarianceKernel, ParameterSpec

__all__ = ["NuggetKernel", "NuggetGeometry"]


@dataclass(frozen=True)
class NuggetGeometry:
    """The wrapped base kernel's geometry plus the same-set flag the
    diagonal nugget needs."""

    base: object
    same: bool


class NuggetKernel(CovarianceKernel):
    """``base kernel + estimated nugget`` composite.

    ``theta = (*theta_base, nugget)``.  The nugget's lower bound is 0
    (open), so the optimizer can effectively turn it off.
    """

    def __init__(self, base: CovarianceKernel):
        self.base = base
        self.ndim_locations = base.ndim_locations

    @property
    def param_specs(self) -> tuple[ParameterSpec, ...]:
        return self.base.param_specs + (
            ParameterSpec("nugget", 0.0, np.inf, 0.01),
        )

    def _cross(self, theta: np.ndarray, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        c = self.base._cross(theta[:-1], x1, x2)
        if x1 is x2:
            c = c.copy()
            c[np.diag_indices_from(c)] += theta[-1]
        return c

    def geometry_key(self) -> str:
        return f"nugget({self.base.geometry_key()})"

    def prepare_geometry(
        self, x1: np.ndarray, x2: np.ndarray | None = None
    ) -> NuggetGeometry:
        return NuggetGeometry(self.base.prepare_geometry(x1, x2), x2 is None)

    def _cross_geometry(
        self, theta: np.ndarray, geom: NuggetGeometry
    ) -> np.ndarray:
        c = self.base._cross_geometry(
            self.base.validate_theta(theta[:-1]), geom.base
        )
        if geom.same:
            c = c.copy()
            c[np.diag_indices_from(c)] += theta[-1]
        return c

    def variance(self, theta: np.ndarray) -> float:
        """Total marginal variance ``C(0) + nugget`` (what the kriging
        uncertainty of Eq. 5 needs on its diagonal)."""
        theta = self.validate_theta(theta)
        return float(self.base.variance(theta[:-1]) + theta[-1])

    def split_theta(self, theta: np.ndarray) -> tuple[np.ndarray, float]:
        """``(theta_base, nugget)``."""
        theta = self.validate_theta(theta)
        return theta[:-1], float(theta[-1])
