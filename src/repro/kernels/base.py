"""Covariance-kernel interface.

A kernel maps a parameter vector ``theta`` and two location sets to a
cross-covariance matrix.  Kernels are *stateless*: parameters are always
passed explicitly, which is what the MLE loop needs (it re-evaluates the
same kernel at many ``theta``).

Every kernel publishes a tuple of :class:`ParameterSpec` so optimizers
can derive bounds/transforms and reports (Tables I and II of the paper)
can label estimates.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from .distance import as_locations

__all__ = [
    "ParameterSpec",
    "CovarianceKernel",
    "PairGeometry",
    "check_theta",
    "concat_flat",
    "split_flat",
]


def concat_flat(arrays: list[np.ndarray]) -> tuple[np.ndarray, list[tuple[int, ...]]]:
    """Concatenate arrays into one flat buffer, remembering shapes.

    The workhorse of ``_cross_geometry_batch`` overrides: element-wise
    kernel math on the concatenation is bit-identical to per-array
    evaluation (ufuncs have no cross-element coupling), so one
    vectorized call covers every tile of a fit.
    """
    shapes = [a.shape for a in arrays]
    if not arrays:
        return np.empty(0, dtype=np.float64), shapes
    return np.concatenate([np.asarray(a).ravel() for a in arrays]), shapes


def split_flat(
    flat: np.ndarray, shapes: list[tuple[int, ...]]
) -> list[np.ndarray]:
    """Invert :func:`concat_flat`: shaped views into the flat result."""
    out = []
    pos = 0
    for shape in shapes:
        n = 1
        for dim in shape:
            n *= int(dim)
        out.append(flat[pos:pos + n].reshape(shape))
        pos += n
    return out


@dataclass(frozen=True)
class PairGeometry:
    """Fallback theta-independent geometry: the validated location pair.

    Kernels that do not override :meth:`CovarianceKernel.prepare_geometry`
    get this; :meth:`CovarianceKernel.from_geometry` then simply re-runs
    the usual ``_cross`` evaluation (no reuse, but full correctness).
    ``same`` records that the two sets are one set — the diagonal-tile
    case, where exact-zero self-distances matter.
    """

    x1: np.ndarray
    x2: np.ndarray
    same: bool


@dataclass(frozen=True)
class ParameterSpec:
    """Description of one scalar kernel parameter.

    ``lower``/``upper`` are *open* bounds used by the optimizer's
    parameter transform; ``default`` seeds optimizers when the caller
    provides no initial guess.
    """

    name: str
    lower: float
    upper: float
    default: float

    def contains(self, value: float) -> bool:
        return bool(self.lower < value < self.upper) and np.isfinite(value)


def check_theta(theta: np.ndarray, specs: tuple[ParameterSpec, ...]) -> np.ndarray:
    """Validate ``theta`` against ``specs`` and return it as float64."""
    arr = np.asarray(theta, dtype=np.float64).ravel()
    if arr.shape[0] != len(specs):
        raise ParameterError(
            f"expected {len(specs)} parameters "
            f"({', '.join(s.name for s in specs)}), got {arr.shape[0]}"
        )
    for value, spec in zip(arr, specs):
        if not spec.contains(value):
            raise ParameterError(
                f"parameter {spec.name}={value!r} outside ({spec.lower}, {spec.upper})"
            )
    return arr


class CovarianceKernel(abc.ABC):
    """Abstract stationary covariance kernel.

    Subclasses implement :meth:`_cross` on validated inputs.  The public
    entry points are :meth:`__call__` (cross-covariance between two
    location sets) and :meth:`covariance_matrix` (symmetric matrix for
    one set, exact-zero-distance diagonal handled).
    """

    #: Expected number of columns of the location arrays (e.g. 2 for 2-D
    #: space, 3 for 2-D space + time).  ``None`` means any.
    ndim_locations: int | None = None

    @property
    @abc.abstractmethod
    def param_specs(self) -> tuple[ParameterSpec, ...]:
        """Ordered parameter specifications."""

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.param_specs)

    @property
    def nparams(self) -> int:
        return len(self.param_specs)

    def default_theta(self) -> np.ndarray:
        return np.array([s.default for s in self.param_specs], dtype=np.float64)

    def validate_theta(self, theta: np.ndarray) -> np.ndarray:
        return check_theta(theta, self.param_specs)

    @abc.abstractmethod
    def _cross(
        self, theta: np.ndarray, x1: np.ndarray, x2: np.ndarray
    ) -> np.ndarray:
        """Cross-covariance on validated ``theta`` and locations."""

    def __call__(
        self, theta: np.ndarray, x1: np.ndarray, x2: np.ndarray | None = None
    ) -> np.ndarray:
        """Cross-covariance matrix ``C[i, j] = cov(Z(x1_i), Z(x2_j))``."""
        theta = self.validate_theta(theta)
        x1 = as_locations(x1, dim=self.ndim_locations)
        x2 = x1 if x2 is None else as_locations(x2, dim=self.ndim_locations)
        return self._cross(theta, x1, x2)

    # ------------------------------------------------------------------
    # theta-independent geometry (the MLE hot-path cache, PR 3)
    # ------------------------------------------------------------------
    def geometry_key(self) -> str:
        """Identity of this kernel's precomputed-geometry layout.

        Two kernels whose keys match may share cached geometry for the
        same location array.  The default covers stateless kernels; a
        kernel whose geometry depends on extra instance state must fold
        that state into the key (see :class:`~repro.kernels.nugget.NuggetKernel`).
        """
        return f"{type(self).__qualname__}/{self.ndim_locations}"

    def prepare_geometry(
        self, x1: np.ndarray, x2: np.ndarray | None = None
    ) -> object:
        """Precompute everything a tile evaluation needs that does *not*
        depend on ``theta`` (distances, space-time lags, coordinate
        differences...).

        The returned object is opaque: it is only ever handed back to
        :meth:`from_geometry` of the same kernel.  The base
        implementation stores the validated locations themselves, so
        every kernel supports the API even without opting in.
        """
        x1 = as_locations(x1, dim=self.ndim_locations)
        same = x2 is None
        x2v = x1 if same else as_locations(x2, dim=self.ndim_locations)
        return PairGeometry(x1, x2v, same)

    def from_geometry(self, theta: np.ndarray, geom: object) -> np.ndarray:
        """Cross-covariance from precomputed geometry.

        Equivalent to ``self(theta, x1, x2)`` on the location pair the
        geometry was prepared from, but skipping every theta-independent
        computation.  Kernels that opt in must keep the arithmetic
        bit-compatible with ``_cross`` wherever possible (the geometry
        cache is on by default in :func:`~repro.core.mle.fit_mle`) and
        must never mutate the cached arrays.
        """
        theta = self.validate_theta(theta)
        return self._cross_geometry(theta, geom)

    def _cross_geometry(self, theta: np.ndarray, geom: object) -> np.ndarray:
        """Evaluate on validated ``theta``; override together with
        :meth:`prepare_geometry`."""
        if not isinstance(geom, PairGeometry):  # pragma: no cover - misuse
            raise ParameterError(
                f"{type(self).__name__} got foreign geometry {type(geom).__name__}"
            )
        return self._cross(theta, geom.x1, geom.x2)

    def from_geometry_batch(
        self, theta: np.ndarray, geoms: list[object]
    ) -> list[np.ndarray]:
        """Cross-covariances of *many* tiles at one ``theta``.

        Equivalent to ``[self.from_geometry(theta, g) for g in geoms]``
        but with ``theta`` validated once and — for kernels that
        override :meth:`_cross_geometry_batch` — the transcendental
        kernel math evaluated in a single vectorized call over the
        concatenated geometry (one ``special.kve`` invocation per fit
        instead of one per tile).  Overrides must stay bit-identical to
        the per-tile path; element-wise math on a concatenation
        guarantees that for free.
        """
        theta = self.validate_theta(theta)
        return self._cross_geometry_batch(theta, list(geoms))

    def _cross_geometry_batch(
        self, theta: np.ndarray, geoms: list[object]
    ) -> list[np.ndarray]:
        """Batched evaluation on validated ``theta``.  The base
        implementation loops :meth:`_cross_geometry` (full correctness,
        no fusion); kernels whose math is element-wise override it with
        a concat-evaluate-split."""
        return [self._cross_geometry(theta, geom) for geom in geoms]

    def covariance_matrix(
        self, theta: np.ndarray, x: np.ndarray, *, nugget: float = 0.0
    ) -> np.ndarray:
        """Symmetric covariance matrix of one location set.

        ``nugget`` adds a diagonal micro-scale variance (also a common
        numerical regularizer when sampling).
        """
        c = self(theta, x)
        c = 0.5 * (c + c.T)  # enforce exact symmetry
        if nugget:
            c[np.diag_indices_from(c)] += nugget
        return c

    def variance(self, theta: np.ndarray) -> float:
        """Marginal variance ``C(0)``; first parameter by convention in
        every kernel shipped with this package."""
        theta = self.validate_theta(theta)
        return float(theta[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({', '.join(self.param_names)})"
