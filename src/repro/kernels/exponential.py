"""Simple stationary kernels: exponential, powered exponential, and
squared exponential (Gaussian).

These are not the paper's headline models but serve three roles:

* cheap baselines in tests (the exponential equals Matérn ``nu = 1/2``,
  giving an independent cross-check of the Matérn implementation);
* extreme-smoothness stress cases for TLR compression (the Gaussian
  kernel yields very low off-diagonal tile ranks, the exponential high
  ones), used by the rank-profile tests;
* drop-in models for users of the public API.
"""

from __future__ import annotations

import numpy as np

from .base import CovarianceKernel, ParameterSpec, concat_flat, split_flat
from .distance import as_locations, cross_distance, cross_sq_distance
from .matern import DistanceGeometry

__all__ = ["ExponentialKernel", "PoweredExponentialKernel", "GaussianKernel"]


class _DistanceGeometryMixin:
    """Shared geometry plumbing for kernels that only need the
    Euclidean distance matrix (theta enters afterwards)."""

    def geometry_key(self) -> str:
        return f"dist/{self.ndim_locations}"

    def prepare_geometry(
        self, x1: np.ndarray, x2: np.ndarray | None = None
    ) -> DistanceGeometry:
        x1 = as_locations(x1, dim=self.ndim_locations)
        same = x2 is None
        x2v = x1 if same else as_locations(x2, dim=self.ndim_locations)
        return DistanceGeometry(cross_distance(x1, x2v), same)


class ExponentialKernel(_DistanceGeometryMixin, CovarianceKernel):
    """``C(r) = variance * exp(-r / range)`` — Matérn with ``nu = 1/2``."""

    def __init__(self, ndim: int | None = 2):
        self.ndim_locations = ndim

    @property
    def param_specs(self) -> tuple[ParameterSpec, ...]:
        return (
            ParameterSpec("variance", 0.0, np.inf, 1.0),
            ParameterSpec("range", 0.0, np.inf, 0.1),
        )

    def _cross(self, theta: np.ndarray, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        variance, rng = theta
        r = cross_distance(x1, x2)
        r /= -rng
        return variance * np.exp(r, out=r)

    def _cross_geometry(
        self, theta: np.ndarray, geom: DistanceGeometry
    ) -> np.ndarray:
        variance, rng = theta
        r = geom.r / -rng
        return variance * np.exp(r, out=r)

    def _cross_geometry_batch(
        self, theta: np.ndarray, geoms: list[DistanceGeometry]
    ) -> list[np.ndarray]:
        # Element-wise exp over the concatenated distances of every
        # tile; bit-identical to the per-tile loop.  ``flat`` is a fresh
        # concatenation, so the whole sweep runs in place — at n=1800
        # the three temporaries this avoids are ~26 MB each.
        variance, rng = theta
        flat, shapes = concat_flat([g.r for g in geoms])
        flat /= -rng
        np.exp(flat, out=flat)
        flat *= variance
        return split_flat(flat, shapes)


class PoweredExponentialKernel(_DistanceGeometryMixin, CovarianceKernel):
    """``C(r) = variance * exp(-(r / range)^power)``, ``0 < power <= 2``."""

    def __init__(self, ndim: int | None = 2):
        self.ndim_locations = ndim

    @property
    def param_specs(self) -> tuple[ParameterSpec, ...]:
        return (
            ParameterSpec("variance", 0.0, np.inf, 1.0),
            ParameterSpec("range", 0.0, np.inf, 0.1),
            ParameterSpec("power", 0.0, 2.0 + 1.0e-12, 1.0),
        )

    def _cross(self, theta: np.ndarray, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        variance, rng, power = theta
        r = cross_distance(x1, x2)
        r /= rng
        out = np.zeros_like(r)
        positive = r > 0.0
        out[positive] = np.exp(power * np.log(r[positive]))
        return variance * np.exp(-out, out=out)

    def _cross_geometry(
        self, theta: np.ndarray, geom: DistanceGeometry
    ) -> np.ndarray:
        variance, rng, power = theta
        r = geom.r / rng
        out = np.zeros_like(r)
        positive = r > 0.0
        out[positive] = np.exp(power * np.log(r[positive]))
        return variance * np.exp(-out, out=out)


class GaussianKernel(CovarianceKernel):
    """``C(r) = variance * exp(-(r / range)^2 / 2)`` (squared
    exponential); analytically smooth, so its covariance matrices have
    near-minimal off-diagonal tile ranks."""

    def __init__(self, ndim: int | None = 2):
        self.ndim_locations = ndim

    @property
    def param_specs(self) -> tuple[ParameterSpec, ...]:
        return (
            ParameterSpec("variance", 0.0, np.inf, 1.0),
            ParameterSpec("range", 0.0, np.inf, 0.1),
        )

    def _cross(self, theta: np.ndarray, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        variance, rng = theta
        d2 = cross_sq_distance(x1, x2)
        d2 /= -2.0 * rng * rng
        return variance * np.exp(d2, out=d2)

    def geometry_key(self) -> str:
        return f"sqdist/{self.ndim_locations}"

    def prepare_geometry(
        self, x1: np.ndarray, x2: np.ndarray | None = None
    ) -> DistanceGeometry:
        # Squared distances (what the kernel consumes directly).
        x1 = as_locations(x1, dim=self.ndim_locations)
        same = x2 is None
        x2v = x1 if same else as_locations(x2, dim=self.ndim_locations)
        return DistanceGeometry(cross_sq_distance(x1, x2v), same)

    def _cross_geometry(
        self, theta: np.ndarray, geom: DistanceGeometry
    ) -> np.ndarray:
        variance, rng = theta
        d2 = geom.r / (-2.0 * rng * rng)
        return variance * np.exp(d2, out=d2)

    def _cross_geometry_batch(
        self, theta: np.ndarray, geoms: list[DistanceGeometry]
    ) -> list[np.ndarray]:
        variance, rng = theta
        flat, shapes = concat_flat([g.r for g in geoms])
        d2 = flat / (-2.0 * rng * rng)
        return split_flat(variance * np.exp(d2, out=d2), shapes)
