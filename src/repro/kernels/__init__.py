"""Covariance kernels and distance computations.

Public surface:

* :class:`~repro.kernels.base.CovarianceKernel` — the kernel interface.
* :class:`~repro.kernels.matern.MaternKernel` — the paper's space model.
* :class:`~repro.kernels.gneiting.GneitingMaternKernel` — the paper's
  nonseparable space-time model (Eq. 6).
* Simple baselines in :mod:`repro.kernels.exponential`.
* Distance helpers in :mod:`repro.kernels.distance`.
"""

from .anisotropic import AnisotropicMaternKernel
from .base import CovarianceKernel, ParameterSpec
from .bivariate import (
    BivariateMaternKernel,
    parsimonious_rho_max,
    stack_bivariate,
)
from .distance import (
    as_locations,
    cross_distance,
    cross_space_time_lags,
    cross_sq_distance,
    great_circle_distance,
    pairwise_distance,
    split_space_time,
)
from .exponential import ExponentialKernel, GaussianKernel, PoweredExponentialKernel
from .gneiting import GneitingMaternKernel, temporal_decay
from .matern import MaternKernel, matern_correlation
from .nugget import NuggetKernel

__all__ = [
    "CovarianceKernel",
    "ParameterSpec",
    "AnisotropicMaternKernel",
    "BivariateMaternKernel",
    "parsimonious_rho_max",
    "stack_bivariate",
    "MaternKernel",
    "NuggetKernel",
    "matern_correlation",
    "GneitingMaternKernel",
    "temporal_decay",
    "ExponentialKernel",
    "PoweredExponentialKernel",
    "GaussianKernel",
    "as_locations",
    "cross_distance",
    "cross_sq_distance",
    "pairwise_distance",
    "split_space_time",
    "cross_space_time_lags",
    "great_circle_distance",
]
