"""Full MLE-iteration time estimate (generation + Cholesky + solve).

The paper's performance attribute table says what is timed: "a single
iteration of MLE that is a proxy of the overall simulation".  One
iteration is:

1. tile-wise covariance generation (+ compression + decisions),
2. the tile Cholesky factorization (the dominant term),
3. one forward substitution and the log-determinant reduction.

:func:`estimate_mle_iteration` adds the generation and solve terms to
the factorization estimate; generation is bandwidth/evaluation bound
(~``KERNEL_EVAL_FLOPS`` flops per covariance entry, Bessel-function
dominated for fractional smoothness), the solve is a thin O(n * b)
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cholesky import ScaleEstimate, estimate_cholesky
from .machine import A64FX, MachineSpec
from .profiles import PlanProfile

__all__ = ["MLEIterationEstimate", "estimate_mle_iteration", "KERNEL_EVAL_FLOPS"]

#: Effective flops to evaluate one Matérn covariance entry (distance,
#: power/exp, and the K_nu evaluation for fractional smoothness).
KERNEL_EVAL_FLOPS = 60.0

#: Compression adds roughly one rank-revealing pass over off-band
#: tiles; modeled as this multiple of the plain generation cost.
COMPRESSION_FACTOR = 2.0


@dataclass(frozen=True)
class MLEIterationEstimate:
    """Breakdown of one MLE iteration at scale."""

    generation_s: float
    factorization: ScaleEstimate
    solve_s: float

    @property
    def total_s(self) -> float:
        return self.generation_s + self.factorization.time_s + self.solve_s

    @property
    def factorization_fraction(self) -> float:
        return self.factorization.time_s / self.total_s


def estimate_mle_iteration(
    profile: PlanProfile,
    n: int,
    tile_size: int,
    machine: MachineSpec = A64FX,
    nodes: int = 1,
    *,
    cores_per_node: int | None = None,
    band_size: int = 1,
    shgemm_mode: str = "sgemm_fallback",
    compressed: bool | None = None,
) -> MLEIterationEstimate:
    """Estimate one full MLE iteration.

    ``compressed=None`` infers whether compression applies from the
    profile (any low-rank class present).
    """
    fact = estimate_cholesky(
        profile, n, tile_size, machine, nodes,
        cores_per_node=cores_per_node, band_size=band_size,
        shgemm_mode=shgemm_mode,
    )
    cores = cores_per_node or machine.cores_per_node
    resources = nodes * cores

    if compressed is None:
        lr = profile.class_fraction("lr/FP64") + profile.class_fraction("lr/FP32")
        compressed = lr > 0.0

    # Generation: nt(nt+1)/2 tiles x b^2 entries, each costing
    # KERNEL_EVAL_FLOPS at the dense sustained rate (generation kernels
    # vectorize well), doubled-ish by compression.
    entries = fact.nt * (fact.nt + 1) / 2.0 * tile_size * tile_size
    gen_flops = entries * KERNEL_EVAL_FLOPS
    if compressed:
        gen_flops *= COMPRESSION_FACTOR
    from ..tile.precision import Precision

    gen_rate = machine.dense_rate(Precision.FP64) * resources
    generation_s = gen_flops / gen_rate

    # Solve: forward substitution (~n * b useful flops per tile row,
    # n^2 total) at the memory-bound rate, plus logdet (negligible).
    solve_flops = float(n) * n
    solve_bytes = fact.storage_bytes  # one streaming pass over the factor
    solve_s = max(
        solve_flops / (machine.tlr_rate(Precision.FP64) * resources),
        solve_bytes / (machine.mem_bw_gbs * 1e9 * nodes),
    )

    return MLEIterationEstimate(
        generation_s=float(generation_s),
        factorization=fact,
        solve_s=float(solve_s),
    )
