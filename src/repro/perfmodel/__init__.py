"""Analytical performance models.

This subpackage stands in for the hardware the paper ran on (Fugaku's
A64FX nodes, Shaheen II's Haswell nodes).  It supplies:

* :class:`~repro.perfmodel.machine.MachineSpec` hardware descriptions;
* flop/byte counts of every tile kernel (:mod:`repro.perfmodel.gemm`);
* a roofline per-task time model (:mod:`repro.perfmodel.kernelmodel`)
  used by the structure-aware decision (Algorithm 2) and by the
  discrete-event scaling simulator;
* the dense/TLR crossover analysis of Fig. 5
  (:mod:`repro.perfmodel.crossover`);
* checkpoint/restart cost modeling with the Young/Daly optimal
  interval (:mod:`repro.perfmodel.resilience`), feeding the fault-aware
  simulator.
"""

from .cholesky import ScaleEstimate, estimate_cholesky, project_classes
from .energy import A64FX_ENERGY, EnergyModel, estimate_energy, task_energy
from .feasibility import max_feasible_n, storage_per_node
from .resilience import (
    application_mtbf,
    checkpoint_cost_s,
    daly_interval,
    expected_waste,
    young_interval,
)
from .iteration import MLEIterationEstimate, estimate_mle_iteration
from .crossover import (
    crossover_rank,
    gemm_ratio_curve,
    gemm_time_dense,
    gemm_time_tlr,
)
from .profiles import CLASSES, PlanProfile
from .gemm import (
    dense_gemm_bytes,
    dense_gemm_flops,
    dense_potrf_flops,
    dense_syrk_flops,
    dense_trsm_flops,
    lr_product_flops,
    lr_recompress_flops,
    tlr_gemm_bytes,
    tlr_gemm_flops,
    tlr_trsm_flops,
)
from .kernelmodel import TaskShape, task_bytes, task_flops, task_time
from .machine import A64FX, FUGAKU_NODE, HASWELL_NODE, SHGEMM_MODES, MachineSpec

__all__ = [
    "ScaleEstimate",
    "EnergyModel",
    "A64FX_ENERGY",
    "task_energy",
    "estimate_energy",
    "max_feasible_n",
    "storage_per_node",
    "checkpoint_cost_s",
    "young_interval",
    "daly_interval",
    "application_mtbf",
    "expected_waste",
    "MLEIterationEstimate",
    "estimate_mle_iteration",
    "estimate_cholesky",
    "project_classes",
    "PlanProfile",
    "CLASSES",
    "MachineSpec",
    "A64FX",
    "FUGAKU_NODE",
    "HASWELL_NODE",
    "SHGEMM_MODES",
    "TaskShape",
    "task_flops",
    "task_bytes",
    "task_time",
    "crossover_rank",
    "gemm_ratio_curve",
    "gemm_time_dense",
    "gemm_time_tlr",
    "dense_gemm_flops",
    "dense_trsm_flops",
    "dense_syrk_flops",
    "dense_potrf_flops",
    "dense_gemm_bytes",
    "lr_product_flops",
    "lr_recompress_flops",
    "tlr_gemm_flops",
    "tlr_trsm_flops",
    "tlr_gemm_bytes",
]
