"""Energy model (paper Section V-A: "fast and energy-efficient low
precision floating-point units").

A simple but standard accounting: each task consumes

    E = flops * J_per_flop(precision) + bytes * J_per_byte
        + duration * static_power_per_core

with per-precision flop energies scaling inversely with throughput
(FP32 ~ 1/2, FP16 ~ 1/4 the energy per flop of FP64 on SIMD units) and
the A64FX's published power envelope setting the constants.  This
quantifies the secondary claim of the mixed-precision campaign: lower
precision saves energy, TLR saves even more by removing flops/bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tile.precision import Precision
from .kernelmodel import TaskShape, task_bytes, task_flops, task_time
from .machine import A64FX, MachineSpec

__all__ = ["EnergyModel", "A64FX_ENERGY", "task_energy", "estimate_energy"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy constants of one node."""

    name: str
    joule_per_flop_fp64: float
    joule_per_byte: float
    static_watt_per_core: float

    def joule_per_flop(self, precision: Precision) -> float:
        scale = {
            Precision.FP64: 1.0,
            Precision.FP32: 0.5,
            Precision.FP16: 0.25,
        }[precision]
        return self.joule_per_flop_fp64 * scale


def _a64fx_energy() -> EnergyModel:
    # A64FX node: ~120 W at ~2 Tflop/s sustained FP64 -> ~6e-11 J/flop
    # attributable to compute; HBM2 ~ 4 pJ/byte; ~0.8 W static per core.
    return EnergyModel(
        name="A64FX",
        joule_per_flop_fp64=6.0e-11,
        joule_per_byte=4.0e-12,
        static_watt_per_core=0.8,
    )


A64FX_ENERGY = _a64fx_energy()


def task_energy(
    shape: TaskShape,
    machine: MachineSpec = A64FX,
    energy: EnergyModel = A64FX_ENERGY,
    *,
    shgemm_mode: str = "sgemm_fallback",
) -> float:
    """Energy of one tile task in joules."""
    flops = task_flops(shape)
    nbytes = task_bytes(shape)
    duration = task_time(shape, machine, shgemm_mode=shgemm_mode)
    return (
        flops * energy.joule_per_flop(shape.precision)
        + nbytes * energy.joule_per_byte
        + duration * energy.static_watt_per_core
    )


def estimate_energy(
    profile,
    n: int,
    tile_size: int,
    machine: MachineSpec = A64FX,
    energy: EnergyModel = A64FX_ENERGY,
    *,
    band_size: int = 1,
    shgemm_mode: str = "sgemm_fallback",
) -> float:
    """Aggregate Cholesky energy at scale, joules.

    Mirrors the flop aggregation of
    :func:`repro.perfmodel.cholesky.estimate_cholesky`: per-offset class
    mixes weighted by the tile multiplicities of the factorization.
    """
    import numpy as np

    from .cholesky import project_classes
    from .profiles import CLASSES, PlanProfile

    nt = -(-n // tile_size)
    fractions, ranks = project_classes(
        profile, nt, tile_size, machine, band_size=band_size
    )

    # Per-offset expected energies of one GEMM / TRSM / SYRK task.
    def op_energy(op: str) -> np.ndarray:
        out = np.zeros(nt)
        for c, name in enumerate(CLASSES):
            col = fractions[:, c]
            if not np.any(col):
                continue
            precision = PlanProfile.class_precision(name)
            lr = PlanProfile.class_is_lr(name)
            for d in np.nonzero(col)[0]:
                r = int(max(ranks[d], 1)) if lr else 0
                if op == "gemm":
                    shape = TaskShape("gemm", tile_size, precision,
                                      low_rank=lr, ranks=(r, r, r) if lr else ())
                elif op == "trsm":
                    shape = TaskShape("trsm", tile_size, precision,
                                      low_rank=lr, ranks=(r,) if lr else ())
                else:
                    shape = TaskShape("syrk", tile_size, Precision.FP64,
                                      ranks=(r,) if lr else ())
                out[d] += col[d] * task_energy(
                    shape, machine, energy, shgemm_mode=shgemm_mode
                )
        return out

    ge = op_energy("gemm")
    te = op_energy("trsm")
    se = op_energy("syrk")
    pe = task_energy(TaskShape("potrf", tile_size), machine, energy)

    # Multiplicities: TRSM/SYRK at offset d occur (nt - d) times; GEMM
    # outputs at offset d occur sum_k max(nt-k-1-d, 0) times.
    d = np.arange(nt, dtype=np.float64)
    trsm_mult = nt - d
    gemm_mult = (nt - d) * (nt - d - 1) / 2.0
    total = nt * pe
    total += float(np.sum(trsm_mult[1:] * (te[1:] + se[1:])))
    total += float(np.sum(gemm_mult[1:] * ge[1:]))
    return total
