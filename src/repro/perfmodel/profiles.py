"""Offset-class profiles: projecting measured tile plans to paper scale.

At full paper scale (matrix dimension 10^6-10^7, NT ~ 3000) the task
set is too large to enumerate, but the *decision pattern* of the
adaptive plans is essentially a function of the normalized off-diagonal
offset ``d / NT``:

* the Frobenius precision rule is scale-invariant in that variable —
  the tile/global norm ratio and the rule threshold both carry a
  ``1/NT`` factor that cancels;
* epsilon-ranks of well-separated cluster interactions saturate with
  tile size (standard hierarchical-matrix admissibility), so measured
  absolute ranks at small scale are a faithful stand-in at large scale.

A :class:`PlanProfile` therefore records, per sub-diagonal offset of a
*measured* laptop-scale plan, the fraction of tiles in each
(structure, precision) class and the mean low-rank rank.  The scaling
estimator (:mod:`repro.perfmodel.cholesky`) interpolates it at any
target NT and re-applies the *scale-dependent* decisions (Fig. 5
crossover, Algorithm 2 band) at the target tile size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..tile.decisions import TilePlan
from ..tile.precision import Precision

__all__ = ["CLASSES", "PlanProfile"]

#: Tile classes tracked by profiles (order fixed; arrays index into it).
CLASSES: tuple[str, ...] = (
    "dense/FP64",
    "dense/FP32",
    "dense/FP16",
    "lr/FP64",
    "lr/FP32",
)

_CLASS_INDEX = {name: k for k, name in enumerate(CLASSES)}
_PRECISION_OF_CLASS = {
    "dense/FP64": Precision.FP64,
    "dense/FP32": Precision.FP32,
    "dense/FP16": Precision.FP16,
    "lr/FP64": Precision.FP64,
    "lr/FP32": Precision.FP32,
}


def _class_label(low_rank: bool, precision: Precision) -> str:
    kind = "lr" if low_rank else "dense"
    return f"{kind}/{precision.label}"


@dataclass(frozen=True)
class PlanProfile:
    """Per-offset class fractions and mean LR ranks of a tile plan.

    ``fractions[d, c]`` is the fraction of tiles at sub-diagonal offset
    ``d`` in class ``c`` (rows sum to 1); ``mean_rank[d]`` the mean
    rank of the low-rank tiles there (0 when none).  ``nt`` is the tile
    count of the measured plan.
    """

    fractions: np.ndarray
    mean_rank: np.ndarray
    nt: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.fractions.shape != (self.nt, len(CLASSES)):
            raise ConfigurationError("fractions must be (nt, n_classes)")
        if self.mean_rank.shape != (self.nt,):
            raise ConfigurationError("mean_rank must be (nt,)")
        sums = self.fractions.sum(axis=1)
        if not np.allclose(sums, 1.0, atol=1e-9):
            raise ConfigurationError("class fractions must sum to 1 per offset")

    # ------------------------------------------------------------------
    @classmethod
    def from_plan(cls, plan: TilePlan, label: str = "") -> "PlanProfile":
        """Aggregate a measured :class:`TilePlan` by sub-diagonal offset."""
        nt = plan.nt
        counts = np.zeros((nt, len(CLASSES)), dtype=np.float64)
        rank_sum = np.zeros(nt)
        rank_cnt = np.zeros(nt)
        ranks = plan.meta.get("ranks", {})
        for (i, j), precision in plan.precisions.items():
            d = i - j
            lr = plan.use_lr[(i, j)]
            counts[d, _CLASS_INDEX[_class_label(lr, precision)]] += 1.0
            if lr:
                rank_sum[d] += ranks.get((i, j), plan.layout.tile_size // 2)
                rank_cnt[d] += 1.0
        totals = counts.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        fractions = counts / totals
        mean_rank = np.where(rank_cnt > 0, rank_sum / np.maximum(rank_cnt, 1), 0.0)
        return cls(fractions=fractions, mean_rank=mean_rank, nt=nt, label=label)

    @classmethod
    def dense_fp64(cls, nt: int = 2, label: str = "dense-fp64") -> "PlanProfile":
        """The reference variant: everything dense FP64."""
        fr = np.zeros((nt, len(CLASSES)))
        fr[:, _CLASS_INDEX["dense/FP64"]] = 1.0
        return cls(fractions=fr, mean_rank=np.zeros(nt), nt=nt, label=label)

    # ------------------------------------------------------------------
    def at_offsets(self, nt_target: int) -> tuple[np.ndarray, np.ndarray]:
        """Interpolate (fractions, mean_rank) onto ``nt_target``
        offsets by matching normalized offset ``d / nt``."""
        if nt_target < 1:
            raise ConfigurationError("target nt must be >= 1")
        src = np.arange(self.nt) / max(self.nt - 1, 1)
        dst = np.arange(nt_target) / max(nt_target - 1, 1)
        fr = np.empty((nt_target, len(CLASSES)))
        for c in range(len(CLASSES)):
            fr[:, c] = np.interp(dst, src, self.fractions[:, c])
        # Renormalize interpolation drift.
        fr /= fr.sum(axis=1, keepdims=True)
        # Rank interpolation over offsets that actually carry low-rank
        # tiles; the diagonal's structural rank-0 entry must not drag
        # near-diagonal ranks toward zero.
        carrier = np.nonzero(self.mean_rank > 0)[0]
        if carrier.size:
            mr = np.interp(dst, src[carrier], self.mean_rank[carrier])
        else:
            mr = np.zeros(nt_target)
        return fr, mr

    def class_fraction(self, name: str) -> float:
        """Overall fraction of lower-triangle tiles in a class,
        weighting offset ``d`` by its tile count ``nt - d``."""
        weights = (self.nt - np.arange(self.nt)).astype(np.float64)
        col = self.fractions[:, _CLASS_INDEX[name]]
        return float(np.sum(col * weights) / np.sum(weights))

    @staticmethod
    def class_precision(name: str) -> Precision:
        return _PRECISION_OF_CLASS[name]

    @staticmethod
    def class_is_lr(name: str) -> bool:
        return name.startswith("lr/")
