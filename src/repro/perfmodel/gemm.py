"""Flop and byte counts of the tile kernels, dense and TLR.

These formulas drive the structure-aware decision (dense vs TLR,
Section VI-B / Fig. 5 of the paper) and the discrete-event simulator.
Dense counts follow standard LAPACK conventions; the TLR GEMM count
follows the HiCMA update: form the low-rank product, then recompress
the sum with QR factorizations of the stacked factors plus an SVD of
the small core.
"""

from __future__ import annotations

__all__ = [
    "dense_gemm_flops",
    "dense_trsm_flops",
    "dense_syrk_flops",
    "dense_potrf_flops",
    "lr_product_flops",
    "lr_recompress_flops",
    "tlr_gemm_flops",
    "tlr_trsm_flops",
    "dense_gemm_bytes",
    "tlr_gemm_bytes",
]

#: LAPACK-style constant for the small-core SVD inside recompression.
_SVD_CONST = 22.0


def dense_gemm_flops(b: int, k: int | None = None) -> float:
    """``C (b x b) -= A (b x k) @ B (b x k).T``; ``k`` defaults to b."""
    k = b if k is None else k
    return 2.0 * b * b * k


def dense_trsm_flops(m: int, b: int) -> float:
    """``A (m x b) <- A @ L^{-T}`` with triangular ``L (b x b)``."""
    return float(m) * b * b


def dense_syrk_flops(b: int, k: int | None = None) -> float:
    """``C (b x b, symmetric) -= A (b x k) @ A.T``."""
    k = b if k is None else k
    return float(b) * (b + 1) * k


def dense_potrf_flops(b: int) -> float:
    """Cholesky of one ``b x b`` tile."""
    return b**3 / 3.0 + b * b / 2.0


def lr_product_flops(b: int, ra: int, rb: int) -> float:
    """Low-rank x low-rank product ``(Ua Va^T)(Ub Vb^T)^T``:
    one ``b x ra`` by ``b x rb`` inner product plus folding the small
    core into the thinner factor."""
    core = 2.0 * b * ra * rb
    fold = 2.0 * b * ra * rb / max(ra, rb, 1) * min(ra, rb)
    return core + fold


def lr_recompress_flops(b: int, k: int, rank_out: int | None = None) -> float:
    """QR-of-stacked-factors recompression of a rank-``k``
    representation of a ``b x b`` tile down to ``rank_out``."""
    rank_out = k if rank_out is None else rank_out
    qr = 2.0 * (2.0 * b * k * k)  # two thin QRs (U and V stacks)
    svd = _SVD_CONST * k**3
    form = 2.0 * (2.0 * b * k * rank_out)
    return qr + svd + form


def tlr_gemm_flops(
    b: int, ra: int, rb: int, rc: int, rank_out: int | None = None
) -> float:
    """TLR GEMM ``C (LR, rank rc) -= A (LR, ra) @ B (LR, rb).T``
    including the recompression of the stacked sum."""
    rn = min(ra, rb)
    stacked = rc + rn
    rank_out = rc if rank_out is None else rank_out
    return lr_product_flops(b, ra, rb) + lr_recompress_flops(b, stacked, rank_out)


def tlr_trsm_flops(b: int, rank: int) -> float:
    """TRSM applied to the ``V`` factor of a low-rank tile."""
    return float(rank) * b * b


def dense_gemm_bytes(b: int, itemsize: int, k: int | None = None) -> float:
    """Memory traffic of a dense GEMM: read A, B, read+write C."""
    k = b if k is None else k
    return float(itemsize) * (2.0 * b * k + 2.0 * b * b)


def tlr_gemm_bytes(b: int, ra: int, rb: int, rc: int, itemsize: int) -> float:
    """Memory traffic of a TLR GEMM.  The factors are streamed several
    times (product, two QRs, reconstruction); the multiplier 4 matches
    the pass count of the recompression pipeline."""
    factors = b * (ra + rb) + 2.0 * b * (rc + min(ra, rb))
    return 4.0 * itemsize * factors
