"""Dense vs TLR GEMM crossover analysis (paper Fig. 5).

For a given tile size the TLR GEMM is cheaper than the dense GEMM only
below a *crossover rank*; above it, the compression overhead is not
justified and the runtime should convert the tile back to dense.  The
paper measures a crossover near rank 200 on one A64FX core; these
functions reproduce the curve (time vs rank and the dense/TLR time
ratio) from the model and locate the crossover.
"""

from __future__ import annotations

import numpy as np

from ..tile.precision import Precision
from .kernelmodel import TaskShape, task_time
from .machine import MachineSpec

__all__ = ["gemm_time_dense", "gemm_time_tlr", "gemm_ratio_curve", "crossover_rank"]


def gemm_time_dense(
    b: int, machine: MachineSpec, precision: Precision = Precision.FP64
) -> float:
    """Modeled single-core dense GEMM time for a ``b x b`` tile."""
    return task_time(TaskShape("gemm", b, precision), machine)


def gemm_time_tlr(
    b: int,
    rank: int,
    machine: MachineSpec,
    precision: Precision = Precision.FP64,
) -> float:
    """Modeled single-core TLR GEMM time with all operands at ``rank``."""
    shape = TaskShape("gemm", b, precision, low_rank=True, ranks=(rank, rank, rank))
    return task_time(shape, machine)


def gemm_ratio_curve(
    b: int,
    ranks: np.ndarray,
    machine: MachineSpec,
    precision: Precision = Precision.FP64,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The Fig. 5 data: ``(tlr_times, dense_times, dense/tlr ratio)``
    over an array of ranks."""
    ranks = np.asarray(ranks, dtype=np.int64)
    dense = gemm_time_dense(b, machine, precision)
    tlr = np.array([gemm_time_tlr(b, int(r), machine, precision) for r in ranks])
    dense_arr = np.full_like(tlr, dense)
    return tlr, dense_arr, dense_arr / tlr


def crossover_rank(
    b: int,
    machine: MachineSpec,
    precision: Precision = Precision.FP64,
    *,
    max_rank: int | None = None,
) -> int:
    """Smallest rank at which the TLR GEMM is no faster than dense.

    Returns ``max_rank`` (default ``b``) when TLR wins everywhere —
    which cannot happen for sane models since rank ``b`` degenerates to
    more work than dense.  Bisection over the monotone rank axis.
    """
    max_rank = b if max_rank is None else max_rank
    dense = gemm_time_dense(b, machine, precision)
    if gemm_time_tlr(b, 1, machine, precision) >= dense:
        return 1
    lo, hi = 1, max_rank
    if gemm_time_tlr(b, hi, machine, precision) < dense:
        return hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if gemm_time_tlr(b, mid, machine, precision) < dense:
            lo = mid
        else:
            hi = mid
    return hi
