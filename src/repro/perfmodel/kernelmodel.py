"""Per-task time model (roofline style).

``task_time`` maps one tile task — operation, structure, precision,
tile size, ranks — to a modeled duration on one core of a
:class:`~repro.perfmodel.machine.MachineSpec`:

    time = max(flops / sustained_rate, bytes / per-core bandwidth)
           + task overhead

Dense kernels use the ``efficiency``-scaled peak (compute bound at the
paper's tile sizes); TLR kernels use the much lower ``tlr_efficiency``
rate and are usually bandwidth bound — this is the quantitative content
of Fig. 5 and the basis of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tile.precision import Precision
from .gemm import (
    dense_gemm_bytes,
    dense_gemm_flops,
    dense_potrf_flops,
    dense_syrk_flops,
    dense_trsm_flops,
    tlr_gemm_bytes,
    tlr_gemm_flops,
    tlr_trsm_flops,
)
from .machine import MachineSpec

__all__ = ["TaskShape", "task_flops", "task_bytes", "task_time"]

_OPS = ("potrf", "trsm", "syrk", "gemm")


@dataclass(frozen=True)
class TaskShape:
    """Geometric description of one tile task.

    ``ranks`` holds the relevant low-rank ranks, in operand order
    (unused entries 0): for a TLR GEMM these are ``(ra, rb, rc)``; for
    a TLR TRSM ``(rank,)``.  ``low_rank`` flags whether the *output*
    tile (the lead operand) is low-rank.
    """

    op: str
    b: int
    precision: Precision = Precision.FP64
    low_rank: bool = False
    ranks: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown op {self.op!r}; expected one of {_OPS}")


def task_flops(shape: TaskShape) -> float:
    """Modeled flop count of one task."""
    b = shape.b
    if shape.op == "potrf":
        return dense_potrf_flops(b)
    if shape.op == "trsm":
        if shape.low_rank:
            rank = shape.ranks[0] if shape.ranks else b // 2
            return tlr_trsm_flops(b, rank)
        return dense_trsm_flops(b, b)
    if shape.op == "syrk":
        if shape.low_rank or shape.ranks:
            # SYRK consumes a low-rank A: C -= (U W) U^T.
            rank = shape.ranks[0] if shape.ranks else b // 2
            return 2.0 * b * rank * rank + 2.0 * b * b * rank
        return dense_syrk_flops(b)
    # gemm
    if shape.low_rank:
        ra, rb, rc = (tuple(shape.ranks) + (b // 2,) * 3)[:3]
        return tlr_gemm_flops(b, ra, rb, rc)
    if shape.ranks:
        # Dense output, low-rank input(s): dense update of width r.
        r = max(shape.ranks)
        return 2.0 * b * b * r + 2.0 * b * r * r
    return dense_gemm_flops(b)


def task_bytes(shape: TaskShape) -> float:
    """Modeled memory traffic of one task."""
    b = shape.b
    itemsize = shape.precision.itemsize
    if shape.op == "potrf":
        return 2.0 * itemsize * b * b
    if shape.op == "trsm":
        if shape.low_rank:
            rank = shape.ranks[0] if shape.ranks else b // 2
            return itemsize * (b * b / 2.0 + 2.0 * b * rank)
        return itemsize * (b * b / 2.0 + 2.0 * b * b)
    if shape.op == "syrk":
        if shape.low_rank or shape.ranks:
            rank = shape.ranks[0] if shape.ranks else b // 2
            return itemsize * (2.0 * b * rank + 2.0 * b * b)
        return itemsize * (b * b + 2.0 * b * b)
    if shape.low_rank:
        ra, rb, rc = (tuple(shape.ranks) + (b // 2,) * 3)[:3]
        return tlr_gemm_bytes(b, ra, rb, rc, itemsize)
    return dense_gemm_bytes(b, itemsize)


def task_time(shape: TaskShape, machine: MachineSpec, *, shgemm_mode: str = "sgemm_fallback") -> float:
    """Roofline duration of one task on one core."""
    flops = task_flops(shape)
    nbytes = task_bytes(shape)
    if shape.low_rank:
        rate = machine.tlr_rate(shape.precision)
    else:
        rate = machine.dense_rate(shape.precision, shgemm_mode=shgemm_mode)
    compute = flops / rate
    memory = nbytes / machine.core_mem_bw()
    return max(compute, memory) + machine.task_overhead_s
