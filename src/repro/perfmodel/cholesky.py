"""Aggregate Cholesky scaling estimator (paper Figs. 7, 10, 11).

Enumerating the task DAG at paper scale (NT ~ 3300 => ~6e9 GEMMs) is
infeasible, so the scaling figures use a per-step pipeline model over
the *same* cost formulas the DAG simulator uses:

    makespan = sum_k max( work_k / (P * C),   # throughput bound
                          chain_k,            # critical chain of step k
                          comm_k )            # panel broadcast bound

``work_k`` aggregates the durations of all TRSM/SYRK/GEMM tasks of
step ``k`` from the offset-class profile (O(1) per step via prefix
sums); ``chain_k`` is the POTRF->TRSM->GEMM dependency chain; ``comm_k``
models the 2-D block-cyclic panel broadcast with tiles travelling in
their wire representation.  Scale-dependent decisions are re-applied at
the target tile size: low-rank classes whose rank exceeds the Fig. 5
crossover are converted back to dense, and a dense band of
``band_size`` sub-diagonals is enforced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ConfigurationError
from ..tile.precision import Precision
from .crossover import crossover_rank
from .kernelmodel import TaskShape, task_time
from .machine import MachineSpec
from .profiles import CLASSES, PlanProfile

__all__ = ["ScaleEstimate", "estimate_cholesky", "project_classes"]


@dataclass(frozen=True)
class ScaleEstimate:
    """Result of one aggregate estimation."""

    time_s: float
    flops: float
    storage_bytes: float
    dense_fp64_bytes: float
    nodes: int
    nt: int
    tile_size: int
    throughput_bound_s: float
    chain_bound_s: float
    comm_bound_s: float

    @property
    def sustained_pflops(self) -> float:
        return self.flops / self.time_s / 1.0e15 if self.time_s > 0 else 0.0

    @property
    def memory_per_node_gb(self) -> float:
        return self.storage_bytes / self.nodes / 1.0e9

    @property
    def memory_reduction(self) -> float:
        if self.dense_fp64_bytes <= 0:
            return 0.0
        return 1.0 - self.storage_bytes / self.dense_fp64_bytes


def project_classes(
    profile: PlanProfile,
    nt: int,
    tile_size: int,
    machine: MachineSpec,
    *,
    band_size: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Class fractions and ranks at target scale with scale-dependent
    re-decisions applied (crossover + dense band).

    Returns ``(fractions, ranks)`` of shapes ``(nt, n_classes)`` and
    ``(nt,)``.  LR mass whose measured rank exceeds the target-scale
    crossover is folded into the matching dense class; offsets inside
    the dense band are fully densified.
    """
    fractions, ranks = profile.at_offsets(nt)
    fractions = fractions.copy()
    xover = crossover_rank(tile_size, machine)
    idx = {name: k for k, name in enumerate(CLASSES)}
    lr_to_dense = {"lr/FP64": "dense/FP64", "lr/FP32": "dense/FP32"}
    for d in range(nt):
        densify = d < band_size or ranks[d] >= xover
        if densify:
            for lr_name, dense_name in lr_to_dense.items():
                fractions[d, idx[dense_name]] += fractions[d, idx[lr_name]]
                fractions[d, idx[lr_name]] = 0.0
    return fractions, ranks


def _class_durations(
    fractions: np.ndarray,
    ranks: np.ndarray,
    tile_size: int,
    machine: MachineSpec,
    op: str,
    *,
    shgemm_mode: str,
) -> np.ndarray:
    """Expected single-task duration of ``op`` at each offset, averaged
    over the class mix of the *output* tile's offset."""
    nt = fractions.shape[0]
    out = np.zeros(nt)
    for c, name in enumerate(CLASSES):
        col = fractions[:, c]
        if not np.any(col):
            continue
        precision = PlanProfile.class_precision(name)
        lr = PlanProfile.class_is_lr(name)
        for d in np.nonzero(col)[0]:
            r = int(max(ranks[d], 1)) if lr else 0
            if op == "gemm":
                shape = TaskShape(
                    "gemm", tile_size, precision, low_rank=lr,
                    ranks=(r, r, r) if lr else (),
                )
            elif op == "trsm":
                shape = TaskShape(
                    "trsm", tile_size, precision, low_rank=lr,
                    ranks=(r,) if lr else (),
                )
            elif op == "syrk":
                # SYRK output is the (dense FP64) diagonal; its input is
                # the panel tile whose class we are averaging over.
                shape = TaskShape(
                    "syrk", tile_size, Precision.FP64,
                    ranks=(r,) if lr else (),
                )
            else:
                raise ConfigurationError(f"unsupported op {op!r}")
            out[d] += col[d] * task_time(shape, machine, shgemm_mode=shgemm_mode)
    return out


def _class_bytes(fractions: np.ndarray, ranks: np.ndarray, tile_size: int) -> np.ndarray:
    """Expected wire bytes of a tile at each offset."""
    nt = fractions.shape[0]
    out = np.zeros(nt)
    for c, name in enumerate(CLASSES):
        precision = PlanProfile.class_precision(name)
        if PlanProfile.class_is_lr(name):
            per = precision.itemsize * np.maximum(ranks, 1) * 2.0 * tile_size
        else:
            per = np.full(nt, precision.itemsize * tile_size * tile_size, float)
        out += fractions[:, c] * per
    return out


def _class_flops(
    fractions: np.ndarray, ranks: np.ndarray, tile_size: int, op: str
) -> np.ndarray:
    """Expected flops of ``op`` per offset (for the rate report)."""
    from .kernelmodel import task_flops

    nt = fractions.shape[0]
    out = np.zeros(nt)
    for c, name in enumerate(CLASSES):
        col = fractions[:, c]
        if not np.any(col):
            continue
        precision = PlanProfile.class_precision(name)
        lr = PlanProfile.class_is_lr(name)
        for d in np.nonzero(col)[0]:
            r = int(max(ranks[d], 1)) if lr else 0
            if op == "gemm":
                shape = TaskShape("gemm", tile_size, precision, low_rank=lr,
                                  ranks=(r, r, r) if lr else ())
            elif op == "trsm":
                shape = TaskShape("trsm", tile_size, precision, low_rank=lr,
                                  ranks=(r,) if lr else ())
            else:
                shape = TaskShape("syrk", tile_size, Precision.FP64,
                                  ranks=(r,) if lr else ())
            out[d] += col[d] * task_flops(shape)
    return out


def estimate_cholesky(
    profile: PlanProfile,
    n: int,
    tile_size: int,
    machine: MachineSpec,
    nodes: int,
    *,
    cores_per_node: int | None = None,
    band_size: int = 1,
    shgemm_mode: str = "sgemm_fallback",
    grid: tuple[int, int] | None = None,
) -> ScaleEstimate:
    """Aggregate time-to-solution of one tile Cholesky at scale."""
    if n < tile_size:
        raise ConfigurationError("matrix smaller than one tile")
    nt = -(-n // tile_size)
    cores = cores_per_node or machine.cores_per_node
    resources = nodes * cores
    if grid is None:
        p = int(np.sqrt(nodes))
        while nodes % p:
            p -= 1
        q = nodes // p
    else:
        p, q = grid

    fractions, ranks = project_classes(
        profile, nt, tile_size, machine, band_size=band_size
    )
    gemm_dur = _class_durations(fractions, ranks, tile_size, machine, "gemm",
                                shgemm_mode=shgemm_mode)
    trsm_dur = _class_durations(fractions, ranks, tile_size, machine, "trsm",
                                shgemm_mode=shgemm_mode)
    syrk_dur = _class_durations(fractions, ranks, tile_size, machine, "syrk",
                                shgemm_mode=shgemm_mode)
    potrf_dur = task_time(TaskShape("potrf", tile_size, Precision.FP64), machine)
    wire = _class_bytes(fractions, ranks, tile_size)

    gemm_fl = _class_flops(fractions, ranks, tile_size, "gemm")
    trsm_fl = _class_flops(fractions, ranks, tile_size, "trsm")
    syrk_fl = _class_flops(fractions, ranks, tile_size, "syrk")
    potrf_fl = tile_size**3 / 3.0

    # Prefix sums over offsets 0..nt-1 (offset 0 never used for panels).
    cs_g = np.concatenate([[0.0], np.cumsum(gemm_dur)])
    cs_gd = np.concatenate([[0.0], np.cumsum(gemm_dur * np.arange(nt))])
    cs_t = np.concatenate([[0.0], np.cumsum(trsm_dur)])
    cs_s = np.concatenate([[0.0], np.cumsum(syrk_dur)])
    cs_b = np.concatenate([[0.0], np.cumsum(wire)])
    cs_gf = np.concatenate([[0.0], np.cumsum(gemm_fl)])
    cs_gfd = np.concatenate([[0.0], np.cumsum(gemm_fl * np.arange(nt))])
    cs_tf = np.concatenate([[0.0], np.cumsum(trsm_fl)])
    cs_sf = np.concatenate([[0.0], np.cumsum(syrk_fl)])

    net_bw = machine.net_bw_gbs * 1.0e9
    total_time = 0.0
    total_flops = 0.0
    tput_total = 0.0
    chain_total = 0.0
    comm_total = 0.0
    for k in range(nt):
        m = nt - k - 1  # panel height below the diagonal
        # Work: TRSM/SYRK at offsets 1..m, GEMM outputs at offsets
        # 1..m-1 with multiplicity (m - d).
        work = potrf_dur + (cs_t[m + 1] - cs_t[1]) + (cs_s[m + 1] - cs_s[1])
        if m >= 2:
            work += m * (cs_g[m] - cs_g[1]) - (cs_gd[m] - cs_gd[1])
        flops_k = potrf_fl + (cs_tf[m + 1] - cs_tf[1]) + (cs_sf[m + 1] - cs_sf[1])
        if m >= 2:
            flops_k += m * (cs_gf[m] - cs_gf[1]) - (cs_gfd[m] - cs_gfd[1])
        # Critical chain to the next panel: POTRF(k) -> TRSM(k+1,k)
        # -> SYRK(k+1,k+1) -> POTRF(k+1).  Off-path GEMMs overlap.
        chain = potrf_dur
        if m >= 1:
            chain += trsm_dur[1] + syrk_dur[1]
        # Panel broadcast: each of the m panel tiles reaches p+q-2
        # peer owners; volume shared across P injection links.
        vol = (cs_b[m + 1] - cs_b[1]) * max(p + q - 2, 0)
        msgs = m * max(p + q - 2, 0)
        comm = vol / (nodes * net_bw) + msgs * machine.net_latency_s / nodes
        total_time += max(work / resources, chain, comm)
        tput_total += work / resources
        chain_total += chain
        comm_total += comm
        total_flops += flops_k

    # Storage: tiles at offset d occur (nt - d) times; wire bytes equal
    # storage bytes for our representations.
    counts = (nt - np.arange(nt)).astype(np.float64)
    storage = float(np.sum(counts * _storage_bytes(fractions, ranks, tile_size)))
    dense_bytes = float(np.sum(counts) * 8.0 * tile_size * tile_size)

    return ScaleEstimate(
        time_s=total_time,
        flops=total_flops,
        storage_bytes=storage,
        dense_fp64_bytes=dense_bytes,
        nodes=nodes,
        nt=nt,
        tile_size=tile_size,
        throughput_bound_s=tput_total,
        chain_bound_s=chain_total,
        comm_bound_s=comm_total,
    )


def _storage_bytes(fractions: np.ndarray, ranks: np.ndarray, tile_size: int) -> np.ndarray:
    return _class_bytes(fractions, ranks, tile_size)
