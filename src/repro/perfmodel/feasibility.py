"""Memory-feasibility analysis (paper Section III / Fig. 10).

The paper stresses that the dense variants "suffer from a large memory
footprint that may prevent them from running extreme-scale
simulations": at fixed node memory, the largest solvable matrix scales
like ``sqrt(P)`` for dense FP64 but far further for MP+dense/TLR.
These helpers compute the footprint per node of a planned variant and
the largest feasible matrix size — the quantitative version of "can
only handle the smaller matrix sizes".
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from .cholesky import _storage_bytes, project_classes
from .machine import A64FX, MachineSpec
from .profiles import PlanProfile

__all__ = ["storage_per_node", "max_feasible_n"]

#: Fugaku node memory (GB), Section VI-E.
FUGAKU_NODE_GB = 32.0


def storage_per_node(
    profile: PlanProfile,
    n: int,
    tile_size: int,
    nodes: int,
    machine: MachineSpec = A64FX,
    *,
    band_size: int = 1,
) -> float:
    """Average stored bytes per node for the lower-triangle matrix
    under a variant profile (block-cyclic distribution is balanced to
    first order)."""
    if n < tile_size:
        raise ConfigurationError("matrix smaller than one tile")
    nt = -(-n // tile_size)
    fractions, ranks = project_classes(
        profile, nt, tile_size, machine, band_size=band_size
    )
    per_offset = _storage_bytes(fractions, ranks, tile_size)
    counts = (nt - np.arange(nt)).astype(np.float64)
    total = float(np.sum(counts * per_offset))
    return total / nodes


def max_feasible_n(
    profile: PlanProfile,
    nodes: int,
    tile_size: int,
    machine: MachineSpec = A64FX,
    *,
    node_memory_gb: float = FUGAKU_NODE_GB,
    usable_fraction: float = 0.8,
    band_size: int = 1,
) -> int:
    """Largest matrix dimension whose storage fits in
    ``usable_fraction`` of the aggregate node memory.

    Monotone bisection over the matrix size (storage grows
    monotonically with ``n``); returns a multiple of ``tile_size``.
    """
    budget = usable_fraction * node_memory_gb * 1.0e9

    def fits(n: int) -> bool:
        return storage_per_node(
            profile, n, tile_size, nodes, machine, band_size=band_size
        ) <= budget

    lo_t, hi_t = 1, 2
    if not fits(lo_t * tile_size):
        return 0
    # TLR storage grows ~linearly in n, so the frontier can sit far
    # beyond the paper's 10M; search up to a 100M-dimension ceiling.
    ceiling = 100_000_000 // tile_size
    while fits(hi_t * tile_size):
        hi_t *= 2
        if hi_t > ceiling:
            hi_t = ceiling
            if fits(hi_t * tile_size):
                return hi_t * tile_size
            break
    while hi_t - lo_t > 1:
        mid = (lo_t + hi_t) // 2
        if fits(mid * tile_size):
            lo_t = mid
        else:
            hi_t = mid
    return lo_t * tile_size
