"""Checkpoint/restart cost modeling (Young/Daly) for the simulator.

At the paper's headline scale (48,384 Fugaku nodes) the machine is not
failure-free: with a per-node MTBF of ``M_node`` seconds, the
application-level MTBF is ``M_node / P`` and a multi-hour MLE campaign
sees node crashes as routine events.  The classic defense is periodic
coordinated checkpointing; the optimal interval balancing checkpoint
overhead against expected lost work is the Young/Daly interval

    tau_Young = sqrt(2 * C * M)           (first order)
    tau_Daly  = sqrt(2 * C * (M + R)) - C (higher order, C < 2M)

with ``C`` the checkpoint cost, ``R`` the restart cost and ``M`` the
(application-level) MTBF.  These helpers feed
:class:`~repro.runtime.faults.CheckpointConfig` and the fault-overhead
benchmark; :func:`expected_waste` gives the closed-form overhead the
discrete-event simulator should approach for long runs.
"""

from __future__ import annotations

import math

from ..exceptions import ConfigurationError

__all__ = [
    "checkpoint_cost_s",
    "young_interval",
    "daly_interval",
    "application_mtbf",
    "expected_waste",
]


def checkpoint_cost_s(nbytes_per_node: float, io_bw_gbs: float) -> float:
    """Time to write one node's resident tile state to stable storage.

    The paper's tile layout makes the per-node footprint explicit
    (2-D block-cyclic ownership of planned tiles), so a checkpoint is a
    streaming write of that footprint at the node-local I/O bandwidth.
    """
    if nbytes_per_node < 0:
        raise ConfigurationError("checkpoint footprint must be >= 0")
    if io_bw_gbs <= 0:
        raise ConfigurationError("I/O bandwidth must be positive")
    return nbytes_per_node / (io_bw_gbs * 1.0e9)


def application_mtbf(node_mtbf_s: float, nodes: int) -> float:
    """MTBF seen by a job spanning ``nodes`` nodes (independent
    exponential node failures: rates add)."""
    if node_mtbf_s <= 0:
        raise ConfigurationError("node MTBF must be positive")
    if nodes < 1:
        raise ConfigurationError("need at least one node")
    return node_mtbf_s / nodes


def young_interval(checkpoint_s: float, mtbf_s: float) -> float:
    """Young's first-order optimal checkpoint interval
    ``sqrt(2 * C * M)`` (time between checkpoint *starts*)."""
    if checkpoint_s < 0 or mtbf_s <= 0:
        raise ConfigurationError("need checkpoint_s >= 0 and mtbf_s > 0")
    return math.sqrt(2.0 * checkpoint_s * mtbf_s)


def daly_interval(
    checkpoint_s: float, mtbf_s: float, restart_s: float = 0.0
) -> float:
    """Daly's higher-order refinement of :func:`young_interval`.

    Valid for ``C < 2M`` (the practical regime); outside it the best
    strategy degenerates to checkpointing back-to-back and the Young
    value is returned as a conservative fallback.
    """
    if checkpoint_s < 0 or mtbf_s <= 0 or restart_s < 0:
        raise ConfigurationError(
            "need checkpoint_s >= 0, mtbf_s > 0, restart_s >= 0"
        )
    if checkpoint_s >= 2.0 * mtbf_s:
        return young_interval(checkpoint_s, mtbf_s)
    return math.sqrt(2.0 * checkpoint_s * (mtbf_s + restart_s)) - checkpoint_s


def expected_waste(
    interval_s: float,
    checkpoint_s: float,
    mtbf_s: float,
    restart_s: float = 0.0,
) -> float:
    """Expected fraction of wall-clock lost to resilience overhead.

    First-order model: each interval of useful work ``tau`` pays the
    checkpoint ``C``, and a failure (rate ``1/M``) costs the restart
    plus on average half an interval of lost work:

        waste(tau) = C / (tau + C) + (R + tau / 2) / M

    Minimized near the Young/Daly interval; the fault-overhead bench
    compares the simulator's measured inflation to this curve.
    """
    if interval_s <= 0:
        raise ConfigurationError("checkpoint interval must be positive")
    if mtbf_s <= 0:
        raise ConfigurationError("MTBF must be positive")
    return checkpoint_s / (interval_s + checkpoint_s) + (
        restart_s + 0.5 * interval_s
    ) / mtbf_s
