"""Machine specifications for the performance model.

The paper's structure-aware runtime decision and its scaling results
hinge on per-core kernel rates of the Fujitsu A64FX (Fugaku) with
Sector Cache Optimizations disabled — the paper reports this caps
sustained node performance at 65% of peak (Section VI).  We encode the
published hardware numbers plus that efficiency; the Shaheen II Haswell
spec is included because the accuracy experiments ran there.

Rates are *modeled*, not measured on this host: the discrete-event
simulator uses them to execute the real task DAG at Fugaku scale, which
is the substitution documented in DESIGN.md for the hardware we do not
have.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..tile.precision import Precision

__all__ = ["MachineSpec", "A64FX", "FUGAKU_NODE", "HASWELL_NODE", "SHGEMM_MODES"]

#: How FP16-stored tiles are multiplied (paper Section VII-C / Fig. 8):
#: - ``"shgemm"``: BLIS-style FP16 inputs with FP32 accumulation
#:   (works, but slower than SGEMM on A64FX);
#: - ``"sgemm_fallback"``: promote to FP32 and call SGEMM (the paper's
#:   production choice — "we fall back to SGEMM from SSL for
#:   performance, without trading off accuracy");
#: - ``"hgemm"``: pure FP16 accumulation (fast but numerically unusable
#:   for MLE; modeled for completeness).
SHGEMM_MODES = ("shgemm", "sgemm_fallback", "hgemm")


@dataclass(frozen=True)
class MachineSpec:
    """Per-node hardware model.

    ``peak_gflops`` maps storage precision to the *node* peak in
    Gflop/s for dense compute at that precision; ``efficiency`` is the
    sustained fraction of peak for compute-bound dense kernels;
    ``tlr_efficiency`` the (much lower) fraction achieved by the
    memory-bound low-rank kernels (QR/SVD-dominated, strided access).
    """

    name: str
    cores_per_node: int
    peak_gflops: dict[Precision, float]
    mem_bw_gbs: float  # node HBM/DDR bandwidth, GB/s
    net_bw_gbs: float  # injection bandwidth per node, GB/s
    net_latency_s: float
    efficiency: float = 0.65
    tlr_efficiency: float = 0.07
    shgemm_relative: float = 0.7  # SHGEMM rate relative to SGEMM (Fig. 8)
    task_overhead_s: float = 2.0e-6  # runtime per-task scheduling overhead
    extras: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def core_peak_gflops(self, precision: Precision) -> float:
        return self.peak_gflops[precision] / self.cores_per_node

    def dense_rate(self, precision: Precision, *, shgemm_mode: str = "sgemm_fallback") -> float:
        """Sustained dense-kernel rate per core, flop/s.

        For FP16 the rate depends on the SHGEMM mode: the fallback runs
        at the FP32 rate (data stored FP16, compute FP32), BLIS SHGEMM
        at ``shgemm_relative`` x FP32, pure HGEMM at the FP16 peak.
        """
        if shgemm_mode not in SHGEMM_MODES:
            raise ValueError(f"unknown shgemm_mode {shgemm_mode!r}")
        if precision is Precision.FP16:
            fp32 = self.core_peak_gflops(Precision.FP32)
            if shgemm_mode == "sgemm_fallback":
                rate = fp32
            elif shgemm_mode == "shgemm":
                rate = fp32 * self.shgemm_relative
            else:  # hgemm
                rate = self.core_peak_gflops(Precision.FP16)
        else:
            rate = self.core_peak_gflops(precision)
        return rate * self.efficiency * 1.0e9

    def tlr_rate(self, precision: Precision) -> float:
        """Sustained low-rank kernel rate per core, flop/s.  FP16 is not
        used for TLR tiles (Algorithm 2 restricts LR to FP64/FP32), so
        FP16 falls back to the FP32 rate."""
        p = Precision.FP32 if precision is Precision.FP16 else precision
        return self.core_peak_gflops(p) * self.tlr_efficiency * 1.0e9

    def core_mem_bw(self) -> float:
        """Memory bandwidth share per core, bytes/s."""
        return self.mem_bw_gbs * 1.0e9 / self.cores_per_node

    def comm_time(self, nbytes: int) -> float:
        """Point-to-point transfer time for one message."""
        return self.net_latency_s + nbytes / (self.net_bw_gbs * 1.0e9)


def _a64fx() -> MachineSpec:
    # A64FX: 48 compute cores @ 2.0 GHz, 2x512-bit FMA pipes
    # -> 3.072 Tflop/s FP64 per node; FP32 2x, FP16 4x. HBM2: 1024 GB/s.
    # TofuD: 6 lanes x 6.8 GB/s injection, ~0.5 us put latency.
    return MachineSpec(
        name="A64FX (Fugaku node, SCO disabled)",
        cores_per_node=48,
        peak_gflops={
            Precision.FP64: 3072.0,
            Precision.FP32: 6144.0,
            Precision.FP16: 12288.0,
        },
        mem_bw_gbs=1024.0,
        net_bw_gbs=40.8,
        net_latency_s=0.7e-6,
        efficiency=0.65,
    )


def _haswell() -> MachineSpec:
    # Shaheen II node: 2 x 16-core Intel Haswell @ 2.3 GHz,
    # 16 DP flop/cycle/core -> ~1177 Gflop/s FP64; no FP16 units
    # (the paper trims operands to FP16 and accumulates with SGEMM),
    # so the FP16 "peak" equals FP32.  Aries: ~10 GB/s injection.
    return MachineSpec(
        name="Haswell (Shaheen II node)",
        cores_per_node=32,
        peak_gflops={
            Precision.FP64: 1177.6,
            Precision.FP32: 2355.2,
            Precision.FP16: 2355.2,
        },
        mem_bw_gbs=136.0,
        net_bw_gbs=10.0,
        net_latency_s=1.3e-6,
        efficiency=0.80,
    )


#: The paper's benchmarking platform (Figs. 5, 7-11).
A64FX: MachineSpec = _a64fx()
FUGAKU_NODE: MachineSpec = A64FX
#: The paper's accuracy-validation platform.
HASWELL_NODE: MachineSpec = _haswell()
