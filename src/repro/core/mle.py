"""Maximum likelihood estimation drivers.

``fit_mle`` maximizes Eq. (1) over the kernel parameters with a
derivative-free optimizer in the transformed (unconstrained) space;
every objective evaluation is one full tiled-Cholesky likelihood under
the chosen compute variant, which is exactly the structure the paper
accelerates.  Covariances that fail to factor at a trial ``theta``
(indefinite under aggressive approximation) are treated as rejected
steps, not crashes; variants with a recovery ladder
(:mod:`repro.tile.recovery`) first try to rescue the evaluation, and
rescued evaluations are tallied on the result.

Long fits can be bounded (``max_nfev`` / ``time_budget_s`` return the
best point seen so far, unconverged, instead of running forever) and
checkpointed (``checkpoint_path`` persists the simplex so a crashed
driver resumes instead of restarting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import (
    DeadlineExceededError,
    NotPositiveDefiniteError,
    ParameterError,
)
from ..kernels.base import CovarianceKernel
from ..obs.telemetry import maybe_span
from ..optim.bounds import BoundTransform
from ..optim.neldermead import nelder_mead
from ..resilience import Deadline, ResilienceConfig, degradation_steps
from ..resilience.validate import require_finite
from ..tile.geometry import GeometryCache
from ..tile.recovery import RecoveryAction, RecoveryReport
from .engine import EvaluationEngine
from .variants import DENSE_FP64, VariantConfig, get_variant

__all__ = ["MLEResult", "fit_mle"]


@dataclass
class MLEResult:
    """MLE outcome for one dataset/variant."""

    theta: np.ndarray
    loglik: float
    nfev: int
    nit: int
    converged: bool
    variant: str
    history: list[float] = field(default_factory=list)
    failed_evaluations: int = 0
    #: Evaluations the numerical recovery ladder rescued from a
    #: factorization breakdown (0 unless the variant enables recovery).
    recovered_evaluations: int = 0
    #: One :class:`~repro.tile.recovery.RecoveryReport` per rescue, in
    #: evaluation order.
    recovery_reports: list[RecoveryReport] = field(default_factory=list)
    #: Why the fit stopped early (``"max_nfev"`` / ``"time_budget"``),
    #: or ``None`` when the optimizer itself terminated.
    stopped_on: str | None = None
    #: Fit-level degradation-ladder report: non-``None`` only when the
    #: resilience layer downgraded the compute variant mid-fit.  Its
    #: ``variant_path`` lists every variant attempted (first to last),
    #: ``actions`` one ``"downgrade"`` step per refit, and ``retries``
    #: the transient task retries absorbed across the whole fit.
    degradation: RecoveryReport | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        vals = ", ".join(f"{v:.4g}" for v in self.theta)
        return (
            f"MLEResult(theta=[{vals}], loglik={self.loglik:.4f}, "
            f"nfev={self.nfev}, variant={self.variant!r})"
        )


class _BudgetExhausted(Exception):
    """Internal: the evaluation budget ran out mid-optimization."""

    def __init__(self, reason: str):
        self.reason = reason


def fit_mle(
    kernel: CovarianceKernel,
    x: np.ndarray,
    z: np.ndarray,
    *,
    tile_size: int,
    variant: "str | VariantConfig" = DENSE_FP64,
    theta0: np.ndarray | None = None,
    nugget: float = 0.0,
    max_iter: int = 150,
    fatol: float = 1.0e-5,
    xatol: float = 1.0e-4,
    initial_step: float = 0.3,
    max_nfev: int | None = None,
    time_budget_s: float | None = None,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 10,
    workers: int | None = None,
    cache: "GeometryCache | bool | None" = None,
    fast_lr: bool | None = None,
    resilience: ResilienceConfig | None = None,
    batch: bool | None = None,
    backend: str | None = None,
    telemetry=None,
) -> MLEResult:
    """Fit kernel parameters by maximum likelihood.

    ``theta0`` defaults to the kernel's per-parameter defaults; pass a
    rough guess to cut optimizer iterations (the accuracy benches start
    near the generating values, like the paper's warm-started
    optimization campaigns).

    ``max_nfev`` / ``time_budget_s`` bound the fit: when either budget
    runs out mid-optimization the best parameters seen so far come back
    as an *unconverged* result with ``stopped_on`` set, instead of the
    driver running arbitrarily long.  ``checkpoint_path`` persists the
    optimizer state every ``checkpoint_every`` iterations and resumes
    from an existing file (see
    :func:`~repro.optim.neldermead.nelder_mead`).

    Evaluations run on an :class:`~repro.core.engine.EvaluationEngine`:
    theta-independent tile geometry is computed once and reused across
    the whole fit (``cache=False`` disables the reuse), ``workers``
    sets the generation/factorization thread pool, and ``fast_lr``
    opts into the fast low-rank arithmetic (see
    :class:`~repro.core.variants.VariantConfig`); each defaults to the
    variant's setting.  ``batch`` routes assembly + factorization
    through the batched execution layer (stacked BLAS over homogeneous
    tile groups) — note a ``time_budget_s`` deadline forces the
    factorization back onto the per-tile executor, which supports
    cooperative cancellation.  ``backend`` picks the factorization
    engine (``"auto"`` / ``"sequential"`` / ``"thread"`` /
    ``"process"``); with ``"process"`` each rung's engine owns a
    persistent shared-memory worker pool, spawned once and reused by
    every evaluation of the fit, and all backends produce the same
    log-likelihoods and optimizer iterates bit-for-bit.

    ``resilience`` opts into the hardening layer: transient tile
    failures retry with seeded backoff, chaos injection (when
    configured) targets the real executor, and a
    :class:`~repro.resilience.DegradationPolicy` refits under
    progressively safer variants (TLR -> wider dense band -> dense
    FP64) when a fit keeps breaking down numerically — every
    downgrade recorded on ``result.degradation``.  With a
    ``time_budget_s`` the budget also becomes a hard
    :class:`~repro.resilience.Deadline` inside each factorization, so
    a single long evaluation aborts cleanly (pool drained, no leaked
    threads) instead of overshooting.

    ``telemetry`` (a :class:`~repro.obs.Telemetry`, default ``None``)
    profiles the fit: the whole optimization runs inside a
    ``"fit_mle"`` span, every likelihood evaluation emits its own span
    tree, and each iteration posts an ``"mle_iteration"`` progress
    event carrying the log-likelihood, theta, the tile-rank histogram,
    and the precision mix.  ``telemetry=None`` (the default) executes
    exactly the untraced code path.
    """
    cfg = get_variant(variant)
    require_finite("x", x)
    require_finite("z", z)
    if resilience is not None:
        resilience = resilience.bind()
    transform = BoundTransform.from_specs(kernel.param_specs)
    if theta0 is None:
        theta0 = kernel.default_theta()
    theta0 = kernel.validate_theta(theta0)
    u0 = transform.to_unconstrained(theta0)

    deadline = Deadline.after(time_budget_s)
    nfev_total = 0

    def run_fit(step_cfg: VariantConfig) -> tuple[MLEResult, EvaluationEngine]:
        """One complete optimization under one compute variant; the
        budgets (``max_nfev``, the deadline) are shared across rungs."""
        nonlocal nfev_total
        nfev_start = nfev_total
        engine = EvaluationEngine(
            kernel, x, z, tile_size=tile_size, variant=step_cfg,
            nugget=nugget, cache=cache, workers=workers, fast_lr=fast_lr,
            resilience=resilience, batch=batch, backend=backend,
            telemetry=telemetry,
        )
        failures = 0
        recoveries: list[RecoveryReport] = []
        best: tuple[float, np.ndarray] | None = None
        best_history: list[float] = []

        def objective(u: np.ndarray) -> float:
            nonlocal failures, best, nfev_total
            if max_nfev is not None and nfev_total >= max_nfev:
                raise _BudgetExhausted("max_nfev")
            if deadline is not None and deadline.expired:
                raise _BudgetExhausted("time_budget")
            nfev_total += 1
            theta = transform.to_constrained(u)
            try:
                result = engine.evaluate(theta, deadline=deadline)
            except DeadlineExceededError:
                # The factorization itself overran the fit budget: the
                # executor drained its pool and discarded the partial
                # factor; stop the fit on the best point so far.
                raise _BudgetExhausted("time_budget") from None
            except (NotPositiveDefiniteError, ParameterError):
                # RecoveryExhaustedError lands here too: an indefinite
                # covariance the ladder could not rescue is still just a
                # rejected optimizer step.
                failures += 1
                return np.inf
            if result.recovery is not None:
                recoveries.append(result.recovery)
            if telemetry is not None:
                rank_hist: dict[int, int] = {}
                for r in result.report.ranks.values():
                    rank_hist[int(r)] = rank_hist.get(int(r), 0) + 1
                prec_mix: dict[str, int] = {}
                for p in result.report.plan.precisions.values():
                    name = getattr(p, "name", str(p)).lower()
                    prec_mix[name] = prec_mix.get(name, 0) + 1
                telemetry.event(
                    "mle_iteration",
                    nfev=nfev_total,
                    loglik=float(result.value),
                    theta=[float(v) for v in theta],
                    rank_hist=rank_hist,
                    precision_mix=prec_mix,
                    variant=step_cfg.name,
                )
            if not np.isfinite(result.value):
                failures += 1
                return np.inf
            value = -result.value
            if best is None or value < best[0]:
                best = (value, np.array(u, dtype=np.float64))
            best_history.append(best[0])
            return value

        stopped_on: str | None = None
        try:
            opt = nelder_mead(
                objective,
                u0,
                initial_step=initial_step,
                max_iter=max_iter,
                fatol=fatol,
                xatol=xatol,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
            )
            u_hat, fun = opt.x, opt.fun
            nit, converged = opt.nit, opt.converged
            history = [-v for v in opt.history]
        except _BudgetExhausted as stop:
            if best is None:
                engine.close()  # no result escapes; stop the backend
                raise
            stopped_on = stop.reason
            fun, u_hat = best
            nit, converged = 0, False
            history = [-v for v in best_history]

        theta_hat = transform.to_constrained(u_hat)
        return MLEResult(
            theta=theta_hat,
            loglik=-fun,
            nfev=nfev_total - nfev_start,  # this rung only; total at end
            nit=nit,
            converged=converged,
            variant=step_cfg.name,
            history=history,
            failed_evaluations=failures,
            recovered_evaluations=len(recoveries),
            recovery_reports=recoveries,
            stopped_on=stopped_on,
        ), engine

    policy = None if resilience is None else resilience.degradation
    ladder = [cfg] + (
        degradation_steps(cfg, policy) if policy is not None else []
    )

    def unhealthy_reason(attempt: MLEResult) -> str | None:
        """Why this fit should fall to a safer variant (None = healthy)."""
        if not np.isfinite(attempt.loglik):
            return "non-finite loglikelihood"
        if policy is not None and attempt.nfev >= policy.min_evaluations:
            frac = attempt.failed_evaluations / max(attempt.nfev, 1)
            if frac > policy.max_failure_fraction:
                return (
                    f"failed evaluation fraction {frac:.0%} > "
                    f"{policy.max_failure_fraction:.0%}"
                )
        return None

    degradation = RecoveryReport()
    all_failures = 0
    all_recoveries: list[RecoveryReport] = []
    result: MLEResult | None = None
    with maybe_span(
        telemetry, "fit_mle", variant=cfg.name,
        n=int(np.asarray(z).shape[-1]), tile_size=int(tile_size),
    ):
        for rung, step_cfg in enumerate(ladder):
            budget_spent = (
                max_nfev is not None and nfev_total >= max_nfev
            ) or (deadline is not None and deadline.expired)
            if result is not None and budget_spent:
                break
            reason = None if result is None else unhealthy_reason(result)
            if result is not None and reason is None:
                break  # healthy — no (further) downgrade needed
            try:
                result, engine = run_fit(step_cfg)
            except _BudgetExhausted as stop:
                if result is None:
                    raise ParameterError(
                        f"evaluation budget ({stop.reason}) exhausted "
                        "before any successful likelihood evaluation"
                    ) from None
                result.stopped_on = result.stopped_on or stop.reason
                break
            degradation.variant_path.append(step_cfg.name)
            degradation.retries += engine.health().retries
            engine.close()  # rung done: stop any process-backend workers
            all_failures += result.failed_evaluations
            all_recoveries.extend(result.recovery_reports)
            if rung > 0:
                degradation.attempts += 1
                degradation.actions.append(RecoveryAction(
                    step="downgrade",
                    tile_index=None,
                    detail=f"refit under {step_cfg.name}: {reason}",
                    succeeded=unhealthy_reason(result) is None,
                ))

    assert result is not None
    degradation.recovered = bool(degradation.actions) and (
        unhealthy_reason(result) is None
    )
    result.nfev = nfev_total
    result.failed_evaluations = all_failures
    result.recovery_reports = all_recoveries
    result.recovered_evaluations = len(all_recoveries)
    result.degradation = degradation if degradation.actions else None
    return result
