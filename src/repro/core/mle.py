"""Maximum likelihood estimation drivers.

``fit_mle`` maximizes Eq. (1) over the kernel parameters with a
derivative-free optimizer in the transformed (unconstrained) space;
every objective evaluation is one full tiled-Cholesky likelihood under
the chosen compute variant, which is exactly the structure the paper
accelerates.  Covariances that fail to factor at a trial ``theta``
(indefinite under aggressive approximation) are treated as rejected
steps, not crashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import NotPositiveDefiniteError, ParameterError
from ..kernels.base import CovarianceKernel
from ..optim.bounds import BoundTransform
from ..optim.neldermead import nelder_mead
from .likelihood import loglikelihood
from .variants import DENSE_FP64, VariantConfig, get_variant

__all__ = ["MLEResult", "fit_mle"]


@dataclass
class MLEResult:
    """MLE outcome for one dataset/variant."""

    theta: np.ndarray
    loglik: float
    nfev: int
    nit: int
    converged: bool
    variant: str
    history: list[float] = field(default_factory=list)
    failed_evaluations: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        vals = ", ".join(f"{v:.4g}" for v in self.theta)
        return (
            f"MLEResult(theta=[{vals}], loglik={self.loglik:.4f}, "
            f"nfev={self.nfev}, variant={self.variant!r})"
        )


def fit_mle(
    kernel: CovarianceKernel,
    x: np.ndarray,
    z: np.ndarray,
    *,
    tile_size: int,
    variant: "str | VariantConfig" = DENSE_FP64,
    theta0: np.ndarray | None = None,
    nugget: float = 0.0,
    max_iter: int = 150,
    fatol: float = 1.0e-5,
    xatol: float = 1.0e-4,
    initial_step: float = 0.3,
) -> MLEResult:
    """Fit kernel parameters by maximum likelihood.

    ``theta0`` defaults to the kernel's per-parameter defaults; pass a
    rough guess to cut optimizer iterations (the accuracy benches start
    near the generating values, like the paper's warm-started
    optimization campaigns).
    """
    cfg = get_variant(variant)
    transform = BoundTransform.from_specs(kernel.param_specs)
    if theta0 is None:
        theta0 = kernel.default_theta()
    theta0 = kernel.validate_theta(theta0)
    u0 = transform.to_unconstrained(theta0)

    failures = 0

    def objective(u: np.ndarray) -> float:
        nonlocal failures
        theta = transform.to_constrained(u)
        try:
            result = loglikelihood(
                kernel, theta, x, z,
                tile_size=tile_size, variant=cfg, nugget=nugget,
            )
        except (NotPositiveDefiniteError, ParameterError):
            failures += 1
            return np.inf
        if not np.isfinite(result.value):
            failures += 1
            return np.inf
        return -result.value

    opt = nelder_mead(
        objective,
        u0,
        initial_step=initial_step,
        max_iter=max_iter,
        fatol=fatol,
        xatol=xatol,
    )
    theta_hat = transform.to_constrained(opt.x)
    return MLEResult(
        theta=theta_hat,
        loglik=-opt.fun,
        nfev=opt.nfev,
        nit=opt.nit,
        converged=opt.converged,
        variant=cfg.name,
        history=[-v for v in opt.history],
        failed_evaluations=failures,
    )
