"""Maximum likelihood estimation drivers.

``fit_mle`` maximizes Eq. (1) over the kernel parameters with a
derivative-free optimizer in the transformed (unconstrained) space;
every objective evaluation is one full tiled-Cholesky likelihood under
the chosen compute variant, which is exactly the structure the paper
accelerates.  Covariances that fail to factor at a trial ``theta``
(indefinite under aggressive approximation) are treated as rejected
steps, not crashes; variants with a recovery ladder
(:mod:`repro.tile.recovery`) first try to rescue the evaluation, and
rescued evaluations are tallied on the result.

Long fits can be bounded (``max_nfev`` / ``time_budget_s`` return the
best point seen so far, unconverged, instead of running forever) and
checkpointed (``checkpoint_path`` persists the simplex so a crashed
driver resumes instead of restarting).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import NotPositiveDefiniteError, ParameterError
from ..kernels.base import CovarianceKernel
from ..optim.bounds import BoundTransform
from ..optim.neldermead import nelder_mead
from ..tile.geometry import GeometryCache
from ..tile.recovery import RecoveryReport
from .engine import EvaluationEngine
from .variants import DENSE_FP64, VariantConfig, get_variant

__all__ = ["MLEResult", "fit_mle"]


@dataclass
class MLEResult:
    """MLE outcome for one dataset/variant."""

    theta: np.ndarray
    loglik: float
    nfev: int
    nit: int
    converged: bool
    variant: str
    history: list[float] = field(default_factory=list)
    failed_evaluations: int = 0
    #: Evaluations the numerical recovery ladder rescued from a
    #: factorization breakdown (0 unless the variant enables recovery).
    recovered_evaluations: int = 0
    #: One :class:`~repro.tile.recovery.RecoveryReport` per rescue, in
    #: evaluation order.
    recovery_reports: list[RecoveryReport] = field(default_factory=list)
    #: Why the fit stopped early (``"max_nfev"`` / ``"time_budget"``),
    #: or ``None`` when the optimizer itself terminated.
    stopped_on: str | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        vals = ", ".join(f"{v:.4g}" for v in self.theta)
        return (
            f"MLEResult(theta=[{vals}], loglik={self.loglik:.4f}, "
            f"nfev={self.nfev}, variant={self.variant!r})"
        )


class _BudgetExhausted(Exception):
    """Internal: the evaluation budget ran out mid-optimization."""

    def __init__(self, reason: str):
        self.reason = reason


def fit_mle(
    kernel: CovarianceKernel,
    x: np.ndarray,
    z: np.ndarray,
    *,
    tile_size: int,
    variant: "str | VariantConfig" = DENSE_FP64,
    theta0: np.ndarray | None = None,
    nugget: float = 0.0,
    max_iter: int = 150,
    fatol: float = 1.0e-5,
    xatol: float = 1.0e-4,
    initial_step: float = 0.3,
    max_nfev: int | None = None,
    time_budget_s: float | None = None,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 10,
    workers: int | None = None,
    cache: "GeometryCache | bool | None" = None,
    fast_lr: bool | None = None,
) -> MLEResult:
    """Fit kernel parameters by maximum likelihood.

    ``theta0`` defaults to the kernel's per-parameter defaults; pass a
    rough guess to cut optimizer iterations (the accuracy benches start
    near the generating values, like the paper's warm-started
    optimization campaigns).

    ``max_nfev`` / ``time_budget_s`` bound the fit: when either budget
    runs out mid-optimization the best parameters seen so far come back
    as an *unconverged* result with ``stopped_on`` set, instead of the
    driver running arbitrarily long.  ``checkpoint_path`` persists the
    optimizer state every ``checkpoint_every`` iterations and resumes
    from an existing file (see
    :func:`~repro.optim.neldermead.nelder_mead`).

    Evaluations run on an :class:`~repro.core.engine.EvaluationEngine`:
    theta-independent tile geometry is computed once and reused across
    the whole fit (``cache=False`` disables the reuse), ``workers``
    sets the generation/factorization thread pool, and ``fast_lr``
    opts into the fast low-rank arithmetic (see
    :class:`~repro.core.variants.VariantConfig`); each defaults to the
    variant's setting.
    """
    cfg = get_variant(variant)
    transform = BoundTransform.from_specs(kernel.param_specs)
    if theta0 is None:
        theta0 = kernel.default_theta()
    theta0 = kernel.validate_theta(theta0)
    u0 = transform.to_unconstrained(theta0)
    engine = EvaluationEngine(
        kernel, x, z, tile_size=tile_size, variant=cfg, nugget=nugget,
        cache=cache, workers=workers, fast_lr=fast_lr,
    )

    failures = 0
    nfev = 0
    recoveries: list[RecoveryReport] = []
    best: tuple[float, np.ndarray] | None = None
    best_history: list[float] = []
    t0 = time.monotonic()

    def objective(u: np.ndarray) -> float:
        nonlocal failures, nfev, best
        if max_nfev is not None and nfev >= max_nfev:
            raise _BudgetExhausted("max_nfev")
        if time_budget_s is not None and time.monotonic() - t0 >= time_budget_s:
            raise _BudgetExhausted("time_budget")
        nfev += 1
        theta = transform.to_constrained(u)
        try:
            result = engine.evaluate(theta)
        except (NotPositiveDefiniteError, ParameterError):
            # RecoveryExhaustedError lands here too: an indefinite
            # covariance the ladder could not rescue is still just a
            # rejected optimizer step.
            failures += 1
            return np.inf
        if result.recovery is not None:
            recoveries.append(result.recovery)
        if not np.isfinite(result.value):
            failures += 1
            return np.inf
        value = -result.value
        if best is None or value < best[0]:
            best = (value, np.array(u, dtype=np.float64))
        best_history.append(best[0])
        return value

    stopped_on: str | None = None
    try:
        opt = nelder_mead(
            objective,
            u0,
            initial_step=initial_step,
            max_iter=max_iter,
            fatol=fatol,
            xatol=xatol,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )
        u_hat, fun = opt.x, opt.fun
        nit, converged = opt.nit, opt.converged
        history = [-v for v in opt.history]
    except _BudgetExhausted as stop:
        if best is None:
            raise ParameterError(
                f"evaluation budget ({stop.reason}) exhausted before any "
                "successful likelihood evaluation"
            ) from None
        stopped_on = stop.reason
        fun, u_hat = best
        nit, converged = 0, False
        history = [-v for v in best_history]

    theta_hat = transform.to_constrained(u_hat)
    return MLEResult(
        theta=theta_hat,
        loglik=-fun,
        nfev=nfev,
        nit=nit,
        converged=converged,
        variant=cfg.name,
        history=history,
        failed_evaluations=failures,
        recovered_evaluations=len(recoveries),
        recovery_reports=recoveries,
        stopped_on=stopped_on,
    )
