"""Batched prediction serving engine (paper Eqs. 4-5 as a hot path).

The paper's end product is not the factorization but *prediction*:
kriging means and variances served from the factored training
covariance.  Every predict/score/simulate call against a fitted model
shares three amortizable pieces:

* the tile Cholesky factor, applied through one
  :class:`~repro.tile.solve.PanelSolver` (one float64 cast per tile
  for the engine's lifetime, BLAS-3 panel updates for every batch);
* the solved weight vector ``w = Sigma_nn^{-1} z`` of Eq. 4 —
  computed exactly once;
* the train/test cross geometry, and optionally the cross-covariance
  values themselves (theta is pinned, so a repeated test batch needs
  no kernel evaluation at all).

:class:`PredictionEngine` owns all three and exposes a batched,
optionally thread-parallel :meth:`predict`, a bounded-memory streaming
:meth:`predict_iter` for large grids, MSPE :meth:`score`, and
conditional :meth:`simulate`.  ``ExaGeoStatModel`` builds one lazily
(see :meth:`~repro.core.model.ExaGeoStatModel.serving_engine`) and
invalidates it whenever the fitted state changes.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass

import numpy as np

from ..config import PREDICT_BATCH, SERVING_CROSS_CACHE_BYTES
from ..exceptions import ShapeError
from ..kernels.base import CovarianceKernel
from ..kernels.distance import as_locations
from ..obs.telemetry import maybe_span
from ..obs.tracer import current_span_id
from ..resilience import (
    CancellationToken,
    CircuitBreaker,
    Deadline,
    HealthReport,
    ResilienceConfig,
)
from ..resilience.validate import require_finite
from ..tile.geometry import GeometryCache, locations_fingerprint
from ..tile.matrix import TileMatrix
from ..tile.solve import PanelSolver
from .prediction import PredictionResult, clamp_variance

__all__ = ["ServingStats", "PredictionEngine"]


@dataclass
class ServingStats:
    """Amortization counters of one engine."""

    predict_calls: int = 0
    predictions: int = 0  # total predicted locations
    batches: int = 0
    weight_solves: int = 0  # must stay 1 for the engine's lifetime
    tile_casts: int = 0  # PanelSolver materializations (once per tile)
    solves: int = 0  # triangular sweeps served by the solver
    cross_hits: int = 0
    cross_misses: int = 0
    cross_cache_bytes: int = 0
    clamped_variances: int = 0
    failed_calls: int = 0  # predict/score calls that raised
    batch_retries: int = 0  # transient batch failures absorbed


class _CrossEntry:
    """One cached test batch: cross covariance and lazy half-solve."""

    __slots__ = ("cross", "half")

    def __init__(self, cross: np.ndarray):
        self.cross = cross
        self.half: np.ndarray | None = None

    @property
    def nbytes(self) -> int:
        return self.cross.nbytes + (0 if self.half is None else self.half.nbytes)


class PredictionEngine:
    """Throughput-oriented predictions against one fitted state.

    Parameters
    ----------
    kernel, theta, x_train, z_train:
        The fitted model state; ``theta`` is pinned for the engine's
        lifetime (that is what makes weights and cross values
        reusable).
    factor:
        Tile Cholesky factor of ``Sigma_nn(theta)`` over ``x_train``.
    cache:
        A :class:`~repro.tile.geometry.GeometryCache` for the
        theta-independent train/test geometry, shared with the owning
        model; ``None`` evaluates the kernel directly.
    batch:
        Default test-batch width (peak memory is ``n_train x batch``).
    workers:
        Default thread-pool width of :meth:`predict`; batches are
        independent, so parallel results are bit-identical to
        sequential ones.
    cross_cache_bytes:
        Byte budget of the cross-covariance value LRU (0 disables it).
    resilience:
        Optional :class:`~repro.resilience.ResilienceConfig`: its
        ``retry`` policy absorbs transient per-batch failures, its
        ``chaos`` injector targets this engine's batches, and a
        consecutive-failure circuit breaker trips the cross-value LRU
        to a safe rebuild (see :meth:`health`).  ``None`` keeps every
        hook inert.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`: each :meth:`predict`
        call runs inside a ``"predict"`` span with per-batch child
        spans, and the engine's :class:`ServingStats` /
        :meth:`health` snapshots are refreshed in the registry after
        every call.  ``None`` keeps the untraced path untouched.
    """

    def __init__(
        self,
        kernel: CovarianceKernel,
        theta: np.ndarray,
        x_train: np.ndarray,
        z_train: np.ndarray,
        factor: TileMatrix,
        *,
        cache: GeometryCache | None = None,
        batch: int = PREDICT_BATCH,
        workers: int = 1,
        cross_cache_bytes: int = SERVING_CROSS_CACHE_BYTES,
        resilience: ResilienceConfig | None = None,
        telemetry=None,
    ):
        self.kernel = kernel
        self.theta = kernel.validate_theta(theta)
        self.x_train = as_locations(x_train, dim=kernel.ndim_locations)
        self.z_train = np.asarray(z_train, dtype=np.float64).ravel()
        if self.z_train.shape[0] != len(self.x_train):
            raise ShapeError("z_train length does not match x_train")
        if factor.n != len(self.x_train):
            raise ShapeError("factor dimension does not match x_train")
        if batch < 1:
            raise ShapeError("batch must be >= 1")
        self.cache = cache
        self.batch = int(batch)
        self.workers = max(1, int(workers))
        self.cross_cache_bytes = max(0, int(cross_cache_bytes))

        self.solver = PanelSolver(factor)
        #: Eq. 4 weights ``Sigma_nn^{-1} z`` — solved once, reused by
        #: every subsequent predict/score/simulate call.
        self.weights = self.solver.solve(self.z_train)
        self.marginal = kernel.variance(self.theta)

        self._lock = threading.Lock()
        self._cross: OrderedDict[str, _CrossEntry] = OrderedDict()
        self._cross_bytes = 0
        self._weight_solves = 1
        self._predict_calls = 0
        self._predictions = 0
        self._batches = 0
        self._cross_hits = 0
        self._cross_misses = 0
        self._clamped = 0
        self._failed_calls = 0
        self._batch_retries = 0

        self.telemetry = telemetry
        self.resilience = None if resilience is None else resilience.bind()
        self._retry = None if self.resilience is None else self.resilience.retry
        self._chaos = (
            None if self.resilience is None else self.resilience.resolve_chaos()
        )
        # Consecutive failed serving calls trip the breaker, which
        # clears the cross-value LRU: after a corruption streak the
        # safest state is a cold cache rebuilt from scratch.
        self._breaker = CircuitBreaker(on_trip=self.clear_cross_cache)

    # ------------------------------------------------------------------
    @property
    def factor(self) -> TileMatrix:
        return self.solver.factor

    @property
    def n_train(self) -> int:
        return len(self.x_train)

    def state_key(self) -> str:
        """Content hash of the served state (kernel geometry, theta,
        locations, observations) — the invalidation key the owning
        model compares, mirroring :class:`GeometryCache`."""
        digest = hashlib.sha1(self.kernel.geometry_key().encode())
        digest.update(np.ascontiguousarray(self.theta).tobytes())
        digest.update(locations_fingerprint(self.x_train).encode())
        digest.update(self.z_train.tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # cross-covariance panels
    # ------------------------------------------------------------------
    def _cross_values(self, x_batch: np.ndarray) -> np.ndarray:
        if self.cache is not None:
            geom = self.cache.pair_geometry(self.kernel, self.x_train, x_batch)
            return self.kernel.from_geometry(self.theta, geom)
        return self.kernel(self.theta, self.x_train, x_batch)

    def clear_cross_cache(self) -> None:
        """Drop every cached cross panel (the circuit breaker's safe
        rebuild; also useful after external memory pressure)."""
        with self._lock:
            self._cross.clear()
            self._cross_bytes = 0

    def _entry_for(
        self, x_batch: np.ndarray, *, need_half: bool, use_cache: bool
    ) -> _CrossEntry:
        """The batch's cross panel (and, when asked, its forward
        half-solve ``L^{-1} Sigma_nm``), from the LRU when possible.

        Thread-safety discipline: cached ``_CrossEntry`` objects are
        only ever *mutated* (the lazy ``half`` attach) while holding
        the engine lock, together with the matching ``_cross_bytes``
        update — so a concurrent eviction always subtracts exactly the
        bytes that were added.  The expensive work (kernel values,
        triangular solves) runs outside the lock; when two threads
        race on one key, the loser's duplicate work is discarded under
        the lock and the byte ledger stays exact.
        """
        use_cache = use_cache and self.cross_cache_bytes > 0
        key = locations_fingerprint(x_batch) if use_cache else None
        entry: _CrossEntry | None = None
        with self._lock:
            if key is not None:
                entry = self._cross.get(key)
            if entry is not None:
                self._cross.move_to_end(key)
                self._cross_hits += 1
                if not need_half or entry.half is not None:
                    return entry
            else:
                self._cross_misses += 1

        # Compute outside the lock: kernel evaluation and the forward
        # sweep dominate, and batches must overlap under workers > 1.
        cross = entry.cross if entry is not None else self._cross_values(x_batch)
        half = self.solver.forward(cross) if need_half else None

        if key is None:
            out = _CrossEntry(cross)
            out.half = half
            return out

        with self._lock:
            current = self._cross.get(key)
            if current is not None:
                # Cached (by us earlier, or by a racing thread): attach
                # the half-solve in the same critical section as the
                # byte-ledger update.
                if half is not None and current.half is None:
                    current.half = half
                    self._cross_bytes += half.nbytes
                # Deliberate two-phase fill (documented above): the
                # re-lookup under the lock re-validates the key, so the
                # racing loser's work is discarded, never double-counted.
                self._cross.move_to_end(key)  # lockcheck: ignore[LOCK005]
                entry = current
            else:
                entry = _CrossEntry(cross)
                entry.half = half
                if entry.nbytes <= self.cross_cache_bytes:
                    self._cross[key] = entry
                    self._cross_bytes += entry.nbytes
            while self._cross_bytes > self.cross_cache_bytes:
                _, evicted = self._cross.popitem(last=False)
                self._cross_bytes -= evicted.nbytes
            return entry

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def _check_test(self, x_test: np.ndarray) -> np.ndarray:
        require_finite("x_test", x_test)
        x_test = as_locations(x_test, dim=self.kernel.ndim_locations)
        if x_test.shape[1] != self.x_train.shape[1]:
            raise ShapeError("train and test locations have different dimensions")
        return x_test

    def _predict_batch(
        self, x_batch: np.ndarray, return_uncertainty: bool, use_cache: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        entry = self._entry_for(
            x_batch, need_half=return_uncertainty, use_cache=use_cache
        )
        mean = entry.cross.T @ self.weights
        variance = None
        if return_uncertainty:
            half = entry.half
            variance = self.marginal - np.einsum("ij,ij->j", half, half)
            variance, clamped = clamp_variance(variance, where="PredictionEngine")
            if clamped:
                with self._lock:
                    self._clamped += clamped
        with self._lock:
            self._batches += 1
        return mean, variance

    def _serve_batch(
        self,
        start: int,
        x_slice: np.ndarray,
        return_uncertainty: bool,
        use_cache: bool,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """One batch through the resilience hooks: chaos perturbation
        (keyed on the batch's start offset — scheduling-independent)
        and transient-failure retry.  Inert hooks short-circuit to the
        plain path."""
        if self._retry is None and self._chaos is None:
            return self._predict_batch(x_slice, return_uncertainty, use_cache)

        def attempt_fn(attempt: int):
            if self._chaos is not None:
                self._chaos.perturb_batch(start, attempt)
            return self._predict_batch(x_slice, return_uncertainty, use_cache)

        if self._retry is None:
            return attempt_fn(1)

        def note_retry(attempt: int, exc: BaseException) -> None:
            with self._lock:
                self._batch_retries += 1

        return self._retry.call(attempt_fn, site=start, on_retry=note_retry)

    def predict(
        self,
        x_test: np.ndarray,
        *,
        return_uncertainty: bool = False,
        batch: int | None = None,
        workers: int | None = None,
        deadline_s: float | None = None,
    ) -> PredictionResult:
        """Batched kriging prediction (Eq. 4) and optional uncertainty
        (Eq. 5) at ``x_test``.

        Batches are independent multi-RHS solves, so ``workers > 1``
        computes them on a thread pool with bit-identical results.

        ``deadline_s`` bounds the call's wall clock: the first batch
        dispatched past the budget raises
        :class:`~repro.exceptions.DeadlineExceededError` after the pool
        drains (cooperative — an in-flight batch finishes first).  Any
        batch failure cancels the remaining batches the same way and
        re-raises the first error; partial results are discarded.
        """
        x_test = self._check_test(x_test)
        width = self.batch if batch is None else max(1, int(batch))
        nworkers = self.workers if workers is None else max(1, int(workers))
        deadline = Deadline.after(deadline_s)
        cancel = CancellationToken()
        m = len(x_test)
        mean = np.empty(m, dtype=np.float64)
        variance = np.empty(m, dtype=np.float64) if return_uncertainty else None
        spans = [(s, min(s + width, m)) for s in range(0, m, width)]
        telemetry = self.telemetry
        spans_on = telemetry is not None and telemetry.tracer.enabled

        with maybe_span(
            telemetry, "predict", m=m, batches=len(spans),
            workers=nworkers, uncertainty=bool(return_uncertainty),
        ):
            # Batches run on pool threads, which do not inherit the
            # caller's contextvars — capture the parent span id here.
            parent_sid = current_span_id() if spans_on else None

            def run(span: tuple[int, int]) -> None:
                cancel.check("predict batch")
                if deadline is not None:
                    deadline.check("predict batch")
                start, stop = span
                t_start = time.perf_counter() if spans_on else 0.0
                mb, vb = self._serve_batch(
                    start, x_test[start:stop], return_uncertainty,
                    use_cache=True,
                )
                if spans_on:
                    telemetry.tracer.add_span(
                        "predict_batch", t_start, time.perf_counter(),
                        parent=parent_sid, tid=threading.get_ident(),
                        attrs={"start": start, "stop": stop},
                    )
                mean[start:stop] = mb
                if variance is not None:
                    variance[start:stop] = vb

            try:
                if nworkers > 1 and len(spans) > 1:
                    with ThreadPoolExecutor(max_workers=nworkers) as pool:
                        futures = [pool.submit(run, span) for span in spans]
                        try:
                            for fut in as_completed(futures):
                                fut.result()  # first error propagates
                        except BaseException as exc:
                            # Poison the queue: queued batches see the
                            # token and return immediately; the context
                            # manager joins every worker before
                            # re-raising.
                            cancel.cancel(f"predict failed: {exc!r}")
                            raise
                else:
                    for span in spans:
                        run(span)
            except Exception:
                with self._lock:
                    self._failed_calls += 1
                self._breaker.record_failure()
                if telemetry is not None:
                    telemetry.record_serving_stats(self.stats())
                    telemetry.record_health(self.health())
                raise
            self._breaker.record_success()
            with self._lock:
                self._predict_calls += 1
                self._predictions += m
        if telemetry is not None:
            telemetry.record_serving_stats(self.stats())
            telemetry.record_health(self.health())
        return PredictionResult(mean=mean, variance=variance)

    def predict_iter(
        self,
        x_test: np.ndarray,
        *,
        return_uncertainty: bool = False,
        batch: int | None = None,
    ):
        """Stream predictions batch by batch for grids too large to
        hold ``n_train x m`` cross blocks: yields one
        :class:`PredictionResult` per batch, touching only
        ``n_train x batch`` memory at a time (the value LRU is
        bypassed so streaming cannot grow the cache)."""
        x_test = self._check_test(x_test)
        width = self.batch if batch is None else max(1, int(batch))
        m = len(x_test)
        for start in range(0, m, width):
            stop = min(start + width, m)
            mb, vb = self._serve_batch(
                start, x_test[start:stop], return_uncertainty, use_cache=False
            )
            with self._lock:
                self._predict_calls += 1
                self._predictions += stop - start
            yield PredictionResult(mean=mb, variance=vb)

    def score(self, x_test: np.ndarray, z_test: np.ndarray) -> float:
        """Mean squared prediction error on held-out data (the paper's
        MSPE column)."""
        require_finite("z_test", z_test)
        pred = self.predict(x_test)
        z_test = np.asarray(z_test, dtype=np.float64).ravel()
        if z_test.shape != pred.mean.shape:
            raise ShapeError("z_test length does not match x_test")
        return float(np.mean((pred.mean - z_test) ** 2))

    def simulate(
        self,
        x_test: np.ndarray,
        *,
        size: int = 1,
        seed: int | None = None,
        jitter: float = 1.0e-10,
    ) -> np.ndarray:
        """Conditional simulation (Eq. 3) reusing the engine's factor,
        solver, and weights."""
        from .simulation import conditional_simulation

        return conditional_simulation(
            self.kernel, self.theta, self.x_train, self.z_train,
            self._check_test(x_test), self.factor,
            size=size, seed=seed, jitter=jitter,
            solver=self.solver, weights=self.weights,
        )

    def stats(self) -> ServingStats:
        with self._lock:
            return ServingStats(
                predict_calls=self._predict_calls,
                predictions=self._predictions,
                batches=self._batches,
                weight_solves=self._weight_solves,
                tile_casts=self.solver.casts,
                solves=self.solver.solves,
                cross_hits=self._cross_hits,
                cross_misses=self._cross_misses,
                cross_cache_bytes=self._cross_bytes,
                clamped_variances=self._clamped,
                failed_calls=self._failed_calls,
                batch_retries=self._batch_retries,
            )

    def health(self) -> HealthReport:
        """Serving error budget: failed predict calls, the current
        failure streak, transient batch retries absorbed, and the
        circuit breaker's state (tripping clears the cross LRU — see
        :meth:`clear_cross_cache`)."""
        with self._lock:
            calls = self._predict_calls + self._failed_calls
            failures = self._failed_calls
            retries = self._batch_retries
        consecutive, trips, is_open = self._breaker.snapshot()
        return HealthReport(
            calls=calls,
            failures=failures,
            consecutive_failures=consecutive,
            retries=retries,
            breaker_trips=trips,
            breaker_open=is_open,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PredictionEngine(n={self.n_train}, variantless-factor "
            f"nt={self.factor.nt}, served={self._predictions})"
        )
