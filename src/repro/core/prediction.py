"""Kriging prediction and uncertainty (paper Eqs. 4-5).

Given the factor ``L`` of the training covariance ``Sigma_nn``:

* prediction   ``z_m = Sigma_mn Sigma_nn^{-1} z_n``           (Eq. 4)
* uncertainty  ``U_m = diag(Sigma_mm - Sigma_mn Sigma_nn^{-1} Sigma_nm)``
                                                              (Eq. 5)

Both reduce to triangular solves with the tiled factor.  Test locations
are processed in batches so peak memory stays at
``n_train x batch`` cross-covariance blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PREDICT_BATCH
from ..exceptions import ShapeError
from ..kernels.base import CovarianceKernel
from ..kernels.distance import as_locations
from ..tile.geometry import GeometryCache
from ..tile.matrix import TileMatrix
from ..tile.solve import backward_solve, forward_solve

__all__ = ["PredictionResult", "kriging_predict"]


@dataclass
class PredictionResult:
    """Predictions (and optional variances) at the test locations."""

    mean: np.ndarray
    variance: np.ndarray | None = None

    def standard_error(self) -> np.ndarray:
        if self.variance is None:
            raise ShapeError("prediction was run without uncertainty")
        return np.sqrt(np.maximum(self.variance, 0.0))


def kriging_predict(
    kernel: CovarianceKernel,
    theta: np.ndarray,
    x_train: np.ndarray,
    z_train: np.ndarray,
    x_test: np.ndarray,
    factor: TileMatrix,
    *,
    return_uncertainty: bool = False,
    batch: int = PREDICT_BATCH,
    cache: GeometryCache | None = None,
) -> PredictionResult:
    """Predict at ``x_test`` given a factored training covariance.

    ``factor`` must be the tile Cholesky factor of
    ``Sigma_nn(theta)`` over ``x_train`` (as produced by the
    likelihood evaluation at the fitted parameters).

    ``cache`` reuses the theta-independent cross geometry (train/test
    distances) across repeated predictions at the same locations —
    e.g. re-predicting after a parameter update.
    """
    x_train = as_locations(x_train)
    x_test = as_locations(x_test)
    if x_train.shape[1] != x_test.shape[1]:
        raise ShapeError("train and test locations have different dimensions")
    z = np.asarray(z_train, dtype=np.float64).ravel()
    if z.shape[0] != len(x_train):
        raise ShapeError("z_train length does not match x_train")
    if factor.n != len(x_train):
        raise ShapeError("factor dimension does not match x_train")

    # w = Sigma_nn^{-1} z via the two triangular solves.
    weights = backward_solve(factor, forward_solve(factor, z))

    m = len(x_test)
    mean = np.empty(m, dtype=np.float64)
    variance = np.empty(m, dtype=np.float64) if return_uncertainty else None
    marginal = kernel.variance(theta)
    for start in range(0, m, batch):
        stop = min(start + batch, m)
        if cache is not None:
            geom = cache.pair_geometry(kernel, x_train, x_test[start:stop])
            cross = kernel.from_geometry(theta, geom)  # (n, mb)
        else:
            cross = kernel(theta, x_train, x_test[start:stop])  # (n, mb)
        mean[start:stop] = cross.T @ weights
        if variance is not None:
            half = forward_solve(factor, cross)  # L^{-1} Sigma_nm
            variance[start:stop] = marginal - np.einsum("ij,ij->j", half, half)
    return PredictionResult(mean=mean, variance=variance)
