"""Kriging prediction and uncertainty (paper Eqs. 4-5).

Given the factor ``L`` of the training covariance ``Sigma_nn``:

* prediction   ``z_m = Sigma_mn Sigma_nn^{-1} z_n``           (Eq. 4)
* uncertainty  ``U_m = diag(Sigma_mm - Sigma_mn Sigma_nn^{-1} Sigma_nm)``
                                                              (Eq. 5)

Both reduce to multi-RHS triangular solves with the tiled factor.
:func:`kriging_predict` is the one-shot entry point; it routes through
a transient :class:`~repro.core.serving.PredictionEngine`, so test
locations are processed in batches (peak memory stays at
``n_train x batch`` cross-covariance blocks) and every batch shares
one weight solve and one per-tile precision cast.  For repeated
predictions against the same fitted state, hold a
:class:`~repro.core.serving.PredictionEngine` (or use
:meth:`~repro.core.model.ExaGeoStatModel.serving_engine`) instead.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from ..config import PREDICT_BATCH
from ..exceptions import ShapeError
from ..kernels.base import CovarianceKernel
from ..tile.geometry import GeometryCache
from ..tile.matrix import TileMatrix

__all__ = ["PredictionResult", "kriging_predict", "clamp_variance"]

logger = logging.getLogger(__name__)


@dataclass
class PredictionResult:
    """Predictions (and optional variances) at the test locations."""

    mean: np.ndarray
    variance: np.ndarray | None = None

    def standard_error(self) -> np.ndarray:
        if self.variance is None:
            raise ShapeError("prediction was run without uncertainty")
        # Variances are already clamped at the source (Eq. 5 rounding);
        # the maximum here only guards results from older pickles.
        return np.sqrt(np.maximum(self.variance, 0.0))


def clamp_variance(variance: np.ndarray, *, where: str = "kriging") -> tuple[np.ndarray, int]:
    """Clamp small negative Eq.-5 variances (MP/TLR rounding) to 0.

    Returns the clamped array and the number of entries clamped; emits
    a debug-level diagnostic when any were, so serving logs can track
    how hard the approximation is pushing against the PSD boundary.
    """
    negative = variance < 0.0
    count = int(np.count_nonzero(negative))
    if count:
        logger.debug(
            "%s: clamped %d negative predictive variance(s) to 0 "
            "(min %.3e) — Eq. 5 under MP/TLR rounding",
            where, count, float(variance.min()),
        )
        variance = np.where(negative, 0.0, variance)
    return variance, count


def kriging_predict(
    kernel: CovarianceKernel,
    theta: np.ndarray,
    x_train: np.ndarray,
    z_train: np.ndarray,
    x_test: np.ndarray,
    factor: TileMatrix,
    *,
    return_uncertainty: bool = False,
    batch: int = PREDICT_BATCH,
    cache: GeometryCache | None = None,
    workers: int = 1,
) -> PredictionResult:
    """Predict at ``x_test`` given a factored training covariance.

    ``factor`` must be the tile Cholesky factor of
    ``Sigma_nn(theta)`` over ``x_train`` (as produced by the
    likelihood evaluation at the fitted parameters).

    ``cache`` reuses the theta-independent cross geometry (train/test
    distances) across repeated predictions at the same locations —
    e.g. re-predicting after a parameter update.  ``workers`` spreads
    independent test batches over a thread pool.
    """
    from .serving import PredictionEngine

    engine = PredictionEngine(
        kernel, theta, x_train, z_train, factor,
        cache=cache, batch=batch, workers=workers,
        cross_cache_bytes=0,  # one-shot call: nothing to reuse
    )
    return engine.predict(x_test, return_uncertainty=return_uncertainty)
