"""Compute variants: the paper's three Cholesky configurations.

Every accuracy/performance experiment compares:

* ``DENSE_FP64`` — the reference: all tiles dense, all FP64;
* ``MP_DENSE`` — mixed precision, dense tiles (Fig. 2(d): adaptive
  Frobenius-rule precision per tile);
* ``MP_DENSE_TLR`` — mixed precision plus tile low-rank off the dense
  band (Fig. 3(b)) — the paper's headline variant.

A :class:`VariantConfig` carries every knob the assembly/factorization
pipeline understands so experiments can also build ablations (band
precision rule, pure HGEMM, fixed band sizes, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..config import DEFAULT_MAX_RANK_FRACTION, DEFAULT_TLR_TOLERANCE
from ..exceptions import ConfigurationError
from ..perfmodel.machine import A64FX, MachineSpec
from ..tile.recovery import DEFAULT_RECOVERY, RecoveryPolicy

__all__ = [
    "VariantConfig",
    "DENSE_FP64",
    "MP_DENSE",
    "MP_DENSE_TLR",
    "MP_DENSE_TLR_RECOVER",
    "get_variant",
]


@dataclass(frozen=True)
class VariantConfig:
    """Configuration of one compute variant.

    ``band_size`` is an integer or ``"auto"`` (Algorithm 2);
    ``structure_mode`` chooses between the paper's performance-model
    decision (meaningful at production tile sizes) and the
    scale-independent rank criterion used for laptop-size numerics.
    ``recovery`` (a :class:`~repro.tile.recovery.RecoveryPolicy`)
    enables the numerical recovery ladder: instead of failing on an
    indefinite planned covariance, the likelihood retries with
    escalating precision/structure promotion and bounded jitter.

    ``workers`` sets the thread-pool width for tile generation,
    compression, and the DAG Cholesky executor (1 = the sequential
    reference path, bit-identical for dense FP64).  ``fast_lr`` opts
    into the raw-LAPACK low-rank arithmetic and warm-started sketch
    compression — same error tolerance, different rounding, so it is
    off by default.  ``batch`` routes assembly and factorization
    through the batched execution layer (stacked BLAS over homogeneous
    tile groups, :mod:`repro.tile.batch`); dense results stay
    bit-identical, but it is off by default because deadlines and
    task-level resilience force a fallback to the per-tile executors.
    ``backend`` picks the factorization engine — ``"auto"`` (the
    historical routing), ``"sequential"``, ``"thread"``, or
    ``"process"`` (the shared-memory multiprocess executor,
    :mod:`repro.runtime.procpool`); all backends produce bit-identical
    results.
    """

    name: str
    use_mp: bool = False
    use_tlr: bool = False
    mp_mode: str = "adaptive"  # or "band"
    mp_accuracy: float = 1.0e-8
    mp_fp64_band: int = 1
    mp_fp32_band: int | None = None
    tlr_tol: float = DEFAULT_TLR_TOLERANCE
    band_size: int | str = 2
    structure_mode: str = "rank"
    max_rank_fraction: float = DEFAULT_MAX_RANK_FRACTION
    fp16_accumulate_fp32: bool = True
    shgemm_mode: str = "sgemm_fallback"
    machine: MachineSpec = field(default=A64FX)
    recovery: RecoveryPolicy | None = None
    workers: int = 1
    fast_lr: bool = False
    batch: bool = False
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.backend not in ("auto", "sequential", "thread", "process"):
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected 'auto', "
                "'sequential', 'thread', or 'process'"
            )
        if self.mp_mode not in ("adaptive", "band"):
            raise ConfigurationError(f"unknown mp_mode {self.mp_mode!r}")
        if self.structure_mode not in ("rank", "perfmodel"):
            raise ConfigurationError(
                f"unknown structure_mode {self.structure_mode!r}"
            )
        if not self.fp16_accumulate_fp32 and self.shgemm_mode != "hgemm":
            raise ConfigurationError(
                "fp16_accumulate_fp32=False is the HGEMM emulation; set "
                "shgemm_mode='hgemm' to make the intent explicit"
            )

    def assembly_kwargs(self) -> dict:
        """Keyword arguments for
        :func:`repro.tile.assembly.build_planned_covariance`."""
        return dict(
            use_mp=self.use_mp,
            mp_mode=self.mp_mode,
            mp_accuracy=self.mp_accuracy,
            mp_fp64_band=self.mp_fp64_band,
            mp_fp32_band=self.mp_fp32_band,
            use_tlr=self.use_tlr,
            tlr_tol=self.tlr_tol,
            band_size=self.band_size,
            max_rank_fraction=self.max_rank_fraction,
            structure_mode=self.structure_mode,
            machine=self.machine,
        )

    def with_(self, **changes) -> "VariantConfig":
        """Derived variant with some fields replaced."""
        return replace(self, **changes)


DENSE_FP64 = VariantConfig(name="dense-fp64")
MP_DENSE = VariantConfig(name="mp-dense", use_mp=True)
MP_DENSE_TLR = VariantConfig(
    name="mp-dense-tlr", use_mp=True, use_tlr=True, band_size=2
)
#: The headline variant hardened with the full recovery ladder — what a
#: production MLE driver should run.
MP_DENSE_TLR_RECOVER = MP_DENSE_TLR.with_(
    name="mp-dense-tlr-recover", recovery=DEFAULT_RECOVERY
)

_REGISTRY = {
    v.name: v
    for v in (DENSE_FP64, MP_DENSE, MP_DENSE_TLR, MP_DENSE_TLR_RECOVER)
}
_ALIASES = {
    "dense_fp64": "dense-fp64",
    "fp64": "dense-fp64",
    "mp_dense": "mp-dense",
    "mp": "mp-dense",
    "mp_dense_tlr": "mp-dense-tlr",
    "tlr": "mp-dense-tlr",
    "mp_dense_tlr_recover": "mp-dense-tlr-recover",
    "tlr-recover": "mp-dense-tlr-recover",
    "tlr_recover": "mp-dense-tlr-recover",
}


def get_variant(name: "str | VariantConfig") -> VariantConfig:
    """Look up a preset variant by name (a config passes through)."""
    if isinstance(name, VariantConfig):
        return name
    key = _ALIASES.get(name.lower(), name.lower())
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown variant {name!r}; presets: {sorted(_REGISTRY)}"
        ) from None
