"""Uncertainty quantification for the MLE (paper Section VIII).

The paper's "Implications" point to uncertainty-quantified optimization
as the natural extension ("the inverse of the covariance again plays a
central role").  This module provides the standard asymptotic toolkit
on top of the tiled likelihood:

* :func:`observed_information` — numerical Hessian of the negative
  log-likelihood at ``theta_hat`` (central differences, log-scaled
  steps for positive parameters);
* :func:`mle_uncertainty` — asymptotic covariance
  ``I(theta_hat)^{-1}``, standard errors, and Wald confidence
  intervals;
* :func:`profile_likelihood` — 1-D likelihood profiles for
  visual/diagnostic use.

Every Hessian entry costs a handful of tile-Cholesky factorizations, so
the same MP/TLR acceleration that speeds the MLE speeds its UQ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from ..exceptions import NotPositiveDefiniteError, OptimizationError, ParameterError
from ..kernels.base import CovarianceKernel
from ..tile.geometry import GeometryCache
from .likelihood import loglikelihood
from .variants import DENSE_FP64, VariantConfig, get_variant

__all__ = [
    "MLEUncertainty",
    "observed_information",
    "mle_uncertainty",
    "profile_likelihood",
]


def _loglik_fn(
    kernel: CovarianceKernel,
    x: np.ndarray,
    z: np.ndarray,
    tile_size: int,
    variant: VariantConfig,
    nugget: float,
    cache: GeometryCache | None = None,
):
    def fn(theta: np.ndarray) -> float:
        try:
            return loglikelihood(
                kernel, theta, x, z,
                tile_size=tile_size, variant=variant, nugget=nugget,
                cache=cache,
            ).value
        except (NotPositiveDefiniteError, ParameterError):
            return -np.inf

    return fn


def _steps(kernel: CovarianceKernel, theta: np.ndarray, rel: float) -> np.ndarray:
    """Per-parameter finite-difference steps that respect the open
    bounds: proportional steps clipped so ``theta +- h`` stays inside."""
    steps = np.empty_like(theta)
    for k, spec in enumerate(kernel.param_specs):
        h = rel * max(abs(theta[k]), 1e-3)
        room_low = theta[k] - spec.lower
        room_high = spec.upper - theta[k]
        room = min(room_low, room_high) if np.isfinite(room_high) else room_low
        steps[k] = min(h, 0.45 * room) if room > 0 else h
    return steps


def observed_information(
    kernel: CovarianceKernel,
    theta_hat: np.ndarray,
    x: np.ndarray,
    z: np.ndarray,
    *,
    tile_size: int,
    variant: "str | VariantConfig" = DENSE_FP64,
    nugget: float = 0.0,
    rel_step: float = 1.0e-3,
    cache: GeometryCache | None = None,
) -> np.ndarray:
    """Observed information ``I = -Hessian(loglik)`` at ``theta_hat``
    by central second differences (O(p^2) likelihood evaluations).

    ``cache`` shares theta-independent tile geometry across the
    evaluations — the Hessian's O(p^2) factorizations all reuse one
    geometry build, the same amortization the serving engine applies
    to prediction.
    """
    cfg = get_variant(variant)
    theta_hat = kernel.validate_theta(theta_hat)
    fn = _loglik_fn(kernel, x, z, tile_size, cfg, nugget, cache)
    p = theta_hat.shape[0]
    h = _steps(kernel, theta_hat, rel_step)
    f0 = fn(theta_hat)
    if not np.isfinite(f0):
        raise OptimizationError("likelihood not finite at theta_hat")

    hess = np.empty((p, p))
    # Diagonal: standard central second difference.
    for i in range(p):
        e = np.zeros(p)
        e[i] = h[i]
        fp = fn(theta_hat + e)
        fm = fn(theta_hat - e)
        hess[i, i] = (fp - 2.0 * f0 + fm) / h[i] ** 2
    # Off-diagonal: four-point formula.
    for i in range(p):
        for j in range(i + 1, p):
            ei = np.zeros(p)
            ej = np.zeros(p)
            ei[i] = h[i]
            ej[j] = h[j]
            fpp = fn(theta_hat + ei + ej)
            fpm = fn(theta_hat + ei - ej)
            fmp = fn(theta_hat - ei + ej)
            fmm = fn(theta_hat - ei - ej)
            hess[i, j] = hess[j, i] = (
                (fpp - fpm - fmp + fmm) / (4.0 * h[i] * h[j])
            )
    if not np.all(np.isfinite(hess)):
        raise OptimizationError(
            "Hessian evaluation hit the parameter boundary; "
            "reduce rel_step or re-check theta_hat"
        )
    return -hess


@dataclass
class MLEUncertainty:
    """Asymptotic uncertainty of an MLE."""

    theta: np.ndarray
    covariance: np.ndarray
    standard_errors: np.ndarray
    level: float
    lower: np.ndarray
    upper: np.ndarray
    param_names: tuple[str, ...]

    def interval(self, name: str) -> tuple[float, float]:
        k = self.param_names.index(name)
        return float(self.lower[k]), float(self.upper[k])

    def summary_rows(self) -> list[list[object]]:
        return [
            [n, float(t), float(se), float(lo), float(hi)]
            for n, t, se, lo, hi in zip(
                self.param_names, self.theta, self.standard_errors,
                self.lower, self.upper,
            )
        ]


def mle_uncertainty(
    kernel: CovarianceKernel,
    theta_hat: np.ndarray,
    x: np.ndarray,
    z: np.ndarray,
    *,
    tile_size: int,
    variant: "str | VariantConfig" = DENSE_FP64,
    nugget: float = 0.0,
    level: float = 0.95,
    rel_step: float = 1.0e-3,
    cache: GeometryCache | None = None,
) -> MLEUncertainty:
    """Asymptotic covariance ``I^{-1}``, standard errors, and Wald
    intervals at confidence ``level``.

    Raises :class:`~repro.exceptions.OptimizationError` when the
    observed information is not positive definite (``theta_hat`` is not
    an interior maximum).
    """
    info = observed_information(
        kernel, theta_hat, x, z,
        tile_size=tile_size, variant=variant, nugget=nugget,
        rel_step=rel_step, cache=cache,
    )
    try:
        cov = np.linalg.inv(info)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - degenerate
        raise OptimizationError(f"singular information matrix: {exc}") from exc
    diag = np.diag(cov)
    if np.any(diag <= 0):
        raise OptimizationError(
            "observed information is not positive definite at theta_hat"
        )
    se = np.sqrt(diag)
    zcrit = float(np.sqrt(2.0) * special.erfinv(level))
    theta_hat = kernel.validate_theta(theta_hat)
    return MLEUncertainty(
        theta=theta_hat,
        covariance=cov,
        standard_errors=se,
        level=level,
        lower=theta_hat - zcrit * se,
        upper=theta_hat + zcrit * se,
        param_names=kernel.param_names,
    )


def profile_likelihood(
    kernel: CovarianceKernel,
    theta_hat: np.ndarray,
    x: np.ndarray,
    z: np.ndarray,
    param: str,
    values: np.ndarray,
    *,
    tile_size: int,
    variant: "str | VariantConfig" = DENSE_FP64,
    nugget: float = 0.0,
    cache: GeometryCache | None = None,
) -> np.ndarray:
    """Log-likelihood along one parameter axis with the others fixed at
    ``theta_hat`` (the cheap fixed-profile, not the re-optimized one)."""
    cfg = get_variant(variant)
    theta_hat = kernel.validate_theta(theta_hat)
    try:
        k = kernel.param_names.index(param)
    except ValueError:
        raise ParameterError(
            f"unknown parameter {param!r}; choose from {kernel.param_names}"
        ) from None
    fn = _loglik_fn(kernel, x, z, tile_size, cfg, nugget, cache)
    out = np.empty(len(values))
    for i, v in enumerate(np.asarray(values, dtype=np.float64)):
        theta = theta_hat.copy()
        theta[k] = v
        out[i] = fn(theta)
    return out
