"""MLE hot-path evaluation engine.

One Nelder-Mead fit evaluates the likelihood hundreds of times at the
same ``(x, tile_size)`` and a slowly moving ``theta``.  The
:class:`EvaluationEngine` owns everything reusable across those
evaluations:

* a :class:`~repro.tile.geometry.GeometryCache` of theta-independent
  per-tile geometry (distance matrices, space-time lags), keyed on a
  content hash of the locations so stale reuse is impossible;
* *warm rank hints* — each tile's compression rank from the previous
  evaluation, fed back into the next one (ranks vary slowly along an
  optimizer trace), enabling the values-only early-out for over-cap
  tiles and the warm-started randomized sketch when ``fast_lr`` is on;
* the execution knobs (``workers`` thread pool, ``fast_lr`` low-rank
  arithmetic) resolved once from the variant.

The engine is deliberately thin: each :meth:`evaluate` is exactly one
:func:`~repro.core.likelihood.loglikelihood` call with the reusable
state threaded through, so results match the one-shot API by
construction (bit-identical with ``fast_lr`` off for every kernel
whose geometry path is exact — all built-ins except the anisotropic
Matérn, which matches to rounding).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.base import CovarianceKernel
from ..kernels.distance import as_locations
from ..resilience import Deadline, HealthReport, ResilienceConfig
from ..tile.geometry import GeometryCache
from .likelihood import LikelihoodResult, loglikelihood
from .variants import DENSE_FP64, VariantConfig, get_variant

__all__ = ["EngineStats", "EvaluationEngine"]


@dataclass
class EngineStats:
    """Reuse counters of one engine."""

    evaluations: int = 0
    geometry_hits: int = 0
    geometry_misses: int = 0
    warm_tiles: int = 0  # tiles currently carrying a rank hint


class EvaluationEngine:
    """Reusable evaluation state for repeated likelihoods on one dataset.

    Parameters mirror :func:`~repro.core.mle.fit_mle`; ``cache`` may be
    ``False`` (disable geometry reuse), ``None``/``True`` (own a fresh
    :class:`~repro.tile.geometry.GeometryCache`), or an existing cache
    to share across engines.  ``workers``/``fast_lr`` default to the
    variant's settings; ``batch`` (default: the variant's flag) routes
    assembly + factorization through the batched execution layer.

    ``backend`` (default: the variant's setting) picks the
    factorization engine; with ``"process"`` this engine owns a
    persistent :class:`~repro.runtime.procpool.ProcessPoolEngine` whose
    workers are spawned once and reused by every evaluation — call
    :meth:`close` (or use the engine as a context manager) to stop
    them.  All backends return bit-identical results.

    ``telemetry`` (a :class:`~repro.obs.Telemetry`, default ``None``)
    threads span tracing and metrics through every evaluation; after
    each one the engine's :class:`EngineStats` gauges are refreshed in
    the bundle's registry.
    """

    def __init__(
        self,
        kernel: CovarianceKernel,
        x: np.ndarray,
        z: np.ndarray,
        *,
        tile_size: int,
        variant: "str | VariantConfig" = DENSE_FP64,
        nugget: float = 0.0,
        cache: "GeometryCache | bool | None" = None,
        workers: int | None = None,
        fast_lr: bool | None = None,
        resilience: ResilienceConfig | None = None,
        batch: bool | None = None,
        backend: str | None = None,
        telemetry=None,
    ):
        self.cfg = get_variant(variant)
        self.kernel = kernel
        self.x = as_locations(x, dim=kernel.ndim_locations)
        self.z = np.asarray(z, dtype=np.float64)
        self.tile_size = int(tile_size)
        self.nugget = float(nugget)
        self.workers = (
            self.cfg.workers if workers is None else max(1, int(workers))
        )
        self.fast_lr = self.cfg.fast_lr if fast_lr is None else bool(fast_lr)
        self.batch = self.cfg.batch if batch is None else bool(batch)
        self.backend = self.cfg.backend if backend is None else str(backend)
        self.telemetry = telemetry
        self._procpool = None
        if self.backend == "process":
            from ..runtime.procpool import ProcessPoolEngine

            self._procpool = ProcessPoolEngine(workers=self.workers)
        if cache is False:
            self.cache: GeometryCache | None = None
        elif isinstance(cache, GeometryCache):
            self.cache = cache
        else:  # None or True: own a fresh cache
            self.cache = GeometryCache()
        # bind() so every evaluation of this engine shares one chaos
        # injector (one epoch stream, one tally); None stays None.
        self.resilience = None if resilience is None else resilience.bind()
        self.rank_hints: dict[tuple[int, int], int] = {}
        self._evaluations = 0
        self._failures = 0
        self._consecutive_failures = 0
        self._retries = 0
        self._recoveries = 0

    def evaluate(
        self, theta: np.ndarray, *, deadline: Deadline | None = None
    ) -> LikelihoodResult:
        """One likelihood evaluation with every reusable piece applied,
        feeding this evaluation's ranks back as the next one's hints.

        Failures (indefinite covariance, exhausted recovery, expired
        ``deadline``) re-raise after updating the engine's error
        budget; :meth:`health` reports it.
        """
        self._evaluations += 1
        try:
            result = loglikelihood(
                self.kernel, theta, self.x, self.z,
                tile_size=self.tile_size, variant=self.cfg, nugget=self.nugget,
                cache=self.cache,
                rank_hints=self.rank_hints if self.rank_hints else None,
                workers=self.workers, fast_lr=self.fast_lr,
                resilience=self.resilience, deadline=deadline,
                batch=self.batch,
                backend=self.backend, procpool=self._procpool,
                telemetry=self.telemetry,
            )
        except Exception:
            self._failures += 1
            self._consecutive_failures += 1
            raise
        self._consecutive_failures = 0
        self._retries += result.stats.retries
        if result.recovery is not None:
            self._recoveries += 1
        if result.report.ranks:
            self.rank_hints.update(result.report.ranks)
        if self.telemetry is not None:
            self.telemetry.record_engine_stats(self.stats())
        return result

    def close(self) -> None:
        """Release backend resources — for ``backend="process"``, stop
        the persistent worker pool.  Idempotent; the engine stays
        usable (the pool restarts lazily on the next evaluation)."""
        if self._procpool is not None:
            self._procpool.close()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> EngineStats:
        return EngineStats(
            evaluations=self._evaluations,
            geometry_hits=0 if self.cache is None else self.cache.hits,
            geometry_misses=0 if self.cache is None else self.cache.misses,
            warm_tiles=len(self.rank_hints),
        )

    def health(self) -> HealthReport:
        """Error-budget report over this engine's lifetime: how many
        evaluations failed, the current failure streak, and how much
        work the resilience layer absorbed (task retries, recovery-
        ladder rescues)."""
        return HealthReport(
            calls=self._evaluations,
            failures=self._failures,
            consecutive_failures=self._consecutive_failures,
            retries=self._retries,
            recoveries=self._recoveries,
        )
