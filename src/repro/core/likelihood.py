"""Gaussian log-likelihood evaluation (paper Eq. 1).

    l(theta) = -(n/2) log(2 pi) - (1/2) log|Sigma(theta)|
               - (1/2) z^T Sigma(theta)^{-1} z

The tiled path builds the covariance under a compute variant's plan,
runs the tile Cholesky, takes ``log|Sigma|`` from the factor diagonal,
and the quadratic form from one forward solve.  A plain-NumPy dense
FP64 path is provided as the independent reference for tests.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

import numpy as np

from ..exceptions import (
    ConfigurationError,
    NotPositiveDefiniteError,
    SchedulingError,
    ShapeError,
)
from ..kernels.base import CovarianceKernel
from ..obs.telemetry import maybe_span
from ..resilience import Deadline, ResilienceConfig
from ..resilience.validate import require_finite
from ..tile.assembly import AssemblyReport, build_planned_covariance
from ..tile.cholesky import CholeskyStats, tile_cholesky
from ..tile.compression import use_fast_lr
from ..tile.geometry import GeometryCache, TileGeometry
from ..tile.matrix import TileMatrix
from ..tile.recovery import RecoveryReport, factor_with_recovery
from ..tile.solve import forward_solve, tile_logdet
from .variants import DENSE_FP64, VariantConfig, get_variant

__all__ = [
    "LikelihoodResult",
    "loglikelihood",
    "loglikelihood_replicated",
    "loglikelihood_dense_reference",
]

_LOG_2PI = math.log(2.0 * math.pi)


@dataclass
class LikelihoodResult:
    """One likelihood evaluation, with the pieces experiments report."""

    value: float
    logdet: float
    quadratic: float
    n: int
    variant: str
    factor: TileMatrix
    report: AssemblyReport
    stats: CholeskyStats
    #: Non-``None`` only when the variant's recovery ladder had to
    #: rescue this evaluation from a factorization breakdown.
    recovery: RecoveryReport | None = None

    def __float__(self) -> float:  # pragma: no cover - convenience
        return self.value


def _check_observations(x: np.ndarray, z: np.ndarray) -> np.ndarray:
    require_finite("x", x)
    require_finite("z", z)
    z = np.asarray(z, dtype=np.float64).ravel()
    if z.shape[0] != len(x):
        raise ShapeError(
            f"{len(x)} locations but {z.shape[0]} observations"
        )
    return z


def _factor_planned(
    matrix: TileMatrix,
    *,
    tile_tol: float,
    max_rank: int | None,
    fp16_accumulate_fp32: bool,
    workers: int,
    resilience=None,
    deadline=None,
    batch: bool = False,
    backend: str = "auto",
    procpool=None,
    telemetry=None,
) -> tuple[TileMatrix, CholeskyStats]:
    """Factor a planned covariance under a ``"factorize"`` span; see
    :func:`_factor_planned_impl` for the backend routing contract.
    ``telemetry`` flows into the executors (per-task spans, merged
    worker timelines) and receives each run's
    :class:`~repro.runtime.parallel.ParallelRunReport` metrics."""
    with maybe_span(
        telemetry, "factorize", nt=matrix.nt, backend=backend,
        workers=workers, batch=bool(batch),
    ):
        return _factor_planned_impl(
            matrix, tile_tol=tile_tol, max_rank=max_rank,
            fp16_accumulate_fp32=fp16_accumulate_fp32, workers=workers,
            resilience=resilience, deadline=deadline, batch=batch,
            backend=backend, procpool=procpool, telemetry=telemetry,
        )


def _factor_planned_impl(
    matrix: TileMatrix,
    *,
    tile_tol: float,
    max_rank: int | None,
    fp16_accumulate_fp32: bool,
    workers: int,
    resilience=None,
    deadline=None,
    batch: bool = False,
    backend: str = "auto",
    procpool=None,
    telemetry=None,
) -> tuple[TileMatrix, CholeskyStats]:
    """Factor a planned covariance: sequentially, on the threaded DAG
    executor, on the batched homogeneous-group dispatcher, or on the
    process-parallel backend.

    The parallel engines wrap task failures in
    :class:`~repro.exceptions.SchedulingError`; an underlying
    :class:`~repro.exceptions.NotPositiveDefiniteError` is unwrapped
    here so MLE drivers and the recovery ladder see the same exception
    either way.

    ``backend`` selects the execution engine:

    * ``"auto"`` (default): the historical routing below — batched
      dispatcher when ``batch``, sequential when ``workers <= 1`` with
      no task-level resilience or deadline, threaded DAG executor
      otherwise;
    * ``"sequential"``: force one worker, then the auto routing (so
      resilience/deadline still get their executor, at ``workers=1``);
    * ``"thread"``: the thread-based executors regardless of worker
      count (the batched dispatcher when ``batch``, else the DAG
      executor);
    * ``"process"``: the shared-memory
      :class:`~repro.runtime.procpool.ProcessPoolEngine` — pass an
      engine via ``procpool`` to reuse its persistent worker pool
      across evaluations (the
      :class:`~repro.core.engine.EvaluationEngine` does), else an
      ephemeral pool spins up for this call.  Deadlines, retry, chaos,
      and ``batch`` all apply in-worker; results are bit-identical to
      every other backend.

    Task-level resilience hooks (retry / chaos) and deadlines live in
    the executors, so configuring either routes the factorization
    through one even at ``workers=1``; with both absent the sequential
    reference path runs bit-identically to the seed.  ``batch=True``
    routes through
    :func:`~repro.runtime.batchdispatch.execute_cholesky_batched`
    (stacked BLAS over homogeneous ready groups, dense results
    bit-identical) — but the batched dispatcher supports neither
    deadlines nor task-level resilience, so those knobs win and the
    run falls back to the heap executor.
    """
    task_level = resilience is not None and resilience.task_level
    if backend == "process":
        from ..runtime.procpool import ProcessPoolEngine

        engine = procpool
        ephemeral = engine is None
        if ephemeral:
            engine = ProcessPoolEngine(workers=workers)
        try:
            factored, run = engine.execute(
                matrix,
                tile_tol=tile_tol,
                max_rank=max_rank,
                fp16_accumulate_fp32=fp16_accumulate_fp32,
                deadline=deadline,
                retry=None if resilience is None else resilience.retry,
                chaos=None if resilience is None
                else resilience.resolve_chaos(),
                batch=batch,
                telemetry=telemetry,
            )
        except SchedulingError as exc:
            cause = exc.__cause__
            if isinstance(cause, NotPositiveDefiniteError):
                raise cause from exc
            raise
        finally:
            if ephemeral:
                engine.close()
        if telemetry is not None:
            telemetry.record_run_report(run)
        return factored, run.stats
    if backend == "sequential":
        workers = 1
    elif backend not in ("auto", "thread"):
        raise ConfigurationError(
            f"unknown execution backend {backend!r}; expected 'auto', "
            "'sequential', 'thread', or 'process'"
        )
    if (
        backend in ("auto", "thread") and batch
        and not task_level and deadline is None
    ):
        from ..runtime.batchdispatch import execute_cholesky_batched

        factored, run = execute_cholesky_batched(
            matrix,
            workers=workers,
            tile_tol=tile_tol,
            max_rank=max_rank,
            fp16_accumulate_fp32=fp16_accumulate_fp32,
            telemetry=telemetry,
        )
        if telemetry is not None:
            telemetry.record_run_report(run)
        return factored, run.stats
    if (
        backend != "thread" and workers <= 1
        and not task_level and deadline is None
    ):
        return tile_cholesky(
            matrix,
            tile_tol=tile_tol,
            max_rank=max_rank,
            fp16_accumulate_fp32=fp16_accumulate_fp32,
        )
    from ..runtime.parallel import execute_cholesky_parallel

    try:
        factored, run = execute_cholesky_parallel(
            matrix,
            workers=workers,
            tile_tol=tile_tol,
            max_rank=max_rank,
            fp16_accumulate_fp32=fp16_accumulate_fp32,
            deadline=deadline,
            retry=None if resilience is None else resilience.retry,
            chaos=None if resilience is None else resilience.resolve_chaos(),
            telemetry=telemetry,
        )
    except SchedulingError as exc:
        cause = exc.__cause__
        if isinstance(cause, NotPositiveDefiniteError):
            raise cause from exc
        raise
    if telemetry is not None:
        telemetry.record_run_report(run)
    return factored, run.stats


def loglikelihood(
    kernel: CovarianceKernel,
    theta: np.ndarray,
    x: np.ndarray,
    z: np.ndarray,
    *,
    tile_size: int,
    variant: "str | VariantConfig" = DENSE_FP64,
    nugget: float = 0.0,
    geometry: TileGeometry | None = None,
    cache: GeometryCache | None = None,
    rank_hints: "dict[tuple[int, int], int] | None" = None,
    workers: int | None = None,
    fast_lr: bool | None = None,
    resilience: ResilienceConfig | None = None,
    deadline: Deadline | None = None,
    batch: bool | None = None,
    backend: str | None = None,
    procpool=None,
    telemetry=None,
) -> LikelihoodResult:
    """Evaluate Eq. (1) through the tiled Cholesky pipeline.

    Raises :class:`~repro.exceptions.NotPositiveDefiniteError` when the
    covariance at ``theta`` fails to factor (MLE drivers treat that as
    a rejected step).  Variants with a
    :class:`~repro.tile.recovery.RecoveryPolicy` first escalate through
    the recovery ladder; a rescued evaluation carries the
    :class:`~repro.tile.recovery.RecoveryReport` on ``result.recovery``
    and only exhaustion raises (as
    :class:`~repro.exceptions.RecoveryExhaustedError`).

    The hot-path knobs (``geometry``/``cache``, ``rank_hints``,
    ``workers``, ``fast_lr``) are documented on
    :func:`~repro.tile.assembly.build_planned_covariance`; ``workers``
    and ``fast_lr`` default to the variant's settings.  The
    :class:`~repro.core.engine.EvaluationEngine` wires them together
    for repeated evaluations.

    ``resilience`` opts into the hardening layer
    (:class:`~repro.resilience.ResilienceConfig`: task retries with
    seeded backoff, chaos injection); ``deadline`` bounds the wall
    clock of the factorization, raising
    :class:`~repro.exceptions.DeadlineExceededError` after a clean
    pool drain.  Both default to ``None`` — the unhardened path, which
    is bit-identical to earlier releases.

    ``backend`` picks the execution engine (``"auto"`` /
    ``"sequential"`` / ``"thread"`` / ``"process"``; see
    :func:`_factor_planned`), defaulting to the variant's setting;
    ``procpool`` supplies a persistent
    :class:`~repro.runtime.procpool.ProcessPoolEngine` so repeated
    ``backend="process"`` evaluations reuse one worker pool.  Every
    backend returns bit-identical results.

    ``telemetry`` (a :class:`~repro.obs.Telemetry`) wraps the
    evaluation in a ``"loglikelihood"`` span with ``"generate"`` /
    ``"compress"`` / ``"factorize"`` / ``"solve"`` children, and
    records the evaluation's :class:`CholeskyStats` into the metrics
    registry.  Traced evaluations are bit-identical to untraced ones
    (pinned by tests and the overhead benchmark).
    """
    cfg = get_variant(variant)
    if resilience is not None:
        resilience = resilience.bind()  # one chaos injector per call
    z = _check_observations(x, z)
    max_rank = int(cfg.max_rank_fraction * tile_size) or None
    nworkers = cfg.workers if workers is None else max(1, int(workers))
    fast = cfg.fast_lr if fast_lr is None else bool(fast_lr)
    use_batch = cfg.batch if batch is None else bool(batch)
    use_backend = cfg.backend if backend is None else str(backend)
    if use_batch:
        # The batched layer sizes every pool (generation, compression,
        # dispatch) to the physical cores: oversubscribed threads only
        # add overhead around vectorized calls, and thread count never
        # changes results on any of these paths.
        nworkers = min(nworkers, max(1, os.cpu_count() or 1))
    hotpath = dict(
        geometry=geometry, cache=cache, rank_hints=rank_hints,
        sketch=fast, workers=nworkers, batch=use_batch,
        telemetry=telemetry,
    )
    recovery: RecoveryReport | None = None
    with maybe_span(
        telemetry, "loglikelihood", variant=cfg.name, n=z.shape[0],
        backend=use_backend, workers=nworkers,
    ):
        if cfg.recovery is not None:

            def rebuild(**overrides):
                extra = overrides.pop("extra_nugget", 0.0)
                return build_planned_covariance(
                    kernel, theta, x, tile_size, nugget=nugget + extra,
                    **overrides, **hotpath, **cfg.assembly_kwargs(),
                )

            def factor_fn(matrix, *, tile_tol):
                return _factor_planned(
                    matrix, tile_tol=tile_tol, max_rank=max_rank,
                    fp16_accumulate_fp32=cfg.fp16_accumulate_fp32,
                    workers=nworkers,
                    resilience=resilience, deadline=deadline,
                    batch=use_batch, backend=use_backend,
                    procpool=procpool, telemetry=telemetry,
                )

            with use_fast_lr(fast):
                factor, stats, report, rec = factor_with_recovery(
                    rebuild,
                    policy=cfg.recovery,
                    max_rank=max_rank,
                    fp16_accumulate_fp32=cfg.fp16_accumulate_fp32,
                    factor_fn=factor_fn,
                )
            recovery = rec if rec.actions else None
        else:
            matrix, report = build_planned_covariance(
                kernel, theta, x, tile_size, nugget=nugget,
                **hotpath, **cfg.assembly_kwargs(),
            )
            with use_fast_lr(fast):
                factor, stats = _factor_planned(
                    matrix, tile_tol=report.tile_tol, max_rank=max_rank,
                    fp16_accumulate_fp32=cfg.fp16_accumulate_fp32,
                    workers=nworkers,
                    resilience=resilience, deadline=deadline,
                    batch=use_batch, backend=use_backend,
                    procpool=procpool, telemetry=telemetry,
                )
        with maybe_span(telemetry, "solve", n=z.shape[0]):
            logdet = tile_logdet(factor)
            y = forward_solve(factor, z)
            quad = float(y @ y)
    n = z.shape[0]
    value = -0.5 * n * _LOG_2PI - 0.5 * logdet - 0.5 * quad
    if telemetry is not None:
        telemetry.record_cholesky_stats(stats)
    return LikelihoodResult(
        value=value,
        logdet=logdet,
        quadratic=quad,
        n=n,
        variant=cfg.name,
        factor=factor,
        report=report,
        stats=stats,
        recovery=recovery,
    )


def loglikelihood_replicated(
    kernel: CovarianceKernel,
    theta: np.ndarray,
    x: np.ndarray,
    z_replicates: np.ndarray,
    *,
    tile_size: int,
    variant: "str | VariantConfig" = DENSE_FP64,
    nugget: float = 0.0,
    geometry: TileGeometry | None = None,
    cache: GeometryCache | None = None,
    rank_hints: "dict[tuple[int, int], int] | None" = None,
    workers: int | None = None,
    fast_lr: bool | None = None,
    resilience: ResilienceConfig | None = None,
    deadline: Deadline | None = None,
    batch: bool | None = None,
    backend: str | None = None,
    procpool=None,
    telemetry=None,
) -> np.ndarray:
    """Log-likelihoods of many independent replicates sharing one
    location set (the Fig. 6 protocol: 100 synthetic fields at the same
    design).

    Factors the covariance *once* and solves all replicates against it
    — amortizing the O(n^3) over the O(reps * n^2) solves.  Returns one
    value per row of ``z_replicates``.

    Variants with a :class:`~repro.tile.recovery.RecoveryPolicy` route
    through the same recovery ladder as :func:`loglikelihood`, so an
    indefinite planned covariance is rescued rather than raised.
    """
    cfg = get_variant(variant)
    if resilience is not None:
        resilience = resilience.bind()  # one chaos injector per call
    require_finite("x", x)
    require_finite("z_replicates", z_replicates)
    z = np.asarray(z_replicates, dtype=np.float64)
    if z.ndim != 2:
        raise ShapeError("z_replicates must be (reps, n)")
    if z.shape[1] != len(x):
        raise ShapeError(
            f"{len(x)} locations but replicate length {z.shape[1]}"
        )
    max_rank = int(cfg.max_rank_fraction * tile_size) or None
    nworkers = cfg.workers if workers is None else max(1, int(workers))
    fast = cfg.fast_lr if fast_lr is None else bool(fast_lr)
    use_batch = cfg.batch if batch is None else bool(batch)
    use_backend = cfg.backend if backend is None else str(backend)
    if use_batch:
        # Same pool-sizing rule as loglikelihood (see there).
        nworkers = min(nworkers, max(1, os.cpu_count() or 1))
    hotpath = dict(
        geometry=geometry, cache=cache, rank_hints=rank_hints,
        sketch=fast, workers=nworkers, batch=use_batch,
        telemetry=telemetry,
    )
    with maybe_span(
        telemetry, "loglikelihood_replicated", variant=cfg.name,
        n=z.shape[1], reps=z.shape[0], backend=use_backend,
    ):
        if cfg.recovery is not None:

            def rebuild(**overrides):
                extra = overrides.pop("extra_nugget", 0.0)
                return build_planned_covariance(
                    kernel, theta, x, tile_size, nugget=nugget + extra,
                    **overrides, **hotpath, **cfg.assembly_kwargs(),
                )

            def factor_fn(matrix, *, tile_tol):
                return _factor_planned(
                    matrix, tile_tol=tile_tol, max_rank=max_rank,
                    fp16_accumulate_fp32=cfg.fp16_accumulate_fp32,
                    workers=nworkers,
                    resilience=resilience, deadline=deadline,
                    batch=use_batch, backend=use_backend,
                    procpool=procpool, telemetry=telemetry,
                )

            with use_fast_lr(fast):
                factor, _, report, _ = factor_with_recovery(
                    rebuild,
                    policy=cfg.recovery,
                    max_rank=max_rank,
                    fp16_accumulate_fp32=cfg.fp16_accumulate_fp32,
                    factor_fn=factor_fn,
                )
        else:
            matrix, report = build_planned_covariance(
                kernel, theta, x, tile_size, nugget=nugget,
                **hotpath, **cfg.assembly_kwargs(),
            )
            with use_fast_lr(fast):
                factor, _ = _factor_planned(
                    matrix, tile_tol=report.tile_tol, max_rank=max_rank,
                    fp16_accumulate_fp32=cfg.fp16_accumulate_fp32,
                    workers=nworkers,
                    resilience=resilience, deadline=deadline,
                    batch=use_batch, backend=use_backend,
                    procpool=procpool, telemetry=telemetry,
                )
        with maybe_span(telemetry, "solve", n=z.shape[1],
                        reps=z.shape[0]):
            logdet = tile_logdet(factor)
            y = forward_solve(factor, z.T)  # (n, reps)
            quads = np.einsum("ij,ij->j", y, y)
    n = z.shape[1]
    return -0.5 * n * _LOG_2PI - 0.5 * logdet - 0.5 * quads


def loglikelihood_dense_reference(
    kernel: CovarianceKernel,
    theta: np.ndarray,
    x: np.ndarray,
    z: np.ndarray,
    *,
    nugget: float = 0.0,
) -> float:
    """Plain NumPy reference (no tiles) for validation."""
    z = _check_observations(x, z)
    sigma = kernel.covariance_matrix(theta, x, nugget=nugget)
    low = np.linalg.cholesky(sigma)
    logdet = 2.0 * float(np.sum(np.log(np.diag(low))))
    y = np.linalg.solve(low, z)
    return -0.5 * len(z) * _LOG_2PI - 0.5 * logdet - 0.5 * float(y @ y)
