"""The paper's contribution, user-facing: variants, likelihood, MLE,
prediction, and the :class:`~repro.core.model.ExaGeoStatModel` API."""

from .engine import EngineStats, EvaluationEngine
from .likelihood import (
    LikelihoodResult,
    loglikelihood,
    loglikelihood_dense_reference,
    loglikelihood_replicated,
)
from .mle import MLEResult, fit_mle
from .model import ExaGeoStatModel
from .prediction import PredictionResult, clamp_variance, kriging_predict
from .serving import PredictionEngine, ServingStats
from .simulation import conditional_simulation
from .uq import (
    MLEUncertainty,
    mle_uncertainty,
    observed_information,
    profile_likelihood,
)
from .variants import (
    DENSE_FP64,
    MP_DENSE,
    MP_DENSE_TLR,
    MP_DENSE_TLR_RECOVER,
    VariantConfig,
    get_variant,
)

__all__ = [
    "ExaGeoStatModel",
    "EvaluationEngine",
    "EngineStats",
    "VariantConfig",
    "DENSE_FP64",
    "MP_DENSE",
    "MP_DENSE_TLR",
    "MP_DENSE_TLR_RECOVER",
    "get_variant",
    "loglikelihood",
    "loglikelihood_replicated",
    "loglikelihood_dense_reference",
    "LikelihoodResult",
    "fit_mle",
    "MLEResult",
    "kriging_predict",
    "clamp_variance",
    "PredictionEngine",
    "ServingStats",
    "conditional_simulation",
    "MLEUncertainty",
    "mle_uncertainty",
    "observed_information",
    "profile_likelihood",
    "PredictionResult",
]
