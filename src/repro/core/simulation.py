"""Conditional simulation: posterior field realizations.

Given observations ``z_n`` and fitted parameters, draw samples from the
conditional law of Eq. (3):

    Z_m | Z_n ~ N( Sigma_mn Sigma_nn^{-1} z_n,
                   Sigma_mm - Sigma_mn Sigma_nn^{-1} Sigma_nm )

using the standard *conditioning-by-kriging* trick: simulate an
unconditional realization over train+test jointly, then correct it with
two kriging solves — which only needs the (already factored) training
covariance plus one small test-block Cholesky, never the full joint
factorization.

All factor applications are multi-RHS panel operations on a
:class:`~repro.tile.solve.PanelSolver`: the ``size`` unconditional
train fields are one ``(n, size)`` forward application, not ``size``
column sweeps.  A serving engine passes its warm ``solver`` and
``weights`` in, so repeated simulation shares the per-tile casts and
the Eq.-4 weight solve with prediction.

Conditional draws are what turn point predictions into maps with
spatially coherent uncertainty — the downstream product environmental
applications consume.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..kernels.base import CovarianceKernel
from ..kernels.distance import as_locations
from ..tile.matrix import TileMatrix
from ..tile.solve import PanelSolver

__all__ = ["conditional_simulation"]


def conditional_simulation(
    kernel: CovarianceKernel,
    theta: np.ndarray,
    x_train: np.ndarray,
    z_train: np.ndarray,
    x_test: np.ndarray,
    factor: TileMatrix,
    *,
    size: int = 1,
    seed: int | None = None,
    jitter: float = 1.0e-10,
    solver: PanelSolver | None = None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Draw ``size`` conditional realizations at ``x_test``.

    ``factor`` is the tile Cholesky factor of ``Sigma_nn(theta)`` over
    ``x_train`` (e.g. from the fitted model's likelihood evaluation).
    ``solver``/``weights`` let a warm serving engine share its cached
    factor operands and solved Eq.-4 weights; both default to fresh
    computations against ``factor``.
    Returns ``(m,)`` for ``size == 1`` else ``(size, m)``.
    """
    x_train = as_locations(x_train)
    x_test = as_locations(x_test)
    z = np.asarray(z_train, dtype=np.float64).ravel()
    n, m = len(x_train), len(x_test)
    if z.shape[0] != n:
        raise ShapeError("z_train length does not match x_train")
    if factor.n != n:
        raise ShapeError("factor dimension does not match x_train")
    if solver is None:
        solver = PanelSolver(factor)
    elif solver.factor.n != n:
        raise ShapeError("solver factor dimension does not match x_train")
    rng = np.random.default_rng(seed)

    cross = kernel(theta, x_train, x_test)  # (n, m)
    if weights is None:
        weights = solver.solve(z)
    krig_mean = cross.T @ weights  # (m,)

    # Unconditional joint simulation over [train; test]: use the exact
    # block factorization  [L_nn 0; B_half L_schur]  with
    # B_half = (L_nn^{-1} Sigma_nm)^T and the Schur complement of the
    # test block (which is exactly the kriging covariance).
    half = solver.forward(cross)                        # L^{-1} Sigma_nm, (n, m)
    schur = kernel.covariance_matrix(theta, x_test)
    schur -= half.T @ half
    schur[np.diag_indices_from(schur)] += jitter
    try:
        l_schur = np.linalg.cholesky(schur)
    except np.linalg.LinAlgError:
        # Duplicate test points or aggressive approximation: project to
        # the PSD cone via eigenvalue clipping.
        w, v = np.linalg.eigh(0.5 * (schur + schur.T))
        w = np.clip(w, jitter, None)
        l_schur = v * np.sqrt(w)

    eps_n = rng.standard_normal((n, size))
    eps_m = rng.standard_normal((m, size))
    # Unconditional fields restricted to train / test indices:
    # L_nn eps_n in one (n, size) panel application.
    u_train = solver.apply_lower(eps_n)
    u_test = half.T @ eps_n + l_schur @ eps_m            # (m, size)

    # Conditioning by kriging: z_cond = krig_mean + (u_test - krig(u_train)).
    w_u = solver.solve(u_train)
    krig_u = cross.T @ w_u                               # (m, size)
    draws = krig_mean[:, None] + (u_test - krig_u)
    return draws[:, 0] if size == 1 else draws.T
