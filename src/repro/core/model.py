"""High-level public API: :class:`ExaGeoStatModel`.

This is the ExaGeoStat-style workflow the paper ships to
statisticians: configure a kernel and a compute variant, ``fit`` by
MLE, ``predict`` (with uncertainty) at new locations.

    >>> from repro import ExaGeoStatModel
    >>> model = ExaGeoStatModel(kernel="matern", variant="mp-dense-tlr")
    >>> model.fit(x, z, theta0=[1.0, 0.1, 0.5])     # doctest: +SKIP
    >>> pred = model.predict(x_new, return_uncertainty=True)  # doctest: +SKIP

The model handles the locality-preserving reordering internally
(Morton by default) — the user never sees permuted data.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..exceptions import ReproError, ShapeError
from ..kernels import (
    AnisotropicMaternKernel,
    BivariateMaternKernel,
    GneitingMaternKernel,
    MaternKernel,
)
from ..kernels.base import CovarianceKernel
from ..kernels.distance import as_locations
from ..ordering import order_points
from ..resilience import ResilienceConfig
from ..resilience.validate import require_finite
from ..tile.geometry import GeometryCache, locations_fingerprint
from ..tile.matrix import TileMatrix
from .likelihood import LikelihoodResult, loglikelihood
from .mle import MLEResult, fit_mle
from .prediction import PredictionResult
from .serving import PredictionEngine
from .variants import VariantConfig, get_variant

__all__ = ["ExaGeoStatModel"]

_KERNEL_ALIASES = {
    "matern": MaternKernel,
    "gneiting": GneitingMaternKernel,
    "matern-space-time": GneitingMaternKernel,
    "anisotropic": AnisotropicMaternKernel,
    "bivariate": BivariateMaternKernel,
}


def _resolve_kernel(kernel: "str | CovarianceKernel") -> CovarianceKernel:
    if isinstance(kernel, CovarianceKernel):
        return kernel
    try:
        return _KERNEL_ALIASES[kernel.lower()]()
    except KeyError:
        raise ShapeError(
            f"unknown kernel {kernel!r}; aliases: {sorted(_KERNEL_ALIASES)}"
        ) from None


class ExaGeoStatModel:
    """Geostatistical model: MLE fitting + kriging prediction under a
    chosen compute variant.

    Parameters
    ----------
    kernel:
        A :class:`~repro.kernels.base.CovarianceKernel` or an alias
        (``"matern"``, ``"gneiting"``).
    variant:
        Compute variant name or :class:`VariantConfig`
        (``"dense-fp64"``, ``"mp-dense"``, ``"mp-dense-tlr"``).
    tile_size:
        Tile size of the underlying tiled algorithms.
    ordering:
        Location ordering (``"morton"``, ``"hilbert"``, ``"none"``,
        ``"random"``); the covariance structure the adaptive decisions
        exploit depends on it.
    nugget:
        Fixed diagonal regularization added to the covariance.
    batch:
        Route assembly and factorization through the batched execution
        layer (stacked BLAS over homogeneous tile groups, scratch-pool
        reuse; DESIGN.md §14).  Purely a performance knob: dense-group
        results are bit-identical to the per-tile path.
    backend:
        Factorization execution backend (``"auto"`` / ``"sequential"``
        / ``"thread"`` / ``"process"``; DESIGN.md §15).  ``None``
        defers to the variant.  Also purely a performance knob: every
        backend produces bit-identical results.
    resilience:
        Optional :class:`~repro.resilience.ResilienceConfig` applied to
        both fitting (task retries, variant degradation, chaos) and
        serving (batch retries, circuit breaker).  ``None`` keeps every
        hook inert — results are bit-identical to the unhardened paths.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` shared by fitting and
        serving: fits run inside a ``"fit_mle"`` span with
        per-iteration progress events, predictions inside ``"predict"``
        spans, and every legacy stats object lands in the bundle's
        metrics registry.  ``None`` (the default) keeps all paths
        untraced and bit-identical to before.
    """

    def __init__(
        self,
        kernel: "str | CovarianceKernel" = "matern",
        variant: "str | VariantConfig" = "dense-fp64",
        *,
        tile_size: int = 64,
        ordering: str = "morton",
        nugget: float = 0.0,
        batch: bool = False,
        backend: str | None = None,
        resilience: ResilienceConfig | None = None,
        telemetry=None,
    ):
        self.kernel = _resolve_kernel(kernel)
        self.variant = get_variant(variant)
        self.tile_size = int(tile_size)
        self.ordering = ordering
        self.nugget = float(nugget)
        self.batch = bool(batch)
        self.backend = backend
        self.resilience = resilience
        self.telemetry = telemetry

        self.theta_: np.ndarray | None = None
        self.loglik_: float | None = None
        self.result_: MLEResult | None = None
        self._x: np.ndarray | None = None
        self._z: np.ndarray | None = None
        # The serving engine bundles the amortizable prediction state —
        # factor, solved Eq.-4 weights, cross caches — and is keyed on
        # a content hash of the fitted state so a stale factor or
        # weight vector can never be reused (mirrors GeometryCache).
        self._engine: PredictionEngine | None = None
        self._engine_key: str | None = None
        self._engine_builds = 0
        # Shared across fit / refit / predict: geometry depends only on
        # the locations, which the model pins at fit time.
        self._cache = GeometryCache()

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return self.theta_ is not None

    def _require_fit(self) -> None:
        if not self.fitted:
            raise ReproError("model is not fitted; call fit() first")

    def _ordered(self, x: np.ndarray, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        require_finite("x", x)
        require_finite("z", z)
        x = as_locations(x, dim=self.kernel.ndim_locations)
        z = np.asarray(z, dtype=np.float64).ravel()
        if len(x) != len(z):
            raise ShapeError("x and z lengths differ")
        # Space-time and multivariate kernels carry a non-spatial last
        # column (time / variable id): order by the spatial curve with
        # that column as the secondary key.
        space_time = isinstance(
            self.kernel, (GneitingMaternKernel, BivariateMaternKernel)
        )
        perm = order_points(x, self.ordering, space_time=space_time)
        return x[perm], z[perm]

    # ------------------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        z: np.ndarray,
        *,
        theta0: np.ndarray | None = None,
        max_iter: int = 150,
        **mle_kwargs,
    ) -> "ExaGeoStatModel":
        """Estimate kernel parameters by maximum likelihood."""
        xo, zo = self._ordered(x, z)
        mle_kwargs.setdefault("cache", self._cache)
        mle_kwargs.setdefault("resilience", self.resilience)
        mle_kwargs.setdefault("telemetry", self.telemetry)
        if self.batch:
            mle_kwargs.setdefault("batch", True)
        if self.backend is not None:
            mle_kwargs.setdefault("backend", self.backend)
        result = fit_mle(
            self.kernel, xo, zo,
            tile_size=self.tile_size, variant=self.variant,
            theta0=theta0, nugget=self.nugget, max_iter=max_iter,
            **mle_kwargs,
        )
        self.result_ = result
        self.theta_ = result.theta
        self.loglik_ = result.loglik
        self._x, self._z = xo, zo
        self._invalidate_serving()  # rebuilt lazily at the fitted theta
        return self

    def set_params(self, theta: np.ndarray, x: np.ndarray, z: np.ndarray) -> "ExaGeoStatModel":
        """Skip fitting: install known parameters and training data
        (used when parameters come from a prior study)."""
        self.theta_ = self.kernel.validate_theta(theta)
        self._x, self._z = self._ordered(x, z)
        self.result_ = None
        self.loglik_ = None
        self._invalidate_serving()
        return self

    def _likelihood_at_fit(self) -> LikelihoodResult:
        self._require_fit()
        result = loglikelihood(
            self.kernel, self.theta_, self._x, self._z,
            tile_size=self.tile_size, variant=self.variant,
            nugget=self.nugget, cache=self._cache,
            batch=True if self.batch else None,
            backend=self.backend,
            telemetry=self.telemetry,
        )
        self.loglik_ = result.value
        return result

    def _invalidate_serving(self) -> None:
        """Drop the serving engine — factor and solved weights go
        together, so neither can outlive a parameter/data change."""
        self._engine = None
        self._engine_key = None

    def _state_key(self) -> str:
        """Content hash of everything the serving state depends on."""
        digest = hashlib.sha1(self.kernel.geometry_key().encode())
        digest.update(self.variant.name.encode())
        digest.update(str(self.tile_size).encode())
        digest.update(np.float64(self.nugget).tobytes())
        digest.update(np.ascontiguousarray(
            self.theta_, dtype=np.float64).tobytes())
        digest.update(locations_fingerprint(self._x).encode())
        digest.update(np.ascontiguousarray(
            self._z, dtype=np.float64).tobytes())
        return digest.hexdigest()

    def _ensure_engine(self) -> PredictionEngine:
        self._require_fit()
        key = self._state_key()
        if self._engine is None or self._engine_key != key:
            factor = self._likelihood_at_fit().factor
            self._engine = PredictionEngine(
                self.kernel, self.theta_, self._x, self._z, factor,
                cache=self._cache, resilience=self.resilience,
                telemetry=self.telemetry,
            )
            self._engine_key = key
            self._engine_builds += 1
        return self._engine

    def _ensure_factor(self) -> TileMatrix:
        return self._ensure_engine().factor

    def serving_engine(self) -> PredictionEngine:
        """The batched prediction serving engine bound to the fitted
        state (built lazily; invalidated whenever ``fit`` /
        ``set_params`` change what is served)."""
        return self._ensure_engine()

    # ------------------------------------------------------------------
    def predict(
        self,
        x_new: np.ndarray,
        *,
        return_uncertainty: bool = False,
        batch: int | None = None,
        workers: int | None = None,
        deadline_s: float | None = None,
    ) -> PredictionResult:
        """Kriging prediction (Eq. 4) and uncertainty (Eq. 5) at new
        locations, using the fitted parameters.  Served by the model's
        :meth:`serving_engine`, so the factor, the Eq.-4 weights, and
        the cross geometry amortize across repeated calls; ``workers``
        spreads test batches over a thread pool and ``deadline_s``
        bounds the call's wall clock (see
        :meth:`PredictionEngine.predict`)."""
        require_finite("x_new", x_new)
        return self._ensure_engine().predict(
            as_locations(x_new, dim=self.kernel.ndim_locations),
            return_uncertainty=return_uncertainty,
            batch=batch, workers=workers, deadline_s=deadline_s,
        )

    def simulate(
        self, x_new: np.ndarray, *, size: int = 1, seed: int | None = None
    ) -> np.ndarray:
        """Conditional simulation at new locations (Eq. 3): posterior
        field draws honoring both the data and the fitted covariance."""
        return self._ensure_engine().simulate(
            as_locations(x_new, dim=self.kernel.ndim_locations),
            size=size, seed=seed,
        )

    def uncertainty(self, *, level: float = 0.95, rel_step: float = 1e-3):
        """Asymptotic uncertainty of the fitted parameters (observed
        information; Wald intervals at ``level``)."""
        from .uq import mle_uncertainty

        self._require_fit()
        return mle_uncertainty(
            self.kernel, self.theta_, self._x, self._z,
            tile_size=self.tile_size, variant=self.variant,
            nugget=self.nugget, level=level, rel_step=rel_step,
            cache=self._cache,
        )

    def score(self, x_test: np.ndarray, z_test: np.ndarray) -> float:
        """Mean squared prediction error on held-out data (the paper's
        MSPE column), served by the prediction engine."""
        return self._ensure_engine().score(
            as_locations(x_test, dim=self.kernel.ndim_locations), z_test
        )

    def summary(self) -> dict:
        """Fit summary in the layout of the paper's Tables I/II."""
        self._require_fit()
        out = {
            "variant": self.variant.name,
            "kernel": type(self.kernel).__name__,
            "n": 0 if self._x is None else len(self._x),
            "loglik": self.loglik_,
        }
        for name, value in zip(self.kernel.param_names, self.theta_):
            out[name] = float(value)
        if self.result_ is not None:
            out["nfev"] = self.result_.nfev
            out["converged"] = self.result_.converged
            if self.result_.recovered_evaluations:
                out["recovered_evaluations"] = (
                    self.result_.recovered_evaluations
                )
            if self.result_.stopped_on is not None:
                out["stopped_on"] = self.result_.stopped_on
        return out
