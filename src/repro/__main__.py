"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``info``
    Version, dependency versions, machine-model summary.
``selfcheck``
    A fast end-to-end validation: fits the three compute variants on a
    small surrogate, checks they agree, and prints the Table-I-style
    rows.  Exit code 0 iff all checks pass.
``crossover [--tile B]``
    Print the Fig. 5 dense/TLR crossover analysis for a tile size.
``scaling [--nodes N] [--matrix M]``
    Fig. 10-style projection for a weak-correlation problem.
``profile [--n N] [--tile B] [--variant V] [--backend B] [--workers W]
[--max-iter K] [--trace PATH] [--prometheus PATH] [--dump PATH]``
    Profile a seeded fit + predict workload under the unified
    telemetry layer (DESIGN.md §16): writes a Perfetto-loadable Chrome
    trace, prints the per-op flamegraph-style breakdown, and
    optionally dumps the Prometheus exposition / JSON profile.
``analyze [--lint PATH ...] [--golden-plans] [--serving] [--comm]
[--resilience] [--telemetry] [--concurrency [PATH ...]]
[--sanitize-run] [--json] [--rules]``
    Verification layer: run the numerical-hygiene linter over source
    paths, the golden-plan suite (every shipped variant at nt in
    {4, 8} through the plan + DAG verifiers), the serving
    amortization check (one engine build, one Eq.-4 weight solve, no
    per-batch tile re-casts), the owner-computes traffic cross-check
    (``--comm``: the process backend's measured transfers must equal
    the simulator's wire-format model byte-for-byte on a dense plan),
    the golden resilience invariants
    (seeded chaos reproducibility, inert-hook bit-identity,
    degradation ladder, deadline drain), the golden telemetry
    invariants (``--telemetry``: span-tree well-formedness, metrics /
    legacy-stats consistency, exporter round-trips, disabled-tracer
    silence), the static lock-discipline
    analyzer (``--concurrency``, defaulting to the installed package
    sources), and/or the dynamic race sanitizer (``--sanitize-run``:
    a threaded fit + batched predict under seeded chaos with lockset
    + happens-before instrumentation).  Exit code 0 iff no
    error-severity
    finding is reported; warnings do not fail the run.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_info(_args) -> int:
    import networkx
    import scipy

    import repro
    from repro.perfmodel import A64FX

    print(f"repro {repro.__version__}")
    print(f"  numpy {np.__version__}, scipy {scipy.__version__}, "
          f"networkx {networkx.__version__}")
    print(f"  machine model: {A64FX.name}")
    print(f"    FP64 peak {A64FX.peak_gflops} Gflop/s/node map, "
          f"sustained efficiency {A64FX.efficiency:.0%}")
    return 0


def _cmd_selfcheck(_args) -> int:
    from repro import ExaGeoStatModel
    from repro.data import soil_moisture_surrogate

    print("self-check: fitting 3 variants on a 300-point surrogate ...")
    data = soil_moisture_surrogate(n_train=300, n_test=40, seed=1)
    rows = {}
    for variant in ("dense-fp64", "mp-dense", "mp-dense-tlr"):
        model = ExaGeoStatModel(kernel="matern", variant=variant,
                                tile_size=50)
        model.fit(data.x_train, data.z_train,
                  theta0=data.theta_true, max_iter=40)
        mspe = model.score(data.x_test, data.z_test)
        rows[variant] = (model.theta_, model.loglik_, mspe)
        theta = ", ".join(f"{v:.4f}" for v in model.theta_)
        print(f"  {variant:13s} theta=[{theta}] loglik={model.loglik_:.3f} "
              f"MSPE={mspe:.4f}")
    base_theta, base_ll, base_mspe = rows["dense-fp64"]
    ok = True
    for variant, (theta, ll, mspe) in rows.items():
        if not np.allclose(theta, base_theta, rtol=0.2):
            print(f"FAIL: {variant} parameters diverge from dense FP64")
            ok = False
        if abs(mspe - base_mspe) > 0.1 * base_mspe + 1e-12:
            print(f"FAIL: {variant} MSPE diverges from dense FP64")
            ok = False
    print("self-check PASSED" if ok else "self-check FAILED")
    return 0 if ok else 1


def _cmd_crossover(args) -> int:
    from repro.perfmodel import A64FX, crossover_rank, gemm_ratio_curve

    tile = args.tile
    xover = crossover_rank(tile, A64FX)
    ranks = np.linspace(max(xover // 8, 1), 2 * xover, 9, dtype=int)
    tlr, dense, ratio = gemm_ratio_curve(tile, ranks, A64FX)
    print(f"tile {tile}: crossover rank = {xover} "
          "(paper Fig. 5: ~200 at tile 2700)")
    for r, t, d, rr in zip(ranks, tlr, dense, ratio):
        print(f"  rank {int(r):4d}: tlr {t:.4g}s dense {d:.4g}s "
              f"ratio {rr:.2f}")
    return 0


def _cmd_scaling(args) -> int:
    from repro.kernels import MaternKernel
    from repro.ordering import order_points
    from repro.perfmodel import A64FX, PlanProfile, estimate_cholesky
    from repro.tile import build_planned_covariance

    gen = np.random.default_rng(0)
    x = gen.uniform(size=(1200, 2))
    x = x[order_points(x, "morton")]
    _, rep = build_planned_covariance(
        MaternKernel(), np.array([1.0, 0.03, 0.5]), x, 60, nugget=1e-8,
        use_mp=True, use_tlr=True, band_size=1, max_rank_fraction=0.95,
    )
    profile = PlanProfile.from_plan(rep.plan)
    dense = estimate_cholesky(
        PlanProfile.dense_fp64(), args.matrix, 2700, A64FX, nodes=args.nodes
    )
    tlr = estimate_cholesky(
        profile, args.matrix, 1350, A64FX, nodes=args.nodes, band_size=2
    )
    print(f"N={args.matrix:,} on {args.nodes} A64FX nodes (model):")
    print(f"  dense FP64    {dense.time_s:10.1f} s "
          f"({dense.sustained_pflops:.2f} Pflop/s)")
    print(f"  MP+dense/TLR  {tlr.time_s:10.1f} s "
          f"-> speedup {dense.time_s / tlr.time_s:.1f}x, "
          f"memory -{tlr.memory_reduction:.0%}")
    return 0


def _cmd_profile(args) -> int:
    import json as _json
    import time

    from repro import ExaGeoStatModel
    from repro.data import soil_moisture_surrogate
    from repro.obs import Telemetry

    n_test = max(20, min(args.n // 4, 200))
    data = soil_moisture_surrogate(
        n_train=args.n, n_test=n_test, seed=args.seed
    )
    telemetry = Telemetry()
    model = ExaGeoStatModel(
        kernel="matern", variant=args.variant, tile_size=args.tile,
        backend=args.backend, telemetry=telemetry,
    )
    fit_kwargs = {}
    if args.workers is not None:
        fit_kwargs["workers"] = args.workers
    print(f"profiling: n={args.n} tile={args.tile} "
          f"variant={args.variant} backend={args.backend or 'variant'} "
          f"max_iter={args.max_iter}")
    t0 = time.perf_counter()
    model.fit(data.x_train, data.z_train, theta0=data.theta_true,
              max_iter=args.max_iter, **fit_kwargs)
    model.predict(data.x_test, return_uncertainty=True)
    wall = time.perf_counter() - t0
    print(f"  loglik={model.loglik_:.4f} nfev={model.result_.nfev} "
          f"wall={wall:.2f}s")
    print(f"  {len(telemetry.tracer)} span(s), "
          f"{len(telemetry.tracer.sorted_events())} event(s), "
          f"{len(telemetry.registry.metrics())} metric(s)")
    telemetry.write_chrome_trace(args.trace)
    print(f"  trace -> {args.trace} "
          "(open in https://ui.perfetto.dev or chrome://tracing)")
    if args.prometheus:
        with open(args.prometheus, "w") as fh:
            fh.write(telemetry.render_prometheus())
        print(f"  prometheus exposition -> {args.prometheus}")
    if args.dump:
        with open(args.dump, "w") as fh:
            _json.dump(telemetry.profile_dump(), fh, indent=2)
        print(f"  profile dump -> {args.dump}")
    print()
    print(telemetry.render_breakdown())
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis import (
        COMM_RULES,
        DAG_RULES,
        LINT_RULES,
        LOCK_RULES,
        PLAN_RULES,
        RACE_RULES,
        RES_RULES,
        SERVE_RULES,
        TELEM_RULES,
        AnalysisReport,
        Severity,
        check_golden_comm,
        check_golden_plans,
        check_golden_resilience,
        check_golden_serving,
        check_golden_telemetry,
        check_lock_discipline,
        lint_paths,
        run_sanitized_workload,
    )

    if args.rules:
        for catalog in (
            PLAN_RULES, DAG_RULES, LINT_RULES, SERVE_RULES, COMM_RULES,
            RES_RULES, TELEM_RULES, LOCK_RULES, RACE_RULES,
        ):
            for rule, text in catalog.items():
                print(f"  {rule}  {text}")
        return 0
    if not (args.lint or args.golden_plans or args.serving or args.comm
            or args.resilience or args.telemetry
            or args.concurrency is not None
            or args.sanitize_run):
        print("nothing to analyze: pass --lint PATH ..., "
              "--golden-plans, --serving, --comm, --resilience, "
              "--telemetry, --concurrency, and/or --sanitize-run",
              file=sys.stderr)
        return 2
    report = AnalysisReport()
    if args.lint:
        report.extend(lint_paths(args.lint))
    if args.golden_plans:
        report.extend(check_golden_plans())
    if args.serving:
        report.extend(check_golden_serving())
    if args.comm:
        report.extend(check_golden_comm())
    if args.resilience:
        report.extend(check_golden_resilience())
    if args.telemetry:
        report.extend(check_golden_telemetry())
    if args.concurrency is not None:
        report.extend(
            check_lock_discipline(args.concurrency or None)
        )
    if args.sanitize_run:
        report.extend(run_sanitized_workload(workers=args.sanitize_workers))
    if args.json:
        print(report.to_json(indent=2))
    else:
        min_severity = Severity.INFO if args.verbose else Severity.WARNING
        print(report.render_text(min_severity=min_severity))
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Mixed-precision + TLR geostatistics reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="versions and machine model")
    sub.add_parser("selfcheck", help="fast end-to-end validation")
    p_x = sub.add_parser("crossover", help="Fig. 5 crossover analysis")
    p_x.add_argument("--tile", type=int, default=2700)
    p_s = sub.add_parser("scaling", help="Fig. 10-style projection")
    p_s.add_argument("--nodes", type=int, default=4096)
    p_s.add_argument("--matrix", type=int, default=4_000_000)
    p_p = sub.add_parser(
        "profile",
        help="profile a seeded fit + predict under the telemetry layer",
    )
    p_p.add_argument("--n", type=int, default=400,
                     help="training points of the seeded workload")
    p_p.add_argument("--tile", type=int, default=64)
    p_p.add_argument("--variant", default="mp-dense")
    p_p.add_argument("--backend", default=None,
                     help="factorization backend (auto / sequential / "
                          "thread / process; default: the variant's)")
    p_p.add_argument("--workers", type=int, default=None)
    p_p.add_argument("--max-iter", type=int, default=8)
    p_p.add_argument("--seed", type=int, default=20220101)
    p_p.add_argument("--trace", default="repro_profile_trace.json",
                     help="Chrome trace-event JSON output path "
                          "(Perfetto-loadable)")
    p_p.add_argument("--prometheus", default=None, metavar="PATH",
                     help="also write the Prometheus text exposition")
    p_p.add_argument("--dump", default=None, metavar="PATH",
                     help="also write the JSON profile dump")
    p_a = sub.add_parser("analyze", help="static verification layer")
    p_a.add_argument("--lint", nargs="+", metavar="PATH", default=[],
                     help="lint these files/directories")
    p_a.add_argument("--golden-plans", action="store_true",
                     help="verify every shipped variant's plan + DAG "
                          "at nt in {4, 8}")
    p_a.add_argument("--serving", action="store_true",
                     help="verify the prediction serving path amortizes "
                          "(one engine build, one weight solve, no "
                          "per-batch tile re-casts)")
    p_a.add_argument("--comm", action="store_true",
                     help="cross-check the process backend's measured "
                          "owner-computes traffic against the "
                          "simulator's wire-format model (dense plan, "
                          "byte-for-byte)")
    p_a.add_argument("--resilience", action="store_true",
                     help="run the golden resilience invariants (seeded "
                          "chaos reproducibility, inert-hook identity, "
                          "degradation ladder, deadline drain)")
    p_a.add_argument("--concurrency", nargs="*", metavar="PATH",
                     default=None,
                     help="run the static lock-discipline analyzer "
                          "over these files/directories (default: the "
                          "installed repro package sources)")
    p_a.add_argument("--telemetry", action="store_true",
                     help="run the golden telemetry invariants (span-"
                          "tree well-formedness, metrics consistency, "
                          "exporter round-trips, disabled-tracer "
                          "silence)")
    p_a.add_argument("--sanitize-run", action="store_true",
                     help="drive a threaded fit + batched predict "
                          "under seeded chaos with the dynamic race "
                          "sanitizer enabled (the workload is traced, "
                          "so the telemetry buffers are checked too)")
    p_a.add_argument("--sanitize-workers", type=int, default=4,
                     metavar="N",
                     help="thread-pool width of the sanitized workload")
    p_a.add_argument("--json", action="store_true",
                     help="machine-readable JSON output")
    p_a.add_argument("--rules", action="store_true",
                     help="print the rule catalog and exit")
    p_a.add_argument("--verbose", action="store_true",
                     help="also print info-severity findings")
    args = parser.parse_args(argv)
    handler = {
        "info": _cmd_info,
        "selfcheck": _cmd_selfcheck,
        "crossover": _cmd_crossover,
        "scaling": _cmd_scaling,
        "profile": _cmd_profile,
        "analyze": _cmd_analyze,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
