"""Accuracy experiment drivers (Tables I-II, Fig. 6).

These are the programmatic versions of the paper's accuracy studies:
call with a size, get back a structured result with a rendered table —
the benches, examples, and user scripts all share this one
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.model import ExaGeoStatModel
from ..data.evapotranspiration import et_surrogate
from ..data.soil_moisture import soil_moisture_surrogate
from ..data.synthetic import CORRELATION_RANGES, simulate_matern_dataset
from ..stats.summaries import boxplot_summary, format_table

__all__ = [
    "VariantRow",
    "AccuracyStudy",
    "run_table1",
    "run_table2",
    "Fig6Study",
    "run_fig6",
    "DEFAULT_VARIANTS",
]

DEFAULT_VARIANTS = ("dense-fp64", "mp-dense", "mp-dense-tlr")


@dataclass
class VariantRow:
    """One fitted variant."""

    variant: str
    theta: np.ndarray
    loglik: float
    mspe: float


@dataclass
class AccuracyStudy:
    """A Table I/II style study."""

    label: str
    rows: list[VariantRow]
    theta_true: np.ndarray
    param_names: tuple[str, ...]

    def table(self) -> str:
        headers = ["Approach", *self.param_names, "Log-Likelihood", "MSPE"]
        body = [
            [r.variant, *r.theta, r.loglik, r.mspe] for r in self.rows
        ] + [["(generating truth)", *self.theta_true, float("nan"),
              float("nan")]]
        return format_table(headers, body, title=self.label)

    def max_theta_spread(self) -> float:
        """Largest relative disagreement of any variant against the
        first (reference) variant — the Table I/II 'variants agree'
        quantity."""
        base = self.rows[0].theta
        spread = 0.0
        for r in self.rows[1:]:
            rel = np.abs(r.theta - base) / np.maximum(np.abs(base), 1e-12)
            spread = max(spread, float(rel.max()))
        return spread


def _fit_variants(dataset, kernel_name, variants, tile_size, max_iter, nugget):
    rows = []
    for variant in variants:
        model = ExaGeoStatModel(
            kernel=kernel_name, variant=variant, tile_size=tile_size,
            nugget=nugget,
        )
        model.fit(dataset.x_train, dataset.z_train,
                  theta0=dataset.theta_true, max_iter=max_iter)
        rows.append(VariantRow(
            variant=variant,
            theta=model.theta_.copy(),
            loglik=float(model.loglik_),
            mspe=model.score(dataset.x_test, dataset.z_test),
        ))
    return rows


def run_table1(
    n_train: int = 900,
    n_test: int = 100,
    *,
    tile_size: int = 100,
    variants: tuple[str, ...] = DEFAULT_VARIANTS,
    max_iter: int = 60,
    seed: int = 42,
) -> AccuracyStudy:
    """The soil-moisture accuracy study (paper Table I)."""
    data = soil_moisture_surrogate(n_train=n_train, n_test=n_test, seed=seed)
    rows = _fit_variants(data, "matern", variants, tile_size, max_iter, 0.0)
    return AccuracyStudy(
        label=f"Table I — soil-moisture surrogate ({n_train}/{n_test})",
        rows=rows,
        theta_true=data.theta_true,
        param_names=("Variance", "Range", "Smoothness"),
    )


def run_table2(
    n_space: int = 70,
    n_slots: int = 12,
    n_test: int = 100,
    *,
    tile_size: int = 84,
    variants: tuple[str, ...] = DEFAULT_VARIANTS,
    max_iter: int = 60,
    seed: int = 77,
) -> AccuracyStudy:
    """The ET space-time accuracy study (paper Table II)."""
    data = et_surrogate(n_space=n_space, n_slots=n_slots, n_test=n_test,
                        seed=seed)
    rows = _fit_variants(data, "gneiting", variants, tile_size, max_iter, 1e-8)
    return AccuracyStudy(
        label=(
            f"Table II — ET space-time surrogate ({n_space}x{n_slots}/"
            f"{n_test})"
        ),
        rows=rows,
        theta_true=data.theta_true,
        param_names=(
            "Variance", "Range", "Smoothness", "Range-time",
            "Smoothness-time", "Nonsep-param",
        ),
    )


@dataclass
class Fig6Study:
    """Parameter-recovery boxplot study."""

    estimates: dict = field(default_factory=dict)
    reps: int = 0
    n: int = 0

    def summary_rows(self) -> list[list[object]]:
        names = ("variance", "range", "smoothness")
        rows = []
        for corr, per_variant in self.estimates.items():
            truth = {"variance": 1.0,
                     "range": CORRELATION_RANGES[corr],
                     "smoothness": 0.5}
            for variant, thetas in per_variant.items():
                for p, pname in enumerate(names):
                    s = boxplot_summary(np.asarray(thetas)[:, p])
                    rows.append([corr, variant, pname, truth[pname],
                                 s.q1, s.median, s.q3])
        return rows

    def table(self) -> str:
        return format_table(
            ["correlation", "variant", "parameter", "truth", "q1",
             "median", "q3"],
            self.summary_rows(),
            title=(
                f"Fig. 6 — recovery over {self.reps} replicates of "
                f"{self.n}-location fields"
            ),
        )


def run_fig6(
    reps: int = 10,
    n: int = 256,
    *,
    tile_size: int = 64,
    variants: tuple[str, ...] = DEFAULT_VARIANTS,
    correlations: tuple[str, ...] = ("weak", "medium", "strong"),
    max_iter: int = 40,
    seed: int = 5000,
) -> Fig6Study:
    """The synthetic parameter-recovery study (paper Fig. 6)."""
    from ..core.mle import fit_mle

    study = Fig6Study(reps=reps, n=n)
    for corr in correlations:
        study.estimates[corr] = {v: [] for v in variants}
        for rep in range(reps):
            data = simulate_matern_dataset(n, corr, seed=seed + rep)
            for variant in variants:
                res = fit_mle(
                    data.kernel, data.x, data.z,
                    tile_size=tile_size, variant=variant,
                    theta0=data.theta_true, max_iter=max_iter,
                )
                study.estimates[corr][variant].append(res.theta)
    return study
