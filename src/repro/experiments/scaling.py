"""Scaling experiment drivers (Figs. 7, 10, 11).

Shared pipeline: measure an offset-class profile on a real
laptop-scale plan, then project with the aggregate estimator across
node counts and matrix sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kernels.gneiting import GneitingMaternKernel
from ..kernels.matern import MaternKernel
from ..ordering import order_points
from ..perfmodel.cholesky import ScaleEstimate, estimate_cholesky
from ..perfmodel.machine import A64FX, MachineSpec
from ..perfmodel.profiles import PlanProfile
from ..stats.summaries import format_table
from ..tile.assembly import build_planned_covariance

__all__ = [
    "measure_profile",
    "measure_spacetime_profile",
    "ScalingStudy",
    "run_space_scaling",
    "run_spacetime_scaling",
]


def measure_profile(
    correlation_range: float,
    *,
    n: int = 1800,
    tile_size: int = 60,
    smoothness: float = 0.5,
    seed: int = 2022,
    label: str = "",
) -> PlanProfile:
    """Measure the offset-class profile of a Matérn space problem under
    the full MP+TLR decision pipeline (uncapped ranks for projection)."""
    gen = np.random.default_rng(seed)
    x = gen.uniform(size=(n, 2))
    x = x[order_points(x, "morton")]
    _, rep = build_planned_covariance(
        MaternKernel(), np.array([1.0, correlation_range, smoothness]),
        x, tile_size, nugget=1e-8,
        use_mp=True, use_tlr=True, band_size=1, max_rank_fraction=0.95,
    )
    return PlanProfile.from_plan(rep.plan, label=label or f"a={correlation_range}")


def measure_spacetime_profile(
    theta: np.ndarray,
    *,
    n_space: int = 480,
    n_slots: int = 12,
    tile_size: int = 60,
    seed: int = 3,
    label: str = "spacetime",
) -> PlanProfile:
    """Profile of a Gneiting space-time problem (Fig. 11 workload)."""
    from ..data.locations import space_time_locations

    x = space_time_locations(n_space, n_slots, seed=seed,
                             region="central_asia")
    x = x[order_points(x, "morton", space_time=True)]
    _, rep = build_planned_covariance(
        GneitingMaternKernel(), theta, x, tile_size, nugget=1e-8,
        use_mp=True, use_tlr=True, band_size=1, max_rank_fraction=0.95,
    )
    return PlanProfile.from_plan(rep.plan, label=label)


@dataclass
class ScalingStudy:
    """Time-to-solution across node counts for dense vs TLR."""

    matrix_n: int
    node_counts: tuple[int, ...]
    dense: dict[int, ScaleEstimate] = field(default_factory=dict)
    tlr: dict[int, ScaleEstimate] = field(default_factory=dict)
    label: str = ""

    def speedup(self, nodes: int) -> float:
        return self.dense[nodes].time_s / self.tlr[nodes].time_s

    def table(self) -> str:
        rows = [
            [nodes, self.dense[nodes].time_s, self.tlr[nodes].time_s,
             self.speedup(nodes), self.tlr[nodes].memory_reduction]
            for nodes in self.node_counts
        ]
        return format_table(
            ["nodes", "dense_fp64_s", "mp_tlr_s", "speedup", "mem_reduction"],
            rows,
            title=self.label or f"scaling study, N={self.matrix_n:,}",
            float_fmt="{:.4g}",
        )


def run_space_scaling(
    profile: PlanProfile,
    *,
    matrix_n: int = 9_000_000,
    node_counts: tuple[int, ...] = (2048, 4096, 8192, 16384),
    dense_tile: int = 2700,
    tlr_tile: int = 1350,
    band_size: int = 2,
    machine: MachineSpec = A64FX,
) -> ScalingStudy:
    """The Fig. 10 protocol for one correlation profile."""
    study = ScalingStudy(
        matrix_n=matrix_n, node_counts=tuple(node_counts),
        label=f"Fig. 10-style study ({profile.label}), N={matrix_n:,}",
    )
    dense_profile = PlanProfile.dense_fp64()
    for nodes in node_counts:
        study.dense[nodes] = estimate_cholesky(
            dense_profile, matrix_n, dense_tile, machine, nodes
        )
        study.tlr[nodes] = estimate_cholesky(
            profile, matrix_n, tlr_tile, machine, nodes,
            band_size=band_size,
        )
    return study


def run_spacetime_scaling(
    profile: PlanProfile,
    *,
    matrix_n: int = 10_000_000,
    node_counts: tuple[int, ...] = (4096, 48384),
    tile: int = 2700,
    band_size: int = 3,
    machine: MachineSpec = A64FX,
) -> ScalingStudy:
    """The Fig. 11 protocol (shared tile size, two node counts)."""
    study = ScalingStudy(
        matrix_n=matrix_n, node_counts=tuple(node_counts),
        label=f"Fig. 11-style study ({profile.label}), N={matrix_n:,}",
    )
    dense_profile = PlanProfile.dense_fp64()
    for nodes in node_counts:
        study.dense[nodes] = estimate_cholesky(
            dense_profile, matrix_n, tile, machine, nodes
        )
        study.tlr[nodes] = estimate_cholesky(
            profile, matrix_n, tile, machine, nodes, band_size=band_size
        )
    return study
