"""Drivers for the kernel-level and decision-map experiments
(Figs. 5, 8, 9)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perfmodel.cholesky import estimate_cholesky
from ..perfmodel.crossover import crossover_rank, gemm_ratio_curve
from ..perfmodel.machine import A64FX, MachineSpec
from ..perfmodel.profiles import PlanProfile
from ..stats.summaries import format_table
from ..tile.decisions import TilePlan

__all__ = ["CrossoverStudy", "run_fig5", "DecisionMapStudy", "run_fig9"]


@dataclass
class CrossoverStudy:
    """Fig. 5: dense vs TLR GEMM across ranks."""

    tile_size: int
    ranks: np.ndarray
    tlr_times: np.ndarray
    dense_times: np.ndarray
    crossover: int

    def table(self) -> str:
        rows = [
            [int(r), t, d, d / t]
            for r, t, d in zip(self.ranks, self.tlr_times, self.dense_times)
        ]
        return format_table(
            ["rank", "tlr_gemm_s", "dense_gemm_s", "dense/tlr"],
            rows,
            title=(
                f"Fig. 5-style crossover study, tile {self.tile_size} "
                f"(crossover rank = {self.crossover})"
            ),
            float_fmt="{:.4g}",
        )


def run_fig5(
    tile_size: int = 2700,
    *,
    ranks: np.ndarray | None = None,
    machine: MachineSpec = A64FX,
) -> CrossoverStudy:
    """The Fig. 5 analysis at any tile size."""
    xover = crossover_rank(tile_size, machine)
    if ranks is None:
        ranks = np.unique(
            np.linspace(max(xover // 8, 1), 3 * xover, 12, dtype=int)
        )
    tlr, dense, _ = gemm_ratio_curve(tile_size, ranks, machine)
    return CrossoverStudy(
        tile_size=tile_size, ranks=np.asarray(ranks),
        tlr_times=tlr, dense_times=dense, crossover=xover,
    )


@dataclass
class DecisionMapStudy:
    """Fig. 9: a measured decision map + projected footprint."""

    plan: TilePlan
    projected_gb: float
    dense_gb: float

    @property
    def reduction(self) -> float:
        return 1.0 - self.projected_gb / self.dense_gb

    def ascii_map(self) -> str:
        glyph = {64: "8", 32: "4", 16: "2", 0: " "}
        pgrid = self.plan.precision_grid()
        sgrid = self.plan.structure_grid()
        lines = []
        for i in range(self.plan.nt):
            row = []
            for j in range(self.plan.nt):
                g = glyph[int(pgrid[i, j])]
                if sgrid[i, j] == 2:
                    g = {"8": "l", "4": "h", "2": "q"}[g]
                row.append(g)
            lines.append("".join(row))
        return "\n".join(lines)


def run_fig9(
    correlation_range: float = 0.03,
    *,
    n: int = 1200,
    tile_size: int = 60,
    paper_n: int = 1_000_000,
    paper_tile: int = 2700,
    machine: MachineSpec = A64FX,
    seed: int = 9,
) -> DecisionMapStudy:
    """Measure a decision map and project its footprint to the paper's
    configuration."""
    from ..kernels.matern import MaternKernel
    from ..ordering import order_points
    from ..tile.assembly import build_planned_covariance

    gen = np.random.default_rng(seed)
    x = gen.uniform(size=(n, 2))
    x = x[order_points(x, "morton")]
    _, rep = build_planned_covariance(
        MaternKernel(), np.array([1.0, correlation_range, 0.5]),
        x, tile_size, nugget=1e-8,
        use_mp=True, use_tlr=True, band_size=2,
    )
    profile = PlanProfile.from_plan(rep.plan)
    est = estimate_cholesky(
        profile, paper_n, paper_tile, machine, nodes=1024, band_size=3
    )
    dense_gb = 8.0 * paper_n * paper_n / 2 / 1e9
    return DecisionMapStudy(
        plan=rep.plan,
        projected_gb=est.storage_bytes / 1e9,
        dense_gb=dense_gb,
    )
