"""Programmatic drivers for the paper's experiments.

The benches under ``benchmarks/`` assert the paper's claims; these
drivers expose the same studies as a library API so users can rerun
them at any size:

    from repro.experiments import run_table1, run_space_scaling, measure_profile

    print(run_table1(n_train=600).table())
    profile = measure_profile(0.03, label="weak")
    print(run_space_scaling(profile, matrix_n=4_000_000).table())
"""

from .accuracy import (
    DEFAULT_VARIANTS,
    AccuracyStudy,
    Fig6Study,
    VariantRow,
    run_fig6,
    run_table1,
    run_table2,
)
from .kernels_and_maps import (
    CrossoverStudy,
    DecisionMapStudy,
    run_fig5,
    run_fig9,
)
from .scaling import (
    ScalingStudy,
    measure_profile,
    measure_spacetime_profile,
    run_space_scaling,
    run_spacetime_scaling,
)

__all__ = [
    "run_table1",
    "run_table2",
    "run_fig6",
    "AccuracyStudy",
    "Fig6Study",
    "VariantRow",
    "DEFAULT_VARIANTS",
    "measure_profile",
    "run_fig5",
    "run_fig9",
    "CrossoverStudy",
    "DecisionMapStudy",
    "measure_spacetime_profile",
    "run_space_scaling",
    "run_spacetime_scaling",
    "ScalingStudy",
]
