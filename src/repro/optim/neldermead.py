"""Self-contained Nelder-Mead simplex minimizer.

ExaGeoStat drives MLE with a derivative-free direct-search optimizer
(BOBYQA in the original; Nelder-Mead is the equivalent role here).  A
self-contained implementation keeps the inner loop inspectable — every
function evaluation is one full tile-Cholesky likelihood — and lets the
tests count evaluations exactly.  Uses the adaptive coefficients of
Gao & Han (2012), which help in the 6-parameter space-time problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .checkpoint import load_checkpoint, save_checkpoint

__all__ = ["NelderMeadResult", "nelder_mead"]

_CHECKPOINT_KIND = "nelder-mead"


@dataclass
class NelderMeadResult:
    """Optimization outcome."""

    x: np.ndarray
    fun: float
    nfev: int
    nit: int
    converged: bool
    history: list[float] = field(default_factory=list)


def nelder_mead(
    fn: Callable[[np.ndarray], float],
    x0: np.ndarray,
    *,
    initial_step: float = 0.25,
    max_iter: int = 200,
    fatol: float = 1.0e-6,
    xatol: float = 1.0e-6,
    adaptive: bool = True,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 10,
) -> NelderMeadResult:
    """Minimize ``fn`` from ``x0`` with a Nelder-Mead simplex.

    ``fn`` may return ``inf`` (rejected point); the simplex shrinks
    away from such points naturally.  Convergence when both the
    function spread and the simplex diameter drop below the tolerances.

    ``checkpoint_path`` enables crash recovery: every
    ``checkpoint_every`` iterations the full simplex state is written
    (see :mod:`repro.optim.checkpoint`), and when the file already
    exists the run *resumes* from it — ``x0``/``initial_step`` are
    ignored — continuing bit-identically with the same ``fn``.  Delete
    the file to start fresh.
    """
    x0 = np.asarray(x0, dtype=np.float64).ravel()
    ndim = x0.shape[0]
    if ndim == 0:
        raise ValueError("x0 must have at least one dimension")
    if adaptive and ndim > 1:
        alpha, gamma = 1.0, 1.0 + 2.0 / ndim
        rho, sigma = 0.75 - 1.0 / (2.0 * ndim), 1.0 - 1.0 / ndim
    else:
        alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5

    nfev = 0

    def evaluate(x: np.ndarray) -> float:
        nonlocal nfev
        nfev += 1
        value = float(fn(x))
        return value if np.isfinite(value) or value == np.inf else np.inf

    saved = (
        load_checkpoint(checkpoint_path, kind=_CHECKPOINT_KIND)
        if checkpoint_path
        else None
    )
    if saved is not None:
        simplex = np.asarray(saved["simplex"], dtype=np.float64)
        values = np.asarray(saved["values"], dtype=np.float64)
        nfev = int(saved["nfev"])
        history = [float(v) for v in saved["history"]]
        start_it = int(saved["it"])
    else:
        # Initial simplex: x0 plus one step along each axis.
        simplex = np.tile(x0, (ndim + 1, 1))
        for k in range(ndim):
            step = (
                initial_step
                if x0[k] == 0.0
                else initial_step * max(abs(x0[k]), 1.0)
            )
            simplex[k + 1, k] += step
        values = np.array([evaluate(v) for v in simplex])
        history = []
        start_it = 1

    converged = False
    it = start_it - 1
    for it in range(start_it, max_iter + 1):
        if checkpoint_path and (it - start_it) % checkpoint_every == 0:
            # State *before* this iteration: resuming re-runs it intact.
            save_checkpoint(
                checkpoint_path,
                kind=_CHECKPOINT_KIND,
                state={
                    "it": it,
                    "simplex": simplex,
                    "values": values,
                    "nfev": nfev,
                    "history": history,
                },
            )
        order = np.argsort(values, kind="stable")
        simplex = simplex[order]
        values = values[order]
        history.append(values[0])

        # All-inf simplexes (every point rejected) have no spread.
        f_spread = (
            values[-1] - values[0] if np.isfinite(values[-1]) else np.inf
        )
        x_spread = np.max(np.abs(simplex[1:] - simplex[0]))
        if f_spread <= fatol and x_spread <= xatol:
            converged = True
            break

        centroid = simplex[:-1].mean(axis=0)
        worst = simplex[-1]
        reflected = centroid + alpha * (centroid - worst)
        f_reflected = evaluate(reflected)

        if values[0] <= f_reflected < values[-2]:
            simplex[-1], values[-1] = reflected, f_reflected
            continue
        if f_reflected < values[0]:
            expanded = centroid + gamma * (reflected - centroid)
            f_expanded = evaluate(expanded)
            if f_expanded < f_reflected:
                simplex[-1], values[-1] = expanded, f_expanded
            else:
                simplex[-1], values[-1] = reflected, f_reflected
            continue
        # Contraction (outside when reflection improved on the worst).
        if f_reflected < values[-1]:
            contracted = centroid + rho * (reflected - centroid)
        else:
            contracted = centroid + rho * (worst - centroid)
        f_contracted = evaluate(contracted)
        if f_contracted < min(f_reflected, values[-1]):
            simplex[-1], values[-1] = contracted, f_contracted
            continue
        # Shrink toward the best vertex.
        best = simplex[0]
        for k in range(1, ndim + 1):
            simplex[k] = best + sigma * (simplex[k] - best)
            values[k] = evaluate(simplex[k])

    order = np.argsort(values, kind="stable")
    return NelderMeadResult(
        x=simplex[order[0]].copy(),
        fun=float(values[order[0]]),
        nfev=nfev,
        nit=it,
        converged=converged,
        history=history,
    )
