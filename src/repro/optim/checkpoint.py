"""Checkpoint/resume of optimizer state.

At production scale one MLE fit is hours of Cholesky factorizations; a
crashed driver must not restart the optimization from scratch.  The
optimizers in this package periodically serialize their *complete*
iteration state (Nelder-Mead: simplex + values; PSO: swarm positions,
velocities, bests, and the exact bit-generator state) so a relaunched
fit continues bit-identically from the last checkpoint — the round-trip
equality the resilience tests pin.

Format: a single JSON document (not ``.npz`` — NumPy's PCG64 state
holds 128-bit integers that only JSON's arbitrary-precision ints
round-trip), written atomically (temp file + ``os.replace``) so a crash
mid-write never corrupts the previous checkpoint.
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "rng_state_to_json",
    "rng_from_json",
]

_FORMAT = "repro-optim-checkpoint"
_VERSION = 1


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def save_checkpoint(path: str, *, kind: str, state: dict) -> None:
    """Atomically write optimizer ``state`` (arrays allowed) to ``path``."""
    doc = {
        "format": _FORMAT,
        "version": _VERSION,
        "kind": kind,
        "state": _jsonable(state),
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    os.replace(tmp, path)


def load_checkpoint(path: str, *, kind: str) -> dict | None:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Returns ``None`` when ``path`` does not exist (fresh start); raises
    :class:`~repro.exceptions.ConfigurationError` when the file is not a
    checkpoint of the expected ``kind`` — resuming a Nelder-Mead run
    from a PSO checkpoint is a configuration mistake, not a fresh start.
    """
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"checkpoint {path!r} is not valid JSON: {exc}"
            ) from exc
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise ConfigurationError(f"{path!r} is not an optimizer checkpoint")
    if doc.get("kind") != kind:
        raise ConfigurationError(
            f"checkpoint {path!r} is for {doc.get('kind')!r}, not {kind!r}"
        )
    return doc["state"]


def rng_state_to_json(rng: np.random.Generator) -> dict:
    """The generator's full bit-generator state (JSON-safe)."""
    return _jsonable(rng.bit_generator.state)


def rng_from_json(state: dict) -> np.random.Generator:
    """Reconstruct a generator that continues the saved stream."""
    bit_gen = getattr(np.random, state["bit_generator"])()
    bit_gen.state = state
    return np.random.Generator(bit_gen)
