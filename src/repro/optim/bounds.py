"""Parameter transforms for bound-constrained optimization.

Kernel parameters live on open intervals (positives, unit intervals);
the optimizers work in an unconstrained space ``u`` related by

* ``(0, inf)``   -> ``theta = exp(u)``            (log transform)
* ``(lo, hi)``   -> logistic (logit transform)
* ``(-inf, inf)``-> identity

built from the kernel's :class:`~repro.kernels.base.ParameterSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..kernels.base import ParameterSpec

__all__ = ["BoundTransform"]

_CLIP = 500.0  # exp overflow guard in the unconstrained space


@dataclass(frozen=True)
class BoundTransform:
    """Vector transform between constrained ``theta`` and free ``u``."""

    specs: tuple[ParameterSpec, ...]

    @classmethod
    def from_specs(cls, specs: tuple[ParameterSpec, ...]) -> "BoundTransform":
        return cls(specs=tuple(specs))

    def to_unconstrained(self, theta: np.ndarray) -> np.ndarray:
        theta = np.asarray(theta, dtype=np.float64).ravel()
        if theta.shape[0] != len(self.specs):
            raise ParameterError(
                f"expected {len(self.specs)} parameters, got {theta.shape[0]}"
            )
        out = np.empty_like(theta)
        for k, (value, spec) in enumerate(zip(theta, self.specs)):
            lo, hi = spec.lower, spec.upper
            if np.isfinite(lo) and np.isfinite(hi):
                if not (lo < value < hi):
                    raise ParameterError(
                        f"{spec.name}={value} outside ({lo}, {hi})"
                    )
                frac = (value - lo) / (hi - lo)
                out[k] = np.log(frac / (1.0 - frac))
            elif np.isfinite(lo):
                if value <= lo:
                    raise ParameterError(f"{spec.name}={value} <= {lo}")
                out[k] = np.log(value - lo)
            elif np.isfinite(hi):
                if value >= hi:
                    raise ParameterError(f"{spec.name}={value} >= {hi}")
                out[k] = -np.log(hi - value)
            else:
                out[k] = value
        return out

    def to_constrained(self, u: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(u, dtype=np.float64).ravel(), -_CLIP, _CLIP)
        if u.shape[0] != len(self.specs):
            raise ParameterError(
                f"expected {len(self.specs)} parameters, got {u.shape[0]}"
            )
        out = np.empty_like(u)
        for k, (value, spec) in enumerate(zip(u, self.specs)):
            lo, hi = spec.lower, spec.upper
            if np.isfinite(lo) and np.isfinite(hi):
                frac = 1.0 / (1.0 + np.exp(-value))
                # Keep strictly inside the open interval even when the
                # logistic saturates in floating point.
                frac = min(max(frac, 1.0e-12), 1.0 - 1.0e-12)
                out[k] = lo + (hi - lo) * frac
            elif np.isfinite(lo):
                out[k] = max(lo + np.exp(value), np.nextafter(lo, np.inf))
            elif np.isfinite(hi):
                out[k] = min(hi - np.exp(-value), np.nextafter(hi, -np.inf))
            else:
                out[k] = value
        return out
