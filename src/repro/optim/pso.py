"""Particle swarm optimization with batched evaluations.

Section VI-D: the paper accelerates MLE training by launching a swarm
of *independent* likelihood evaluations per iteration — embarrassingly
parallel Cholesky factorizations, loosely synchronized per iteration —
which is what turns strong-scaling-limited MLE into a weak-scaling
workload.  ``evaluate_batch`` receives all particle positions of one
iteration at once, so a caller can fan them out to simulated (or real)
parallel resources; the weak-scaling bench charges each batch the
simulated time of its slowest member.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .checkpoint import (
    load_checkpoint,
    rng_from_json,
    rng_state_to_json,
    save_checkpoint,
)

__all__ = ["PSOResult", "particle_swarm"]

_CHECKPOINT_KIND = "pso"


@dataclass
class PSOResult:
    """Swarm optimization outcome."""

    x: np.ndarray
    fun: float
    nit: int
    nfev: int
    history: list[float] = field(default_factory=list)
    batch_sizes: list[int] = field(default_factory=list)


def particle_swarm(
    evaluate_batch: Callable[[np.ndarray], Sequence[float]],
    bounds: Sequence[tuple[float, float]],
    *,
    n_particles: int = 16,
    max_iter: int = 50,
    inertia: float = 0.72,
    cognitive: float = 1.49,
    social: float = 1.49,
    tol: float = 1.0e-8,
    patience: int = 10,
    seed: int | None = None,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 10,
) -> PSOResult:
    """Global-best PSO minimizing over a box.

    ``evaluate_batch`` maps an ``(n_particles, ndim)`` array to one
    objective value per particle (``inf`` allowed).  Stops early when
    the global best has not improved by ``tol`` for ``patience``
    iterations.

    ``checkpoint_path`` enables crash recovery: every
    ``checkpoint_every`` iterations the full swarm state — positions,
    velocities, per-particle bests, and the exact bit-generator state —
    is written (see :mod:`repro.optim.checkpoint`), and when the file
    already exists the run *resumes* from it (``seed`` is ignored),
    continuing bit-identically with the same ``evaluate_batch``.
    Delete the file to start fresh.
    """
    lo = np.array([b[0] for b in bounds], dtype=np.float64)
    hi = np.array([b[1] for b in bounds], dtype=np.float64)
    if np.any(hi <= lo):
        raise ValueError("each bound must satisfy lo < hi")
    ndim = lo.shape[0]

    saved = (
        load_checkpoint(checkpoint_path, kind=_CHECKPOINT_KIND)
        if checkpoint_path
        else None
    )
    if saved is not None:
        rng = rng_from_json(saved["rng"])
        pos = np.asarray(saved["pos"], dtype=np.float64)
        vel = np.asarray(saved["vel"], dtype=np.float64)
        best_pos = np.asarray(saved["best_pos"], dtype=np.float64)
        best_val = np.asarray(saved["best_val"], dtype=np.float64)
        g_pos = np.asarray(saved["g_pos"], dtype=np.float64)
        g_val = float(saved["g_val"])
        nfev = int(saved["nfev"])
        history = [float(v) for v in saved["history"]]
        batch_sizes = [int(b) for b in saved["batch_sizes"]]
        stall = int(saved["stall"])
        start_it = int(saved["it"])
        n_particles = pos.shape[0]  # the saved swarm wins
    else:
        rng = np.random.default_rng(seed)
        pos = lo + (hi - lo) * rng.random((n_particles, ndim))
        vel = 0.1 * (hi - lo) * (rng.random((n_particles, ndim)) - 0.5)

        values = np.asarray(evaluate_batch(pos), dtype=np.float64)
        nfev = n_particles
        best_pos = pos.copy()
        best_val = values.copy()
        g = int(np.argmin(best_val))
        g_pos, g_val = best_pos[g].copy(), float(best_val[g])

        history = [g_val]
        batch_sizes = [n_particles]
        stall = 0
        start_it = 1

    it = start_it - 1
    for it in range(start_it, max_iter + 1):
        if checkpoint_path and (it - start_it) % checkpoint_every == 0:
            # State *before* this iteration: resuming re-runs it intact.
            save_checkpoint(
                checkpoint_path,
                kind=_CHECKPOINT_KIND,
                state={
                    "it": it,
                    "pos": pos,
                    "vel": vel,
                    "best_pos": best_pos,
                    "best_val": best_val,
                    "g_pos": g_pos,
                    "g_val": g_val,
                    "nfev": nfev,
                    "history": history,
                    "batch_sizes": batch_sizes,
                    "stall": stall,
                    "rng": rng_state_to_json(rng),
                },
            )
        r1 = rng.random((n_particles, ndim))
        r2 = rng.random((n_particles, ndim))
        vel = (
            inertia * vel
            + cognitive * r1 * (best_pos - pos)
            + social * r2 * (g_pos[None, :] - pos)
        )
        pos = pos + vel
        # Reflect at the box boundary and zero the velocity component.
        below = pos < lo
        above = pos > hi
        pos = np.where(below, lo + (lo - pos), pos)
        pos = np.where(above, hi - (pos - hi), pos)
        pos = np.clip(pos, lo, hi)
        vel = np.where(below | above, -0.5 * vel, vel)

        values = np.asarray(evaluate_batch(pos), dtype=np.float64)
        nfev += n_particles
        batch_sizes.append(n_particles)

        improved = values < best_val
        best_pos[improved] = pos[improved]
        best_val[improved] = values[improved]
        g = int(np.argmin(best_val))
        if best_val[g] < g_val - tol:
            stall = 0
        else:
            stall += 1
        if best_val[g] < g_val:
            g_pos, g_val = best_pos[g].copy(), float(best_val[g])
        history.append(g_val)
        if stall >= patience:
            break

    return PSOResult(
        x=g_pos, fun=g_val, nit=it, nfev=nfev,
        history=history, batch_sizes=batch_sizes,
    )
