"""Particle swarm optimization with batched evaluations.

Section VI-D: the paper accelerates MLE training by launching a swarm
of *independent* likelihood evaluations per iteration — embarrassingly
parallel Cholesky factorizations, loosely synchronized per iteration —
which is what turns strong-scaling-limited MLE into a weak-scaling
workload.  ``evaluate_batch`` receives all particle positions of one
iteration at once, so a caller can fan them out to simulated (or real)
parallel resources; the weak-scaling bench charges each batch the
simulated time of its slowest member.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = ["PSOResult", "particle_swarm"]


@dataclass
class PSOResult:
    """Swarm optimization outcome."""

    x: np.ndarray
    fun: float
    nit: int
    nfev: int
    history: list[float] = field(default_factory=list)
    batch_sizes: list[int] = field(default_factory=list)


def particle_swarm(
    evaluate_batch: Callable[[np.ndarray], Sequence[float]],
    bounds: Sequence[tuple[float, float]],
    *,
    n_particles: int = 16,
    max_iter: int = 50,
    inertia: float = 0.72,
    cognitive: float = 1.49,
    social: float = 1.49,
    tol: float = 1.0e-8,
    patience: int = 10,
    seed: int | None = None,
) -> PSOResult:
    """Global-best PSO minimizing over a box.

    ``evaluate_batch`` maps an ``(n_particles, ndim)`` array to one
    objective value per particle (``inf`` allowed).  Stops early when
    the global best has not improved by ``tol`` for ``patience``
    iterations.
    """
    rng = np.random.default_rng(seed)
    lo = np.array([b[0] for b in bounds], dtype=np.float64)
    hi = np.array([b[1] for b in bounds], dtype=np.float64)
    if np.any(hi <= lo):
        raise ValueError("each bound must satisfy lo < hi")
    ndim = lo.shape[0]

    pos = lo + (hi - lo) * rng.random((n_particles, ndim))
    vel = 0.1 * (hi - lo) * (rng.random((n_particles, ndim)) - 0.5)

    values = np.asarray(evaluate_batch(pos), dtype=np.float64)
    nfev = n_particles
    best_pos = pos.copy()
    best_val = values.copy()
    g = int(np.argmin(best_val))
    g_pos, g_val = best_pos[g].copy(), float(best_val[g])

    history = [g_val]
    batch_sizes = [n_particles]
    stall = 0
    it = 0
    for it in range(1, max_iter + 1):
        r1 = rng.random((n_particles, ndim))
        r2 = rng.random((n_particles, ndim))
        vel = (
            inertia * vel
            + cognitive * r1 * (best_pos - pos)
            + social * r2 * (g_pos[None, :] - pos)
        )
        pos = pos + vel
        # Reflect at the box boundary and zero the velocity component.
        below = pos < lo
        above = pos > hi
        pos = np.where(below, lo + (lo - pos), pos)
        pos = np.where(above, hi - (pos - hi), pos)
        pos = np.clip(pos, lo, hi)
        vel = np.where(below | above, -0.5 * vel, vel)

        values = np.asarray(evaluate_batch(pos), dtype=np.float64)
        nfev += n_particles
        batch_sizes.append(n_particles)

        improved = values < best_val
        best_pos[improved] = pos[improved]
        best_val[improved] = values[improved]
        g = int(np.argmin(best_val))
        if best_val[g] < g_val - tol:
            stall = 0
        else:
            stall += 1
        if best_val[g] < g_val:
            g_pos, g_val = best_pos[g].copy(), float(best_val[g])
        history.append(g_val)
        if stall >= patience:
            break

    return PSOResult(
        x=g_pos, fun=g_val, nit=it, nfev=nfev,
        history=history, batch_sizes=batch_sizes,
    )
