"""Derivative-free optimizers for the MLE loop.

* :func:`~repro.optim.neldermead.nelder_mead` — the default local
  direct-search minimizer;
* :func:`~repro.optim.pso.particle_swarm` — the paper's weak-scaling
  parallel optimizer (Section VI-D);
* :class:`~repro.optim.bounds.BoundTransform` — maps kernel parameter
  boxes to the optimizers' unconstrained/box spaces;
* :mod:`~repro.optim.checkpoint` — JSON checkpoint/resume of optimizer
  state, so crashed fits continue instead of restarting.
"""

from .bounds import BoundTransform
from .checkpoint import load_checkpoint, save_checkpoint
from .neldermead import NelderMeadResult, nelder_mead
from .pso import PSOResult, particle_swarm

__all__ = [
    "BoundTransform",
    "nelder_mead",
    "NelderMeadResult",
    "particle_swarm",
    "PSOResult",
    "save_checkpoint",
    "load_checkpoint",
]
