"""Static verification layer: plan/DAG analyzers + numerical linter.

Three analyzers share one diagnostics framework
(:mod:`repro.analysis.diagnostics`):

* :mod:`repro.analysis.plancheck` — verifies a
  :class:`~repro.tile.decisions.TilePlan` against the paper's
  invariants (Frobenius precision rule, Algorithm-2 dense band,
  crossover-admissible ranks, memory/fault budgets) *before* any
  factorization is paid for;
* :mod:`repro.analysis.dagcheck` — verifies task streams and
  dependence DAGs for read-before-write and WAW/RAW races under any
  scheduler;
* :mod:`repro.analysis.lint` — AST-level numerical-hygiene rules over
  the repository's own sources;
* :mod:`repro.analysis.lockcheck` — AST-level lock-discipline rules
  (guarded attributes, lock-order cycles, check-then-act smells,
  ``threading`` API misuse) over the same sources;
* :mod:`repro.analysis.sanitize` — opt-in dynamic race detection
  (Eraser-style locksets + vector-clock happens-before) instrumenting
  the real threaded engines.

The ``validate_plan`` hooks in :func:`repro.tile.cholesky.tile_cholesky`
and :func:`repro.runtime.simulator.simulate_tasks` raise
:class:`~repro.exceptions.PlanValidationError` on error-severity
findings; ``python -m repro analyze`` exposes everything on the CLI.
"""

from .dagcheck import DAG_RULES, check_dag, check_task_stream, check_taskgraph
from .diagnostics import AnalysisReport, Diagnostic, Severity
from .golden import (
    COMM_RULES,
    GOLDEN_NTS,
    GOLDEN_VARIANTS,
    SERVE_RULES,
    check_golden_comm,
    check_golden_plan,
    check_golden_plans,
    check_golden_serving,
)
from .lint import LINT_RULES, lint_file, lint_paths, lint_source
from .lockcheck import (
    LOCK_RULES,
    check_lock_discipline,
    check_lock_paths,
    check_lock_source,
)
from .plancheck import PLAN_RULES, check_plan, plan_from_matrix
from .resilience import RES_RULES, check_golden_resilience
from .sanitize import (
    RACE_RULES,
    disable_sanitizer,
    enable_sanitizer,
    run_sanitized_workload,
    sanitized_access,
    sanitized_lock,
)
from .telemetry import TELEM_RULES, check_golden_telemetry

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "check_plan",
    "plan_from_matrix",
    "check_task_stream",
    "check_dag",
    "check_taskgraph",
    "lint_source",
    "lint_file",
    "lint_paths",
    "check_lock_source",
    "check_lock_paths",
    "check_lock_discipline",
    "enable_sanitizer",
    "disable_sanitizer",
    "sanitized_lock",
    "sanitized_access",
    "run_sanitized_workload",
    "check_golden_plan",
    "check_golden_plans",
    "check_golden_serving",
    "check_golden_comm",
    "check_golden_resilience",
    "check_golden_telemetry",
    "GOLDEN_VARIANTS",
    "GOLDEN_NTS",
    "PLAN_RULES",
    "DAG_RULES",
    "LINT_RULES",
    "SERVE_RULES",
    "COMM_RULES",
    "RES_RULES",
    "TELEM_RULES",
    "LOCK_RULES",
    "RACE_RULES",
]
