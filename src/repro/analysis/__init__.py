"""Static verification layer: plan/DAG analyzers + numerical linter.

Three analyzers share one diagnostics framework
(:mod:`repro.analysis.diagnostics`):

* :mod:`repro.analysis.plancheck` — verifies a
  :class:`~repro.tile.decisions.TilePlan` against the paper's
  invariants (Frobenius precision rule, Algorithm-2 dense band,
  crossover-admissible ranks, memory/fault budgets) *before* any
  factorization is paid for;
* :mod:`repro.analysis.dagcheck` — verifies task streams and
  dependence DAGs for read-before-write and WAW/RAW races under any
  scheduler;
* :mod:`repro.analysis.lint` — AST-level numerical-hygiene rules over
  the repository's own sources.

The ``validate_plan`` hooks in :func:`repro.tile.cholesky.tile_cholesky`
and :func:`repro.runtime.simulator.simulate_tasks` raise
:class:`~repro.exceptions.PlanValidationError` on error-severity
findings; ``python -m repro analyze`` exposes everything on the CLI.
"""

from .dagcheck import DAG_RULES, check_dag, check_task_stream, check_taskgraph
from .diagnostics import AnalysisReport, Diagnostic, Severity
from .golden import (
    GOLDEN_NTS,
    GOLDEN_VARIANTS,
    SERVE_RULES,
    check_golden_plan,
    check_golden_plans,
    check_golden_serving,
)
from .lint import LINT_RULES, lint_file, lint_paths, lint_source
from .plancheck import PLAN_RULES, check_plan, plan_from_matrix
from .resilience import RES_RULES, check_golden_resilience

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "check_plan",
    "plan_from_matrix",
    "check_task_stream",
    "check_dag",
    "check_taskgraph",
    "lint_source",
    "lint_file",
    "lint_paths",
    "check_golden_plan",
    "check_golden_plans",
    "check_golden_serving",
    "check_golden_resilience",
    "GOLDEN_VARIANTS",
    "GOLDEN_NTS",
    "PLAN_RULES",
    "DAG_RULES",
    "LINT_RULES",
    "SERVE_RULES",
    "RES_RULES",
]
