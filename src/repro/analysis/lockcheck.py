"""Static lock-discipline analyzer for the repository's own sources.

The real engines (the threaded DAG executor, the serving engine, the
shared caches, the circuit breaker) follow one discipline: every class
that shares mutable state across threads owns a ``threading.Lock``
attribute, mutates its shared attributes only inside ``with
self._lock`` blocks, and never holds its lock while calling into
another lock-owning class in a conflicting order.  These rules verify
that discipline from the AST, before any thread runs:

========  ========  =====================================================
rule      severity  pattern
========  ========  =====================================================
LOCK001   error     attribute that is mutated under the class lock in
                    one method is mutated with *no* lock held in another
LOCK002   error     class spawns a thread pool and mutates shared
                    attributes but owns no lock at all
LOCK003   error     cycle in the inter-class lock-acquisition graph
                    (potential deadlock: two lock orders coexist)
LOCK004   error     non-reentrant ``threading.Lock`` re-acquired while
                    already held (lexically nested ``with``, or a call
                    to a method of the same class that takes the lock)
LOCK005   warning   check-then-act smell: a guarded attribute is read in
                    one lock region and mutated in a *later, separate*
                    lock region of the same function (the invariant
                    checked does not survive the release in between)
LOCK006   warning   ``Condition.wait()`` outside a ``while`` predicate
                    loop (wakeups are spurious and racy by contract)
LOCK007   warning   raw ``.acquire()`` on a lock without a ``finally:``
                    that releases it (an exception leaks the lock; use
                    ``with``)
LOCK008   error     lock attribute rebound outside ``__init__``
                    (threads blocked on the old lock never see the new)
========  ========  =====================================================

A finding on a given line is suppressed by a trailing ``# lockcheck:
ignore`` comment (all rules) or ``# lockcheck: ignore[LOCK005]``
(listed rules only) — suppressions should state *why* the pattern is
safe (e.g. an idempotent two-phase cache fill).

Like every static analysis of a dynamic language this is heuristic:
lock ownership is recognized through ``self.<attr> =
threading.Lock()``-style assignments, cross-class edges through
``self.<attr> = OtherClass(...)`` constructor assignments, and dynamic
callbacks (``self._on_trip()``) are invisible.  The dynamic side
(:mod:`repro.analysis.sanitize`) covers what the AST cannot see.

Run over the repository with ``python -m repro analyze --concurrency``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

import networkx as nx

from .diagnostics import AnalysisReport, Diagnostic, Severity

__all__ = [
    "LOCK_RULES",
    "check_lock_source",
    "check_lock_paths",
    "check_lock_discipline",
]

#: Rule-id -> one-line description (the catalog rendered by the CLI).
LOCK_RULES: dict[str, str] = {
    "LOCK001": "lock-guarded attribute mutated outside any lock scope",
    "LOCK002": "thread-spawning class shares mutable state without a lock",
    "LOCK003": "lock-order cycle in the acquisition graph (deadlock risk)",
    "LOCK004": "non-reentrant lock re-acquired while already held",
    "LOCK005": "check-then-act split across a lock release",
    "LOCK006": "condition wait without an enclosing predicate loop",
    "LOCK007": "raw acquire() without a guaranteed release",
    "LOCK008": "lock attribute rebound outside __init__",
}

_SUPPRESS_RE = re.compile(r"#\s*lockcheck:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")

#: Constructors recognized as lock objects, -> reentrant?
_LOCK_CONSTRUCTORS = {"Lock": False, "RLock": True, "Condition": True}
#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "move_to_end", "appendleft",
    "popleft", "sort", "reverse",
}
_INIT_METHODS = {"__init__", "__new__", "__post_init__"}


def _attr_path(node: ast.AST) -> tuple[str, ...]:
    """``self.a.b`` -> ``("self", "a", "b")`` (empty for other shapes)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def _constructor_name(value: ast.AST) -> str:
    """Class name of ``X(...)`` / ``mod.X(...)`` calls, else ``""``."""
    if isinstance(value, ast.Call):
        path = _attr_path(value.func)
        if path:
            return path[-1]
    return ""


@dataclass
class _Access:
    """One attribute access inside a method."""

    attr: str  # dotted path without the leading receiver
    write: bool
    held: frozenset[str]  # own-lock attrs lexically held
    region: int  # which `with <lock>` region (0 = none)
    line: int


@dataclass
class _MethodInfo:
    name: str
    line: int
    accesses: list[_Access] = field(default_factory=list)
    #: Own-lock attrs this method acquires anywhere in its body.
    acquires: set[str] = field(default_factory=set)
    #: ``self.<meth>()`` calls made while holding own locks.
    self_calls: list[tuple[str, frozenset[str], int]] = field(
        default_factory=list
    )
    #: ``self.<obj>.<meth>()`` calls made while holding locks:
    #: (obj attr, callee method, held own locks, line).
    foreign_calls: list[tuple[str, str, frozenset[str], int]] = field(
        default_factory=list
    )
    #: Own lock acquired while holding another: (held, acquired, line).
    lock_edges: list[tuple[str, str, int]] = field(default_factory=list)
    spawns_pool: bool = False


@dataclass
class _ClassInfo:
    name: str
    filename: str
    line: int
    #: lock attr -> reentrant?
    locks: dict[str, bool] = field(default_factory=dict)
    #: attr -> class name assigned in __init__ (``self.x = Other()``).
    attr_classes: dict[str, str] = field(default_factory=dict)
    methods: dict[str, _MethodInfo] = field(default_factory=dict)

    @property
    def guarded(self) -> set[str]:
        """Attributes mutated under an own lock outside ``__init__``."""
        out: set[str] = set()
        for m in self.methods.values():
            if m.name in _INIT_METHODS:
                continue
            for a in m.accesses:
                if a.write and a.held:
                    out.add(a.attr)
        return out


class _MethodWalker:
    """Recursive walk of one method body tracking held locks, lock
    regions, ``while`` nesting, and ``try/finally`` release scopes."""

    def __init__(
        self,
        cls: _ClassInfo,
        info: _MethodInfo,
        findings: list[Diagnostic],
        filename: str,
        self_name: str,
    ):
        self.cls = cls
        self.info = info
        self.findings = findings
        self.filename = filename
        self.self_name = self_name
        self.held: tuple[str, ...] = ()
        self.region = 0
        self.next_region = 1
        self.while_depth = 0
        #: Receiver paths released in an enclosing ``finally:``.
        self.finally_released: list[set[tuple[str, ...]]] = []
        #: Local names bound to Condition(...) instances.
        self.local_conditions: set[str] = set()
        #: Local names bound to Lock()/RLock() instances.
        self.local_locks: set[str] = set()

    # ------------------------------------------------------------------
    def _report(self, rule: str, severity: Severity, msg: str, line: int):
        self.findings.append(Diagnostic(
            rule, severity, msg, file=self.filename, line=line,
        ))

    def _own_lock_of(self, node: ast.AST) -> str | None:
        """Lock attr name when ``node`` is ``self.<lock>``."""
        path = _attr_path(node)
        if (
            len(path) == 2
            and path[0] == self.self_name
            and path[1] in self.cls.locks
        ):
            return path[1]
        return None

    def _record_access(self, path: tuple[str, ...], write: bool, line: int):
        if len(path) < 2 or path[0] != self.self_name:
            return
        attr = ".".join(path[1:])
        if path[1] in self.cls.locks:
            return  # the lock itself; LOCK008 handles rebinding
        self.info.accesses.append(_Access(
            attr=attr, write=write,
            held=frozenset(self.held), region=self.region, line=line,
        ))

    def _record_reads(self, node: ast.AST):
        """Record every ``self.x...`` load inside an expression."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and isinstance(
                sub.ctx, ast.Load
            ):
                path = _attr_path(sub)
                if len(path) >= 2 and path[0] == self.self_name:
                    self._record_access(
                        path, False, getattr(sub, "lineno", 0)
                    )

    # ------------------------------------------------------------------
    def walk(self, node: ast.AST) -> None:
        method = getattr(self, f"_walk_{type(node).__name__}", None)
        if method is not None:
            method(node)
        else:
            for child in ast.iter_child_nodes(node):
                self.walk(child)

    def walk_body(self, body: list[ast.stmt]) -> None:
        # The canonical raw-lock idiom puts ``acquire()`` just *before*
        # the ``try`` whose ``finally:`` releases it, so sibling
        # try/finally releases must excuse acquires at this level too.
        released: set[tuple[str, ...]] = set()
        for stmt in body:
            if isinstance(stmt, ast.Try):
                for final_stmt in stmt.finalbody:
                    for sub in ast.walk(final_stmt):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr == "release"
                        ):
                            released.add(_attr_path(sub.func.value))
        self.finally_released.append(released)
        for stmt in body:
            self.walk(stmt)
        self.finally_released.pop()

    # ------------------------------------------------------------------
    def _walk_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            lock = self._own_lock_of(item.context_expr)
            if lock is not None:
                self.info.acquires.add(lock)
                if lock in self.held and not self.cls.locks[lock]:
                    self._report(
                        "LOCK004", Severity.ERROR,
                        f"{self.cls.name}.{self.info.name} re-enters "
                        f"non-reentrant lock self.{lock} it already "
                        "holds: this deadlocks at runtime",
                        node.lineno,
                    )
                for outer in self.held:
                    if outer != lock:
                        self.info.lock_edges.append(
                            (outer, lock, node.lineno)
                        )
                acquired.append(lock)
            else:
                self.walk(item.context_expr)
        if acquired:
            saved_held, saved_region = self.held, self.region
            self.held = self.held + tuple(acquired)
            self.region = self.next_region
            self.next_region += 1
            self.walk_body(node.body)
            self.held, self.region = saved_held, saved_region
        else:
            self.walk_body(node.body)

    def _walk_While(self, node: ast.While) -> None:
        self._record_reads(node.test)
        self.while_depth += 1
        self.walk_body(node.body)
        self.walk_body(node.orelse)
        self.while_depth -= 1

    def _walk_Try(self, node: ast.Try) -> None:
        released: set[tuple[str, ...]] = set()
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "release"
                ):
                    released.add(_attr_path(sub.func.value))
        self.finally_released.append(released)
        self.walk_body(node.body)
        for handler in node.handlers:
            self.walk(handler)
        self.walk_body(node.orelse)
        self.finally_released.pop()
        self.walk_body(node.finalbody)

    def _walk_Assign(self, node: ast.Assign) -> None:
        ctor = _constructor_name(node.value)
        for target in node.targets:
            path = _attr_path(target)
            if isinstance(target, ast.Name):
                if ctor == "Condition":
                    self.local_conditions.add(target.id)
                elif ctor in _LOCK_CONSTRUCTORS:
                    self.local_locks.add(target.id)
            if (
                len(path) == 2
                and path[0] == self.self_name
                and ctor in _LOCK_CONSTRUCTORS
                and self.info.name not in _INIT_METHODS
            ):
                self._report(
                    "LOCK008", Severity.ERROR,
                    f"{self.cls.name}.{self.info.name} rebinds lock "
                    f"self.{path[1]} outside __init__: threads blocked "
                    "on the old lock will never observe the new one",
                    node.lineno,
                )
            if path and path[0] == self.self_name:
                self._record_access(path, True, node.lineno)
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                base = _attr_path(
                    target.value if isinstance(target, ast.Subscript)
                    else target
                )
                if base and base[0] == self.self_name:
                    self._record_access(base, True, node.lineno)
        self._record_reads(node.value)

    def _walk_AugAssign(self, node: ast.AugAssign) -> None:
        path = _attr_path(node.target)
        if not path and isinstance(node.target, ast.Subscript):
            path = _attr_path(node.target.value)
        if path and path[0] == self.self_name:
            self._record_access(path, True, node.lineno)
        self._record_reads(node.value)

    def _walk_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            recv_path = _attr_path(func.value)
            # Mutating method on a self attribute: a write access.
            if (
                func.attr in _MUTATORS
                and recv_path
                and recv_path[0] == self.self_name
            ):
                self._record_access(recv_path, True, node.lineno)
            # Condition.wait without a predicate loop (wait_for loops
            # internally, so only bare wait is suspect).
            if func.attr == "wait" and self.while_depth == 0:
                is_condition = (
                    len(recv_path) == 2
                    and recv_path[0] == self.self_name
                    and self.cls.locks.get(recv_path[1]) is True
                ) or (
                    len(recv_path) == 1
                    and recv_path[0] in self.local_conditions
                )
                if is_condition:
                    self._report(
                        "LOCK006", Severity.WARNING,
                        "Condition.wait() outside a while predicate "
                        "loop: wakeups are spurious by contract — "
                        "re-check the predicate in a loop",
                        node.lineno,
                    )
            # Raw acquire without a finally-release.
            if func.attr == "acquire":
                is_lock = self._own_lock_of(func.value) is not None or (
                    len(recv_path) == 1 and recv_path[0] in self.local_locks
                )
                if is_lock:
                    covered = any(
                        recv_path in released
                        for released in self.finally_released
                    )
                    if not covered:
                        self._report(
                            "LOCK007", Severity.WARNING,
                            f"raw {'.'.join(recv_path)}.acquire() "
                            "without a finally: release — an exception "
                            "leaks the lock; prefer a with block",
                            node.lineno,
                        )
            # Call graph edges.
            if len(recv_path) == 1 and recv_path[0] == self.self_name:
                self.info.self_calls.append(
                    (func.attr, frozenset(self.held), node.lineno)
                )
            elif (
                len(recv_path) == 2
                and recv_path[0] == self.self_name
                and recv_path[1] in self.cls.attr_classes
            ):
                self.info.foreign_calls.append((
                    recv_path[1], func.attr,
                    frozenset(self.held), node.lineno,
                ))
        name = _attr_path(func)
        if name and name[-1] == "ThreadPoolExecutor":
            self.info.spawns_pool = True
        for child in ast.iter_child_nodes(node):
            self.walk(child)

    def _walk_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            path = _attr_path(node)
            if len(path) >= 2 and path[0] == self.self_name:
                self._record_access(path, False, node.lineno)
                return
        for child in ast.iter_child_nodes(node):
            self.walk(child)

    # Nested defs: walked with the same tracker — a closure mutating
    # self from a worker thread is exactly what we must see — but the
    # held-lock context does not flow into a deferred body.
    def _walk_FunctionDef(self, node: ast.FunctionDef) -> None:
        saved_held, saved_region = self.held, self.region
        saved_while = self.while_depth
        self.held, self.region, self.while_depth = (), 0, 0
        self.walk_body(node.body)
        self.held, self.region = saved_held, saved_region
        self.while_depth = saved_while

    def _walk_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._walk_FunctionDef(node)  # type: ignore[arg-type]


def _collect_class(
    node: ast.ClassDef, filename: str, findings: list[Diagnostic]
) -> _ClassInfo:
    cls = _ClassInfo(name=node.name, filename=filename, line=node.lineno)
    # Pass A: lock attributes and attr -> class bindings (from any
    # method, so late-built locks are still recognized as locks).
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        self_name = item.args.args[0].arg if item.args.args else "self"
        for sub in ast.walk(item):
            if not isinstance(sub, ast.Assign):
                continue
            ctor = _constructor_name(sub.value)
            if not ctor:
                continue
            for target in sub.targets:
                path = _attr_path(target)
                if len(path) == 2 and path[0] == self_name:
                    if ctor in _LOCK_CONSTRUCTORS:
                        cls.locks[path[1]] = _LOCK_CONSTRUCTORS[ctor]
                    elif item.name in _INIT_METHODS:
                        cls.attr_classes[path[1]] = ctor
    # Pass B: walk every method with the lock context tracker.
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        self_name = item.args.args[0].arg if item.args.args else "self"
        info = _MethodInfo(name=item.name, line=item.lineno)
        walker = _MethodWalker(cls, info, findings, filename, self_name)
        walker.walk_body(item.body)
        cls.methods[item.name] = info
    return cls


def _check_class_rules(
    cls: _ClassInfo, findings: list[Diagnostic]
) -> None:
    guarded = cls.guarded
    spawns = any(m.spawns_pool for m in cls.methods.values())

    # LOCK002: thread-spawning class with shared mutation and no lock.
    if spawns and not cls.locks:
        mutating = [
            (m, a)
            for m in cls.methods.values()
            if m.name not in _INIT_METHODS
            for a in m.accesses if a.write
        ]
        if mutating:
            m, a = mutating[0]
            findings.append(Diagnostic(
                "LOCK002", Severity.ERROR,
                f"{cls.name} spawns a ThreadPoolExecutor and mutates "
                f"self.{a.attr} (in {m.name}) but owns no lock: shared "
                "state needs a threading.Lock attribute",
                file=cls.filename, line=a.line,
            ))

    for m in cls.methods.values():
        if m.name in _INIT_METHODS:
            continue
        # LOCK001: guarded attribute mutated with no lock held.
        for a in m.accesses:
            if a.write and not a.held and a.attr in guarded:
                findings.append(Diagnostic(
                    "LOCK001", Severity.ERROR,
                    f"{cls.name}.{m.name} mutates self.{a.attr} with "
                    "no lock held, but the same attribute is guarded "
                    "by the class lock elsewhere: torn updates race "
                    "with the locked writers",
                    file=cls.filename, line=a.line,
                ))
        # LOCK004 (interprocedural, one level): calling a sibling
        # method that takes the held non-reentrant lock.
        for callee, held, line in m.self_calls:
            target = cls.methods.get(callee)
            if target is None:
                continue
            for lock in target.acquires:
                if lock in held and not cls.locks.get(lock, True):
                    findings.append(Diagnostic(
                        "LOCK004", Severity.ERROR,
                        f"{cls.name}.{m.name} holds self.{lock} and "
                        f"calls self.{callee}() which re-acquires it: "
                        "this deadlocks at runtime",
                        file=cls.filename, line=line,
                    ))
        # LOCK005: read of a guarded attr in one lock region, write in
        # a later, different region of the same method.
        reads: dict[str, list[_Access]] = {}
        for a in m.accesses:
            if not a.write and a.region and a.attr in guarded:
                reads.setdefault(a.attr, []).append(a)
        reported: set[str] = set()
        for a in m.accesses:
            if not (a.write and a.region and a.attr in guarded):
                continue
            if a.attr in reported:
                continue
            for r in reads.get(a.attr, ()):
                if r.region != a.region and r.line < a.line:
                    findings.append(Diagnostic(
                        "LOCK005", Severity.WARNING,
                        f"{cls.name}.{m.name} checks self.{a.attr} in "
                        f"one lock region (line {r.line}) and mutates "
                        "it in another: the checked condition can "
                        "change while the lock is released in between",
                        file=cls.filename, line=a.line,
                    ))
                    reported.add(a.attr)
                    break


def _check_lock_graph(
    classes: dict[str, _ClassInfo], findings: list[Diagnostic]
) -> None:
    """LOCK003: cycles in the inter-class lock-acquisition graph.

    Nodes are qualified locks (``Class.attr``); an edge A -> B means
    some method acquires B while holding A — directly (nested ``with``)
    or through a one-level ``self.<obj>.<meth>()`` call into another
    lock-owning class.
    """
    graph = nx.DiGraph()
    sites: dict[tuple[str, str], tuple[str, int]] = {}

    def add_edge(src: str, dst: str, filename: str, line: int) -> None:
        if src == dst:
            return  # same-lock re-entry is LOCK004's business
        graph.add_edge(src, dst)
        sites.setdefault((src, dst), (filename, line))

    for cls in classes.values():
        for m in cls.methods.values():
            # Nested own locks: with self.a: with self.b: -> a -> b.
            for src_attr, dst_attr, line in m.lock_edges:
                add_edge(
                    f"{cls.name}.{src_attr}", f"{cls.name}.{dst_attr}",
                    cls.filename, line,
                )
            for obj, callee, held, line in m.foreign_calls:
                if not held:
                    continue
                other = classes.get(cls.attr_classes.get(obj, ""))
                if other is None:
                    continue
                target = other.methods.get(callee)
                if target is None:
                    continue
                for dst_lock in sorted(target.acquires):
                    for src_lock in sorted(held):
                        add_edge(
                            f"{cls.name}.{src_lock}",
                            f"{other.name}.{dst_lock}",
                            cls.filename, line,
                        )
    for cycle in sorted(nx.simple_cycles(graph)):
        first = (cycle[0], cycle[1 % len(cycle)])
        filename, line = sites.get(first, ("", 0))
        findings.append(Diagnostic(
            "LOCK003", Severity.ERROR,
            "lock-order cycle: " + " -> ".join(cycle + [cycle[0]]) +
            " — two threads taking these locks in opposite order "
            "deadlock; impose one global acquisition order",
            file=filename or None, line=line or None,
        ))


def _suppressions(source: str) -> dict[int, set[str] | None]:
    """Per-line suppression map: ``None`` means all rules ignored."""
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = match.group(1)
            if rules is None:
                out[lineno] = None
            else:
                out[lineno] = {
                    r.strip() for r in rules.split(",") if r.strip()
                }
    return out


def _parse_file(
    source: str, filename: str, report: AnalysisReport
) -> tuple[dict[str, _ClassInfo], list[Diagnostic]]:
    """Collect classes + per-method findings for one source file;
    suppressions are applied here so multi-file callers compose."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError:
        return {}, []  # the lint layer reports parse failures (LINT000)
    findings: list[Diagnostic] = []
    classes: dict[str, _ClassInfo] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            cls = _collect_class(node, filename, findings)
            classes[cls.name] = cls
            _check_class_rules(cls, findings)
    suppressed = _suppressions(source)
    kept: list[Diagnostic] = []
    for finding in findings:
        rules = suppressed.get(finding.line, ...)
        if rules is None or (rules is not ... and finding.rule in rules):
            continue
        kept.append(finding)
    return classes, kept


def check_lock_source(
    source: str, filename: str = "<string>"
) -> AnalysisReport:
    """Analyze one source string (class rules + its local lock graph)."""
    report = AnalysisReport()
    classes, findings = _parse_file(source, filename, report)
    report.extend(findings)
    graph_findings: list[Diagnostic] = []
    _check_lock_graph(classes, graph_findings)
    suppressed = _suppressions(source)
    for finding in graph_findings:
        rules = suppressed.get(finding.line, ...)
        if rules is None or (rules is not ... and finding.rule in rules):
            continue
        report.add(finding)
    return report


def _iter_python_files(paths: list[str | Path]):
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if any(
                    part.startswith(".") or part == "__pycache__"
                    for part in f.parts
                ):
                    continue
                yield f
        elif p.suffix == ".py":
            yield p


def check_lock_paths(paths: list[str | Path]) -> AnalysisReport:
    """Analyze every ``*.py`` file under the given files/directories.

    Class rules run per file; the lock-acquisition graph is built over
    *all* files together, so an A->B edge in one module and a B->A edge
    in another still close a LOCK003 cycle.
    """
    report = AnalysisReport()
    all_classes: dict[str, _ClassInfo] = {}
    for f in _iter_python_files(paths):
        source = f.read_text(encoding="utf-8")
        classes, findings = _parse_file(source, str(f), report)
        report.extend(findings)
        all_classes.update(classes)
    graph_findings: list[Diagnostic] = []
    _check_lock_graph(all_classes, graph_findings)
    report.extend(graph_findings)
    return report


def check_lock_discipline(
    paths: list[str | Path] | None = None,
) -> AnalysisReport:
    """Analyze the repository's own package (the CLI entry point).

    ``paths`` overrides the default target — the installed ``repro``
    package directory — which is what CI verifies.
    """
    if not paths:
        paths = [Path(__file__).resolve().parent.parent]
    return check_lock_paths(paths)
