"""Static verification of task streams and dependence DAGs.

The PaRSEC-style runtime is only correct if the DAG it executes orders
every access: each tile read must see the value of its producing write
under *any* scheduler, which is a property of the graph, not of one
schedule.  These rules detect the hazards statically:

========  ========  =====================================================
rule      severity  invariant
========  ========  =====================================================
DAG001    error     every tile read was produced by an earlier task or
                    belongs to the initial data (the generated matrix)
DAG002    error     two writers of one tile are connected by a directed
                    path (no WAW race under reordering)
DAG003    error     every reader of a tile is ordered with respect to
                    every writer of that tile (no RAW/WAR race)
DAG004    error     task uids are unique in the stream
DAG005    error     the dependence graph is acyclic
DAG006    error     every DAG node carries its task object
========  ========  =====================================================

``DAG002``/``DAG003`` are the properties a *dropped edge* violates: the
sequential reference order hides the race, but a work-stealing scheduler
is free to run the unordered pair in either order.  Reachability is
computed once per graph with ancestor bitsets (topological sweep), so
verification stays cheap even for the full Cholesky DAG.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx

from ..runtime.dag import build_dag
from ..runtime.task import Task
from ..tile.layout import TileLayout
from .diagnostics import AnalysisReport, Diagnostic, Severity

__all__ = ["check_task_stream", "check_dag", "check_taskgraph", "DAG_RULES"]

#: Rule-id -> one-line description (the catalog rendered by the CLI).
DAG_RULES: dict[str, str] = {
    "DAG001": "tile read without a producing write or initial value",
    "DAG002": "two writers of one tile with no ordering path (WAW race)",
    "DAG003": "reader and writer of one tile unordered (RAW/WAR race)",
    "DAG004": "duplicate task uid in the stream",
    "DAG005": "dependence graph contains a cycle",
    "DAG006": "DAG node without an attached task object",
}


def _initial_tiles(
    initial_tiles: Iterable[tuple[int, int]] | None,
    layout: TileLayout | None,
) -> set[tuple[int, int]] | None:
    if initial_tiles is not None:
        return set(initial_tiles)
    if layout is not None:
        tiles = set(layout.lower_tiles())
        # RHS blocks of the solve streams are denoted (i, -1).
        tiles.update((i, -1) for i in range(layout.nt))
        return tiles
    return None


def check_task_stream(
    tasks: Sequence[Task],
    *,
    initial_tiles: Iterable[tuple[int, int]] | None = None,
    layout: TileLayout | None = None,
) -> AnalysisReport:
    """Verify the sequential task stream (DAG001, DAG004).

    ``initial_tiles`` names the data that exists before any task runs
    (for the Cholesky streams: every lower tile of the generated
    matrix).  Passing ``layout`` derives that set (lower triangle plus
    the RHS column of the solve streams); with neither given the
    read-before-write rule is skipped — there is no way to distinguish
    an initial tile from an undefined one.
    """
    report = AnalysisReport()
    initial = _initial_tiles(initial_tiles, layout)
    written: set[tuple[int, int]] = set()
    seen_uids: set[int] = set()
    for task in tasks:
        if task.uid in seen_uids:
            report.add(Diagnostic(
                "DAG004", Severity.ERROR,
                f"duplicate task uid in stream ({task.op})",
                task=task.uid,
            ))
        seen_uids.add(task.uid)
        if initial is not None:
            # The output tile is read-modify-write: it is a read too.
            for tile in task.tiles:
                if tile not in written and tile not in initial:
                    report.add(Diagnostic(
                        "DAG001", Severity.ERROR,
                        f"{task.op} reads tile ({tile[0]},{tile[1]}) "
                        "which no prior task produced and which is not "
                        "part of the initial data",
                        task=task.uid,
                    ))
        written.add(task.output)
    return report


def _ancestor_bitsets(dag: nx.DiGraph, order: list) -> dict:
    """Ancestor set of every node as an int bitset over topological
    positions — one sweep, O(V * E / wordsize)."""
    pos = {uid: k for k, uid in enumerate(order)}
    anc: dict = {}
    for uid in order:
        bits = 0
        for pred in dag.predecessors(uid):
            bits |= anc[pred] | (1 << pos[pred])
        anc[uid] = bits
    return anc


def check_dag(dag: nx.DiGraph) -> AnalysisReport:
    """Verify ordering completeness of a dependence DAG (DAG002,
    DAG003, DAG005, DAG006).

    Nodes must carry their :class:`~repro.runtime.task.Task` under the
    ``"task"`` attribute (as :func:`~repro.runtime.dag.build_dag`
    produces).  A graph that drops an edge of the dataflow analysis —
    e.g. by a buggy scheduler transformation — leaves a writer/reader
    pair unordered, which these rules surface as the exact race.
    """
    report = AnalysisReport()
    missing = [uid for uid in dag.nodes if "task" not in dag.nodes[uid]]
    for uid in sorted(missing, key=repr):
        report.add(Diagnostic(
            "DAG006", Severity.ERROR,
            "DAG node carries no task object; dependence analysis "
            "cannot verify its accesses",
            task=uid if isinstance(uid, int) else None,
        ))
    if missing:
        return report

    if not nx.is_directed_acyclic_graph(dag):
        cycle = nx.find_cycle(dag)
        report.add(Diagnostic(
            "DAG005", Severity.ERROR,
            f"dependence graph contains a cycle through "
            f"{len(cycle)} edge(s) starting at task {cycle[0][0]}",
            task=cycle[0][0] if isinstance(cycle[0][0], int) else None,
        ))
        return report

    order = list(nx.topological_sort(dag))
    pos = {uid: k for k, uid in enumerate(order)}
    anc = _ancestor_bitsets(dag, order)

    def ordered(u, v) -> bool:
        return bool(anc[v] >> pos[u] & 1) or bool(anc[u] >> pos[v] & 1)

    writers: dict[tuple[int, int], list] = {}
    readers: dict[tuple[int, int], list] = {}
    for uid in order:
        task = dag.nodes[uid]["task"]
        writers.setdefault(task.output, []).append(uid)
        for tile in task.inputs:
            readers.setdefault(tile, []).append(uid)

    for tile, ws in sorted(writers.items()):
        for a_idx in range(len(ws)):
            for b_idx in range(a_idx + 1, len(ws)):
                u, v = ws[a_idx], ws[b_idx]
                if not ordered(u, v):
                    report.add(Diagnostic(
                        "DAG002", Severity.ERROR,
                        f"tasks {u} and {v} both write tile "
                        f"({tile[0]},{tile[1]}) with no ordering path "
                        "between them: WAW race under reordering",
                        task=v,
                        tile=tile,
                    ))
        for r in readers.get(tile, ()):
            for w in ws:
                if r != w and not ordered(r, w):
                    report.add(Diagnostic(
                        "DAG003", Severity.ERROR,
                        f"task {r} reads tile ({tile[0]},{tile[1]}) "
                        f"unordered with writer task {w}: RAW/WAR race "
                        "under reordering",
                        task=r,
                        tile=tile,
                    ))
    return report


def check_taskgraph(
    tasks: Sequence[Task],
    dag: nx.DiGraph | None = None,
    *,
    initial_tiles: Iterable[tuple[int, int]] | None = None,
    layout: TileLayout | None = None,
) -> AnalysisReport:
    """Full static verification of a task stream plus its DAG.

    With ``dag=None`` the reference dependence analysis builds it — in
    that case DAG002/DAG003 verify the analysis itself; passing an
    externally transformed graph verifies *that* graph against the
    stream's accesses.
    """
    tasks = list(tasks)
    report = check_task_stream(
        tasks, initial_tiles=initial_tiles, layout=layout
    )
    # A stream with duplicate uids cannot be mapped onto a DAG.
    if any(d.rule == "DAG004" for d in report):
        return report
    if dag is None:
        dag = build_dag(tasks)
    report.extend(check_dag(dag))
    return report
