"""Golden resilience checks: the hardening layer must actually harden.

``python -m repro analyze --resilience`` (and the CI chaos job) runs
four executable invariants against a small deterministic problem:

* **RES001** — a seeded chaos configuration must inject the identical
  fault schedule on two runs (values and retry tallies bit-equal);
* **RES002** — with every hook disabled (``resilience=None`` and an
  all-``None`` / zero-rate config) the likelihood must be bit-identical
  to the plain path: resilience is zero-overhead *and* zero-effect
  when off;
* **RES003** — under heavy injected FP16-overflow corruption the
  fit-level degradation ladder must complete with a finite
  loglikelihood on a safer variant, recording the downgrade;
* **RES004** — an expired serving deadline must surface as
  :class:`~repro.exceptions.DeadlineExceededError` with the worker
  pool drained (no leaked threads) and no partial result handed back.

Unlike the static verifiers these checks *execute* the real engines
(the golden serving check set the precedent) — chaos claims cannot be
proven from source text.
"""

from __future__ import annotations

import threading

import numpy as np

from ..config import DEFAULT_SEED
from ..core.mle import fit_mle
from ..core.likelihood import loglikelihood
from ..core.serving import PredictionEngine
from ..core.variants import MP_DENSE
from ..exceptions import DeadlineExceededError
from ..kernels import MaternKernel
from ..resilience import (
    ChaosConfig,
    ChaosInjector,
    DegradationPolicy,
    ResilienceConfig,
    RetryPolicy,
)
from .diagnostics import AnalysisReport, Diagnostic, Severity

__all__ = ["RES_RULES", "check_golden_resilience"]

#: Resilience rules enforced by :func:`check_golden_resilience`.
RES_RULES: dict[str, str] = {
    "RES001": "seeded chaos schedule is not reproducible (two runs of "
              "one configuration disagreed on values or fault tallies)",
    "RES002": "disabled resilience hooks changed results (the inert "
              "path must be bit-identical to the plain path)",
    "RES003": "degradation ladder failed to recover a finite "
              "loglikelihood under injected FP16 overflow",
    "RES004": "deadline expiry leaked worker threads or returned a "
              "partial result",
}

_TILE = 16
_THETA = (1.0, 0.1, 0.5)
_NUGGET = 1.0e-8

#: Retry tuned for checks: no real sleeping, deterministic.
_FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, max_delay_s=0.0)


def _golden_problem(nt: int = 4):
    gen = np.random.default_rng(DEFAULT_SEED)
    n = nt * _TILE
    x = gen.uniform(size=(n, 2))
    z = gen.standard_normal(n)
    return MaternKernel(), np.asarray(_THETA), x, z


def _check_chaos_reproducible(report: AnalysisReport) -> None:
    kernel, theta, x, z = _golden_problem()
    chaos = ChaosConfig(seed=DEFAULT_SEED, tile_nan_rate=0.10)

    def one_run():
        injector = ChaosInjector(chaos)
        cfg = ResilienceConfig(retry=_FAST_RETRY, chaos=injector)
        result = loglikelihood(
            kernel, theta, x, z, tile_size=_TILE,
            variant="mp-dense-tlr-recover", nugget=_NUGGET, resilience=cfg,
        )
        return result.value, result.stats.retries, injector.stats.events

    first, second = one_run(), one_run()
    if first != second:
        report.add(Diagnostic(
            "RES001", Severity.ERROR,
            f"two seeded chaos runs disagree: (value, retries, events) "
            f"{first} != {second}",
        ))
    elif first[2] == 0:
        report.add(Diagnostic(
            "RES001", Severity.WARNING,
            "chaos at 10% tile-NaN injected zero events — the check "
            "exercised nothing",
        ))


def _check_inert_hooks(report: AnalysisReport) -> None:
    kernel, theta, x, z = _golden_problem()

    def value(resilience):
        return loglikelihood(
            kernel, theta, x, z, tile_size=_TILE, variant="mp-dense-tlr",
            nugget=_NUGGET, resilience=resilience,
        ).value

    plain = value(None)
    inert_configs = {
        "all-None config": ResilienceConfig(),
        "zero-rate chaos": ResilienceConfig(chaos=ChaosConfig()),
        "degradation only": ResilienceConfig(
            degradation=DegradationPolicy()
        ),
    }
    for label, cfg in inert_configs.items():
        got = value(cfg)
        if got != plain:
            report.add(Diagnostic(
                "RES002", Severity.ERROR,
                f"{label} changed the loglikelihood: {got!r} != {plain!r}",
            ))


def _check_degradation_ladder(report: AnalysisReport) -> None:
    kernel, theta, x, z = _golden_problem()
    # Band-mode FP16 tiles are the overflow-corruption target; at rate
    # 1.0 every FP16-tile task fails every attempt, so only the FP64
    # downgrade (no FP16 storage anywhere) can finish the fit.
    fp16_variant = MP_DENSE.with_(
        name="mp-band-fp16", mp_mode="band", mp_fp64_band=1, mp_fp32_band=2,
    )
    cfg = ResilienceConfig(
        retry=_FAST_RETRY,
        degradation=DegradationPolicy(max_failure_fraction=0.5),
        chaos=ChaosConfig(seed=DEFAULT_SEED, tile_overflow_rate=1.0),
    )
    result = fit_mle(
        kernel, x, z, tile_size=_TILE, variant=fp16_variant,
        theta0=theta, max_iter=3, nugget=_NUGGET, resilience=cfg,
    )
    if not np.isfinite(result.loglik):
        report.add(Diagnostic(
            "RES003", Severity.ERROR,
            f"fit ended non-finite ({result.loglik}) on variant "
            f"{result.variant!r} despite the degradation ladder",
        ))
    deg = result.degradation
    if deg is None or not deg.actions:
        report.add(Diagnostic(
            "RES003", Severity.ERROR,
            "total FP16 overflow corruption triggered no recorded "
            "downgrade (expected at least one ladder step)",
        ))
    elif result.variant == fp16_variant.name:
        report.add(Diagnostic(
            "RES003", Severity.ERROR,
            f"fit reports the corrupted variant {result.variant!r} as "
            f"final despite downgrades {deg.variant_path}",
        ))


def _check_deadline_drain(report: AnalysisReport) -> None:
    kernel, theta, x, z = _golden_problem()
    factor = loglikelihood(
        kernel, theta, x, z, tile_size=_TILE, variant="dense-fp64",
        nugget=_NUGGET,
    ).factor
    engine = PredictionEngine(
        kernel, theta, x, z, factor, batch=8, workers=4,
    )
    gen = np.random.default_rng(DEFAULT_SEED + 1)
    x_test = gen.uniform(size=(64, 2))
    before = threading.active_count()
    raised = False
    try:
        engine.predict(x_test, return_uncertainty=True, deadline_s=0.0)
    except DeadlineExceededError:
        raised = True
    if not raised:
        report.add(Diagnostic(
            "RES004", Severity.ERROR,
            "predict with an already-expired deadline returned a result "
            "instead of raising DeadlineExceededError",
        ))
    after = threading.active_count()
    if after > before:
        report.add(Diagnostic(
            "RES004", Severity.ERROR,
            f"deadline'd predict leaked threads: {before} alive before, "
            f"{after} after the pool should have drained",
        ))
    if engine.stats().predict_calls != 0:
        report.add(Diagnostic(
            "RES004", Severity.ERROR,
            "a deadline'd predict was counted as a completed call — "
            "partial results must be discarded, not served",
        ))


def check_golden_resilience() -> AnalysisReport:
    """Run the four golden resilience invariants (rules in
    :data:`RES_RULES`) and narrate coverage with one INFO finding."""
    report = AnalysisReport()
    _check_chaos_reproducible(report)
    _check_inert_hooks(report)
    _check_degradation_ladder(report)
    _check_deadline_drain(report)
    status = "clean" if report.ok else f"{len(report.errors)} error(s)"
    report.add(Diagnostic(
        "GOLDEN", Severity.INFO,
        f"resilience invariants RES001-RES004: {status} "
        f"({len(report)} finding(s))",
    ))
    return report
