"""Dynamic concurrency sanitizer: lockset + happens-before checking.

The static side (:mod:`repro.analysis.lockcheck`) proves what the AST
can see; this module watches the *real threaded engines run*.  It is an
opt-in, Eraser-style checker with a vector-clock happens-before core:

* every sanitized lock tracks acquire/release edges — a release
  publishes the holder's vector clock, an acquire joins it, so two
  accesses serialized by any common lock are ordered;
* thread-pool ``submit``/``result`` are instrumented as fork/join
  edges, so the DAG executor's dependence discipline (task completion
  is published under the dispatch condition before a successor is
  released) shows up as genuine happens-before ordering;
* every *shared access* — tile reads/writes through
  :class:`~repro.tile.matrix.TileMatrix`, the serving engine's
  cross-covariance LRU, the geometry cache, the circuit-breaker and
  serving counters — is checked against the variable's access history.

A shared **write** unordered (by locks or dependence edges) with a
prior access is a race; both sides are reported:

========  ========  =====================================================
rule      severity  finding
========  ========  =====================================================
RACE001   error     two writes to one shared variable with no ordering
                    (no common lock, no happens-before path)
RACE002   error     a read and a write to one shared variable with no
                    ordering
RACE003   warning   multi-thread variable whose lockset intersection is
                    empty — every access was *ordered*, but only by
                    happens-before, not by any consistent lock (the
                    Eraser discipline violation; suppressed for
                    dependence-ordered variables such as tiles)
RACE004   warning   lock-order inversion observed at runtime (lock B
                    acquired under A somewhere, A under B elsewhere)
RACE005   error     a thread blocked on a non-reentrant sanitized lock
                    it already holds (the sanitizer raises
                    :class:`~repro.exceptions.DeadlockDetectedError`
                    instead of hanging)
========  ========  =====================================================

Instrumentation is installed by :func:`enable_sanitizer` as
monkeypatches (``TileMatrix.get/set``, the cache/engine/breaker
constructors and ``__setattr__``, ``ThreadPoolExecutor.submit`` /
``Future.result``, the DAG executor's lock seam) and fully removed by
:func:`disable_sanitizer` — with the sanitizer off the only residue in
the production code is the one-call ``_make_lock`` indirection, so the
uninstrumented paths are bit-identical to the plain tree (pinned by
``tests/test_analysis_sanitize.py`` and the overhead benchmark).

``python -m repro analyze --concurrency --sanitize-run`` drives a
small threaded fit plus batched serving under chaos injection through
the sanitizer (:func:`run_sanitized_workload`) and reports findings
like every other analyzer.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from ..exceptions import DeadlockDetectedError
from .diagnostics import AnalysisReport, Diagnostic, Severity

__all__ = [
    "RACE_RULES",
    "SanitizerState",
    "sanitized_lock",
    "sanitized_access",
    "enable_sanitizer",
    "disable_sanitizer",
    "sanitizer_active",
    "sanitizer_report",
    "run_sanitized_workload",
]

#: Rule-id -> one-line description (the catalog rendered by the CLI).
RACE_RULES: dict[str, str] = {
    "RACE001": "write-write race: no common lock, no happens-before",
    "RACE002": "read-write race: no common lock, no happens-before",
    "RACE003": "shared variable ordered only by happens-before, "
               "never by a consistent lock",
    "RACE004": "lock-order inversion observed at runtime",
    "RACE005": "non-reentrant lock re-acquired by its holding thread",
}


# ----------------------------------------------------------------------
# core state
# ----------------------------------------------------------------------
#: OS thread idents are recycled — a thread started after another died
#: can report the same ``threading.get_ident()`` and would silently
#: inherit the dead thread's vector clock (masking races).  The
#: sanitizer therefore keys everything on its own never-reused ids,
#: handed out once per thread via thread-local storage.
_TLS = threading.local()
_NEXT_TID = itertools.count(1)


def _current_tid() -> int:
    tid = getattr(_TLS, "tid", None)
    if tid is None:
        tid = next(_NEXT_TID)
        _TLS.tid = tid
    return tid


@dataclass
class _Access:
    """One recorded access epoch: ``(thread, its clock component)``."""

    tid: int
    clk: int
    locks: frozenset[int]
    site: str


@dataclass
class _VarState:
    """Per-variable detector state (FastTrack-style epochs)."""

    label: str
    first_tid: int
    exclusive: bool = True
    multi_thread: bool = False
    expect_lock: bool = True
    lockset: frozenset[int] | None = None
    last_write: _Access | None = None
    #: Latest read per thread since the last write (same-thread program
    #: order makes the latest read dominate the earlier ones).
    reads: dict[int, _Access] = field(default_factory=dict)


@dataclass
class SanitizerStats:
    """Coverage telemetry of one sanitized run."""

    events: int = 0
    variables: int = 0
    locks: int = 0
    threads: int = 0
    forks: int = 0


class SanitizerState:
    """Global detector: vector clocks, locksets, variable histories.

    All bookkeeping happens under one internal (unsanitized) mutex;
    methods never block on a sanitized lock while holding it, so the
    sanitizer cannot introduce deadlocks of its own.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        #: tid -> short display alias ("T1", "T2", ...) in first-seen
        #: order, so findings don't leak raw thread idents.
        self._tid_names: dict[int, str] = {}
        #: tid -> vector clock (tid -> counter).
        self._clocks: dict[int, dict[int, int]] = {}
        #: tid -> set of held sanitized-lock ids.
        self._held: dict[int, set[int]] = {}
        #: lock id -> clock published by its last release.
        self._lock_clocks: dict[int, dict[int, int]] = {}
        #: lock id -> display label.
        self._lock_labels: dict[int, str] = {}
        #: observed acquisition orders: (a, b) -> site (a held, b taken).
        self._orders: dict[tuple[int, int], str] = {}
        self._vars: dict[object, _VarState] = {}
        self._findings: dict[tuple[str, str], Diagnostic] = {}
        self.stats = SanitizerStats()

    # -- clock helpers (call with mutex held) ---------------------------
    def _clock(self, tid: int) -> dict[int, int]:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = {tid: 1}
            self._clocks[tid] = clock
            self._tid_names[tid] = f"T{len(self._tid_names) + 1}"
            self.stats.threads += 1
        return clock

    def _tname(self, tid: int) -> str:
        return self._tid_names.get(tid, f"T?{tid}")

    @staticmethod
    def _join(into: dict[int, int], other: dict[int, int]) -> None:
        for tid, clk in other.items():
            if clk > into.get(tid, 0):
                into[tid] = clk

    def _report(
        self, rule: str, severity: Severity, key: str, message: str
    ) -> None:
        dedup = (rule, key)
        if dedup not in self._findings:
            self._findings[dedup] = Diagnostic(rule, severity, message)

    # -- lock protocol --------------------------------------------------
    def before_acquire(self, lock: "sanitized_lock") -> None:
        """Order-graph and self-deadlock checks before blocking."""
        tid = _current_tid()
        with self._mutex:
            held = self._held.setdefault(tid, set())
            if id(lock) in held and not lock.reentrant:
                self._report(
                    "RACE005", Severity.ERROR, lock.name,
                    f"thread blocked re-acquiring non-reentrant lock "
                    f"{lock.name!r} it already holds — a guaranteed "
                    "deadlock, raised instead of hung",
                )
                raise DeadlockDetectedError(
                    f"re-acquisition of held non-reentrant lock "
                    f"{lock.name!r}"
                )
            for other in held:
                if other == id(lock):
                    continue
                pair = (other, id(lock))
                inverse = (id(lock), other)
                self._orders.setdefault(pair, lock.name)
                if inverse in self._orders:
                    a = self._lock_labels.get(other, "?")
                    b = lock.name
                    key = "/".join(sorted((a, b)))
                    self._report(
                        "RACE004", Severity.WARNING, key,
                        f"lock-order inversion: {b!r} taken while "
                        f"holding {a!r}, and {a!r} taken while holding "
                        f"{b!r} elsewhere — opposite orders deadlock "
                        "under contention",
                    )

    def on_acquired(self, lock: "sanitized_lock") -> None:
        tid = _current_tid()
        with self._mutex:
            if id(lock) not in self._lock_labels:
                self._lock_labels[id(lock)] = lock.name
                self.stats.locks += 1
            self._held.setdefault(tid, set()).add(id(lock))
            published = self._lock_clocks.get(id(lock))
            if published is not None:
                self._join(self._clock(tid), published)

    def on_release(self, lock: "sanitized_lock") -> None:
        tid = _current_tid()
        with self._mutex:
            clock = self._clock(tid)
            self._lock_clocks[id(lock)] = dict(clock)
            clock[tid] = clock.get(tid, 0) + 1
            self._held.get(tid, set()).discard(id(lock))

    # -- fork/join edges ------------------------------------------------
    def fork_snapshot(self) -> dict[int, int]:
        """Publish the current thread's clock (e.g. at ``submit``)."""
        tid = _current_tid()
        with self._mutex:
            clock = self._clock(tid)
            snap = dict(clock)
            clock[tid] = clock.get(tid, 0) + 1
            self.stats.forks += 1
            return snap

    def join_clock(self, snap: dict[int, int] | None) -> None:
        """Join a published clock into the current thread's."""
        if snap is None:
            return
        tid = _current_tid()
        with self._mutex:
            self._join(self._clock(tid), snap)

    # -- access checking ------------------------------------------------
    def record_access(
        self,
        key: object,
        label: str,
        *,
        write: bool,
        site: str = "",
        expect_lock: bool = True,
    ) -> None:
        tid = _current_tid()
        with self._mutex:
            self.stats.events += 1
            clock = self._clock(tid)
            locks = frozenset(self._held.get(tid, ()))
            access = _Access(tid, clock.get(tid, 0), locks, site or label)
            var = self._vars.get(key)
            if var is None:
                self._vars[key] = var = _VarState(
                    label=label, first_tid=tid, expect_lock=expect_lock,
                )
                self.stats.variables += 1

            def ordered(prior: _Access) -> bool:
                return (
                    prior.tid == tid
                    or prior.clk <= clock.get(prior.tid, 0)
                )

            w = var.last_write
            if write:
                if w is not None and not ordered(w):
                    self._report(
                        "RACE001", Severity.ERROR, var.label,
                        f"unordered concurrent writes to {var.label}: "
                        f"{w.site} ({self._tname(w.tid)}) and "
                        f"{access.site} ({self._tname(tid)}) "
                        "share no lock and no "
                        "happens-before path",
                    )
                for r in var.reads.values():
                    if not ordered(r):
                        self._report(
                            "RACE002", Severity.ERROR, var.label,
                            f"write to {var.label} at {access.site} "
                            f"({self._tname(tid)}) races the unordered "
                            f"read at {r.site} ({self._tname(r.tid)})",
                        )
                var.last_write = access
                var.reads.clear()
            else:
                if w is not None and not ordered(w):
                    self._report(
                        "RACE002", Severity.ERROR, var.label,
                        f"read of {var.label} at {access.site} "
                        f"({self._tname(tid)}) races the unordered "
                        f"write at {w.site} ({self._tname(w.tid)})",
                    )
                var.reads[tid] = access

            # Eraser lockset discipline (initialization phase exempt).
            if var.exclusive and tid == var.first_tid:
                return
            if var.exclusive:
                var.exclusive = False
                var.lockset = locks
            else:
                assert var.lockset is not None
                var.lockset = var.lockset & locks
            var.multi_thread = var.multi_thread or tid != var.first_tid
            if (
                var.expect_lock
                and var.multi_thread
                and not var.lockset
            ):
                self._report(
                    "RACE003", Severity.WARNING, var.label,
                    f"{var.label} is accessed from multiple threads "
                    "with no consistent lock: every access so far was "
                    "ordered by happens-before alone, which one "
                    "scheduling change can break",
                )

    # -- reporting ------------------------------------------------------
    def report(self) -> AnalysisReport:
        """Findings so far, deterministically ordered."""
        out = AnalysisReport()
        for diagnostic in sorted(
            self._findings.values(), key=lambda d: (d.rule, d.message)
        ):
            out.add(diagnostic)
        return out


# ----------------------------------------------------------------------
# the lock shim
# ----------------------------------------------------------------------
class sanitized_lock:
    """Drop-in ``threading.Lock`` wrapper feeding the sanitizer.

    Supports the full lock protocol (``with``, ``acquire(blocking,
    timeout)``, ``release``) and works as the backing lock of a
    ``threading.Condition`` — condition waits release and re-acquire
    through this wrapper, so waiter wakeups carry clock edges too.
    When no sanitizer is active the wrapper degrades to two attribute
    loads per operation.
    """

    __slots__ = ("_lock", "name", "reentrant")

    def __init__(self, lock=None, *, name: str = "lock"):
        self.reentrant = isinstance(
            lock, type(threading.RLock())
        )
        self._lock = lock if lock is not None else threading.Lock()
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1):
        state = _STATE
        if state is not None and blocking:
            state.before_acquire(self)
        ok = self._lock.acquire(blocking, timeout)
        if ok and state is not None:
            state.on_acquired(self)
        return ok

    def release(self) -> None:
        state = _STATE
        if state is not None:
            state.on_release(self)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"sanitized_lock({self.name!r})"


def sanitized_access(
    key: object,
    label: str,
    *,
    write: bool,
    site: str = "",
    expect_lock: bool = True,
) -> None:
    """Record one shared access (no-op when the sanitizer is off).

    ``key`` identifies the variable (include object ids for
    correctness); ``label`` is the stable human name used in findings
    and dedup.  ``expect_lock=False`` exempts the variable from the
    RACE003 lockset discipline — for state ordered by task dependence
    rather than locks (the DAG executor's tiles).
    """
    state = _STATE
    if state is not None:
        state.record_access(
            key, label, write=write, site=site, expect_lock=expect_lock,
        )


# ----------------------------------------------------------------------
# instrumentation (monkeypatch install / uninstall)
# ----------------------------------------------------------------------
_STATE: SanitizerState | None = None
_PATCHES: list[tuple[object, str, object]] = []
_INSTALL_LOCK = threading.Lock()


class _WatchedDict(OrderedDict):
    """OrderedDict reporting its operations as accesses of one shared
    variable (the cache-as-a-whole granularity the engines reason at)."""

    def __init__(self, key: object, label: str, initial=()):
        self._san_key = key
        self._san_label = label
        super().__init__(initial)

    def _san(self, write: bool, op: str) -> None:
        sanitized_access(
            self._san_key, self._san_label,
            write=write, site=f"{self._san_label}.{op}",
        )

    def __getitem__(self, key):
        self._san(False, "getitem")
        return super().__getitem__(key)

    def get(self, key, default=None):
        self._san(False, "get")
        return super().get(key, default)

    def __contains__(self, key):
        self._san(False, "contains")
        return super().__contains__(key)

    def __setitem__(self, key, value):
        self._san(True, "setitem")
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._san(True, "delitem")
        super().__delitem__(key)

    def pop(self, *args):
        self._san(True, "pop")
        return super().pop(*args)

    def popitem(self, last=True):
        self._san(True, "popitem")
        return super().popitem(last)

    def clear(self):
        self._san(True, "clear")
        super().clear()

    def move_to_end(self, key, last=True):
        self._san(True, "move_to_end")
        super().move_to_end(key, last)


def _patch(owner: object, attr: str, replacement) -> None:
    _PATCHES.append((owner, attr, getattr(owner, attr)))
    setattr(owner, attr, replacement)


def _wrap_setattr(cls, watched: set[str], label: str) -> None:
    original = cls.__setattr__

    def instrumented(self, name, value):
        if name in watched:
            sanitized_access(
                (id(self), name), f"{label}.{name}",
                write=True, site=f"{label}.{name}",
            )
        original(self, name, value)

    _patch(cls, "__setattr__", instrumented)


def _install_patches() -> None:
    from concurrent.futures import Future, ThreadPoolExecutor

    from ..core.serving import PredictionEngine
    from ..obs import tracer as obs_tracer
    from ..resilience.health import CircuitBreaker
    from ..runtime import parallel
    from ..tile import batch as tile_batch
    from ..tile.geometry import GeometryCache
    from ..tile.matrix import TileMatrix

    # --- the DAG executor's dispatch lock ------------------------------
    _patch(
        parallel, "_make_lock",
        lambda: sanitized_lock(name="parallel.dispatch"),
    )

    # --- the batched dispatcher's scratch-pool free lists --------------
    _patch(
        tile_batch, "_make_lock",
        lambda: sanitized_lock(name="batch.scratch"),
    )

    # --- the telemetry tracer's span/event buffers ---------------------
    _patch(
        obs_tracer, "_make_lock",
        lambda: sanitized_lock(name="obs.tracer"),
    )

    # --- tile accesses (dependence-ordered: RACE003 exempt) ------------
    original_get = TileMatrix.get
    original_set = TileMatrix.set

    def instrumented_get(self, i, j):
        sanitized_access(
            ("tile", id(self), i, j), f"tile({i},{j})",
            write=False, site=f"TileMatrix.get({i},{j})",
            expect_lock=False,
        )
        return original_get(self, i, j)

    def instrumented_set(self, i, j, tile):
        sanitized_access(
            ("tile", id(self), i, j), f"tile({i},{j})",
            write=True, site=f"TileMatrix.set({i},{j})",
            expect_lock=False,
        )
        return original_set(self, i, j, tile)

    _patch(TileMatrix, "get", instrumented_get)
    _patch(TileMatrix, "set", instrumented_set)

    # --- geometry cache ------------------------------------------------
    original_geom_init = GeometryCache.__init__

    def geom_init(self, maxsize: int = 4):
        original_geom_init(self, maxsize)
        self._lock = sanitized_lock(name="GeometryCache._lock")
        self._tiled = _WatchedDict(
            (id(self), "_tiled"), "GeometryCache._tiled", self._tiled
        )
        self._pairs = _WatchedDict(
            (id(self), "_pairs"), "GeometryCache._pairs", self._pairs
        )

    _patch(GeometryCache, "__init__", geom_init)
    _wrap_setattr(GeometryCache, {"hits", "misses"}, "GeometryCache")

    # --- serving engine: cross LRU + amortization counters -------------
    original_engine_init = PredictionEngine.__init__

    def engine_init(self, *args, **kwargs):
        original_engine_init(self, *args, **kwargs)
        self._lock = sanitized_lock(name="PredictionEngine._lock")
        self._cross = _WatchedDict(
            (id(self), "_cross"), "PredictionEngine._cross", self._cross
        )

    _patch(PredictionEngine, "__init__", engine_init)
    _wrap_setattr(
        PredictionEngine,
        {
            "_cross_bytes", "_predict_calls", "_predictions", "_batches",
            "_cross_hits", "_cross_misses", "_clamped", "_failed_calls",
            "_batch_retries",
        },
        "PredictionEngine",
    )

    # --- circuit breaker (the HealthReport source state) ---------------
    original_breaker_init = CircuitBreaker.__init__

    def breaker_init(self, threshold: int = 3, on_trip=None):
        original_breaker_init(self, threshold, on_trip)
        self._lock = sanitized_lock(name="CircuitBreaker._lock")

    _patch(CircuitBreaker, "__init__", breaker_init)
    _wrap_setattr(
        CircuitBreaker, {"_consecutive", "_trips", "_open"},
        "CircuitBreaker",
    )

    # --- thread-pool fork/join edges -----------------------------------
    original_submit = ThreadPoolExecutor.submit
    original_result = Future.result
    original_shutdown = ThreadPoolExecutor.shutdown

    def instrumented_submit(self, fn, /, *args, **kwargs):
        state = _STATE
        if state is None:
            return original_submit(self, fn, *args, **kwargs)
        snap = state.fork_snapshot()
        holder: dict[str, dict[int, int]] = {}

        def run(*a, **k):
            st = _STATE
            if st is not None:
                st.join_clock(snap)
            try:
                return fn(*a, **k)
            finally:
                if st is not None:
                    holder["end"] = st.fork_snapshot()

        future = original_submit(self, run, *args, **kwargs)
        future._san_end = holder  # type: ignore[attr-defined]
        self.__dict__.setdefault("_san_futures", []).append(future)
        return future

    def instrumented_result(self, timeout=None):
        try:
            return original_result(self, timeout)
        finally:
            state = _STATE
            holder = getattr(self, "_san_end", None)
            if state is not None and holder is not None:
                state.join_clock(holder.get("end"))

    def instrumented_shutdown(self, wait=True, **kwargs):
        original_shutdown(self, wait=wait, **kwargs)
        state = _STATE
        if state is not None and wait:
            # Err on the safe side for futures whose result() was never
            # consumed (error paths): the pool join ordered them.
            for future in self.__dict__.get("_san_futures", ()):
                holder = getattr(future, "_san_end", None)
                if holder is not None:
                    state.join_clock(holder.get("end"))

    _patch(ThreadPoolExecutor, "submit", instrumented_submit)
    _patch(Future, "result", instrumented_result)
    _patch(ThreadPoolExecutor, "shutdown", instrumented_shutdown)


def enable_sanitizer() -> SanitizerState:
    """Install the instrumentation and start recording.

    Returns the live :class:`SanitizerState`; call
    :func:`disable_sanitizer` (always, e.g. in a ``finally:``) to
    restore every patched seam.
    """
    global _STATE
    with _INSTALL_LOCK:
        if _STATE is not None:
            raise RuntimeError("sanitizer already enabled")
        _install_patches()
        _STATE = SanitizerState()
        return _STATE


def disable_sanitizer() -> None:
    """Remove every monkeypatch and stop recording (idempotent)."""
    global _STATE
    with _INSTALL_LOCK:
        _STATE = None
        while _PATCHES:
            owner, attr, original = _PATCHES.pop()
            setattr(owner, attr, original)


def sanitizer_active() -> bool:
    return _STATE is not None


def sanitizer_report() -> AnalysisReport:
    """Findings of the currently enabled sanitizer (empty when off)."""
    state = _STATE
    return AnalysisReport() if state is None else state.report()


# ----------------------------------------------------------------------
# the --sanitize-run workload
# ----------------------------------------------------------------------
def run_sanitized_workload(
    *, seed: int | None = None, workers: int = 4, nt: int = 4,
    tile: int = 16,
) -> AnalysisReport:
    """Drive a threaded fit + batched serving under chaos with the
    sanitizer enabled; returns the findings plus one INFO coverage
    line.

    The workload exercises every instrumented seam: the DAG executor
    (``workers`` threads, 5% seeded tile-NaN chaos absorbed by
    retries), the serving engine (parallel batches, a repeated batch
    for the LRU-hit path, 20% batch chaos under retry), the geometry
    cache, a breaker trip (three consecutive hard failures →
    cross-LRU clear), and the batched homogeneous-group dispatcher
    (``clamp=False`` so its pool really is ``workers`` wide) with its
    shared :class:`~repro.tile.batch.ScratchPool`.  Chaos schedules
    are keyed on ``(seed, site, attempt)``, so the workload — and any
    finding it produces — is deterministic at a fixed seed.

    The fit and the serving calls run *traced* (a live
    :class:`~repro.obs.Telemetry` built after the sanitizer installed
    its seams), so the tracer's span/event buffers — appended to from
    every worker thread — are themselves under race detection.
    """
    import numpy as np

    from ..config import DEFAULT_SEED
    from ..core.likelihood import loglikelihood
    from ..core.serving import PredictionEngine
    from ..exceptions import ChaosError
    from ..kernels import MaternKernel
    from ..obs import Telemetry
    from ..resilience import ChaosConfig, ResilienceConfig, RetryPolicy
    from ..tile.geometry import GeometryCache

    seed = DEFAULT_SEED if seed is None else int(seed)
    kernel = MaternKernel()
    theta = np.array([1.0, 0.1, 0.5])
    gen = np.random.default_rng(seed)
    n = nt * tile
    x = gen.uniform(size=(n, 2))
    z = gen.standard_normal(n)
    x_test = gen.uniform(size=(6 * 8, 2))
    retry = RetryPolicy(max_attempts=3, base_delay_s=0.0, max_delay_s=0.0)

    state = enable_sanitizer()
    try:
        # Constructed after enable_sanitizer() so the tracer's buffer
        # lock is a sanitized lock: every worker-thread span append in
        # the traced workload below is a recorded, checkable access.
        telemetry = Telemetry()
        result = loglikelihood(
            kernel, theta, x, z, tile_size=tile,
            variant="mp-dense-tlr-recover", nugget=1.0e-8,
            workers=workers, cache=GeometryCache(),
            resilience=ResilienceConfig(
                retry=retry,
                chaos=ChaosConfig(seed=seed, tile_nan_rate=0.05),
            ),
            telemetry=telemetry,
        )
        engine = PredictionEngine(
            kernel, theta, x, z, result.factor,
            cache=GeometryCache(), batch=8, workers=workers,
            resilience=ResilienceConfig(
                retry=retry,
                chaos=ChaosConfig(seed=seed, batch_fail_rate=0.2),
            ),
            telemetry=telemetry,
        )
        engine.predict(x_test, return_uncertainty=True)
        engine.predict(x_test, return_uncertainty=True)  # LRU hits
        engine.score(x_test, np.zeros(len(x_test)))
        # Breaker trip: consecutive hard failures clear the cross LRU.
        hard = PredictionEngine(
            kernel, theta, x, z, result.factor, batch=8,
            resilience=ResilienceConfig(
                chaos=ChaosConfig(seed=seed, batch_fail_rate=1.0),
            ),
        )
        hard_failures = 0
        for _ in range(3):
            try:
                hard.predict(x_test)
            except ChaosError:
                hard_failures += 1
        assert hard_failures == 3, "breaker workload must fail 3x"
        # Batched dispatcher: real dispatch threads (clamp off so the
        # pool is genuinely concurrent even on few-core hosts) sharing
        # one ScratchPool — exercises the pool's free-list lock and the
        # per-tile fallback's stats lock.
        from ..runtime.batchdispatch import execute_cholesky_batched
        from ..tile.assembly import build_planned_covariance
        from ..tile.batch import ScratchPool

        planned, assembly = build_planned_covariance(
            kernel, theta, x, tile, nugget=1.0e-8,
            use_mp=True, use_tlr=True, batch=True,
        )
        execute_cholesky_batched(
            planned, workers=workers, tile_tol=assembly.tile_tol,
            pool=ScratchPool(), clamp=False,
        )
        report = state.report()
        stats = state.stats
    finally:
        disable_sanitizer()
    report.add(Diagnostic(
        "SANITIZE", Severity.INFO,
        f"sanitized workload (seed {seed}, {workers} workers): "
        f"{stats.events} access event(s) over {stats.variables} "
        f"variable(s), {stats.locks} lock(s), {stats.threads} "
        f"thread(s), {stats.forks} fork/join edge(s); "
        f"{len(telemetry.tracer)} span(s) traced; "
        f"{len(report.errors)} race(s)",
    ))
    return report
