"""Numerical-hygiene AST linter for the repository's own sources.

Nine custom rules target the failure modes of numerical codes — the
bugs that surface as irreproducible benchmarks or NaNs at step 40 of an
optimization rather than as exceptions:

========  ========  =====================================================
rule      severity  pattern
========  ========  =====================================================
LINT001   error     unseeded RNG construction (``default_rng()``,
                    ``RandomState()``, ``random.Random()`` with no seed)
LINT002   warning   ``==`` / ``!=`` against a float literal that is not
                    exactly representable in binary (e.g. ``x == 0.1``)
LINT003   error/    exception handler whose body is only ``pass``;
          warning   error for bare/broad handlers, warning for narrow
LINT004   error     mutable default argument (list/dict/set literal or
                    constructor call)
LINT005   warning   raw ``.astype(float16/float32)`` narrowing cast —
                    storage conversion should route through
                    ``repro.tile.precision.cast_storage``
LINT006   warning   SciPy linalg call (``cholesky``, ``solve_triangular``,
                    ``cho_factor``, ``cho_solve``; plain ``solve`` only on
                    a scipy.linalg-like module) without an explicit
                    ``check_finite=`` guard
LINT007   error     ``eval`` / ``exec``
LINT008   error     ``is`` / ``is not`` against a literal (identity of
                    ints/strs is an implementation detail)
LINT009   warning   a class that spawns ``ThreadPoolExecutor``s holds a
                    lock attribute outside the ``_lock`` naming
                    convention, so the lock-discipline analyzer
                    (:mod:`repro.analysis.lockcheck`) and the dynamic
                    sanitizer cannot recognize its guard role
========  ========  =====================================================

A finding on a given line is suppressed by a trailing
``# lint: ignore`` comment (all rules) or ``# lint: ignore[LINT005]``
(listed rules only).  ``LINT000`` reports files that cannot be parsed.

Run over the repository with ``python -m repro analyze --lint src/``.
"""

from __future__ import annotations

import ast
import re
from decimal import Decimal, InvalidOperation
from pathlib import Path

from .diagnostics import AnalysisReport, Diagnostic, Severity

__all__ = ["lint_source", "lint_file", "lint_paths", "LINT_RULES"]

#: Rule-id -> one-line description (the catalog rendered by the CLI).
LINT_RULES: dict[str, str] = {
    "LINT000": "source file cannot be parsed",
    "LINT001": "unseeded random-number-generator construction",
    "LINT002": "float equality against a non-representable literal",
    "LINT003": "exception handler silently swallows the exception",
    "LINT004": "mutable default argument",
    "LINT005": "raw narrowing astype; use repro.tile.precision.cast_storage",
    "LINT006": "linalg call without an explicit check_finite guard",
    "LINT007": "eval/exec",
    "LINT008": "identity comparison against a literal",
    "LINT009": "thread-spawning class holds a lock outside the _lock "
               "naming convention",
}

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")

_RNG_CONSTRUCTORS = {"default_rng", "RandomState"}
_LINALG_GUARDED = {
    "cholesky", "solve_triangular", "cho_factor", "cho_solve", "solve",
}
# The generic name ``solve`` is only a SciPy call when the receiver is
# a scipy.linalg-looking module; solver *objects* (e.g. PanelSolver)
# expose .solve() without a check_finite parameter.
_GENERIC_SOLVE_BASES = {"scipy", "linalg", "sla", "la"}
_NARROW_DTYPES = {"float16", "float32", "half", "single"}
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}
_LOCK_CONSTRUCTORS = {"Lock", "RLock", "Condition", "Semaphore",
                      "BoundedSemaphore"}
#: The naming convention the concurrency analyzers key on: a private
#: attribute whose name contains "lock" (``_lock``, ``_tile_lock``, ...).
_LOCK_NAME_RE = re.compile(r"_\w*lock\w*", re.IGNORECASE)


def _suppressions(source: str) -> dict[int, set[str] | None]:
    """Per-line suppression map: ``None`` means all rules ignored."""
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = match.group(1)
            if rules is None:
                out[lineno] = None
            else:
                out[lineno] = {r.strip() for r in rules.split(",") if r.strip()}
    return out


def _is_exact_float(value: float) -> bool:
    """True when the literal's decimal text round-trips exactly to its
    binary value (0.5, 1.0, ...), so ``==`` against it is deliberate."""
    try:
        return Decimal(repr(value)) == Decimal(value)
    except (InvalidOperation, ValueError, OverflowError):
        return True  # inf/nan: not a representability problem


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty for non-name chains)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _callee_name(func: ast.AST) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _names_narrow_dtype(node: ast.AST) -> bool:
    """True when an expression denotes a float16/float32 dtype."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.lower() in _NARROW_DTYPES
    chain = _attr_chain(node)
    return bool(chain) and chain[-1] in _NARROW_DTYPES


class _LintVisitor(ast.NodeVisitor):
    def __init__(self, filename: str):
        self.filename = filename
        self.findings: list[Diagnostic] = []

    def _report(
        self, rule: str, severity: Severity, message: str, node: ast.AST
    ) -> None:
        self.findings.append(Diagnostic(
            rule, severity, message,
            file=self.filename, line=getattr(node, "lineno", None),
        ))

    # --- LINT001 / LINT005 / LINT006 / LINT007 ------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _callee_name(node.func)
        chain = _attr_chain(node.func)
        if not node.args and not node.keywords:
            if name in _RNG_CONSTRUCTORS or (
                name == "Random" and chain[:1] == ["random"]
            ):
                self._report(
                    "LINT001", Severity.ERROR,
                    f"{name}() constructed without a seed: results are "
                    "irreproducible; pass an explicit seed",
                    node,
                )
        if (
            name == "astype"
            and node.args
            and _names_narrow_dtype(node.args[0])
            and not any(k.arg == "casting" for k in node.keywords)
        ):
            self._report(
                "LINT005", Severity.WARNING,
                "raw narrowing astype drops precision implicitly; route "
                "storage conversion through cast_storage/compute_dtype",
                node,
            )
        if (
            name in _LINALG_GUARDED
            and chain[:1] not in (["np"], ["numpy"])
            and isinstance(node.func, ast.Attribute)
            and (name != "solve" or (chain and chain[0] in _GENERIC_SOLVE_BASES))
            and not any(k.arg == "check_finite" for k in node.keywords)
        ):
            self._report(
                "LINT006", Severity.WARNING,
                f"{name}() without an explicit check_finite= guard: "
                "non-finite inputs propagate silently (or pay a hidden "
                "validation pass); state the intent",
                node,
            )
        if name in ("eval", "exec") and isinstance(node.func, ast.Name):
            self._report(
                "LINT007", Severity.ERROR,
                f"{name}() on dynamically built strings is unsafe and "
                "untypecheckable",
                node,
            )
        self.generic_visit(node)

    # --- LINT002 / LINT008 --------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        comparators = [node.left, *node.comparators]
        for op, lhs, rhs in zip(node.ops, comparators, comparators[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                for side in (lhs, rhs):
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, float)
                        and not _is_exact_float(side.value)
                    ):
                        self._report(
                            "LINT002", Severity.WARNING,
                            f"float equality against {side.value!r}, "
                            "which is not exactly representable in "
                            "binary; compare with a tolerance",
                            node,
                        )
                        break
            elif isinstance(op, (ast.Is, ast.IsNot)):
                for side in (lhs, rhs):
                    # None, True/False, and Ellipsis are singletons:
                    # identity against them is the correct idiom.
                    if isinstance(side, ast.Constant) \
                            and side.value is not None \
                            and side.value is not Ellipsis \
                            and not isinstance(side.value, bool):
                        self._report(
                            "LINT008", Severity.ERROR,
                            "identity comparison against a literal; "
                            "interning is an implementation detail — "
                            "use == / !=",
                            node,
                        )
                        break
        self.generic_visit(node)

    # --- LINT003 -------------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        body_is_silent = all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis)
            for stmt in node.body
        )
        if body_is_silent:
            broad = node.type is None or (
                isinstance(node.type, ast.Name)
                and node.type.id in _BROAD_EXCEPTIONS
            )
            severity = Severity.ERROR if broad else Severity.WARNING
            what = (
                "bare/broad exception handler"
                if broad else "exception handler"
            )
            self._report(
                "LINT003", severity,
                f"{what} silently swallows the exception; handle, log, "
                "or re-raise it",
                node,
            )
        self.generic_visit(node)

    # --- LINT004 -------------------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (
                ast.List, ast.Dict, ast.Set,
                ast.ListComp, ast.DictComp, ast.SetComp,
            )) or (
                isinstance(default, ast.Call)
                and _callee_name(default.func) in (
                    "list", "dict", "set", "defaultdict", "deque",
                )
            )
            if mutable:
                self._report(
                    "LINT004", Severity.ERROR,
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the function",
                    default,
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # --- LINT009 -------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        spawns_pool = any(
            isinstance(sub, ast.Call)
            and _callee_name(sub.func) == "ThreadPoolExecutor"
            for sub in ast.walk(node)
        )
        if spawns_pool:
            for sub in ast.walk(node):
                if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
                    continue
                target = sub.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                ctor = _callee_name(sub.value.func) \
                    if isinstance(sub.value, ast.Call) else ""
                if (
                    ctor in _LOCK_CONSTRUCTORS
                    and not _LOCK_NAME_RE.fullmatch(target.attr)
                ):
                    self._report(
                        "LINT009", Severity.WARNING,
                        f"{node.name} spawns thread pools but names its "
                        f"{ctor} attribute {target.attr!r}: the "
                        "concurrency analyzers key on the '_lock' "
                        "naming convention, so this guard is invisible "
                        "to them — rename it (e.g. '_lock')",
                        sub,
                    )
        self.generic_visit(node)


def lint_source(source: str, filename: str = "<string>") -> AnalysisReport:
    """Lint one source string; findings carry ``filename`` locations."""
    report = AnalysisReport()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report.add(Diagnostic(
            "LINT000", Severity.ERROR,
            f"cannot parse: {exc.msg}",
            file=filename, line=exc.lineno,
        ))
        return report
    visitor = _LintVisitor(filename)
    visitor.visit(tree)
    suppressed = _suppressions(source)
    for finding in visitor.findings:
        rules = suppressed.get(finding.line, ...)
        if rules is None or (rules is not ... and finding.rule in rules):
            continue
        report.add(finding)
    return report


def lint_file(path: str | Path) -> AnalysisReport:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), filename=str(path))


def _iter_python_files(paths: list[str | Path]):
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if any(
                    part.startswith(".") or part == "__pycache__"
                    for part in f.parts
                ):
                    continue
                yield f
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: list[str | Path]) -> AnalysisReport:
    """Lint every ``*.py`` file under the given files/directories."""
    report = AnalysisReport()
    for f in _iter_python_files(paths):
        report.extend(lint_file(f))
    return report
