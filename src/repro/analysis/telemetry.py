"""Golden telemetry checks: the observability layer must tell the truth.

``python -m repro analyze --telemetry`` (and the CI telemetry job) runs
four executable invariants against a small deterministic traced
workload:

* **TELEM001** — the span tree must be well-formed: every parent
  reference resolves, children lie inside their parent's interval, and
  two spans on one ``(pid, tid)`` lane never partially overlap (they
  are nested or disjoint — a lane runs one thing at a time);
* **TELEM002** — the metrics snapshot must agree with the legacy
  stats: ``repro_cholesky_kernels_total`` per op equals the
  factorization's :class:`~repro.tile.cholesky.CholeskyStats` counts;
* **TELEM003** — the exporters must round-trip: the Chrome trace is
  valid JSON with schema-complete events, the profile dump survives
  ``json.dumps``/``loads``, and the Prometheus exposition parses;
* **TELEM004** — a disabled bundle must emit *nothing* (zero spans,
  zero events, an empty registry) and leave results bit-identical to
  the untraced path.

Like the golden resilience checks these *execute* the real engines —
the tracer's claims about real runs cannot be proven from source text.
"""

from __future__ import annotations

import json

import numpy as np

from ..config import DEFAULT_SEED
from ..core.likelihood import loglikelihood
from ..kernels import MaternKernel
from ..obs import Telemetry
from .diagnostics import AnalysisReport, Diagnostic, Severity

__all__ = ["TELEM_RULES", "check_golden_telemetry"]

#: Telemetry rules enforced by :func:`check_golden_telemetry`.
TELEM_RULES: dict[str, str] = {
    "TELEM001": "malformed span tree (orphan parent, child escaping "
                "its parent, or partial overlap on one thread lane)",
    "TELEM002": "metrics snapshot disagrees with the legacy stats "
                "objects (kernel counts drifted)",
    "TELEM003": "exporter output does not round-trip (invalid JSON, "
                "missing event fields, or unparsable Prometheus text)",
    "TELEM004": "disabled telemetry still emitted spans/metrics or "
                "changed results",
}

_TILE = 16
_NT = 4
_THETA = (1.0, 0.1, 0.5)
_NUGGET = 1.0e-8

#: Containment tolerance (s): perf_counter reads for a child's span
#: bracket happen strictly inside the parent's, but allow clock fuzz.
_EPS = 1.0e-6


def _golden_problem():
    gen = np.random.default_rng(DEFAULT_SEED)
    n = _NT * _TILE
    x = gen.uniform(size=(n, 2))
    z = gen.standard_normal(n)
    return MaternKernel(), np.asarray(_THETA), x, z


def _traced_run(**kwargs):
    """One traced likelihood on the golden problem; returns
    ``(result, telemetry)``."""
    kernel, theta, x, z = _golden_problem()
    telemetry = Telemetry()
    result = loglikelihood(
        kernel, theta, x, z, tile_size=_TILE, variant="mp-dense",
        nugget=_NUGGET, telemetry=telemetry, **kwargs,
    )
    return result, telemetry


def _check_span_tree(report: AnalysisReport, telemetry: Telemetry) -> None:
    spans = telemetry.tracer.sorted_spans()
    if not spans:
        report.add(Diagnostic(
            "TELEM001", Severity.ERROR,
            "traced workload produced zero spans — nothing to verify",
        ))
        return
    by_sid = {s.sid: s for s in spans}
    for s in spans:
        if s.parent is not None and s.parent not in by_sid:
            report.add(Diagnostic(
                "TELEM001", Severity.ERROR,
                f"span {s.name!r} (sid {s.sid}) references missing "
                f"parent sid {s.parent}",
            ))
            continue
        if s.end < s.start:
            report.add(Diagnostic(
                "TELEM001", Severity.ERROR,
                f"span {s.name!r} (sid {s.sid}) ends before it starts",
            ))
        if s.parent is not None:
            p = by_sid[s.parent]
            if s.start < p.start - _EPS or s.end > p.end + _EPS:
                report.add(Diagnostic(
                    "TELEM001", Severity.ERROR,
                    f"span {s.name!r} [{s.start:.6f}, {s.end:.6f}] "
                    f"escapes parent {p.name!r} "
                    f"[{p.start:.6f}, {p.end:.6f}]",
                ))
    # One (pid, tid) lane runs one thing at a time: spans on it must
    # nest or be disjoint, never partially overlap.
    lanes: dict[tuple[int, int], list] = {}
    for s in spans:
        lanes.setdefault((s.pid, s.tid), []).append(s)
    for lane, members in lanes.items():
        members.sort(key=lambda s: (s.start, -s.end))
        for a, b in zip(members, members[1:]):
            overlap = b.start < a.end - _EPS
            nested = b.end <= a.end + _EPS
            if overlap and not nested:
                report.add(Diagnostic(
                    "TELEM001", Severity.ERROR,
                    f"lane {lane}: spans {a.name!r} and {b.name!r} "
                    f"partially overlap "
                    f"([{a.start:.6f},{a.end:.6f}] vs "
                    f"[{b.start:.6f},{b.end:.6f}])",
                ))


def _check_metrics_consistency(report: AnalysisReport) -> None:
    result, telemetry = _traced_run()
    snap = telemetry.registry.snapshot()
    metric = snap.get("repro_cholesky_kernels_total")
    if metric is None:
        report.add(Diagnostic(
            "TELEM002", Severity.ERROR,
            "traced likelihood recorded no "
            "repro_cholesky_kernels_total metric",
        ))
        return
    got = {
        s["labels"].get("op"): s["value"] for s in metric["series"]
    }
    want = {op: float(n) for op, n in result.stats.kernel_counts.items()}
    if got != want:
        report.add(Diagnostic(
            "TELEM002", Severity.ERROR,
            f"kernel-count metric disagrees with CholeskyStats: "
            f"registry {got} != stats {want}",
        ))


def _check_exporters(report: AnalysisReport, telemetry: Telemetry) -> None:
    # Chrome trace: valid JSON, schema-complete events.
    try:
        events = json.loads(json.dumps(telemetry.chrome_trace_events()))
    except (TypeError, ValueError) as exc:
        report.add(Diagnostic(
            "TELEM003", Severity.ERROR,
            f"chrome trace is not JSON-serializable: {exc}",
        ))
        return
    for ev in events:
        missing = [k for k in ("name", "ph", "pid", "tid") if k not in ev]
        if missing:
            report.add(Diagnostic(
                "TELEM003", Severity.ERROR,
                f"trace event {ev.get('name')!r} missing fields "
                f"{missing}",
            ))
            break
        if ev["ph"] == "X" and (ev.get("dur", -1) < 0 or ev.get("ts", -1) < 0):
            report.add(Diagnostic(
                "TELEM003", Severity.ERROR,
                f"complete event {ev['name']!r} has negative ts/dur",
            ))
            break
    # Profile dump: full JSON round-trip.
    try:
        dump = json.loads(json.dumps(telemetry.profile_dump()))
        for key in ("spans", "events", "breakdown", "metrics"):
            if key not in dump:
                report.add(Diagnostic(
                    "TELEM003", Severity.ERROR,
                    f"profile dump missing section {key!r}",
                ))
    except (TypeError, ValueError) as exc:
        report.add(Diagnostic(
            "TELEM003", Severity.ERROR,
            f"profile dump is not JSON-serializable: {exc}",
        ))
    # Prometheus text: every line a comment or NAME{...} VALUE.
    for line in telemetry.render_prometheus().splitlines():
        if not line or line.startswith("#"):
            continue
        body = line.rsplit(" ", 1)
        name = body[0].split("{", 1)[0]
        if len(body) != 2 or not name.replace("_", "").isalnum():
            report.add(Diagnostic(
                "TELEM003", Severity.ERROR,
                f"unparsable Prometheus line: {line!r}",
            ))
            break
        try:
            float(body[1])
        except ValueError:
            report.add(Diagnostic(
                "TELEM003", Severity.ERROR,
                f"non-numeric Prometheus sample: {line!r}",
            ))
            break


def _check_disabled_silence(report: AnalysisReport) -> None:
    kernel, theta, x, z = _golden_problem()
    plain = loglikelihood(
        kernel, theta, x, z, tile_size=_TILE, variant="mp-dense",
        nugget=_NUGGET,
    )
    off = Telemetry(enabled=False)
    traced = loglikelihood(
        kernel, theta, x, z, tile_size=_TILE, variant="mp-dense",
        nugget=_NUGGET, telemetry=off,
    )
    if traced.value != plain.value:
        report.add(Diagnostic(
            "TELEM004", Severity.ERROR,
            f"disabled telemetry changed the loglikelihood: "
            f"{traced.value!r} != {plain.value!r}",
        ))
    if len(off.tracer) != 0 or off.tracer.sorted_events():
        report.add(Diagnostic(
            "TELEM004", Severity.ERROR,
            f"disabled tracer recorded {len(off.tracer)} span(s) and "
            f"{len(off.tracer.sorted_events())} event(s); expected 0",
        ))
    if off.registry.metrics():
        report.add(Diagnostic(
            "TELEM004", Severity.ERROR,
            f"disabled registry materialized metrics: "
            f"{sorted(m.name for m in off.registry.metrics())}",
        ))


def check_golden_telemetry() -> AnalysisReport:
    """Run the four golden telemetry invariants (rules in
    :data:`TELEM_RULES`) and narrate coverage with one INFO finding.

    The span-tree and exporter checks share one traced threaded run
    (``workers=2`` — multi-lane trees are where malformed nesting
    hides); the consistency check re-runs traced on the sequential
    path so the kernel tally has exactly one source.
    """
    report = AnalysisReport()
    _, telemetry = _traced_run(workers=2, backend="thread")
    _check_span_tree(report, telemetry)
    _check_metrics_consistency(report)
    _check_exporters(report, telemetry)
    _check_disabled_silence(report)
    status = "clean" if report.ok else f"{len(report.errors)} error(s)"
    report.add(Diagnostic(
        "GOLDEN", Severity.INFO,
        f"telemetry invariants TELEM001-TELEM004: {status} "
        f"({len(telemetry.tracer)} span(s) checked, "
        f"{len(report)} finding(s))",
    ))
    return report
