"""Golden-plan verification: every shipped variant must analyze clean.

The CI analysis job (and ``python -m repro analyze --golden-plans``)
builds each shipped compute variant on a small deterministic Matérn
problem at ``nt`` in {4, 8}, runs the full plan verifier on the
resulting :class:`~repro.tile.decisions.TilePlan` and the full DAG
verifier on the matching Cholesky + forward-solve task streams, and
requires zero error-severity findings.  A change to the planner, the
decision rules, or the task generators that silently violates a paper
invariant fails this check before any numerical test would notice.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_SEED
from ..core.variants import get_variant
from ..kernels import MaternKernel
from ..runtime.taskgraph import cholesky_tasks, forward_solve_tasks
from ..tile.assembly import build_planned_covariance
from .dagcheck import check_taskgraph
from .diagnostics import AnalysisReport, Diagnostic, Severity
from .plancheck import check_plan

__all__ = ["GOLDEN_VARIANTS", "GOLDEN_NTS", "check_golden_plan", "check_golden_plans"]

#: The shipped pipeline variants the golden suite covers.
GOLDEN_VARIANTS: tuple[str, ...] = (
    "dense-fp64", "mp-dense", "mp-dense-tlr", "mp-dense-tlr-recover",
)
#: Tile-grid sizes of the golden problems.
GOLDEN_NTS: tuple[int, ...] = (4, 8)

_GOLDEN_TILE = 16
_GOLDEN_THETA = (1.0, 0.1, 0.5)  # variance, range, smoothness
_GOLDEN_NUGGET = 1.0e-8


def _golden_locations(nt: int) -> np.ndarray:
    gen = np.random.default_rng(DEFAULT_SEED)
    return gen.uniform(size=(nt * _GOLDEN_TILE, 2))


def check_golden_plan(variant: str, nt: int) -> AnalysisReport:
    """Build ``variant`` at ``nt`` tiles and verify plan + task graph."""
    config = get_variant(variant)
    theta = np.asarray(_GOLDEN_THETA)
    x = _golden_locations(nt)
    _, rep = build_planned_covariance(
        MaternKernel(), theta, x, _GOLDEN_TILE,
        nugget=_GOLDEN_NUGGET, **config.assembly_kwargs(),
    )
    report = check_plan(
        rep.plan,
        tile_norms=rep.tile_norms,
        global_norm=rep.global_norm,
        u_high=config.mp_accuracy,
        variance=float(theta[0]) + _GOLDEN_NUGGET,
        machine=config.machine,
        structure_mode=config.structure_mode,
        max_rank_fraction=config.max_rank_fraction,
    )
    layout = rep.plan.layout
    tasks = list(cholesky_tasks(nt))
    report.extend(check_taskgraph(tasks, layout=layout))
    solve = list(forward_solve_tasks(nt, base_uid=len(tasks)))
    report.extend(check_taskgraph(solve, layout=layout))
    return report


def check_golden_plans(
    variants: tuple[str, ...] = GOLDEN_VARIANTS,
    nts: tuple[int, ...] = GOLDEN_NTS,
) -> AnalysisReport:
    """Verify every (variant, nt) combination; adds one INFO finding
    per combination so the CLI can narrate coverage."""
    report = AnalysisReport()
    for variant in variants:
        for nt in nts:
            sub = check_golden_plan(variant, nt)
            status = "clean" if sub.ok else f"{len(sub.errors)} error(s)"
            report.add(Diagnostic(
                "GOLDEN", Severity.INFO,
                f"variant {variant} at nt={nt}: {status} "
                f"({len(sub)} finding(s))",
            ))
            report.extend(sub)
    return report
