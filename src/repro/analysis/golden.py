"""Golden-plan verification: every shipped variant must analyze clean.

The CI analysis job (and ``python -m repro analyze --golden-plans``)
builds each shipped compute variant on a small deterministic Matérn
problem at ``nt`` in {4, 8}, runs the full plan verifier on the
resulting :class:`~repro.tile.decisions.TilePlan` and the full DAG
verifier on the matching Cholesky + forward-solve task streams, and
requires zero error-severity findings.  A change to the planner, the
decision rules, or the task generators that silently violates a paper
invariant fails this check before any numerical test would notice.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_SEED
from ..core.variants import get_variant
from ..kernels import MaternKernel
from ..runtime.comm import model_comm_volume
from ..runtime.taskgraph import cholesky_tasks, forward_solve_tasks
from ..tile.assembly import build_planned_covariance
from .dagcheck import check_taskgraph
from .diagnostics import AnalysisReport, Diagnostic, Severity
from .plancheck import check_plan, plan_from_matrix

__all__ = [
    "GOLDEN_VARIANTS",
    "GOLDEN_NTS",
    "SERVE_RULES",
    "COMM_RULES",
    "check_golden_plan",
    "check_golden_plans",
    "check_golden_serving",
    "check_golden_comm",
]

#: Serving-amortization rules enforced by :func:`check_golden_serving`.
SERVE_RULES: dict[str, str] = {
    "SERVE001": "serving engine was rebuilt during steady-state predicts "
                "(stale-state invalidation fired without a state change)",
    "SERVE002": "Eq.-4 weights were re-solved after engine construction "
                "(the weight solve must amortize to exactly one)",
    "SERVE003": "per-tile factor casts grew after warm-up (the serving "
                "path re-materialized tiles / revalidated the plan per "
                "batch)",
    "SERVE004": "repeated identical test batch missed the "
                "cross-covariance cache",
}

#: Owner-computes traffic rules enforced by :func:`check_golden_comm`.
COMM_RULES: dict[str, str] = {
    "COMM001": "measured remote transfer volume diverges from the "
               "wire-format model on a dense plan (the process backend's "
               "comm accounting or the simulator model broke)",
    "COMM002": "measured remote/local read counts diverge from the "
               "owner-computes block-cyclic mapping",
}

#: The shipped pipeline variants the golden suite covers.
GOLDEN_VARIANTS: tuple[str, ...] = (
    "dense-fp64", "mp-dense", "mp-dense-tlr", "mp-dense-tlr-recover",
)
#: Tile-grid sizes of the golden problems.
GOLDEN_NTS: tuple[int, ...] = (4, 8)

_GOLDEN_TILE = 16
_GOLDEN_THETA = (1.0, 0.1, 0.5)  # variance, range, smoothness
_GOLDEN_NUGGET = 1.0e-8


def _golden_locations(nt: int) -> np.ndarray:
    gen = np.random.default_rng(DEFAULT_SEED)
    return gen.uniform(size=(nt * _GOLDEN_TILE, 2))


def check_golden_plan(variant: str, nt: int) -> AnalysisReport:
    """Build ``variant`` at ``nt`` tiles and verify plan + task graph."""
    config = get_variant(variant)
    theta = np.asarray(_GOLDEN_THETA)
    x = _golden_locations(nt)
    _, rep = build_planned_covariance(
        MaternKernel(), theta, x, _GOLDEN_TILE,
        nugget=_GOLDEN_NUGGET, **config.assembly_kwargs(),
    )
    report = check_plan(
        rep.plan,
        tile_norms=rep.tile_norms,
        global_norm=rep.global_norm,
        u_high=config.mp_accuracy,
        variance=float(theta[0]) + _GOLDEN_NUGGET,
        machine=config.machine,
        structure_mode=config.structure_mode,
        max_rank_fraction=config.max_rank_fraction,
    )
    layout = rep.plan.layout
    tasks = list(cholesky_tasks(nt))
    report.extend(check_taskgraph(tasks, layout=layout))
    solve = list(forward_solve_tasks(nt, base_uid=len(tasks)))
    report.extend(check_taskgraph(solve, layout=layout))
    return report


def check_golden_serving(
    variant: str = "mp-dense-tlr", nt: int = 4, *, rounds: int = 3
) -> AnalysisReport:
    """Verify the prediction serving path amortizes as designed.

    Builds a small fitted model (``set_params``, no MLE) on ``variant``,
    serves the same test batch ``rounds`` times plus one streamed pass,
    and checks the engine's counters: the engine is built once, the
    Eq.-4 weight solve happens once, no tile is re-cast after warm-up
    (i.e. the serving path never triggers plan revalidation or
    re-factorization per batch), and repeated identical batches hit the
    cross-covariance cache.  Rules are catalogued in
    :data:`SERVE_RULES`.
    """
    from ..core.model import ExaGeoStatModel

    report = AnalysisReport()
    gen = np.random.default_rng(DEFAULT_SEED)
    n = nt * _GOLDEN_TILE
    x = gen.uniform(size=(n, 2))
    z = gen.standard_normal(n)
    x_test = gen.uniform(size=(40, 2))

    model = ExaGeoStatModel(
        kernel="matern", variant=variant,
        tile_size=_GOLDEN_TILE, nugget=_GOLDEN_NUGGET,
    )
    model.set_params(np.asarray(_GOLDEN_THETA), x, z)
    model.predict(x_test, return_uncertainty=True)  # warm-up
    engine = model.serving_engine()
    warm_casts = engine.stats().tile_casts

    for _ in range(max(1, rounds)):
        model.predict(x_test, return_uncertainty=True)
    for _ in engine.predict_iter(x_test, batch=16, return_uncertainty=True):
        pass
    model.simulate(x_test, size=2, seed=DEFAULT_SEED)
    stats = engine.stats()

    if model._engine_builds != 1:
        report.add(Diagnostic(
            "SERVE001", Severity.ERROR,
            f"engine built {model._engine_builds}x across "
            f"{stats.predict_calls} predict call(s) on unchanged state",
        ))
    if stats.weight_solves != 1:
        report.add(Diagnostic(
            "SERVE002", Severity.ERROR,
            f"weights solved {stats.weight_solves}x (expected exactly 1)",
        ))
    stored = len(engine.factor.keys())
    if stats.tile_casts > warm_casts or stats.tile_casts > stored:
        report.add(Diagnostic(
            "SERVE003", Severity.ERROR,
            f"tile casts grew {warm_casts} -> {stats.tile_casts} over "
            f"{stats.batches} batch(es) ({stored} stored tile(s)) — "
            "serving is re-materializing the factor per batch",
        ))
    if stats.cross_hits < max(1, rounds):
        report.add(Diagnostic(
            "SERVE004", Severity.ERROR,
            f"only {stats.cross_hits} cross-cache hit(s) across "
            f"{max(1, rounds)} repeated round(s)",
        ))
    status = "clean" if report.ok else f"{len(report.errors)} error(s)"
    report.add(Diagnostic(
        "GOLDEN", Severity.INFO,
        f"serving on {variant} at nt={nt}: {status} "
        f"({stats.predictions} predictions, {stats.tile_casts} casts, "
        f"{stats.weight_solves} weight solve(s), "
        f"{stats.cross_hits} cache hit(s))",
    ))
    return report


def check_golden_comm(nt: int = 8, *, workers: int = 4) -> AnalysisReport:
    """Cross-check the process backend's *measured* traffic against the
    simulator's wire-format *model*.

    Builds the dense-FP64 golden problem at ``nt`` tiles, factors it on
    the shared-memory process backend with ``workers`` worker
    processes, and requires the executor's measured
    :class:`~repro.runtime.comm.CommStats` to equal
    :func:`~repro.runtime.comm.model_comm_volume` byte-for-byte on the
    plan reconstructed from the assembled matrix
    (:func:`~repro.analysis.plancheck.plan_from_matrix`).  Dense plans
    keep exactly the representation the wire model assumes, so any
    divergence means the backend's remote-read accounting (or the
    model) regressed.  Rules are catalogued in :data:`COMM_RULES`.
    """
    from ..runtime.procpool import ProcessPoolEngine

    report = AnalysisReport()
    config = get_variant("dense-fp64")
    theta = np.asarray(_GOLDEN_THETA)
    x = _golden_locations(nt)
    matrix, _ = build_planned_covariance(
        MaternKernel(), theta, x, _GOLDEN_TILE,
        nugget=_GOLDEN_NUGGET, **config.assembly_kwargs(),
    )
    plan = plan_from_matrix(matrix)
    tasks = list(cholesky_tasks(nt))
    engine = ProcessPoolEngine(workers=workers)
    try:
        _, run = engine.execute(matrix)
    finally:
        engine.close()
    measured, modeled = run.comm, model_comm_volume(plan, engine.grid, tasks)

    if (measured.remote_reads, measured.local_reads) != (
        modeled.remote_reads, modeled.local_reads
    ):
        report.add(Diagnostic(
            "COMM002", Severity.ERROR,
            f"read counts diverge: measured {measured.remote_reads} "
            f"remote / {measured.local_reads} local, modeled "
            f"{modeled.remote_reads} remote / {modeled.local_reads} "
            f"local ({engine.grid.p}x{engine.grid.q} grid, nt={nt})",
        ))
    if measured.remote_bytes != modeled.remote_bytes:
        report.add(Diagnostic(
            "COMM001", Severity.ERROR,
            f"remote volume diverges: measured {measured.remote_bytes} "
            f"B, modeled {modeled.remote_bytes} B on a dense plan "
            f"({engine.grid.p}x{engine.grid.q} grid, nt={nt})",
        ))
    status = "clean" if report.ok else f"{len(report.errors)} error(s)"
    report.add(Diagnostic(
        "GOLDEN", Severity.INFO,
        f"comm on dense-fp64 at nt={nt}, {workers} worker(s): {status} "
        f"({measured.remote_reads} remote reads, "
        f"{measured.remote_bytes} B, {measured.local_reads} local)",
    ))
    return report


def check_golden_plans(
    variants: tuple[str, ...] = GOLDEN_VARIANTS,
    nts: tuple[int, ...] = GOLDEN_NTS,
) -> AnalysisReport:
    """Verify every (variant, nt) combination; adds one INFO finding
    per combination so the CLI can narrate coverage."""
    report = AnalysisReport()
    for variant in variants:
        for nt in nts:
            sub = check_golden_plan(variant, nt)
            status = "clean" if sub.ok else f"{len(sub.errors)} error(s)"
            report.add(Diagnostic(
                "GOLDEN", Severity.INFO,
                f"variant {variant} at nt={nt}: {status} "
                f"({len(sub)} finding(s))",
            ))
            report.extend(sub)
    return report
