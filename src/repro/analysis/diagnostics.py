"""Diagnostic objects shared by every static analyzer.

A :class:`Diagnostic` is one finding of a verifier rule: the rule id
(``"PLAN004"``, ``"LINT001"``, ...), a :class:`Severity`, a message,
and an optional location — a tile index for plan rules, a task uid for
DAG rules, a ``file:line`` pair for lint rules.  Analyzers accumulate
findings into an :class:`AnalysisReport`, which supports filtering,
aggregation, and text/JSON rendering for the CLI and the CI job.

The framework is deliberately runtime-free: analyzers never execute
kernels or factorizations, they inspect plans, task streams, and source
text, so a bad configuration is rejected before any flop is spent.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


__all__ = ["Severity", "Diagnostic", "AnalysisReport"]


class Severity(enum.IntEnum):
    """Ordered severity ladder.

    ``ERROR`` findings make a plan/graph/source unacceptable (the
    ``validate_plan`` hooks raise, the CLI exits non-zero); ``WARNING``
    findings are suspicious but may be intentional; ``INFO`` findings
    are observations.
    """

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one location."""

    rule: str
    severity: Severity
    message: str
    tile: tuple[int, int] | None = None
    task: int | None = None
    file: str | None = None
    line: int | None = None

    @property
    def location(self) -> str:
        """Human-readable location string (empty when global)."""
        if self.file is not None:
            return f"{self.file}:{self.line}" if self.line is not None else self.file
        if self.task is not None:
            return f"task#{self.task}"
        if self.tile is not None:
            return f"tile({self.tile[0]},{self.tile[1]})"
        return ""

    def render(self) -> str:
        loc = self.location
        prefix = f"{loc}: " if loc else ""
        return f"{prefix}{self.severity.label}[{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        out: dict = {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
        }
        if self.tile is not None:
            out["tile"] = list(self.tile)
        if self.task is not None:
            out["task"] = self.task
        if self.file is not None:
            out["file"] = self.file
        if self.line is not None:
            out["line"] = self.line
        return out


@dataclass
class AnalysisReport:
    """Ordered collection of diagnostics from one or more analyzers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    # ------------------------------------------------------------------
    # accumulation
    # ------------------------------------------------------------------
    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: "AnalysisReport | list[Diagnostic]") -> None:
        if isinstance(other, AnalysisReport):
            self.diagnostics.extend(other.diagnostics)
        else:
            self.diagnostics.extend(other)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def filter(
        self,
        *,
        severity: Severity | None = None,
        min_severity: Severity | None = None,
        rule: str | None = None,
    ) -> "AnalysisReport":
        """Sub-report matching the given criteria."""
        out = []
        for d in self.diagnostics:
            if severity is not None and d.severity is not severity:
                continue
            if min_severity is not None and d.severity < min_severity:
                continue
            if rule is not None and d.rule != rule:
                continue
            out.append(d)
        return AnalysisReport(out)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the report contains no error-severity findings."""
        return not self.errors

    def rule_ids(self) -> list[str]:
        """Sorted unique rule ids present in the report."""
        return sorted({d.rule for d in self.diagnostics})

    def counts(self) -> dict[str, int]:
        """Finding counts per rule id."""
        out: dict[str, int] = {}
        for d in self.diagnostics:
            out[d.rule] = out.get(d.rule, 0) + 1
        return dict(sorted(out.items()))

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render_text(self, *, min_severity: Severity = Severity.INFO) -> str:
        """One line per finding plus a summary tail."""
        shown = self.filter(min_severity=min_severity)
        lines = [d.render() for d in shown]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.diagnostics)} finding(s) total"
        )
        return "\n".join(lines)

    def to_json(self, *, indent: int | None = None) -> str:
        payload = {
            "findings": [d.to_dict() for d in self.diagnostics],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "ok": self.ok,
        }
        return json.dumps(payload, indent=indent)
