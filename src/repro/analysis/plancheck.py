"""Static verification of :class:`~repro.tile.decisions.TilePlan` objects.

Every rule checks an invariant the paper's correctness story relies on
but that the pipeline otherwise only enforces implicitly (or not at
all, when a plan is constructed or mutated by hand):

========  ========  =====================================================
rule      severity  invariant
========  ========  =====================================================
PLAN001   error     precision rule: a demoted tile's predicted storage
                    error stays under the Frobenius-norm budget
                    ``u_high * ||A||_F / NT``
PLAN002   error/    FP16 range: stored FP16 entries neither (provably)
          warning   overflow the binary16 maximum nor flush entirely to
                    zero
PLAN003   error     diagonal tiles are pinned to FP64 (POTRF breakdown)
PLAN004   error     no TLR tile inside the Algorithm-2 dense band
PLAN005   error/    no TLR tile with rank above the admissible cap (or
          warning   above the machine crossover in perfmodel mode);
                    warning when an LR tile has no recorded rank
PLAN006   error     TLR tiles never store FP16 (Algorithm 2: FP64/FP32)
PLAN007   error     precision/structure maps cover exactly the lower
                    triangle (no missing, upper, or out-of-range keys)
PLAN008   error     planned storage fits the per-node memory budget
PLAN009   error/    the fault regime is survivable (restart outpaces the
          warning   application MTBF; checkpoint waste stays < 100%)
PLAN010   error     ``band_size_dense >= 1``
========  ========  =====================================================

All rules are *static*: they need the plan, optionally the generation
metadata (tile norms, global norm), a machine model and a resilience
configuration — never the numerical tile data.
"""

from __future__ import annotations

import math

from ..config import DEFAULT_MAX_RANK_FRACTION
from ..perfmodel.crossover import crossover_rank
from ..perfmodel.machine import MachineSpec
from ..perfmodel.resilience import application_mtbf, expected_waste
from ..runtime.faults import CheckpointConfig, FaultModel
from ..tile.decisions import TilePlan, plan_summary
from ..tile.precision import Precision
from .diagnostics import AnalysisReport, Diagnostic, Severity

__all__ = ["check_plan", "plan_from_matrix", "PLAN_RULES"]

#: Rule-id -> one-line description (the catalog rendered by the CLI).
PLAN_RULES: dict[str, str] = {
    "PLAN001": "tile demoted below the Frobenius-norm precision budget",
    "PLAN002": "FP16 tile at risk of binary16 overflow or total underflow",
    "PLAN003": "diagonal tile stored below FP64",
    "PLAN004": "TLR tile inside the Algorithm-2 dense band",
    "PLAN005": "TLR rank above the admissible cap / machine crossover",
    "PLAN006": "TLR tile stored in FP16",
    "PLAN007": "precision/structure maps do not match the lower triangle",
    "PLAN008": "planned storage exceeds the per-node memory budget",
    "PLAN009": "unsurvivable fault regime for this plan",
    "PLAN010": "invalid dense band size",
}

#: Largest finite binary16 value.
_FP16_MAX = 65504.0


def plan_from_matrix(matrix) -> TilePlan:
    """Reconstruct a :class:`TilePlan` from a materialized
    :class:`~repro.tile.matrix.TileMatrix` (the per-tile structure and
    precision actually stored), so a matrix built outside the planning
    pipeline can still be verified."""
    precisions: dict[tuple[int, int], Precision] = {}
    use_lr: dict[tuple[int, int], bool] = {}
    ranks: dict[tuple[int, int], int] = {}
    for key, tile in matrix.items():
        precisions[key] = tile.precision
        use_lr[key] = tile.is_low_rank
        if tile.is_low_rank:
            ranks[key] = tile.rank
    return TilePlan(
        layout=matrix.layout,
        precisions=precisions,
        use_lr=use_lr,
        meta={"ranks": ranks, "global_norm": matrix.global_fro_norm()},
    )


def check_plan(
    plan: TilePlan,
    *,
    tile_norms: dict[tuple[int, int], float] | None = None,
    global_norm: float | None = None,
    u_high: float = 1.0e-8,
    variance: float | None = None,
    machine: MachineSpec | None = None,
    structure_mode: str = "rank",
    max_rank_fraction: float = DEFAULT_MAX_RANK_FRACTION,
    nodes: int | None = None,
    node_memory_gb: float | None = None,
    usable_fraction: float = 0.8,
    faults: FaultModel | None = None,
    checkpoint: CheckpointConfig | None = None,
    estimated_runtime_s: float | None = None,
) -> AnalysisReport:
    """Run every applicable plan rule; rules whose inputs are absent
    (e.g. PLAN001 without tile norms, PLAN008 without a budget) are
    skipped rather than guessed.

    ``u_high`` is the application accuracy of the Frobenius rule (the
    value the plan was built with); ``variance`` optionally bounds
    covariance entries (the kernel sill + nugget) for the FP16 range
    rule.  ``nodes`` + ``node_memory_gb`` enable the memory-budget
    rule; ``faults``/``checkpoint``/``estimated_runtime_s`` enable the
    resilience rule.
    """
    report = AnalysisReport()
    layout = plan.layout
    nt = layout.nt
    b = layout.tile_size
    if global_norm is None:
        global_norm = plan.meta.get("global_norm")
    ranks: dict[tuple[int, int], int] = plan.meta.get("ranks", {})

    # --- PLAN010 / PLAN007: structural sanity first -----------------------
    band = plan.band_size_dense
    if band < 1:
        report.add(Diagnostic(
            "PLAN010", Severity.ERROR,
            f"band_size_dense={band} is invalid (must be >= 1: the "
            "diagonal is always dense)",
        ))
        band = 1
    expected = set(layout.lower_tiles())
    for name, mapping in (("precision", plan.precisions),
                          ("structure", plan.use_lr)):
        keys = set(mapping)
        for key in sorted(keys - expected):
            report.add(Diagnostic(
                "PLAN007", Severity.ERROR,
                f"{name} map has key outside the stored lower triangle",
                tile=key,
            ))
        for key in sorted(expected - keys):
            report.add(Diagnostic(
                "PLAN007", Severity.ERROR,
                f"{name} map is missing a lower-triangle tile",
                tile=key,
            ))

    # Per-tile rules only make sense on keys present in both maps.
    tiles = [k for k in layout.lower_tiles()
             if k in plan.precisions and k in plan.use_lr]

    budget = None
    if global_norm is not None and global_norm > 0 and nt > 0:
        budget = u_high * global_norm / nt

    for (i, j) in tiles:
        p = plan.precisions[(i, j)]
        lr = plan.use_lr[(i, j)]
        m, n = layout.tile_shape(i, j)

        # --- PLAN003: diagonal pinning ---------------------------------
        if i == j and p is not Precision.FP64:
            report.add(Diagnostic(
                "PLAN003", Severity.ERROR,
                f"diagonal tile narrowed to {p.label}; POTRF breakdown "
                "risk — diagonal tiles must stay FP64",
                tile=(i, j),
            ))

        # --- PLAN001: Frobenius precision budget -----------------------
        if (
            budget is not None
            and tile_norms is not None
            and i != j
            and p is not Precision.FP64
            and (i, j) in tile_norms
        ):
            norm = tile_norms[(i, j)]
            predicted = p.unit_roundoff * norm
            predicted = min(norm, predicted + 0.5 * math.sqrt(m * n)
                            * p.smallest_subnormal)
            if predicted >= budget:
                report.add(Diagnostic(
                    "PLAN001", Severity.ERROR,
                    f"tile demoted to {p.label} but predicted storage "
                    f"error {predicted:.3e} >= budget {budget:.3e} "
                    f"(u_high*||A||_F/NT); the aggregate bound "
                    "||A_hat-A||_F <= u_high*||A||_F no longer holds",
                    tile=(i, j),
                ))

        # --- PLAN002: FP16 representable range -------------------------
        if p is Precision.FP16 and tile_norms is not None and (i, j) in tile_norms:
            norm = tile_norms[(i, j)]
            entry_cap = variance if variance is not None else math.inf
            lower_bound_max = norm / math.sqrt(m * n)
            if lower_bound_max > _FP16_MAX:
                report.add(Diagnostic(
                    "PLAN002", Severity.ERROR,
                    f"FP16 tile must contain an entry >= "
                    f"{lower_bound_max:.3e} > binary16 max {_FP16_MAX:g}: "
                    "guaranteed overflow to inf",
                    tile=(i, j),
                ))
            elif min(norm, entry_cap) > _FP16_MAX:
                report.add(Diagnostic(
                    "PLAN002", Severity.WARNING,
                    f"FP16 tile norm {norm:.3e} exceeds binary16 max "
                    f"{_FP16_MAX:g}: entries may overflow to inf",
                    tile=(i, j),
                ))
            if 0.0 < norm < Precision.FP16.smallest_subnormal:
                report.add(Diagnostic(
                    "PLAN002", Severity.ERROR,
                    f"FP16 tile norm {norm:.3e} below the binary16 "
                    "smallest subnormal: the whole tile flushes to zero",
                    tile=(i, j),
                ))

        if not lr:
            continue

        # --- PLAN004: Algorithm-2 dense band ---------------------------
        if i - j < band:
            report.add(Diagnostic(
                "PLAN004", Severity.ERROR,
                f"TLR tile inside the dense band (offset {i - j} < "
                f"band_size_dense {band}); Algorithm 2 forces these dense",
                tile=(i, j),
            ))

        # --- PLAN006: no FP16 TLR --------------------------------------
        if p is Precision.FP16:
            report.add(Diagnostic(
                "PLAN006", Severity.ERROR,
                "TLR tile stored in FP16; Algorithm 2 restricts low-rank "
                "tiles to FP64/FP32",
                tile=(i, j),
            ))

        # --- PLAN005: rank cap / crossover -----------------------------
        rank = ranks.get((i, j))
        if rank is None:
            report.add(Diagnostic(
                "PLAN005", Severity.WARNING,
                "TLR tile has no recorded rank in plan.meta['ranks']; "
                "crossover admissibility cannot be verified",
                tile=(i, j),
            ))
        else:
            hard_cap = int(max_rank_fraction * b)
            if rank > hard_cap:
                report.add(Diagnostic(
                    "PLAN005", Severity.ERROR,
                    f"TLR rank {rank} above the admissible cap "
                    f"{hard_cap} ({max_rank_fraction:g} x tile size); "
                    "the tile must be stored dense",
                    tile=(i, j),
                ))
            elif machine is not None and structure_mode == "perfmodel":
                lr_prec = Precision.FP32 if p is Precision.FP16 else p
                xover = crossover_rank(b, machine, lr_prec)
                if rank >= xover:
                    report.add(Diagnostic(
                        "PLAN005", Severity.ERROR,
                        f"TLR rank {rank} at/above the machine crossover "
                        f"{xover} for tile size {b} at {lr_prec.label}: "
                        "dense execution is modeled faster",
                        tile=(i, j),
                    ))

    # --- PLAN008: memory budget -------------------------------------------
    if nodes is not None and node_memory_gb is not None:
        summary = plan_summary(plan)
        per_node = summary["bytes_planned"] / max(nodes, 1)
        cap = usable_fraction * node_memory_gb * 1.0e9
        if per_node > cap:
            report.add(Diagnostic(
                "PLAN008", Severity.ERROR,
                f"planned storage {per_node / 1e9:.2f} GB/node exceeds "
                f"the usable budget {cap / 1e9:.2f} GB/node "
                f"({usable_fraction:.0%} of {node_memory_gb:g} GB x "
                f"{nodes} nodes)",
            ))

    # --- PLAN009: survivable fault regime ---------------------------------
    if faults is not None and nodes is not None:
        _check_resilience(
            report, faults, checkpoint, nodes, estimated_runtime_s
        )

    return report


def _check_resilience(
    report: AnalysisReport,
    faults: FaultModel,
    checkpoint: CheckpointConfig | None,
    nodes: int,
    estimated_runtime_s: float | None,
) -> None:
    """PLAN009: reject regimes where recovery cannot outpace failures."""
    if not math.isfinite(faults.node_mtbf_s):
        return
    mtbf = application_mtbf(faults.node_mtbf_s, nodes)
    if faults.restart_s >= mtbf:
        report.add(Diagnostic(
            "PLAN009", Severity.ERROR,
            f"restart time {faults.restart_s:g}s >= application MTBF "
            f"{mtbf:g}s at {nodes} nodes: recovery can never outpace "
            "failures",
        ))
        return
    if checkpoint is not None:
        waste = expected_waste(
            checkpoint.interval_s, checkpoint.cost_s, mtbf, faults.restart_s
        )
        if waste >= 1.0:
            report.add(Diagnostic(
                "PLAN009", Severity.ERROR,
                f"expected resilience waste {waste:.0%} >= 100% at "
                f"interval {checkpoint.interval_s:g}s (app MTBF {mtbf:g}s): "
                "the run makes no forward progress",
            ))
        elif waste >= 0.5:
            report.add(Diagnostic(
                "PLAN009", Severity.WARNING,
                f"expected resilience waste {waste:.0%} at interval "
                f"{checkpoint.interval_s:g}s: more than half the machine "
                "time is overhead",
            ))
    elif estimated_runtime_s is not None and estimated_runtime_s >= mtbf:
        expected_crashes = estimated_runtime_s / mtbf
        severity = (
            Severity.ERROR if expected_crashes >= 10.0 else Severity.WARNING
        )
        report.add(Diagnostic(
            "PLAN009", severity,
            f"estimated runtime {estimated_runtime_s:g}s spans "
            f"~{expected_crashes:.1f} expected crashes (app MTBF "
            f"{mtbf:g}s) with no checkpointing: every crash restarts "
            "from scratch",
        ))
