"""Package-wide default constants.

These mirror the knobs the paper exposes: tile size, TLR accuracy
tolerance, the precision ladder, and the fluctuation factor of the
band-size auto-tuner (Algorithm 2).  All are plain module-level
constants; functions that consume them accept explicit overrides so the
defaults never have to be mutated globally.
"""

from __future__ import annotations

#: Default tile (block) size for tiled algorithms at laptop scale.  The
#: paper uses 800 (Fig. 7) and 2700 (Fig. 9) on Fugaku; numeric tests in
#: this repo run at much smaller matrix sizes so the default is smaller.
DEFAULT_TILE_SIZE: int = 64

#: Accuracy threshold for TLR compression.  Matches the paper
#: (Section VI.B: "set to 1e-8 for this application").
DEFAULT_TLR_TOLERANCE: float = 1.0e-8

#: Maximum admissible rank of a compressed tile, as a fraction of the
#: tile size.  Beyond this, storing the tile dense is always cheaper.
DEFAULT_MAX_RANK_FRACTION: float = 0.5

#: Algorithm 2 "fluctuation" multiplier: the dense band keeps growing
#: while ``time_dense < fluctuation * time_tlr`` on the sub-diagonal.
DEFAULT_BAND_FLUCTUATION: float = 1.0

#: Small diagonal regularization ("nugget") added when sampling exact
#: Gaussian random fields, to guard against loss of positive
#: definiteness at very small distances.
DEFAULT_SAMPLING_JITTER: float = 1.0e-10

#: Default seed used by deterministic data generators.
DEFAULT_SEED: int = 20220101

#: Number of right-hand sides predicted per solve batch in the kriging
#: path (keeps peak memory bounded for large test sets).
PREDICT_BATCH: int = 4096

#: Byte budget of the serving engine's cross-covariance LRU — repeated
#: predictions at previously seen test batches skip the kernel
#: evaluation (and, for variances, the half-solve) entirely.  0
#: disables value caching; geometry caching is governed separately.
SERVING_CROSS_CACHE_BYTES: int = 128 * 2**20

# ----------------------------------------------------------------------
# Resilience defaults (runtime fault model + numerical recovery ladder)
# ----------------------------------------------------------------------

#: Per-node mean time between failures, seconds.  Fugaku-class systems
#: report a system-level MTBF of a few hours at ~150k nodes; per node
#: that is O(10^8) s — the default keeps single-node simulations
#: essentially failure-free unless the caller scales it down.
DEFAULT_NODE_MTBF_S: float = 3.0e8

#: Time for a crashed simulated node to rejoin (re-spawn + re-connect).
DEFAULT_RESTART_S: float = 30.0

#: Per-node filesystem/burst-buffer bandwidth used by the tile
#: checkpoint cost model, GB/s (LLIO-class node-local storage).
DEFAULT_CHECKPOINT_BW_GBS: float = 4.0

#: Initial diagonal jitter of the numerical recovery ladder, relative
#: to the mean diagonal magnitude of the covariance.
DEFAULT_RECOVERY_JITTER: float = 1.0e-10

#: Largest relative jitter the ladder may reach before giving up.
DEFAULT_RECOVERY_MAX_JITTER: float = 1.0e-4

