"""repro — reproduction of "Reshaping Geostatistical Modeling and
Prediction for Extreme-Scale Environmental Applications" (SC 2022).

The package implements, in pure Python/NumPy:

* the geostatistical modeling/prediction pipeline of ExaGeoStat
  (Matérn space and Gneiting space-time kernels, Gaussian MLE,
  kriging) — :mod:`repro.core`, :mod:`repro.kernels`;
* the paper's contribution: a tile Cholesky combining mixed-precision
  storage (FP64/FP32/FP16, Frobenius-rule adaptive) with tile low-rank
  compression and structure/precision-aware runtime decisions —
  :mod:`repro.tile`;
* a PaRSEC-like task runtime with dataflow analysis, block-cyclic
  distribution and a discrete-event distributed simulator —
  :mod:`repro.runtime`;
* performance models of the A64FX/Fugaku platform driving both the
  runtime decisions and the paper-scale scaling estimates —
  :mod:`repro.perfmodel`;
* dataset surrogates and optimizers — :mod:`repro.data`,
  :mod:`repro.optim`.

Quick start::

    from repro import ExaGeoStatModel
    from repro.data import soil_moisture_surrogate

    data = soil_moisture_surrogate(n_train=600, n_test=60)
    model = ExaGeoStatModel(kernel="matern", variant="mp-dense-tlr")
    model.fit(data.x_train, data.z_train, theta0=data.theta_true)
    print(model.summary())
    print("MSPE:", model.score(data.x_test, data.z_test))
"""

from .core import (
    DENSE_FP64,
    MP_DENSE,
    MP_DENSE_TLR,
    ExaGeoStatModel,
    MLEResult,
    PredictionEngine,
    PredictionResult,
    VariantConfig,
    fit_mle,
    get_variant,
    kriging_predict,
    loglikelihood,
)
from .exceptions import (
    CompressionError,
    ConfigurationError,
    NotPositiveDefiniteError,
    OptimizationError,
    ParameterError,
    PlanValidationError,
    ReproError,
    SchedulingError,
    ShapeError,
)
from .kernels import GneitingMaternKernel, MaternKernel

__version__ = "1.0.0"

__all__ = [
    "ExaGeoStatModel",
    "MaternKernel",
    "GneitingMaternKernel",
    "VariantConfig",
    "DENSE_FP64",
    "MP_DENSE",
    "MP_DENSE_TLR",
    "get_variant",
    "loglikelihood",
    "fit_mle",
    "MLEResult",
    "kriging_predict",
    "PredictionResult",
    "PredictionEngine",
    "ReproError",
    "ParameterError",
    "ShapeError",
    "NotPositiveDefiniteError",
    "CompressionError",
    "SchedulingError",
    "OptimizationError",
    "ConfigurationError",
    "PlanValidationError",
    "__version__",
]
