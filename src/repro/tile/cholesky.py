"""Tiled Cholesky factorization (paper Algorithm 1, dense and TLR).

The right-looking tile algorithm:

    for k in 0..NT-1:
        POTRF  A[k][k]
        for m in k+1..NT-1:
            TRSM  A[k][k], A[m][k]
        for m in k+1..NT-1:
            SYRK  A[m][k], A[m][m]
            for n in k+1..m-1:
                GEMM  A[m][k], A[n][k], A[m][n]

Each tile keeps the structure (dense / low-rank) and storage precision
assigned by the :class:`~repro.tile.decisions.TilePlan`; the kernels in
:mod:`repro.tile.kernels` convert operands on demand.  This module is
the *sequentially executed* reference; the task-based runtime
(:mod:`repro.runtime`) generates the identical operation stream as a
DAG and a consistency test pins the two together.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..config import DEFAULT_MAX_RANK_FRACTION
from .matrix import TileMatrix

from . import kernels as K

__all__ = ["CholeskyStats", "tile_cholesky"]


@dataclass
class CholeskyStats:
    """Execution statistics of one factorization."""

    kernel_counts: dict[str, int] = field(default_factory=dict)
    densified_tiles: int = 0
    max_rank_seen: int = 0
    #: Transient task failures absorbed by the resilience layer's
    #: retry policy (always 0 on the sequential reference path).
    retries: int = 0

    def count(self, op: str) -> None:
        self.kernel_counts[op] = self.kernel_counts.get(op, 0) + 1

    def count_batch(self, ops: Iterable[str] | Counter) -> None:
        """Bulk-tally a batch of operations in one C-level update.

        ``kernel_counts`` stays a plain ``dict`` (its public shape);
        the :class:`collections.Counter` is a transient accumulator,
        so hot loops tally per batch / per panel instead of one dict
        update per task.
        """
        tally = ops if isinstance(ops, Counter) else Counter(ops)
        for op, n in tally.items():
            self.kernel_counts[op] = self.kernel_counts.get(op, 0) + n


def tile_cholesky(
    a: TileMatrix,
    *,
    tile_tol: float = 0.0,
    max_rank: int | None = None,
    fp16_accumulate_fp32: bool = True,
    validate_plan: bool = False,
) -> tuple[TileMatrix, CholeskyStats]:
    """Factor ``A = L L^T`` in place (the lower tiles of ``a`` are
    replaced by those of ``L``) and return ``(a, stats)``.

    ``tile_tol`` is the absolute tile-level recompression tolerance for
    low-rank updates (from ``plan.meta['tile_tol']``); ``max_rank``
    caps LR ranks, beyond which tiles densify on the fly.

    With ``validate_plan=True`` the static verifier
    (:mod:`repro.analysis.plancheck`) first checks the plan implied by
    the matrix's tile structure/precisions and raises
    :class:`~repro.exceptions.PlanValidationError` on any
    error-severity finding, so a structurally invalid factorization is
    rejected before the first flop.
    """
    if validate_plan:
        # Imported lazily: repro.analysis imports the tile layer.
        from ..analysis.plancheck import check_plan, plan_from_matrix
        from ..exceptions import PlanValidationError

        report = check_plan(plan_from_matrix(a))
        if not report.ok:
            raise PlanValidationError(
                "static plan verification failed: "
                + "; ".join(d.render() for d in report.errors),
                report=report,
            )
    nt = a.nt
    if max_rank is None:
        max_rank = int(DEFAULT_MAX_RANK_FRACTION * a.layout.tile_size) or None
    stats = CholeskyStats()
    for k in range(nt):
        # Per-panel Counter tally instead of one dict update per task.
        panel: Counter[str] = Counter()
        lkk = K.potrf(a.get(k, k), index=(k, k))
        a.set(k, k, lkk)
        panel["potrf"] += 1
        for m in range(k + 1, nt):
            amk = K.trsm(
                lkk, a.get(m, k), fp16_accumulate_fp32=fp16_accumulate_fp32
            )
            a.set(m, k, amk)
            panel["trsm"] += 1
        for m in range(k + 1, nt):
            amk = a.get(m, k)
            new_diag = K.syrk(
                amk, a.get(m, m), fp16_accumulate_fp32=fp16_accumulate_fp32
            )
            a.set(m, m, new_diag)
            panel["syrk"] += 1
            for n in range(k + 1, m):
                was_lr = a.get(m, n).is_low_rank
                cmn = K.gemm(
                    amk,
                    a.get(n, k),
                    a.get(m, n),
                    tol=tile_tol,
                    max_rank=max_rank,
                    fp16_accumulate_fp32=fp16_accumulate_fp32,
                )
                if was_lr and not cmn.is_low_rank:
                    stats.densified_tiles += 1
                if cmn.is_low_rank:
                    stats.max_rank_seen = max(stats.max_rank_seen, cmn.rank)
                a.set(m, n, cmn)
                panel["gemm"] += 1
        stats.count_batch(panel)
    return a, stats
