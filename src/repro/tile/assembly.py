"""Tile-wise covariance assembly with decision planning.

The paper generates the covariance matrix tile by tile, accumulating
the global Frobenius norm on the fly, decides each tile's precision
(Frobenius rule) and structure (compression rank + Algorithm 2 band),
and only then starts the factorization.  :func:`build_planned_covariance`
reproduces that pipeline:

1. generate every lower tile dense FP64 (one kernel evaluation per
   tile — the full matrix is never formed as a single array);
2. accumulate tile norms -> global norm;
3. precision map (adaptive Frobenius rule, or the legacy band rule);
4. TLR compression of off-diagonal tiles at the tile-level tolerance
   derived from the global norm, giving the rank distribution;
5. Algorithm 2 band auto-tuning + structure-aware decision;
6. materialize the planned :class:`~repro.tile.matrix.TileMatrix`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import (
    DEFAULT_BAND_FLUCTUATION,
    DEFAULT_MAX_RANK_FRACTION,
    DEFAULT_TLR_TOLERANCE,
)
from ..exceptions import ConfigurationError
from ..kernels.base import CovarianceKernel
from ..perfmodel.machine import A64FX, MachineSpec
from .bandtuning import autotune_band_size
from .compression import truncated_svd
from .decisions import (
    TilePlan,
    band_precision_map,
    frobenius_precision_map,
    structure_map,
)
from .layout import TileLayout
from .matrix import TileMatrix
from .precision import Precision
from .tile import DenseTile, LowRankTile

__all__ = ["AssemblyReport", "assemble_dense", "build_planned_covariance"]


@dataclass
class AssemblyReport:
    """What the generation pass learned about the matrix."""

    global_norm: float
    tile_norms: dict[tuple[int, int], float]
    ranks: dict[tuple[int, int], int]
    tile_tol: float
    plan: TilePlan


def _generate_blocks(
    kernel: CovarianceKernel,
    theta: np.ndarray,
    x: np.ndarray,
    layout: TileLayout,
    nugget: float,
) -> tuple[dict[tuple[int, int], np.ndarray], dict[tuple[int, int], float], float]:
    """Evaluate every lower tile of the covariance; return blocks,
    per-tile Frobenius norms, and the accumulated global norm."""
    blocks: dict[tuple[int, int], np.ndarray] = {}
    norms: dict[tuple[int, int], float] = {}
    total = 0.0
    for i, j in layout.lower_tiles():
        rows = x[layout.block_slice(i)]
        if i == j:
            # Same-set call: exact-zero self-distances on the diagonal.
            block = kernel(theta, rows)
            block = 0.5 * (block + block.T)
            if nugget:
                block[np.diag_indices_from(block)] += nugget
        else:
            cols = x[layout.block_slice(j)]
            block = kernel(theta, rows, cols)
        blocks[(i, j)] = block
        norm = float(np.linalg.norm(block))
        norms[(i, j)] = norm
        total += (1.0 if i == j else 2.0) * norm * norm
    return blocks, norms, float(np.sqrt(total))


def assemble_dense(
    kernel: CovarianceKernel,
    theta: np.ndarray,
    x: np.ndarray,
    tile_size: int,
    *,
    nugget: float = 0.0,
    precision: Precision = Precision.FP64,
) -> TileMatrix:
    """Plain dense assembly (the reference FP64 variant)."""
    layout = TileLayout(len(x), tile_size)
    blocks, _, _ = _generate_blocks(kernel, theta, x, layout, nugget)
    out = TileMatrix(layout)
    for key, block in blocks.items():
        out.set(*key, DenseTile(block, precision))
    return out


def build_planned_covariance(
    kernel: CovarianceKernel,
    theta: np.ndarray,
    x: np.ndarray,
    tile_size: int,
    *,
    nugget: float = 0.0,
    use_mp: bool = False,
    mp_mode: str = "adaptive",
    mp_accuracy: float = 1.0e-8,
    mp_fp64_band: int = 1,
    mp_fp32_band: int | None = None,
    mp_ladder: tuple[Precision, ...] = (Precision.FP16, Precision.FP32),
    use_tlr: bool = False,
    tlr_tol: float = DEFAULT_TLR_TOLERANCE,
    band_size: int | str = "auto",
    band_fluctuation: float = DEFAULT_BAND_FLUCTUATION,
    max_rank_fraction: float = DEFAULT_MAX_RANK_FRACTION,
    structure_mode: str = "rank",
    machine: MachineSpec = A64FX,
    min_precisions: "Precision | dict[tuple[int, int], Precision] | None" = None,
    force_dense: "bool | set[tuple[int, int]]" = False,
) -> tuple[TileMatrix, AssemblyReport]:
    """Full generation + decision pipeline.

    Returns the planned tile matrix and an :class:`AssemblyReport`
    (norms, ranks, the :class:`~repro.tile.decisions.TilePlan`).

    Parameters mirror the paper's knobs: ``use_mp`` enables the
    precision ladder (``mp_mode="adaptive"`` for the Frobenius rule,
    ``"band"`` for the legacy Fig. 2(c) band rule); ``use_tlr`` enables
    tile low-rank off the dense band with ``band_size`` either a fixed
    integer or ``"auto"`` (Algorithm 2).

    ``min_precisions`` (a global floor or a per-tile map) and
    ``force_dense`` (``True`` for all tiles, or a set of tile keys)
    override the automatic decisions — the rebuild hooks of the
    numerical recovery ladder (:mod:`repro.tile.recovery`).  The floor
    is applied *before* band tuning and the structure decision so the
    downstream pipeline stays self-consistent.
    """
    layout = TileLayout(len(x), tile_size)
    nt = layout.nt
    blocks, norms, global_norm = _generate_blocks(kernel, theta, x, layout, nugget)

    # --- precision decision -------------------------------------------------
    if use_mp:
        if mp_mode == "adaptive":
            precisions = frobenius_precision_map(
                norms, global_norm, nt, ladder=mp_ladder, u_high=mp_accuracy,
                tile_size=tile_size,
            )
        elif mp_mode == "band":
            precisions = band_precision_map(
                layout, fp64_band=mp_fp64_band, fp32_band=mp_fp32_band
            )
        else:
            raise ConfigurationError(f"unknown mp_mode {mp_mode!r}")
    else:
        precisions = {key: Precision.FP64 for key in layout.lower_tiles()}

    if min_precisions is not None:
        if isinstance(min_precisions, Precision):
            floors = {key: min_precisions for key in precisions}
        else:
            floors = min_precisions
        for key, floor in floors.items():
            if key in precisions and precisions[key] < floor:
                precisions[key] = floor

    # --- structure decision -------------------------------------------------
    ranks: dict[tuple[int, int], int] = {}
    factors: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    tile_tol = tlr_tol * global_norm / max(nt, 1)
    use_lr: dict[tuple[int, int], bool] = {
        key: False for key in layout.lower_tiles()
    }
    band_size_dense = 1
    if use_tlr:
        max_rank = int(max_rank_fraction * tile_size)
        for i, j in layout.lower_tiles():
            if i == j:
                continue
            u, v, _ = truncated_svd(blocks[(i, j)], tile_tol, max_rank=None)
            ranks[(i, j)] = u.shape[1]
            if u.shape[1] <= max_rank:
                factors[(i, j)] = (u, v)
        if band_size == "auto":
            band_size_dense = autotune_band_size(
                layout, ranks, precisions, machine, fluctuation=band_fluctuation
            )
        else:
            band_size_dense = int(band_size)
            if band_size_dense < 1:
                raise ConfigurationError("band_size must be >= 1")
        use_lr = structure_map(
            layout,
            ranks,
            precisions,
            machine,
            band_size_dense=band_size_dense,
            max_rank_fraction=max_rank_fraction,
            mode=structure_mode,
        )
        # A tile whose factors were not kept (rank too high) must stay dense.
        for key, flag in use_lr.items():
            if flag and key not in factors:
                use_lr[key] = False

    if force_dense:
        forced = set(use_lr) if force_dense is True else set(force_dense)
        for key in forced:
            if key in use_lr:
                use_lr[key] = False

    # --- materialize ----------------------------------------------------
    matrix = TileMatrix(layout)
    final_precisions: dict[tuple[int, int], Precision] = {}
    for key in layout.lower_tiles():
        p = precisions[key]
        if use_lr[key]:
            # TLR tiles never store FP16 (Algorithm 2: LR is FP64/FP32).
            p = Precision.FP32 if p is Precision.FP16 else p
            u, v = factors[key]
            matrix.set(*key, LowRankTile(u, v, p))
        else:
            matrix.set(*key, DenseTile(blocks[key], p))
        final_precisions[key] = p

    plan = TilePlan(
        layout=layout,
        precisions=final_precisions,
        use_lr=dict(use_lr),
        tlr_tol=tlr_tol,
        band_size_dense=band_size_dense,
        meta={"ranks": dict(ranks), "global_norm": global_norm, "tile_tol": tile_tol},
    )
    report = AssemblyReport(
        global_norm=global_norm,
        tile_norms=norms,
        ranks=ranks,
        tile_tol=tile_tol,
        plan=plan,
    )
    return matrix, report
