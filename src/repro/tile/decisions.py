"""Precision-aware and structure-aware tile decisions.

This module implements the two runtime decisions the paper adds to
PaRSEC (Section V-B):

1. **Precision-aware** (:func:`frobenius_precision_map`): a tile
   ``A_ij`` may be stored at a lower precision with unit roundoff
   ``u_low`` when

       ||A_ij||_F  <  u_high * ||A||_F / (NT * u_low),

   which keeps the aggregate perturbation at ``O(u_high * ||A||_F)``
   [39].  The brute-force band variant of earlier work (Fig. 2(c)) is
   :func:`band_precision_map`.

2. **Structure-aware** (:func:`structure_map`): an off-diagonal tile
   stays TLR only when the performance model says its low-rank GEMM is
   faster than the dense GEMM at the tile's precision (Fig. 5
   crossover); tiles inside the auto-tuned dense band
   (:mod:`repro.tile.bandtuning`) are forced dense.

The result is a :class:`TilePlan` — one (structure, precision) label
per lower-triangle tile — which the assembly applies and the reports
(Fig. 9 heat maps, memory footprints) summarize.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError
from ..perfmodel.kernelmodel import TaskShape, task_time
from ..perfmodel.machine import MachineSpec
from .layout import TileLayout
from .precision import Precision

__all__ = [
    "TilePlan",
    "frobenius_precision_map",
    "band_precision_map",
    "structure_map",
    "plan_summary",
]


@dataclass
class TilePlan:
    """Planned (structure, precision) label for each lower tile.

    ``use_lr[i][j]`` and ``precisions[i][j]`` are dictionaries keyed by
    tile index; helper accessors expose dense NT x NT arrays for the
    heat-map reports.
    """

    layout: TileLayout
    precisions: dict[tuple[int, int], Precision]
    use_lr: dict[tuple[int, int], bool]
    tlr_tol: float = 0.0
    band_size_dense: int = 1
    meta: dict = field(default_factory=dict)

    @property
    def nt(self) -> int:
        return self.layout.nt

    def precision_of(self, i: int, j: int) -> Precision:
        return self.precisions[(i, j)]

    def is_low_rank(self, i: int, j: int) -> bool:
        return self.use_lr[(i, j)]

    def precision_grid(self) -> np.ndarray:
        """NT x NT int array (lower triangle) of precision bit-widths;
        0 marks unstored (upper) entries.  This is the Fig. 9 map."""
        grid = np.zeros((self.nt, self.nt), dtype=np.int64)
        for (i, j), p in self.precisions.items():
            grid[i, j] = int(p)
        return grid

    def structure_grid(self) -> np.ndarray:
        """NT x NT array: 0 unstored, 1 dense, 2 low-rank."""
        grid = np.zeros((self.nt, self.nt), dtype=np.int64)
        for (i, j), lr in self.use_lr.items():
            grid[i, j] = 2 if lr else 1
        return grid

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for key, p in self.precisions.items():
            kind = "lr" if self.use_lr[key] else "dense"
            label = f"{kind}/{p.label}"
            out[label] = out.get(label, 0) + 1
        return out


def frobenius_precision_map(
    tile_norms: dict[tuple[int, int], float],
    global_norm: float,
    nt: int,
    *,
    ladder: tuple[Precision, ...] = (Precision.FP16, Precision.FP32),
    u_high: float = 1.0e-8,
    pin_diagonal: bool = True,
    tile_size: int | None = None,
) -> dict[tuple[int, int], Precision]:
    """Adaptive per-tile precision by the Frobenius-norm rule.

    Each tile gets the *lowest* precision in ``ladder`` whose threshold
    it passes, else FP64.  Diagonal tiles are pinned to FP64 when
    ``pin_diagonal`` (they feed POTRF, whose breakdown would abort the
    factorization).

    ``u_high`` is the accuracy the application demands of the stored
    matrix (the paper: "the precision-aware runtime decision depends
    only on the required accuracy of the application").  The paper's
    prose instantiates it as the FP64 machine epsilon; with that
    literal value essentially no tile ever qualifies for demotion, so —
    like the software — we default to the application tolerance the
    paper uses elsewhere (1e-8, the TLR accuracy).  The bound
    ``||A_hat - A||_F <= u_high * ||A||_F`` holds for any choice.

    When ``tile_size`` is given, the predicted per-tile storage error
    additionally budgets for IEEE underflow —
    ``min(||A_ij||, u_low ||A_ij|| + sqrt(m n) eta_low / 2)`` with
    ``eta_low`` the smallest subnormal — which matters for FP16
    (entries below ~6e-8 flush) and keeps the aggregate bound valid.
    """
    if global_norm < 0 or not np.isfinite(global_norm):
        raise ConfigurationError(f"invalid global norm {global_norm!r}")
    order = sorted(set(ladder))  # least accurate first
    budget = u_high * global_norm / nt
    out: dict[tuple[int, int], Precision] = {}
    for (i, j), norm in tile_norms.items():
        if pin_diagonal and i == j:
            out[(i, j)] = Precision.FP64
            continue
        chosen = Precision.FP64
        for p in order:
            predicted = p.unit_roundoff * norm
            if tile_size is not None:
                underflow = 0.5 * tile_size * p.smallest_subnormal
                predicted = min(norm, predicted + underflow)
            if predicted < budget:
                chosen = p
                break
        out[(i, j)] = chosen
    return out


def band_precision_map(
    layout: TileLayout,
    *,
    fp64_band: int,
    fp32_band: int | None = None,
) -> dict[tuple[int, int], Precision]:
    """Brute-force band precision of the earlier work (Fig. 2(c)).

    Tiles with ``|i - j| < fp64_band`` stay FP64, tiles with
    ``|i - j| < fp32_band`` become FP32, everything further out FP16.
    ``fp32_band=None`` means everything outside the FP64 band is FP32
    (the two-precision variant).
    """
    if fp64_band < 1:
        raise ConfigurationError("fp64_band must be >= 1 (the diagonal)")
    if fp32_band is not None and fp32_band < fp64_band:
        raise ConfigurationError("fp32_band must be >= fp64_band")
    out: dict[tuple[int, int], Precision] = {}
    for i, j in layout.lower_tiles():
        off = i - j
        if off < fp64_band:
            out[(i, j)] = Precision.FP64
        elif fp32_band is None or off < fp32_band:
            out[(i, j)] = Precision.FP32
        else:
            out[(i, j)] = Precision.FP16
    return out


def structure_map(
    layout: TileLayout,
    ranks: dict[tuple[int, int], int],
    precisions: dict[tuple[int, int], Precision],
    machine: MachineSpec | None,
    *,
    band_size_dense: int = 1,
    max_rank_fraction: float = 0.5,
    mode: str = "perfmodel",
) -> dict[tuple[int, int], bool]:
    """Structure-aware decision: keep a tile low-rank only when the
    modeled TLR GEMM beats the dense GEMM at the tile's precision.

    ``ranks`` gives the compression rank observed for each off-diagonal
    tile right after generation (the paper makes the decision "right
    after the generation/compression of the matrix").  Tiles within
    ``band_size_dense`` of the diagonal are dense by construction.
    TLR tiles never use FP16 (Algorithm 2 lists FP64/FP32 only), so an
    FP16-planned tile is evaluated at FP32 for the comparison.

    ``mode="perfmodel"`` applies the paper's machine-model comparison —
    appropriate at production tile sizes (hundreds to thousands), where
    the Fig. 5 crossover rank is meaningful.  ``mode="rank"`` keeps any
    tile whose rank is below ``max_rank_fraction * tile_size`` — the
    scale-independent criterion used for the numerical experiments in
    this repository, whose tiles are far smaller than the model's
    crossover regime.
    """
    if mode not in ("perfmodel", "rank"):
        raise ConfigurationError(f"unknown structure mode {mode!r}")
    if mode == "perfmodel" and machine is None:
        raise ConfigurationError("perfmodel structure mode needs a MachineSpec")
    b = layout.tile_size
    out: dict[tuple[int, int], bool] = {}
    hard_cap = int(max_rank_fraction * b)
    for i, j in layout.lower_tiles():
        if i - j < band_size_dense:
            out[(i, j)] = False
            continue
        rank = ranks.get((i, j))
        if rank is None:
            out[(i, j)] = False
            continue
        if rank > hard_cap:
            out[(i, j)] = False
            continue
        if mode == "rank":
            out[(i, j)] = True
            continue
        prec = precisions.get((i, j), Precision.FP64)
        lr_prec = Precision.FP32 if prec is Precision.FP16 else prec
        t_lr = task_time(
            TaskShape("gemm", b, lr_prec, low_rank=True, ranks=(rank, rank, rank)),
            machine,
        )
        t_dense = task_time(TaskShape("gemm", b, prec), machine)
        out[(i, j)] = t_lr < t_dense
    return out


def plan_summary(plan: TilePlan) -> dict[str, float]:
    """Aggregate statistics of a plan: class counts, planned memory
    footprint vs the dense-FP64 baseline (the Fig. 9 "MF" numbers),
    assuming planned ranks stored in ``plan.meta['ranks']`` for LR
    tiles (falls back to half the crossover-free tile)."""
    layout = plan.layout
    b = layout.tile_size
    ranks: dict[tuple[int, int], int] = plan.meta.get("ranks", {})
    planned = 0.0
    baseline = 0.0
    for i, j in layout.lower_tiles():
        m, n = layout.tile_shape(i, j)
        baseline += 8.0 * m * n
        p = plan.precisions[(i, j)]
        if plan.use_lr[(i, j)]:
            rank = ranks.get((i, j), b // 2)
            planned += p.itemsize * rank * (m + n)
        else:
            planned += p.itemsize * m * n
    counts = plan.counts()
    out: dict[str, float] = {f"count[{k}]": float(v) for k, v in counts.items()}
    out["bytes_planned"] = planned
    out["bytes_dense_fp64"] = baseline
    out["memory_reduction"] = 1.0 - planned / baseline if baseline else 0.0
    out["band_size_dense"] = float(plan.band_size_dense)
    return out
