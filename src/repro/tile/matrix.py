"""Symmetric-lower tiled matrix container.

A :class:`TileMatrix` holds the lower triangle (``j <= i``) of a
symmetric matrix as a dictionary of tiles, each independently dense or
low-rank and carrying its own storage precision — exactly the
heterogeneous object the paper's runtime schedules over.

The container is deliberately dumb: numerical kernels live in
:mod:`repro.tile.kernels`, planning in :mod:`repro.tile.decisions`.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..exceptions import ShapeError
from .layout import TileLayout
from .precision import Precision
from .tile import DenseTile, LowRankTile, Tile

__all__ = ["TileMatrix"]


class TileMatrix:
    """Lower-triangular tiled storage of a symmetric ``n x n`` matrix."""

    def __init__(self, layout: TileLayout):
        self.layout = layout
        self._tiles: dict[tuple[int, int], Tile] = {}

    # ------------------------------------------------------------------
    # basic access
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.layout.n

    @property
    def nt(self) -> int:
        return self.layout.nt

    def _check_key(self, i: int, j: int) -> None:
        if not (0 <= j <= i < self.nt):
            raise ShapeError(
                f"tile ({i}, {j}) outside the stored lower triangle "
                f"(nt={self.nt})"
            )

    def get(self, i: int, j: int) -> Tile:
        self._check_key(i, j)
        try:
            return self._tiles[(i, j)]
        except KeyError:
            raise ShapeError(f"tile ({i}, {j}) has not been set") from None

    def set(self, i: int, j: int, tile: Tile) -> None:
        self._check_key(i, j)
        expected = self.layout.tile_shape(i, j)
        if tile.shape != expected:
            raise ShapeError(
                f"tile ({i}, {j}) must have shape {expected}, got {tile.shape}"
            )
        self._tiles[(i, j)] = tile

    def has(self, i: int, j: int) -> bool:
        return (i, j) in self._tiles

    def items(self) -> Iterator[tuple[tuple[int, int], Tile]]:
        return iter(sorted(self._tiles.items()))

    def keys(self) -> list[tuple[int, int]]:
        return sorted(self._tiles)

    @property
    def complete(self) -> bool:
        """True when every lower-triangle tile is present."""
        return len(self._tiles) == self.nt * (self.nt + 1) // 2

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        a: np.ndarray,
        tile_size: int,
        precision: Precision = Precision.FP64,
    ) -> "TileMatrix":
        """Tile the lower triangle of a symmetric dense matrix."""
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ShapeError(f"expected a square matrix, got shape {a.shape}")
        layout = TileLayout(a.shape[0], tile_size)
        out = cls(layout)
        for i, j in layout.lower_tiles():
            block = a[layout.block_slice(i), layout.block_slice(j)]
            out.set(i, j, DenseTile(np.array(block, dtype=np.float64), precision))
        return out

    def to_dense(self, *, lower_only: bool = False) -> np.ndarray:
        """Materialize as a float64 array; the upper triangle is
        mirrored from the lower unless ``lower_only``."""
        if not self.complete:
            raise ShapeError("matrix has missing tiles")
        a = np.zeros((self.n, self.n), dtype=np.float64)
        for (i, j), tile in self.items():
            block = tile.to_dense64()
            a[self.layout.block_slice(i), self.layout.block_slice(j)] = block
            if not lower_only and i != j:
                a[self.layout.block_slice(j), self.layout.block_slice(i)] = block.T
        if lower_only:
            a = np.tril(a)
        return a

    # ------------------------------------------------------------------
    # statistics used by the decision logic and by reports
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self._tiles.values())

    def dense_fp64_nbytes(self) -> int:
        """Footprint if every stored tile were dense FP64 (the paper's
        memory-footprint baseline)."""
        return sum(
            8 * self.layout.block_size(i) * self.layout.block_size(j)
            for (i, j) in self._tiles
        )

    def tile_norms(self) -> dict[tuple[int, int], float]:
        """Frobenius norm of every stored tile."""
        out = {}
        for key, tile in self._tiles.items():
            if isinstance(tile, LowRankTile):
                if tile.rank == 0:
                    out[key] = 0.0
                else:
                    # ||U V^T||_F via the small Gram matrices.
                    gu = tile.u.astype(np.float64).T @ tile.u.astype(np.float64)
                    gv = tile.v.astype(np.float64).T @ tile.v.astype(np.float64)
                    out[key] = float(np.sqrt(max(np.sum(gu * gv), 0.0)))
            else:
                out[key] = float(np.linalg.norm(tile.to_dense64()))
        return out

    def global_fro_norm(self) -> float:
        """Frobenius norm of the full symmetric matrix, accumulated
        tile-by-tile (off-diagonal tiles counted twice) — the quantity
        the paper accumulates during generation so the global matrix
        never needs to be stored."""
        total = 0.0
        for (i, j), norm in self.tile_norms().items():
            weight = 1.0 if i == j else 2.0
            total += weight * norm * norm
        return float(np.sqrt(total))

    def structure_counts(self) -> dict[str, int]:
        """Tile counts by (structure, precision) class, e.g.
        ``{"dense/FP64": 10, "lr/FP32": 35}``."""
        counts: dict[str, int] = {}
        for tile in self._tiles.values():
            kind = "lr" if tile.is_low_rank else "dense"
            key = f"{kind}/{tile.precision.label}"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def max_rank(self) -> int:
        """Largest rank among low-rank tiles (0 when none)."""
        ranks = [
            t.rank for t in self._tiles.values() if isinstance(t, LowRankTile)
        ]
        return max(ranks, default=0)

    def copy(self) -> "TileMatrix":
        """Deep copy (tiles' arrays are copied)."""
        out = TileMatrix(self.layout)
        for (i, j), tile in self._tiles.items():
            if isinstance(tile, LowRankTile):
                out._tiles[(i, j)] = LowRankTile(
                    tile.u.copy(), tile.v.copy(), tile.precision
                )
            else:
                out._tiles[(i, j)] = DenseTile(tile.data.copy(), tile.precision)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TileMatrix(n={self.n}, nt={self.nt}, tiles={len(self._tiles)}, "
            f"nbytes={self.nbytes})"
        )
