"""Floating-point precision ladder (FP64 / FP32 / FP16).

The paper stores each tile in one of the three IEEE-754 binary formats
and converts operands on demand when a kernel needs them in a different
precision.  We emulate the exact storage semantics with NumPy dtypes;
*arithmetic* on FP16-stored tiles follows the paper's SHGEMM
convention: operands rounded to binary16, accumulation in binary32
("FP16 with FP32 accumulation", Section VI-E / Fig. 8).

``unit_roundoff`` values are those of the round-to-nearest formats
(2^-53, 2^-24, 2^-11); they drive the Frobenius-norm precision rule in
:mod:`repro.tile.decisions`.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["Precision", "cast_storage", "compute_dtype", "PRECISION_LADDER"]


class Precision(enum.IntEnum):
    """Storage precision of a tile.

    The integer values order the ladder by accuracy so that
    ``min(p, q)`` is the *less* accurate of two precisions and
    comparisons read naturally (``FP16 < FP32 < FP64``).
    """

    FP16 = 16
    FP32 = 32
    FP64 = 64

    @property
    def dtype(self) -> np.dtype:
        return _DTYPES[self]

    @property
    def unit_roundoff(self) -> float:
        return _ROUNDOFF[self]

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.value // 8

    @property
    def smallest_subnormal(self) -> float:
        """Smallest positive representable value — values below it
        flush to zero on storage, which the precision rule must budget
        for (FP16's is large enough to matter: ~6e-8)."""
        return _SUBNORMAL[self]

    @property
    def label(self) -> str:
        return f"FP{self.value}"

    @classmethod
    def from_any(cls, value: "Precision | str | int | np.dtype") -> "Precision":
        """Coerce strings ('fp32'), ints (32), dtypes, or members."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            name = value.upper().removeprefix("FP")
            return cls(int(name))
        if isinstance(value, (int, np.integer)):
            return cls(int(value))
        dt = np.dtype(value)
        for member, d in _DTYPES.items():
            if d == dt:
                return member
        raise ValueError(f"cannot interpret {value!r} as a Precision")


_DTYPES = {
    Precision.FP64: np.dtype(np.float64),
    Precision.FP32: np.dtype(np.float32),
    Precision.FP16: np.dtype(np.float16),
}

_ROUNDOFF = {
    Precision.FP64: 2.0**-53,
    Precision.FP32: 2.0**-24,
    Precision.FP16: 2.0**-11,
}

_SUBNORMAL = {
    Precision.FP64: 2.0**-1074,
    Precision.FP32: 2.0**-149,
    Precision.FP16: 2.0**-24,
}

#: Ladder from least to most accurate; decision code iterates this to
#: find the cheapest admissible storage for a tile.
PRECISION_LADDER: tuple[Precision, ...] = (
    Precision.FP16,
    Precision.FP32,
    Precision.FP64,
)


def cast_storage(array: np.ndarray, precision: Precision) -> np.ndarray:
    """Round ``array`` into the storage dtype of ``precision``.

    A no-op (returns the same object) when the dtype already matches —
    callers rely on that to avoid copies on the FP64 fast path.
    """
    target = precision.dtype
    if array.dtype == target:
        return array
    return array.astype(target)


def compute_dtype(precision: Precision, *, fp16_accumulate_fp32: bool = True) -> np.dtype:
    """Arithmetic dtype used for a kernel whose lead (output) operand is
    stored at ``precision``.

    FP16 tiles are computed with binary32 accumulation by default
    (emulated SHGEMM); passing ``fp16_accumulate_fp32=False`` emulates a
    pure HGEMM, which the paper notes is numerically insufficient for
    the MLE application.
    """
    if precision is Precision.FP16:
        return np.dtype(np.float32) if fp16_accumulate_fp32 else np.dtype(np.float16)
    return precision.dtype
