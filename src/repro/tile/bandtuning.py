"""Algorithm 2 of the paper: auto-tuning ``band_size_dense``.

After the covariance matrix is generated and compressed with
``band_size_dense = 1`` (only the diagonal dense), the rank
distribution is globalized and the dense band is grown one
sub-diagonal at a time: sub-diagonal ``ID`` joins the dense band while
the modeled dense time of its TRSM+GEMM tasks is below
``fluctuation x`` the modeled TLR time of the same tasks.  Dense tasks
may run in FP64/FP32/FP16; TLR tasks only in FP64/FP32.

The routine needs only the per-tile ranks and planned precisions — no
numerical data — so it also runs at paper scale inside the scaling
benchmarks.
"""

from __future__ import annotations

from ..config import DEFAULT_BAND_FLUCTUATION
from ..perfmodel.kernelmodel import TaskShape, task_time
from ..perfmodel.machine import MachineSpec
from .layout import TileLayout
from .precision import Precision

__all__ = ["subdiagonal_times", "autotune_band_size"]


def _lr_precision(p: Precision) -> Precision:
    """TLR tasks are restricted to FP64/FP32 (Algorithm 2)."""
    return Precision.FP32 if p is Precision.FP16 else p


def subdiagonal_times(
    layout: TileLayout,
    band_id: int,
    ranks: dict[tuple[int, int], int],
    precisions: dict[tuple[int, int], Precision],
    machine: MachineSpec,
) -> tuple[float, float]:
    """Modeled (dense, TLR) total time of the TRSM and GEMM tasks whose
    *output* tile sits on sub-diagonal ``band_id`` (``i - j == band_id``).

    Each such tile ``(j + band_id, j)`` receives one TRSM per Cholesky
    step ``k = j`` and one GEMM per step ``k < j``; we charge the
    per-step costs accordingly, which reproduces Algorithm 2's
    "total time-to-solution of TRSM and GEMM of all tiles in
    sub-diagonal with band_ID = ID".
    """
    b = layout.tile_size
    nt = layout.nt
    dense_total = 0.0
    tlr_total = 0.0
    for j in range(nt - band_id):
        i = j + band_id
        p = precisions.get((i, j), Precision.FP64)
        rank = ranks.get((i, j), b // 2)
        gemm_count = j  # one GEMM update per previous panel
        # Dense execution (precision may be FP64/FP32/FP16).
        dense_total += task_time(TaskShape("trsm", b, p), machine)
        if gemm_count:
            dense_total += gemm_count * task_time(TaskShape("gemm", b, p), machine)
        # TLR execution (precision restricted to FP64/FP32).
        lp = _lr_precision(p)
        tlr_total += task_time(
            TaskShape("trsm", b, lp, low_rank=True, ranks=(rank,)), machine
        )
        if gemm_count:
            tlr_total += gemm_count * task_time(
                TaskShape(
                    "gemm", b, lp, low_rank=True, ranks=(rank, rank, rank)
                ),
                machine,
            )
    return dense_total, tlr_total


def autotune_band_size(
    layout: TileLayout,
    ranks: dict[tuple[int, int], int],
    precisions: dict[tuple[int, int], Precision],
    machine: MachineSpec,
    *,
    fluctuation: float = DEFAULT_BAND_FLUCTUATION,
    max_band: int | None = None,
) -> int:
    """Algorithm 2: grow the dense band while dense execution of the
    next sub-diagonal is cheaper than ``fluctuation x`` its TLR
    execution.  Returns ``band_size_dense >= 1`` (1 = only the diagonal
    dense)."""
    if fluctuation <= 0.0:
        raise ValueError("fluctuation must be positive")
    nt = layout.nt
    max_band = nt if max_band is None else min(max_band, nt)
    band_id = 1
    while band_id < max_band:
        dense_t, tlr_t = subdiagonal_times(
            layout, band_id, ranks, precisions, machine
        )
        if dense_t < fluctuation * tlr_t:
            band_id += 1
        else:
            break
    return band_id
