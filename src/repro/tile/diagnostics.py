"""Numerical diagnostics on tiled operators and factors.

Condition estimation tells the user whether the precision budget of an
adaptive plan is adequate: the forward error of a solve scales like
``cond(A) * storage_error``, so a 1e-8-accurate matrix with condition
1e6 leaves ~2 digits.  Both estimators use only tile-wise products and
solves, never densifying the operator.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .matrix import TileMatrix
from .solve import backward_solve, forward_solve, symmetric_matvec

__all__ = ["power_norm_estimate", "condition_estimate"]


def power_norm_estimate(
    a: TileMatrix, *, iterations: int = 20, seed: int = 0
) -> float:
    """Largest eigenvalue of a symmetric tiled matrix by power
    iteration (2-norm for SPD operators)."""
    if iterations < 1:
        raise ShapeError("need at least one iteration")
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(a.n)
    v /= np.linalg.norm(v)
    lam = 0.0
    for _ in range(iterations):
        w = symmetric_matvec(a, v)
        lam = float(np.linalg.norm(w))
        if lam == 0.0:
            return 0.0
        v = w / lam
    return lam


def condition_estimate(
    a: TileMatrix,
    factor: TileMatrix,
    *,
    iterations: int = 20,
    seed: int = 0,
) -> float:
    """2-norm condition number estimate ``lambda_max(A) / lambda_min(A)``.

    ``lambda_max`` by power iteration on ``A``; ``1/lambda_min`` by
    power iteration on ``A^{-1}`` applied through the (possibly
    approximate) Cholesky factor.  With an approximate factor the
    result estimates the condition of the *approximated* operator,
    which is the relevant one for the solve's stability.
    """
    if factor.n != a.n:
        raise ShapeError("factor dimension mismatch")
    lam_max = power_norm_estimate(a, iterations=iterations, seed=seed)
    rng = np.random.default_rng(seed + 1)
    v = rng.standard_normal(a.n)
    v /= np.linalg.norm(v)
    inv_lam = 0.0
    for _ in range(iterations):
        w = backward_solve(factor, forward_solve(factor, v))
        inv_lam = float(np.linalg.norm(w))
        if inv_lam == 0.0:
            return np.inf
        v = w / inv_lam
    return lam_max * inv_lam
