"""Cross-iteration geometry caching for the MLE hot path.

Each objective evaluation of :func:`~repro.core.mle.fit_mle` rebuilds
the planned covariance at a new ``theta`` — but every distance matrix,
space-time lag pair, and coordinate difference depends only on the
*locations* and the tile layout.  A :class:`TileGeometry` precomputes
those per-tile quantities once (via the kernel's
:meth:`~repro.kernels.base.CovarianceKernel.prepare_geometry`) and the
assembly pipeline replays them at every ``theta`` through
:meth:`~repro.kernels.base.CovarianceKernel.from_geometry`.

:class:`GeometryCache` keys entries on a content hash of the location
array (plus tile size and the kernel's declared geometry layout), so a
changed ``x`` can never silently reuse stale geometry — re-ordering,
subsetting, or perturbing a single coordinate changes the key.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ShapeError
from ..kernels.base import CovarianceKernel
from ..kernels.distance import as_locations
from .layout import TileLayout

__all__ = [
    "TileGeometry",
    "GeometryCache",
    "build_tile_geometry",
    "locations_fingerprint",
]


def locations_fingerprint(x: np.ndarray) -> str:
    """Content hash of a canonicalized location array.

    Two arrays share a fingerprint iff they are element-wise identical
    in canonical ``(n, d)`` float64 form — the invariant that makes
    stale cache reuse impossible.
    """
    arr = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
    digest = hashlib.sha1(arr.tobytes())
    digest.update(str(arr.shape).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class TileGeometry:
    """Theta-independent per-tile geometry for one
    ``(kernel geometry layout, locations, tile size)`` triple."""

    layout: TileLayout
    geometry_key: str
    fingerprint: str
    tiles: dict[tuple[int, int], object] = field(repr=False)

    def tile(self, i: int, j: int) -> object:
        try:
            return self.tiles[(i, j)]
        except KeyError:
            raise ShapeError(f"no geometry for tile ({i}, {j})") from None

    def matches(self, kernel: CovarianceKernel, n: int, tile_size: int) -> bool:
        return (
            self.geometry_key == kernel.geometry_key()
            and self.layout.n == n
            and self.layout.tile_size == tile_size
        )

    @property
    def nbytes(self) -> int:
        """Approximate footprint of the cached arrays."""
        total = 0
        for geom in self.tiles.values():
            for value in vars(geom).values():
                if isinstance(value, np.ndarray):
                    total += value.nbytes
        return total


def build_tile_geometry(
    kernel: CovarianceKernel, x: np.ndarray, tile_size: int
) -> TileGeometry:
    """Precompute geometry for every lower tile of the covariance.

    Diagonal tiles are prepared in same-set form so exact-zero
    self-distances survive, matching the direct assembly path bit for
    bit."""
    x = as_locations(x, dim=kernel.ndim_locations)
    layout = TileLayout(len(x), tile_size)
    tiles: dict[tuple[int, int], object] = {}
    for i, j in layout.lower_tiles():
        rows = x[layout.block_slice(i)]
        if i == j:
            tiles[(i, j)] = kernel.prepare_geometry(rows)
        else:
            tiles[(i, j)] = kernel.prepare_geometry(rows, x[layout.block_slice(j)])
    return TileGeometry(
        layout=layout,
        geometry_key=kernel.geometry_key(),
        fingerprint=locations_fingerprint(x),
        tiles=tiles,
    )


class GeometryCache:
    """Small LRU of precomputed geometry, shared across evaluations.

    Thread-safe; one instance is typically owned by a single
    :func:`~repro.core.mle.fit_mle` call (fresh per fit) or by an
    :class:`~repro.core.model.ExaGeoStatModel`.
    """

    def __init__(self, maxsize: int = 4):
        if maxsize < 1:
            raise ShapeError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._tiled: OrderedDict[tuple, TileGeometry] = OrderedDict()
        self._pairs: OrderedDict[tuple, object] = OrderedDict()

    # ------------------------------------------------------------------
    def tile_geometry(
        self, kernel: CovarianceKernel, x: np.ndarray, tile_size: int
    ) -> TileGeometry:
        """Cached :func:`build_tile_geometry` keyed on content."""
        x = as_locations(x, dim=kernel.ndim_locations)
        key = (kernel.geometry_key(), locations_fingerprint(x), int(tile_size))
        with self._lock:
            hit = self._tiled.get(key)
            if hit is not None:
                self.hits += 1
                self._tiled.move_to_end(key)
                return hit
            self.misses += 1
        built = build_tile_geometry(kernel, x, tile_size)
        with self._lock:
            # Deliberate two-phase fill: the expensive geometry build
            # runs unlocked, and a racing thread's duplicate insert is
            # idempotent (same content key -> same value), so the
            # check-then-act split is benign.
            self._tiled[key] = built  # lockcheck: ignore[LOCK005]
            while len(self._tiled) > self.maxsize:
                self._tiled.popitem(last=False)
        return built

    def pair_geometry(
        self,
        kernel: CovarianceKernel,
        x1: np.ndarray,
        x2: np.ndarray | None = None,
    ) -> object:
        """Cached cross-pair geometry (the kriging cross-covariance
        blocks of repeated predictions)."""
        x1 = as_locations(x1, dim=kernel.ndim_locations)
        fp2 = "=" if x2 is None else locations_fingerprint(
            as_locations(x2, dim=kernel.ndim_locations)
        )
        key = (kernel.geometry_key(), locations_fingerprint(x1), fp2)
        with self._lock:
            hit = self._pairs.get(key)
            if hit is not None:
                self.hits += 1
                self._pairs.move_to_end(key)
                return hit
            self.misses += 1
        built = kernel.prepare_geometry(x1, x2)
        with self._lock:
            # Same two-phase fill as tile_geometry: duplicate inserts
            # under the same content key are idempotent.
            self._pairs[key] = built  # lockcheck: ignore[LOCK005]
            while len(self._pairs) > self.maxsize:
                self._pairs.popitem(last=False)
        return built

    def clear(self) -> None:
        with self._lock:
            self._tiled.clear()
            self._pairs.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GeometryCache(entries={len(self._tiled) + len(self._pairs)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
