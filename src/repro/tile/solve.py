"""Triangular solves and determinant against a tiled Cholesky factor.

The MLE pipeline needs, per likelihood evaluation (paper Eq. 1):

* ``log|Sigma| = 2 * sum_k log diag(L_kk)``  (:func:`tile_logdet`);
* one forward + (for prediction) backward substitution against a
  block-partitioned right-hand side (:func:`forward_solve`,
  :func:`backward_solve`).

Right-hand sides stay float64 dense (they are thin: 1 to a few hundred
columns); factor tiles are applied in float64 after an exact up-cast
from their storage precision, so low-precision storage — not the solve
arithmetic — is the only approximation, matching the paper's setup.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from ..exceptions import ShapeError
from .matrix import TileMatrix
from .tile import LowRankTile, Tile

__all__ = [
    "tile_apply",
    "forward_solve",
    "backward_solve",
    "tile_logdet",
    "symmetric_matvec",
]


def tile_apply(tile: Tile, x: np.ndarray, *, transpose: bool = False) -> np.ndarray:
    """``tile @ x`` (or ``tile.T @ x``) in float64, rank-aware."""
    if isinstance(tile, LowRankTile):
        if tile.rank == 0:
            rows = tile.shape[1] if not transpose else tile.shape[0]
            out_rows = tile.shape[0] if not transpose else tile.shape[1]
            if x.shape[0] != rows:
                raise ShapeError("dimension mismatch in tile_apply")
            return np.zeros((out_rows,) + x.shape[1:], dtype=np.float64)
        u = tile.u.astype(np.float64)
        v = tile.v.astype(np.float64)
        if transpose:
            return v @ (u.T @ x)
        return u @ (v.T @ x)
    data = tile.to_dense64()
    return data.T @ x if transpose else data @ x


def _check_rhs(l_matrix: TileMatrix, b: np.ndarray) -> np.ndarray:
    rhs = np.asarray(b, dtype=np.float64)
    if rhs.shape[0] != l_matrix.n:
        raise ShapeError(
            f"rhs has {rhs.shape[0]} rows, factor dimension is {l_matrix.n}"
        )
    return rhs.copy()


def forward_solve(l_matrix: TileMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` by block forward substitution."""
    y = _check_rhs(l_matrix, b)
    layout = l_matrix.layout
    for i in range(layout.nt):
        sl_i = layout.block_slice(i)
        acc = y[sl_i]
        for j in range(i):
            acc -= tile_apply(l_matrix.get(i, j), y[layout.block_slice(j)])
        lii = l_matrix.get(i, i).to_dense64()
        y[sl_i] = sla.solve_triangular(lii, acc, lower=True, check_finite=False)
    return y


def backward_solve(l_matrix: TileMatrix, y: np.ndarray) -> np.ndarray:
    """Solve ``L^T x = y`` by block backward substitution."""
    x = _check_rhs(l_matrix, y)
    layout = l_matrix.layout
    for i in range(layout.nt - 1, -1, -1):
        sl_i = layout.block_slice(i)
        acc = x[sl_i]
        for j in range(i + 1, layout.nt):
            # (L^T)_{ij} = L_{ji}^T, with L_{ji} stored at (j, i).
            acc -= tile_apply(
                l_matrix.get(j, i), x[layout.block_slice(j)], transpose=True
            )
        lii = l_matrix.get(i, i).to_dense64()
        x[sl_i] = sla.solve_triangular(
            lii, acc, lower=True, trans="T", check_finite=False
        )
    return x


def tile_logdet(l_matrix: TileMatrix) -> float:
    """``log|A| = 2 sum log diag(L)`` from the factor's diagonal tiles."""
    total = 0.0
    for k in range(l_matrix.nt):
        diag = np.diag(l_matrix.get(k, k).to_dense64())
        if np.any(diag <= 0.0):
            raise ShapeError("factor has non-positive diagonal entries")
        total += float(np.sum(np.log(diag)))
    return 2.0 * total


def symmetric_matvec(a: TileMatrix, x: np.ndarray) -> np.ndarray:
    """``A @ x`` for a symmetric tiled matrix stored lower —
    used to verify solve residuals without densifying ``A``."""
    xx = np.asarray(x, dtype=np.float64)
    if xx.shape[0] != a.n:
        raise ShapeError("dimension mismatch in symmetric_matvec")
    out = np.zeros_like(xx, dtype=np.float64)
    layout = a.layout
    for (i, j), tile in a.items():
        sl_i, sl_j = layout.block_slice(i), layout.block_slice(j)
        out[sl_i] += tile_apply(tile, xx[sl_j])
        if i != j:
            out[sl_j] += tile_apply(tile, xx[sl_i], transpose=True)
    return out
