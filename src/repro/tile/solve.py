"""Multi-RHS triangular solves and determinant against a tiled factor.

The MLE pipeline needs, per likelihood evaluation (paper Eq. 1):

* ``log|Sigma| = 2 * sum_k log diag(L_kk)``  (:func:`tile_logdet`);
* one forward + (for prediction) backward substitution against a
  block-partitioned right-hand side (:func:`forward_solve`,
  :func:`backward_solve`).

The *serving* side (paper Eqs. 4-5) hits the same factor far more
often: every kriging mean, variance half-solve, and conditional
simulation is a triangular solve against the factor of the fitted
training covariance.  :class:`PanelSolver` owns those repeated solves:
it materializes each tile's float64 operands exactly once (one
precision up-cast per tile for the solver's whole lifetime) and runs
every substitution as a BLAS-3 panel update over the full ``(n, k)``
right-hand-side block — never k independent column sweeps.

Right-hand sides stay float64 dense (they are thin: 1 to a few hundred
columns); factor tiles are applied in float64 after an exact up-cast
from their storage precision, so low-precision storage — not the solve
arithmetic — is the only approximation, matching the paper's setup.
Dense-FP64 results are bit-identical to the historical per-call path:
the cached operand is the same array :meth:`~repro.tile.tile.Tile.to_dense64`
would produce, applied in the same tile order with the same
accumulation arithmetic.
"""

from __future__ import annotations

import threading

import numpy as np
from scipy import linalg as sla

from ..exceptions import ShapeError
from .matrix import TileMatrix
from .tile import LowRankTile, Tile

__all__ = [
    "PanelSolver",
    "tile_apply",
    "forward_solve",
    "backward_solve",
    "apply_lower",
    "tile_logdet",
    "symmetric_matvec",
]


def tile_apply(tile: Tile, x: np.ndarray, *, transpose: bool = False) -> np.ndarray:
    """``tile @ x`` (or ``tile.T @ x``) in float64, rank-aware."""
    if isinstance(tile, LowRankTile):
        if tile.rank == 0:
            rows = tile.shape[1] if not transpose else tile.shape[0]
            out_rows = tile.shape[0] if not transpose else tile.shape[1]
            if x.shape[0] != rows:
                raise ShapeError("dimension mismatch in tile_apply")
            return np.zeros((out_rows,) + x.shape[1:], dtype=np.float64)
        u = tile.u.astype(np.float64)
        v = tile.v.astype(np.float64)
        if transpose:
            return v @ (u.T @ x)
        return u @ (v.T @ x)
    data = tile.to_dense64()
    return data.T @ x if transpose else data @ x


class PanelSolver:
    """Amortized multi-RHS solves against one tile Cholesky factor.

    The solver caches, per tile, the float64 operand the solve
    arithmetic consumes — the dense block for :class:`DenseTile`, the
    ``(u, v)`` factor pair for :class:`LowRankTile` (kept factored so
    panel applies stay rank-aware) — so repeated solves pay the
    storage-precision up-cast exactly once per tile instead of once per
    call.  All substitutions operate on the whole ``(n, k)`` panel with
    ``trsm``/``gemm``-shaped updates.

    Thread-safe for concurrent solves: cache fills are idempotent
    (worst case a race re-materializes one tile) and solves never
    mutate shared state, so a warm solver can serve parallel predict
    batches.
    """

    def __init__(self, factor: TileMatrix):
        self.factor = factor
        self._dense: dict[tuple[int, int], np.ndarray] = {}
        self._lr: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        self._tril: dict[int, np.ndarray] = {}
        self._lock = threading.Lock()
        self.casts = 0  # tile materializations (amortization telemetry)
        self.solves = 0  # forward/backward/apply_lower sweeps served

    # ------------------------------------------------------------------
    # cached per-tile operands
    # ------------------------------------------------------------------
    def _operand(self, i: int, j: int):
        """Float64 operand of tile ``(i, j)``: an ndarray for dense
        tiles, a ``(u, v)`` pair for low-rank ones, ``None`` for
        rank-0 (exact-zero) tiles."""
        key = (i, j)
        hit = self._dense.get(key)
        if hit is not None:
            return hit
        hit = self._lr.get(key)
        if hit is not None:
            return hit if hit[0].shape[1] else None
        tile = self.factor.get(i, j)
        with self._lock:
            self.casts += 1
        if isinstance(tile, LowRankTile):
            pair = (
                np.asarray(tile.u, dtype=np.float64),
                np.asarray(tile.v, dtype=np.float64),
            )
            self._lr[key] = pair
            return pair if tile.rank else None
        data = tile.to_dense64()
        self._dense[key] = data
        return data

    def _diag(self, i: int) -> np.ndarray:
        """Dense float64 diagonal block (as stored; used by the
        triangular solves, which only read its lower triangle)."""
        op = self._operand(i, i)
        if not isinstance(op, np.ndarray):
            raise ShapeError(f"diagonal tile ({i}, {i}) is not dense")
        return op

    def _tril_diag(self, i: int) -> np.ndarray:
        """Strict lower triangle of the diagonal block, for ``L @ x``."""
        hit = self._tril.get(i)
        if hit is None:
            hit = np.tril(self._diag(i))
            self._tril[i] = hit
        return hit

    def _sub_apply(
        self, acc: np.ndarray, i: int, j: int, x: np.ndarray, *, transpose: bool
    ) -> None:
        """``acc -= L_ij @ x`` (or ``L_ij^T @ x``) from the cached
        operand — the same arithmetic ``tile_apply`` performs, minus
        the per-call cast."""
        op = self._operand(i, j)
        if op is None:  # rank-0 tile: subtracting exact zeros is a no-op
            return
        if isinstance(op, np.ndarray):
            acc -= op.T @ x if transpose else op @ x
        else:
            u, v = op
            acc -= v @ (u.T @ x) if transpose else u @ (v.T @ x)

    def _check_rhs(self, b: np.ndarray) -> np.ndarray:
        rhs = np.asarray(b, dtype=np.float64)
        if rhs.shape[0] != self.factor.n:
            raise ShapeError(
                f"rhs has {rhs.shape[0]} rows, factor dimension is "
                f"{self.factor.n}"
            )
        return rhs.copy()

    # ------------------------------------------------------------------
    # panel solves
    # ------------------------------------------------------------------
    def forward(self, b: np.ndarray) -> np.ndarray:
        """Solve ``L y = b`` by blocked forward substitution over the
        whole ``(n,)`` or ``(n, k)`` panel."""
        y = self._check_rhs(b)
        layout = self.factor.layout
        for i in range(layout.nt):
            sl_i = layout.block_slice(i)
            acc = y[sl_i]
            for j in range(i):
                self._sub_apply(
                    acc, i, j, y[layout.block_slice(j)], transpose=False
                )
            y[sl_i] = sla.solve_triangular(
                self._diag(i), acc, lower=True, check_finite=False
            )
        with self._lock:
            self.solves += 1
        return y

    def backward(self, y: np.ndarray) -> np.ndarray:
        """Solve ``L^T x = y`` by blocked backward substitution over
        the whole panel."""
        x = self._check_rhs(y)
        layout = self.factor.layout
        for i in range(layout.nt - 1, -1, -1):
            sl_i = layout.block_slice(i)
            acc = x[sl_i]
            for j in range(i + 1, layout.nt):
                # (L^T)_{ij} = L_{ji}^T, with L_{ji} stored at (j, i).
                self._sub_apply(
                    acc, j, i, x[layout.block_slice(j)], transpose=True
                )
            x[sl_i] = sla.solve_triangular(
                self._diag(i), acc, lower=True, trans="T", check_finite=False
            )
        with self._lock:
            self.solves += 1
        return x

    def solve(self, b: np.ndarray) -> np.ndarray:
        """``Sigma^{-1} b`` via the two triangular sweeps."""
        return self.backward(self.forward(b))

    def apply_lower(self, v: np.ndarray) -> np.ndarray:
        """``L @ v`` for the tiled lower factor, panel-wise (the
        forward application conditional simulation needs)."""
        vv = np.asarray(v, dtype=np.float64)
        if vv.shape[0] != self.factor.n:
            raise ShapeError("dimension mismatch in apply_lower")
        out = np.zeros_like(vv, dtype=np.float64)
        layout = self.factor.layout
        for i in range(layout.nt):
            sl_i = layout.block_slice(i)
            acc = np.zeros((layout.block_size(i),) + vv.shape[1:])
            for j in range(i + 1):
                block = vv[layout.block_slice(j)]
                if i == j:
                    acc += self._tril_diag(i) @ block
                else:
                    op = self._operand(i, j)
                    if op is None:
                        continue
                    if isinstance(op, np.ndarray):
                        acc += op @ block
                    else:
                        u, w = op
                        acc += u @ (w.T @ block)
            out[sl_i] = acc
        with self._lock:
            self.solves += 1
        return out

    def logdet(self) -> float:
        """``log|A| = 2 sum log diag(L)`` from the cached diagonals."""
        total = 0.0
        for k in range(self.factor.nt):
            diag = np.diag(self._diag(k))
            if np.any(diag <= 0.0):
                raise ShapeError("factor has non-positive diagonal entries")
            total += float(np.sum(np.log(diag)))
        return 2.0 * total

    @property
    def nbytes(self) -> int:
        """Footprint of the cached float64 operands."""
        total = sum(a.nbytes for a in self._dense.values())
        total += sum(u.nbytes + v.nbytes for u, v in self._lr.values())
        total += sum(a.nbytes for a in self._tril.values())
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PanelSolver(n={self.factor.n}, nt={self.factor.nt}, "
            f"casts={self.casts}, solves={self.solves})"
        )


def forward_solve(l_matrix: TileMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` by block forward substitution (one-shot; a
    :class:`PanelSolver` amortizes the per-tile casts across calls)."""
    return PanelSolver(l_matrix).forward(b)


def backward_solve(l_matrix: TileMatrix, y: np.ndarray) -> np.ndarray:
    """Solve ``L^T x = y`` by block backward substitution (one-shot)."""
    return PanelSolver(l_matrix).backward(y)


def apply_lower(l_matrix: TileMatrix, v: np.ndarray) -> np.ndarray:
    """``L @ v`` for a tiled lower factor (one-shot)."""
    return PanelSolver(l_matrix).apply_lower(v)


def tile_logdet(l_matrix: TileMatrix) -> float:
    """``log|A| = 2 sum log diag(L)`` from the factor's diagonal tiles."""
    total = 0.0
    for k in range(l_matrix.nt):
        diag = np.diag(l_matrix.get(k, k).to_dense64())
        if np.any(diag <= 0.0):
            raise ShapeError("factor has non-positive diagonal entries")
        total += float(np.sum(np.log(diag)))
    return 2.0 * total


def symmetric_matvec(a: TileMatrix, x: np.ndarray) -> np.ndarray:
    """``A @ x`` for a symmetric tiled matrix stored lower —
    used to verify solve residuals without densifying ``A``."""
    xx = np.asarray(x, dtype=np.float64)
    if xx.shape[0] != a.n:
        raise ShapeError("dimension mismatch in symmetric_matvec")
    out = np.zeros_like(xx, dtype=np.float64)
    layout = a.layout
    for (i, j), tile in a.items():
        sl_i, sl_j = layout.block_slice(i), layout.block_slice(j)
        out[sl_i] += tile_apply(tile, xx[sl_j])
        if i != j:
            out[sl_j] += tile_apply(tile, xx[sl_i], transpose=True)
    return out
