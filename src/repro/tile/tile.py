"""Tile value types: dense tiles and low-rank (TLR) tiles.

A :class:`DenseTile` stores a full ``m x n`` block at some storage
precision.  A :class:`LowRankTile` stores the factors of the
approximation ``A ~= U @ V.T`` with ``U: (m, k)`` and ``V: (n, k)``.
Rank ``k = 0`` is a valid representation of an (approximately) zero
tile and all kernels must accept it.

Tiles are small value objects; the numerical kernels in
:mod:`repro.tile.kernels` consume and produce them.  Mutation happens
only by *replacing* a tile inside a :class:`repro.tile.matrix.TileMatrix`,
which keeps dataflow analysis in the runtime honest.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from .precision import Precision, cast_storage

__all__ = ["Tile", "DenseTile", "LowRankTile"]


class Tile:
    """Common tile interface (see subclasses)."""

    __slots__ = ()

    shape: tuple[int, int]
    precision: Precision

    @property
    def nbytes(self) -> int:
        raise NotImplementedError

    @property
    def is_low_rank(self) -> bool:
        raise NotImplementedError

    def to_dense64(self) -> np.ndarray:
        """Materialize the tile as a float64 dense block."""
        raise NotImplementedError

    def astype(self, precision: Precision) -> "Tile":
        """Same tile content re-rounded to another storage precision."""
        raise NotImplementedError


class DenseTile(Tile):
    """Full-storage tile at a given precision."""

    __slots__ = ("data", "precision")

    def __init__(self, data: np.ndarray, precision: Precision | None = None):
        arr = np.asarray(data)
        if arr.ndim != 2:
            raise ShapeError(f"dense tile must be 2-D, got shape {arr.shape}")
        if precision is None:
            precision = Precision.from_any(arr.dtype)
        else:
            arr = cast_storage(np.asarray(arr, dtype=np.float64), precision)
        self.data = arr
        self.precision = precision

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def is_low_rank(self) -> bool:
        return False

    def to_dense64(self) -> np.ndarray:
        return np.asarray(self.data, dtype=np.float64)

    def astype(self, precision: Precision) -> "DenseTile":
        if precision is self.precision:
            return self
        # Round through float64 so FP16 -> FP32 does not invent digits
        # beyond the stored ones (binary16 values are exactly
        # representable in binary32/binary64).
        return DenseTile(self.to_dense64(), precision)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DenseTile(shape={self.shape}, precision={self.precision.label})"


class LowRankTile(Tile):
    """Low-rank tile ``A ~= u @ v.T`` stored at a given precision.

    Both factors share one storage precision.  ``rank == 0`` encodes a
    numerically zero tile (factors have a zero-sized second axis).
    """

    __slots__ = ("u", "v", "precision")

    def __init__(
        self, u: np.ndarray, v: np.ndarray, precision: Precision | None = None
    ):
        # Canonical C-order storage: BLAS picks its loop order (and
        # therefore its last-bit rounding) from operand layout, so the
        # factors must land in one canonical layout for results to be
        # reproducible across engines — in particular the process
        # backend, whose shared-memory round-trips can only restore a
        # canonical layout.
        u = np.ascontiguousarray(u)
        v = np.ascontiguousarray(v)
        if u.ndim != 2 or v.ndim != 2:
            raise ShapeError("low-rank factors must be 2-D")
        if u.shape[1] != v.shape[1]:
            raise ShapeError(
                f"factor ranks differ: u has {u.shape[1]}, v has {v.shape[1]}"
            )
        if precision is None:
            precision = Precision.from_any(u.dtype)
            if Precision.from_any(v.dtype) is not precision:
                raise ShapeError("low-rank factors must share a dtype")
        else:
            u = cast_storage(np.asarray(u, dtype=np.float64), precision)
            v = cast_storage(np.asarray(v, dtype=np.float64), precision)
        self.u = u
        self.v = v
        self.precision = precision

    @property
    def rank(self) -> int:
        return self.u.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.u.shape[0], self.v.shape[0])

    @property
    def nbytes(self) -> int:
        return self.u.nbytes + self.v.nbytes

    @property
    def is_low_rank(self) -> bool:
        return True

    def to_dense64(self) -> np.ndarray:
        if self.rank == 0:
            return np.zeros(self.shape, dtype=np.float64)
        u = np.asarray(self.u, dtype=np.float64)
        v = np.asarray(self.v, dtype=np.float64)
        return u @ v.T

    def astype(self, precision: Precision) -> "LowRankTile":
        if precision is self.precision:
            return self
        return LowRankTile(
            np.asarray(self.u, dtype=np.float64),
            np.asarray(self.v, dtype=np.float64),
            precision,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LowRankTile(shape={self.shape}, rank={self.rank}, "
            f"precision={self.precision.label})"
        )
