"""Numerical tile kernels: POTRF, TRSM, SYRK, GEMM.

These are the four kernels of Algorithm 1, each accepting dense or
low-rank operands in any storage precision.  Precision semantics follow
the paper's "precision-lead operand" convention: the kernel computes in
the arithmetic dtype derived from the *output* tile's storage precision
(:func:`repro.tile.precision.compute_dtype`), converting the other
operands on the fly — exactly what PaRSEC does with its on-demand data
conversions.  FP16-lead kernels accumulate in FP32 (emulated SHGEMM)
unless the caller asks for pure HGEMM.

Low-rank arithmetic (factor updates, recompression) always runs in
float64; its *storage* honors the tile's precision.  That mirrors the
implementation reality that compression kernels are FP64/FP32 only
(Algorithm 2).
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from ..exceptions import CompressionError, NotPositiveDefiniteError, ShapeError
from .compression import fast_lr_enabled, lr_add, truncated_svd
from .precision import compute_dtype
from .tile import DenseTile, LowRankTile, Tile

__all__ = ["potrf", "trsm", "syrk", "gemm"]


def _as_compute(tile_data: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Cast operand data to the kernel's compute dtype (a no-op when
    it already matches)."""
    if tile_data.dtype == dtype:
        return tile_data
    return tile_data.astype(dtype)


_HGEMM_BLOCK = 8


def _matmul_emulated(a: np.ndarray, b: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """``a @ b`` with accumulation emulated at ``dtype``.

    NumPy silently promotes float16 matrix products to float32
    accumulation (it routes through SGEMM), so a *pure HGEMM* — the
    mode the paper deems numerically insufficient — must be emulated:
    operands are rounded to binary16 and the running sum is rounded
    back to binary16 every ``_HGEMM_BLOCK`` rank-1 updates, modeling
    the per-FMA rounding of genuine half-precision accumulators.
    """
    if dtype != np.float16:
        return _as_compute(a, dtype) @ _as_compute(b, dtype)
    a16 = _round16(a)
    b16 = _round16(b)
    k = a16.shape[1]
    acc = np.zeros((a16.shape[0], b16.shape[1]), dtype=np.float16)
    for start in range(0, k, _HGEMM_BLOCK):
        stop = min(start + _HGEMM_BLOCK, k)
        partial = _round16(
            _widen32(a16[:, start:stop]) @ _widen32(b16[start:stop, :])
        )
        acc = _round16(_widen32(acc) + _widen32(partial))
    return acc


def _round16(array: np.ndarray) -> np.ndarray:
    """Round into the emulated binary16 accumulator register — the one
    place a raw narrowing cast is the point."""
    return array.astype(np.float16)  # lint: ignore[LINT005]


def _widen32(array: np.ndarray) -> np.ndarray:
    """Binary16 operand promoted to the binary32 multiply unit."""
    return array.astype(np.float32)  # lint: ignore[LINT005]


def potrf(c: Tile, index: tuple[int, int] | None = None) -> DenseTile:
    """Cholesky of a diagonal tile: ``C -> L`` with ``C = L L^T``.

    The tile must be dense (diagonal tiles always are); computation in
    the tile's compute dtype, at least FP32.
    """
    if c.is_low_rank:
        raise ShapeError("POTRF requires a dense diagonal tile")
    dtype = compute_dtype(c.precision)
    data = _as_compute(c.to_dense64(), dtype)
    try:
        low = np.linalg.cholesky(data)
    except np.linalg.LinAlgError as exc:
        raise NotPositiveDefiniteError(
            f"diagonal tile {index} is not positive definite: {exc}", index
        ) from exc
    return DenseTile(np.asarray(low, dtype=np.float64), c.precision)


def trsm(
    l_tile: DenseTile,
    a: Tile,
    *,
    fp16_accumulate_fp32: bool = True,
) -> Tile:
    """Triangular solve ``A <- A @ L^{-T}`` with ``L`` lower triangular.

    Dense ``A``: direct solve.  Low-rank ``A = U V^T``: only the ``V``
    factor is touched (``A L^{-T} = U (L^{-1} V)^T``), which is the
    rank-wise TLR TRSM of HiCMA.
    """
    if l_tile.is_low_rank:
        raise ShapeError("the TRSM triangle must be dense")
    if isinstance(a, LowRankTile):
        if a.rank == 0:
            return a
        low = l_tile.to_dense64()
        v = sla.solve_triangular(
            low, a.v.astype(np.float64), lower=True, check_finite=False
        )
        return LowRankTile(a.u.astype(np.float64), v, a.precision)
    dtype = compute_dtype(a.precision, fp16_accumulate_fp32=fp16_accumulate_fp32)
    low = _as_compute(l_tile.to_dense64(), dtype)
    rhs = _as_compute(a.to_dense64(), dtype)
    x = sla.solve_triangular(low, rhs.T, lower=True, check_finite=False).T
    return DenseTile(np.asarray(x, dtype=np.float64), a.precision)


def syrk(
    a: Tile,
    c: DenseTile,
    *,
    fp16_accumulate_fp32: bool = True,
) -> DenseTile:
    """Symmetric rank-k update of a diagonal tile: ``C <- C - A A^T``."""
    if c.is_low_rank:
        raise ShapeError("SYRK output (diagonal tile) must be dense")
    dtype = compute_dtype(c.precision, fp16_accumulate_fp32=fp16_accumulate_fp32)
    cdat = _as_compute(c.to_dense64(), dtype)
    if isinstance(a, LowRankTile):
        if a.rank == 0:
            return c
        u = _as_compute(a.u.astype(np.float64), dtype)
        v = _as_compute(a.v.astype(np.float64), dtype)
        w = v.T @ v
        update = (u @ w) @ u.T
    else:
        adat = _as_compute(a.to_dense64(), dtype)
        update = adat @ adat.T
    out = cdat - update
    return DenseTile(np.asarray(out, dtype=np.float64), c.precision)


def _lr_update_factors(a: Tile, b: Tile) -> tuple[np.ndarray, np.ndarray]:
    """Factors ``(du, dv)`` with ``A @ B^T = du @ dv^T`` in float64,
    for the cases where at least one operand is low-rank."""
    if isinstance(a, LowRankTile) and isinstance(b, LowRankTile):
        ua, va = a.u.astype(np.float64), a.v.astype(np.float64)
        ub, vb = b.u.astype(np.float64), b.v.astype(np.float64)
        if a.rank == 0 or b.rank == 0:
            m, n = a.shape[0], b.shape[0]
            return np.zeros((m, 0)), np.zeros((n, 0))
        core = va.T @ vb  # (ra, rb)
        if a.rank <= b.rank:
            return ua, ub @ core.T
        return ua @ core, ub
    if isinstance(a, LowRankTile):
        if a.rank == 0:
            return (
                np.zeros((a.shape[0], 0)),
                np.zeros((b.shape[0], 0)),
            )
        bdat = b.to_dense64()
        return a.u.astype(np.float64), bdat @ a.v.astype(np.float64)
    if isinstance(b, LowRankTile):
        if b.rank == 0:
            return (
                np.zeros((a.shape[0], 0)),
                np.zeros((b.shape[0], 0)),
            )
        adat = a.to_dense64()
        return adat @ b.v.astype(np.float64), b.u.astype(np.float64)
    raise ShapeError("at least one operand must be low-rank")  # pragma: no cover


def gemm(
    a: Tile,
    b: Tile,
    c: Tile,
    *,
    tol: float = 0.0,
    max_rank: int | None = None,
    fp16_accumulate_fp32: bool = True,
    allow_densify: bool = True,
) -> Tile:
    """Schur-complement update ``C <- C - A @ B^T``.

    Handles every structure combination.  A low-rank ``C`` is updated
    by low-rank addition + recompression at the absolute tolerance
    ``tol`` (the tile-level TLR threshold); if recompression would
    exceed ``max_rank`` and ``allow_densify`` is set, the tile falls
    back to dense — the runtime analogue of the structure-aware
    "convert back to dense" decision.
    """
    both_dense = not (a.is_low_rank or b.is_low_rank)

    if not c.is_low_rank:
        dtype = compute_dtype(c.precision, fp16_accumulate_fp32=fp16_accumulate_fp32)
        cdat = _as_compute(c.to_dense64(), dtype)
        if both_dense:
            update = _matmul_emulated(a.to_dense64(), b.to_dense64().T, dtype)
        else:
            du, dv = _lr_update_factors(a, b)
            update = _as_compute(du, dtype) @ _as_compute(dv, dtype).T
        out = cdat - update
        return DenseTile(np.asarray(out, dtype=np.float64), c.precision)

    # Low-rank C.
    assert isinstance(c, LowRankTile)
    if fast_lr_enabled() and allow_densify:
        # Fast path: no recompression inside the update chain at all.
        # Stacked factors represent the accumulated update *exactly*;
        # once the stacked width reaches the tile size the exact dense
        # form is strictly cheaper than any further factor arithmetic,
        # so the tile converts and stays dense.  This replaces one
        # QR+SVD per GEMM (the dominant TLR factorization cost at small
        # tile sizes) with a single matmul per tile lifetime.
        if both_dense:
            out = c.to_dense64() - a.to_dense64() @ b.to_dense64().T
            return DenseTile(out, c.precision)
        du, dv = _lr_update_factors(a, b)
        cu = c.u.astype(np.float64)
        cv = c.v.astype(np.float64)
        if cu.shape[1] + du.shape[1] < min(c.shape):
            return LowRankTile(
                np.hstack([cu, -du]), np.hstack([cv, dv]), c.precision
            )
        out = cu @ cv.T - du @ dv.T
        return DenseTile(out, c.precision)
    if both_dense:
        dense_update = a.to_dense64() @ b.to_dense64().T
        try:
            du, dv, _ = truncated_svd(dense_update, tol, max_rank)
        except CompressionError:
            if not allow_densify:
                raise
            out = c.to_dense64() - dense_update
            return DenseTile(out, c.precision)
    else:
        du, dv = _lr_update_factors(a, b)
    cu = c.u.astype(np.float64)
    cv = c.v.astype(np.float64)
    try:
        nu, nv = lr_add(cu, cv, -du, dv, tol, max_rank)
    except CompressionError:
        if not allow_densify:
            raise
        out = c.to_dense64() - du @ dv.T
        return DenseTile(out, c.precision)
    return LowRankTile(nu, nv, c.precision)
