"""Tile partitioning of an ``n x n`` matrix.

A :class:`TileLayout` splits the index range ``[0, n)`` into ``nt``
contiguous blocks of size ``tile_size`` (the trailing block may be
smaller).  It is shared by the tile matrix, the covariance assembly,
the task-graph generators, and the distributed-ownership map, so every
component agrees on tile boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ShapeError

__all__ = ["TileLayout"]


@dataclass(frozen=True)
class TileLayout:
    """Uniform 1-D blocking applied to both matrix dimensions."""

    n: int
    tile_size: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ShapeError(f"matrix dimension must be positive, got {self.n}")
        if self.tile_size <= 0:
            raise ShapeError(f"tile size must be positive, got {self.tile_size}")

    @property
    def nt(self) -> int:
        """Number of tiles per dimension."""
        return -(-self.n // self.tile_size)

    def block_size(self, i: int) -> int:
        """Row (or column) count of block ``i``."""
        self._check(i)
        return min(self.tile_size, self.n - i * self.tile_size)

    def block_range(self, i: int) -> tuple[int, int]:
        """Half-open global index range ``[start, stop)`` of block ``i``."""
        self._check(i)
        start = i * self.tile_size
        return start, start + self.block_size(i)

    def block_slice(self, i: int) -> slice:
        start, stop = self.block_range(i)
        return slice(start, stop)

    def tile_shape(self, i: int, j: int) -> tuple[int, int]:
        return self.block_size(i), self.block_size(j)

    def block_of(self, index: int) -> int:
        """Block containing global row/column ``index``."""
        if not 0 <= index < self.n:
            raise ShapeError(f"index {index} outside [0, {self.n})")
        return index // self.tile_size

    def block_sizes(self) -> np.ndarray:
        """Array of all block sizes (length ``nt``)."""
        sizes = np.full(self.nt, self.tile_size, dtype=np.int64)
        rem = self.n - (self.nt - 1) * self.tile_size
        sizes[-1] = rem
        return sizes

    def lower_tiles(self) -> list[tuple[int, int]]:
        """All ``(i, j)`` with ``j <= i`` in row-major order — the
        storage set of a symmetric-lower tile matrix."""
        return [(i, j) for i in range(self.nt) for j in range(i + 1)]

    def _check(self, i: int) -> None:
        if not 0 <= i < self.nt:
            raise ShapeError(f"block index {i} outside [0, {self.nt})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TileLayout(n={self.n}, tile_size={self.tile_size}, nt={self.nt})"
