"""Low-rank compression and recompression primitives.

TLR compression truncates the SVD of a tile at an *absolute* Frobenius
threshold (the caller derives it from the global matrix norm and the
target accuracy, e.g. ``1e-8`` as in the paper).  Recompression after
low-rank additions uses the standard QR-of-stacked-factors + small SVD
scheme, which is what HiCMA does inside the TLR Cholesky update.

All factor arithmetic here runs in float64; storage precision is
applied by the caller when wrapping results into tiles.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CompressionError
from .precision import Precision
from .tile import DenseTile, LowRankTile

__all__ = [
    "truncated_svd",
    "compress_block",
    "compress_tile",
    "recompress",
    "lr_add",
    "rank_of_block",
]


def truncated_svd(
    a: np.ndarray, tol: float, max_rank: int | None = None
) -> tuple[np.ndarray, np.ndarray, float]:
    """Rank-truncated SVD ``a ~= u @ v.T`` with Frobenius error <= tol.

    Returns ``(u, v, err)`` where ``err`` is the achieved Frobenius
    error (the L2 norm of the dropped singular values).  The rank is the
    smallest ``k`` with ``sqrt(sum_{i>k} s_i^2) <= tol``; rank 0 is
    returned for tiles that are zero to within ``tol``.

    Raises :class:`~repro.exceptions.CompressionError` when ``max_rank``
    would be exceeded.
    """
    a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    uu, s, vt = np.linalg.svd(a, full_matrices=False)
    # Residual Frobenius norms: residual[k] = ||A - A_k||_F.
    tail = np.sqrt(np.cumsum(s[::-1] ** 2))[::-1]  # tail[k] = ||s[k:]||_2
    admissible = np.nonzero(tail <= tol)[0]
    rank = int(admissible[0]) if admissible.size else len(s)
    if max_rank is not None and rank > max_rank:
        raise CompressionError(
            f"tolerance {tol:g} needs rank {rank} > max_rank {max_rank} "
            f"for a {m}x{n} block"
        )
    err = float(tail[rank]) if rank < len(s) else 0.0
    u = uu[:, :rank] * s[:rank]
    v = vt[:rank, :].T
    return u, v, err


def rank_of_block(a: np.ndarray, tol: float) -> int:
    """Numerical rank of ``a`` at absolute Frobenius tolerance ``tol``
    (without forming factors)."""
    s = np.linalg.svd(np.asarray(a, dtype=np.float64), compute_uv=False)
    tail = np.sqrt(np.cumsum(s[::-1] ** 2))[::-1]
    admissible = np.nonzero(tail <= tol)[0]
    return int(admissible[0]) if admissible.size else len(s)


def compress_block(
    a: np.ndarray,
    tol: float,
    max_rank: int | None = None,
    precision: Precision = Precision.FP64,
) -> LowRankTile:
    """Compress a dense float block into a :class:`LowRankTile`."""
    u, v, _ = truncated_svd(a, tol, max_rank)
    return LowRankTile(u, v, precision)


def compress_tile(
    tile: DenseTile,
    tol: float,
    max_rank: int | None = None,
    precision: Precision | None = None,
) -> LowRankTile:
    """Compress a :class:`DenseTile`, defaulting to its precision."""
    return compress_block(
        tile.to_dense64(), tol, max_rank, precision or tile.precision
    )


def recompress(
    u: np.ndarray, v: np.ndarray, tol: float, max_rank: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Re-truncate an existing factorization ``u @ v.T`` to ``tol``.

    Uses thin QR of each factor followed by an SVD of the small
    ``k x k`` core, so the cost is ``O((m + n) k^2 + k^3)`` rather than
    a full-tile SVD.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    k = u.shape[1]
    if k == 0:
        return u, v
    qu, ru = np.linalg.qr(u)
    qv, rv = np.linalg.qr(v)
    core = ru @ rv.T
    cu, s, cvt = np.linalg.svd(core)
    tail = np.sqrt(np.cumsum(s[::-1] ** 2))[::-1]
    admissible = np.nonzero(tail <= tol)[0]
    rank = int(admissible[0]) if admissible.size else len(s)
    if max_rank is not None and rank > max_rank:
        raise CompressionError(
            f"recompression to tolerance {tol:g} needs rank {rank} > {max_rank}"
        )
    new_u = qu @ (cu[:, :rank] * s[:rank])
    new_v = qv @ cvt[:rank, :].T
    return new_u, new_v


def lr_add(
    u1: np.ndarray,
    v1: np.ndarray,
    u2: np.ndarray,
    v2: np.ndarray,
    tol: float,
    max_rank: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sum of two low-rank representations, recompressed to ``tol``.

    ``u1 @ v1.T + u2 @ v2.T`` is represented exactly by the stacked
    factors ``[u1 u2] @ [v1 v2].T`` (rank ``k1 + k2``), then truncated.
    """
    u = np.hstack([np.asarray(u1, dtype=np.float64), np.asarray(u2, dtype=np.float64)])
    v = np.hstack([np.asarray(v1, dtype=np.float64), np.asarray(v2, dtype=np.float64)])
    return recompress(u, v, tol, max_rank)
