"""Low-rank compression and recompression primitives.

TLR compression truncates the SVD of a tile at an *absolute* Frobenius
threshold (the caller derives it from the global matrix norm and the
target accuracy, e.g. ``1e-8`` as in the paper).  Recompression after
low-rank additions uses the standard QR-of-stacked-factors + small SVD
scheme, which is what HiCMA does inside the TLR Cholesky update.

Two optional fast paths serve the MLE hot loop (both opt-in, both
leaving the default results untouched):

* :func:`compress_or_rank` — assembly-side compression that never
  builds truncated factors for tiles whose rank exceeds the cap, takes
  a *warm rank hint* from the previous optimizer iteration (values-only
  SVD early-out for tiles known to be over-cap; randomized range-finder
  sketch for tiles known to be comfortably low-rank, with an exact-SVD
  fallback whenever the sketch cannot certify the tolerance);
* :func:`use_fast_lr` — a scoped switch routing :func:`recompress` /
  :func:`lr_add` through raw LAPACK (``geqrf``/``orgqr``/``gesdd``
  without the ``numpy.linalg`` wrapper overhead), which dominates the
  TLR Cholesky update cost at small tile sizes.

All factor arithmetic here runs in float64; storage precision is
applied by the caller when wrapping results into tiles.
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import lru_cache

import numpy as np
from scipy.linalg import get_lapack_funcs

from ..exceptions import CompressionError
from .precision import Precision
from .tile import DenseTile, LowRankTile

__all__ = [
    "truncated_svd",
    "frobenius_rank",
    "compress_block",
    "compress_many",
    "compress_or_rank",
    "compress_tile",
    "recompress",
    "lr_add",
    "rank_of_block",
    "use_fast_lr",
    "fast_lr_enabled",
]


def frobenius_rank(s: np.ndarray, tol: float) -> tuple[int, np.ndarray]:
    """Numerical rank at absolute Frobenius tolerance ``tol`` from a
    (descending) singular-value vector.

    Returns ``(rank, tail)`` with ``tail[k] = ||s[k:]||_2``; the rank is
    the smallest ``k`` with ``tail[k] <= tol`` (``len(s)`` when none).
    Shared by every truncation decision in this module so the cutoff
    arithmetic cannot drift between code paths.
    """
    tail = np.sqrt(np.cumsum(s[::-1] ** 2))[::-1]
    admissible = np.nonzero(tail <= tol)[0]
    rank = int(admissible[0]) if admissible.size else len(s)
    return rank, tail


def truncated_svd(
    a: np.ndarray, tol: float, max_rank: int | None = None
) -> tuple[np.ndarray, np.ndarray, float]:
    """Rank-truncated SVD ``a ~= u @ v.T`` with Frobenius error <= tol.

    Returns ``(u, v, err)`` where ``err`` is the achieved Frobenius
    error (the L2 norm of the dropped singular values).  The rank is the
    smallest ``k`` with ``sqrt(sum_{i>k} s_i^2) <= tol``; rank 0 is
    returned for tiles that are zero to within ``tol``.

    Raises :class:`~repro.exceptions.CompressionError` when ``max_rank``
    would be exceeded.
    """
    a = np.asarray(a, dtype=np.float64)
    m, n = a.shape
    uu, s, vt = np.linalg.svd(a, full_matrices=False)
    rank, tail = frobenius_rank(s, tol)
    if max_rank is not None and rank > max_rank:
        raise CompressionError(
            f"tolerance {tol:g} needs rank {rank} > max_rank {max_rank} "
            f"for a {m}x{n} block"
        )
    err = float(tail[rank]) if rank < len(s) else 0.0
    u = uu[:, :rank] * s[:rank]
    v = vt[:rank, :].T
    return u, v, err


def rank_of_block(a: np.ndarray, tol: float) -> int:
    """Numerical rank of ``a`` at absolute Frobenius tolerance ``tol``
    (without forming factors)."""
    s = np.linalg.svd(np.asarray(a, dtype=np.float64), compute_uv=False)
    return frobenius_rank(s, tol)[0]


_SKETCH_OVERSAMPLE = 8


def _sketch_compress(
    a: np.ndarray, tol: float, cap: int, hint: int, rng: np.random.Generator
) -> tuple[int, np.ndarray, np.ndarray] | None:
    """Randomized range-finder warm-started at ``hint`` columns.

    Certifies the truncation with the computable bound

        err(r)^2 = (||A||_F^2 - ||Q^T A||_F^2) + ||tail_r(Q^T A)||_2^2

    (projection loss plus the dropped small-SVD tail) — only ranks the
    sketch can *prove* within ``tol`` are accepted.  Returns ``None``
    when the sketch cannot certify a rank ``<= cap`` (caller falls back
    to the exact SVD), so accuracy never depends on the sketch quality.
    """
    m, n = a.shape
    mn = min(m, n)
    k = min(max(hint, 1) + _SKETCH_OVERSAMPLE, mn)
    norm2 = float(np.sum(a * a))
    for _ in range(2):  # one growth retry before the exact fallback
        omega = rng.standard_normal((n, k))
        q, _ = _thin_qr_fast(a @ omega)
        b = q.T @ a  # (k, n)
        proj2 = max(norm2 - float(np.sum(b * b)), 0.0)
        # SVD of the small sketch via syev of its Gram matrix (same
        # trade-off as :func:`_core_svd_fast`): eigenvalues *are* the
        # squared singular values the error bound needs.
        w, qb, info = _syev(b @ b.T)
        if info != 0:
            return None  # exact fallback
        s2 = np.maximum(w[::-1], 0.0)
        ub = qb[:, ::-1]
        tail2 = np.append(np.cumsum(s2[::-1])[::-1], 0.0)
        err = np.sqrt(proj2 + tail2)
        admissible = np.nonzero(err <= tol)[0]
        if admissible.size:
            r = int(admissible[0])
            if r > cap:
                return None
            if r < k or k == mn:
                s = np.sqrt(s2[:r])
                safe = np.maximum(s, np.finfo(np.float64).tiny)
                u = q @ (ub[:, :r] * s)
                # Right factor of b = Ub S Vb^T, kept columns only.
                v = (b.T @ ub[:, :r]) / safe
                return r, u, v
        if k >= mn:
            break
        k = min(2 * k, mn)
    return None


def compress_or_rank(
    a: np.ndarray,
    tol: float,
    *,
    max_rank: int | None = None,
    hint: int | None = None,
    sketch: bool = False,
    rng: np.random.Generator | None = None,
) -> tuple[int, np.ndarray | None, np.ndarray | None]:
    """Compress one assembly tile, or report its rank when over the cap.

    Returns ``(rank, u, v)``; ``u``/``v`` are ``None`` when
    ``rank > max_rank`` — over-cap tiles never build truncated factors.
    Without ``hint``/``sketch`` the result is bit-identical to
    :func:`truncated_svd`.  A warm ``hint`` (the tile's rank at the
    previous optimizer iterate) enables a values-only SVD early-out for
    tiles expected to stay over the cap, and — with ``sketch=True`` —
    the certified randomized range-finder for tiles expected to stay
    well under it.
    """
    a = np.asarray(a, dtype=np.float64)
    cap = min(a.shape) if max_rank is None else min(int(max_rank), min(a.shape))
    if hint is not None and hint > cap:
        # Expected over-cap: values-only SVD (no U/V work), exact rank.
        s = np.linalg.svd(a, compute_uv=False)
        rank, _ = frobenius_rank(s, tol)
        if rank > cap:
            return rank, None, None
        # Stale hint — fall through and build factors.
    elif sketch and hint is not None and rng is not None:
        out = _sketch_compress(a, tol, cap, hint, rng)
        if out is not None:
            return out
    uu, s, vt = np.linalg.svd(a, full_matrices=False)
    rank, _ = frobenius_rank(s, tol)
    if rank > cap:
        return rank, None, None
    u = uu[:, :rank] * s[:rank]
    v = vt[:rank, :].T
    return rank, u, v


@lru_cache(maxsize=2048)
def _tile_omega(seed: int, n: int, k: int) -> np.ndarray:
    """Round-1 test matrix of a sketched tile.

    The draw depends only on the tile's key-derived seed and the sketch
    width — never on ``theta`` or the data — so it is cached across
    optimizer iterates.  The array is frozen; callers copy it into
    their operand stacks.
    """
    omega = np.random.default_rng(seed).standard_normal((n, k))
    omega.setflags(write=False)
    return omega


@lru_cache(maxsize=2048)
def _tile_omega2(seed: int, n: int, k: int, k2: int) -> np.ndarray:
    """Growth-retry test matrix: the ``(n, k2)`` draw that follows the
    round-1 ``(n, k)`` draw on the same key-seeded stream."""
    gen = np.random.default_rng(seed)
    gen.standard_normal((n, k))
    omega = gen.standard_normal((n, k2))
    omega.setflags(write=False)
    return omega


def _certify_sketch(
    qp: np.ndarray, blk: np.ndarray, tol: float, cap: int, k: int, mn: int
) -> tuple[str, tuple[int, np.ndarray, np.ndarray] | None]:
    """Certify one range-finder round given its orthonormal basis.

    Returns ``("ok", (r, u, v))`` when the round certifies a rank,
    ``("retry", None)`` when the sketch must grow, or ``("exact",
    None)`` for the exact-SVD fallback — exactly the decision rules of
    one :func:`_sketch_compress` loop iteration.
    """
    bp = qp.T @ blk
    norm2 = float(np.sum(blk * blk))
    proj2 = max(norm2 - float(np.sum(bp * bp)), 0.0)
    w, qb, info = _syev(bp @ bp.T)
    if info != 0:
        return "exact", None
    s2 = np.maximum(w[::-1], 0.0)
    ub = qb[:, ::-1]
    tail2 = np.append(np.cumsum(s2[::-1])[::-1], 0.0)
    err = np.sqrt(proj2 + tail2)
    admissible = np.nonzero(err <= tol)[0]
    if admissible.size:
        r = int(admissible[0])
        if r > cap:
            return "exact", None
        if r < k or k == mn:
            s = np.sqrt(s2[:r])
            safe = np.maximum(s, np.finfo(np.float64).tiny)
            u = qp @ (ub[:, :r] * s)
            v = (bp.T @ ub[:, :r]) / safe
            return "ok", (r, u, v)
    return ("retry", None) if k < mn else ("exact", None)


def compress_many(
    blocks: "dict[tuple[int, int], np.ndarray]",
    keys: "list[tuple[int, int]]",
    tol: float,
    *,
    max_rank: int | None = None,
    hints: "dict[tuple[int, int], int] | None" = None,
    sketch: bool = False,
    seed_for=None,
) -> "dict[tuple[int, int], tuple[int, np.ndarray | None, np.ndarray | None]]":
    """Batched :func:`compress_or_rank` over many assembly tiles.

    Tiles are grouped by shape (and sketch width) and the per-tile
    numpy calls become stacked ones — one gufunc QR/SVD and one 3-D
    ``matmul`` per group instead of a Python-level call per tile.
    Every stacked slice runs the same LAPACK routine on the same
    operand as the per-tile path, Frobenius norms are taken over the
    original blocks, and each tile's sketch rng is seeded from its own
    key by ``seed_for`` (draws are data-independent, so the test
    matrices are memoized across calls), so results are bit-identical
    to calling
    :func:`compress_or_rank` tile by tile (pinned in tests).  Tiles
    whose sketch cannot certify a rank within the first round run the
    growth retry per tile from their *retained* rng (the stream is
    already positioned after the round-1 draw) and, failing that, join
    the stacked exact-SVD group — the same draws and fallback as the
    per-tile path without recomputing round 1.
    """
    out: dict = {}
    if not keys:
        return out

    def _cap(shape) -> int:
        mn = min(shape)
        return mn if max_rank is None else min(int(max_rank), mn)

    values_only: dict = {}
    sketched: dict = {}
    exact: dict = {}
    for key in keys:
        shape = blocks[key].shape
        hint = None if hints is None else hints.get(key)
        if hint is not None and hint > _cap(shape):
            values_only.setdefault(shape, []).append(key)
        elif sketch and hint is not None and seed_for is not None:
            k = min(max(hint, 1) + _SKETCH_OVERSAMPLE, min(shape))
            sketched.setdefault((shape, k), []).append(key)
        else:
            exact.setdefault(shape, []).append(key)

    # Expected over-cap: stacked values-only SVD, no U/V work.  Tiles
    # whose hint proves stale fall through to the exact group, exactly
    # like the per-tile path.
    for shape, group in values_only.items():
        stack = np.stack(
            [np.asarray(blocks[key], dtype=np.float64) for key in group]
        )
        svals = np.linalg.svd(stack, compute_uv=False)
        cap = _cap(shape)
        for key, s in zip(group, svals):
            rank, _ = frobenius_rank(s, tol)
            if rank > cap:
                out[key] = (rank, None, None)
            else:
                exact.setdefault(shape, []).append(key)

    # Certified randomized range-finder, round 1 stacked: draw each
    # tile's test matrix from its own rng, then one batched GEMM + QR +
    # projection for the whole width class.  The small ``syev`` and the
    # truncation bookkeeping stay per tile (k x k work).
    for (shape, k), group in sketched.items():
        m, n = shape
        mn = min(m, n)
        cap = _cap(shape)
        astack = np.stack(
            [np.asarray(blocks[key], dtype=np.float64) for key in group]
        )
        omegas = np.empty((len(group), n, k))
        for p, key in enumerate(group):
            omegas[p] = _tile_omega(seed_for(key), n, k)
        qstack = np.linalg.qr(np.matmul(astack, omegas))[0]
        grow: list[tuple[tuple[int, int], np.ndarray]] = []
        for p, key in enumerate(group):
            blk = np.asarray(blocks[key], dtype=np.float64)
            # ``_thin_qr_fast`` hands the per-tile path an F-ordered Q
            # (raw LAPACK output); the projection GEMMs in the certify
            # step are layout-sensitive at the bit level, so restore
            # that layout before reproducing them.
            status, res = _certify_sketch(
                np.asfortranarray(qstack[p]), blk, tol, cap, k, mn
            )
            if status == "ok":
                out[key] = res
            elif status == "retry":
                grow.append((key, blk))
            else:
                exact.setdefault(shape, []).append(key)
        # Growth retry per tile; ``_tile_omega2`` reproduces the draw
        # the per-tile path's second loop iteration reads (the stream
        # position right after round 1), so the grown sketch is
        # bit-identical without replaying round 1.
        k2 = min(2 * k, mn)
        for key, blk in grow:
            q, _ = _thin_qr_fast(blk @ _tile_omega2(seed_for(key), n, k, k2))
            status, res = _certify_sketch(q, blk, tol, cap, k2, mn)
            if status == "ok":
                out[key] = res
            else:
                exact.setdefault(shape, []).append(key)

    # Exact truncated SVD, one stacked gesdd per shape.
    for shape, group in exact.items():
        cap = _cap(shape)
        astack = np.stack(
            [np.asarray(blocks[key], dtype=np.float64) for key in group]
        )
        uu, s, vt = np.linalg.svd(astack, full_matrices=False)
        for p, key in enumerate(group):
            rank, _ = frobenius_rank(s[p], tol)
            if rank > cap:
                out[key] = (rank, None, None)
            else:
                out[key] = (
                    rank,
                    uu[p][:, :rank] * s[p][:rank],
                    vt[p][:rank, :].T,
                )
    return out


def compress_block(
    a: np.ndarray,
    tol: float,
    max_rank: int | None = None,
    precision: Precision = Precision.FP64,
) -> LowRankTile:
    """Compress a dense float block into a :class:`LowRankTile`."""
    u, v, _ = truncated_svd(a, tol, max_rank)
    return LowRankTile(u, v, precision)


def compress_tile(
    tile: DenseTile,
    tol: float,
    max_rank: int | None = None,
    precision: Precision | None = None,
) -> LowRankTile:
    """Compress a :class:`DenseTile`, defaulting to its precision."""
    return compress_block(
        tile.to_dense64(), tol, max_rank, precision or tile.precision
    )


# ----------------------------------------------------------------------
# Fast low-rank arithmetic (opt-in): raw LAPACK without wrapper overhead.
# ----------------------------------------------------------------------

_fast_lr = False

_probe = np.empty(0, dtype=np.float64)
_geqrf, _orgqr = get_lapack_funcs(("geqrf", "orgqr"), (_probe,))
(_gesdd,) = get_lapack_funcs(("gesdd",), (_probe,))
(_syev,) = get_lapack_funcs(("syev",), (_probe,))


@contextmanager
def use_fast_lr(enabled: bool = True):
    """Scope within which :func:`recompress`/:func:`lr_add` take the raw
    LAPACK fast path.

    The switch is process-global and meant to bracket one whole
    factorization: set it *before* launching worker threads and restore
    it after they join (reader threads are fine; toggling concurrently
    with a running factorization is not supported).  Results differ
    from the default path only by floating-point rounding.
    """
    global _fast_lr
    previous = _fast_lr
    _fast_lr = bool(enabled)
    try:
        yield
    finally:
        _fast_lr = previous


def fast_lr_enabled() -> bool:
    """Whether the current scope runs the raw-LAPACK LR path."""
    return _fast_lr


def _thin_qr_fast(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Economy QR of an ``(m, k)`` array with ``k <= m`` via
    ``geqrf``/``orgqr``; raises ``LinAlgError``-free, returns ``(q, r)``
    or ``None``-signalled failure through info checks by the caller."""
    k = a.shape[1]
    qr_, tau, _, info = _geqrf(a)
    if info != 0:
        raise CompressionError(f"geqrf failed with info={info}")
    r = np.triu(qr_[:k])
    q, _, info = _orgqr(qr_[:, :k], tau)
    if info != 0:
        raise CompressionError(f"orgqr failed with info={info}")
    return q, r


def _core_svd_fast(
    core: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SVD of the small ``k x k`` core via a symmetric eigensolve of its
    Gram matrix (``syev`` beats ``gesdd`` by ~2x at these sizes).

    Squaring halves the relative accuracy of singular values near
    ``sqrt(eps) * s_max`` — harmless here because those values sit at or
    below the truncation threshold; the split into kept/dropped can
    shift by one index at the tolerance boundary, never the error bound.
    """
    w, q, info = _syev(core @ core.T)
    if info != 0:
        raise CompressionError(f"syev failed with info={info}")
    s = np.sqrt(np.maximum(w[::-1], 0.0))
    cu = q[:, ::-1]
    # Right singular vectors of the kept part: V^T = S^{-1} U^T core,
    # computed lazily by the caller for the kept rank only.
    return cu, s, core


def _recompress_fast(
    u: np.ndarray, v: np.ndarray, tol: float, max_rank: int | None
) -> tuple[np.ndarray, np.ndarray]:
    """Raw-LAPACK recompression; same contract as :func:`recompress`."""
    qu, ru = _thin_qr_fast(u)
    qv, rv = _thin_qr_fast(v)
    core = ru @ rv.T
    cu, s, _ = _core_svd_fast(core)
    rank, _ = frobenius_rank(s, tol)
    if max_rank is not None and rank > max_rank:
        raise CompressionError(
            f"recompression to tolerance {tol:g} needs rank {rank} > {max_rank}"
        )
    if rank == 0:
        return np.zeros((u.shape[0], 0)), np.zeros((v.shape[0], 0))
    kept = cu[:, :rank]
    # V^T rows for the kept columns only: S^{-1} U^T core.
    safe = np.maximum(s[:rank], np.finfo(np.float64).tiny)
    vt = (kept.T @ core) / safe[:, None]
    new_u = qu @ (kept * s[:rank])
    new_v = qv @ vt.T
    return new_u, new_v


def recompress(
    u: np.ndarray, v: np.ndarray, tol: float, max_rank: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Re-truncate an existing factorization ``u @ v.T`` to ``tol``.

    Uses thin QR of each factor followed by an SVD of the small
    ``k x k`` core, so the cost is ``O((m + n) k^2 + k^3)`` rather than
    a full-tile SVD.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    k = u.shape[1]
    if k == 0:
        return u, v
    if _fast_lr and k <= u.shape[0] and k <= v.shape[0]:
        return _recompress_fast(u, v, tol, max_rank)
    qu, ru = np.linalg.qr(u)
    qv, rv = np.linalg.qr(v)
    core = ru @ rv.T
    cu, s, cvt = np.linalg.svd(core)
    rank, _ = frobenius_rank(s, tol)
    if max_rank is not None and rank > max_rank:
        raise CompressionError(
            f"recompression to tolerance {tol:g} needs rank {rank} > {max_rank}"
        )
    new_u = qu @ (cu[:, :rank] * s[:rank])
    new_v = qv @ cvt[:rank, :].T
    return new_u, new_v


def lr_add(
    u1: np.ndarray,
    v1: np.ndarray,
    u2: np.ndarray,
    v2: np.ndarray,
    tol: float,
    max_rank: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sum of two low-rank representations, recompressed to ``tol``.

    ``u1 @ v1.T + u2 @ v2.T`` is represented exactly by the stacked
    factors ``[u1 u2] @ [v1 v2].T`` (rank ``k1 + k2``), then truncated.
    """
    u = np.concatenate(
        [np.asarray(u1, dtype=np.float64), np.asarray(u2, dtype=np.float64)],
        axis=1,
    )
    v = np.concatenate(
        [np.asarray(v1, dtype=np.float64), np.asarray(v2, dtype=np.float64)],
        axis=1,
    )
    return recompress(u, v, tol, max_rank)
