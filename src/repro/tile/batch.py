"""Batched tile kernels: homogeneous task fusion over stacked BLAS.

The paper's single-node performance comes from dispatching *batches* of
same-shape tile kernels to vendor BLAS instead of one tiny call at a
time (the batched kernels of ExaGeoStat / HiCMA).  This module is the
numerical half of that design: each ``batched_*`` function takes a
*homogeneous group* of tile operations — same operation, same operand
shapes, same structure (dense), same lead precision — and executes the
whole group as one stacked NumPy/SciPy call:

* ``batched_potrf`` — one stacked :func:`numpy.linalg.cholesky` over a
  3-D ``(P, n, n)`` array (LAPACK ``potrf`` per slice);
* ``batched_trsm``  — one wide-RHS :func:`scipy.linalg.solve_triangular`
  for a whole TRSM panel sharing one diagonal factor;
* ``batched_syrk`` / ``batched_gemm`` — stacked 3-D :func:`numpy.matmul`
  (GEMM per slice, no per-task Python dispatch).

Bit-identity contract
---------------------
Each batched call is *slice-wise bit-identical* to the per-tile kernels
in :mod:`repro.tile.kernels`: stacked GEMM/POTRF gufuncs call the same
BLAS/LAPACK routine per 2-D slice, a multi-RHS triangular solve is
column-independent, and the operand casts commute with gathering
(``f64 -> f32`` on assignment equals ``astype``; ``f16 -> f64 -> f32``
equals ``f16 -> f32`` exactly).  The equivalence is pinned by
``tests/test_batched_kernels.py``.  Groups whose lead compute dtype is
binary16 (the emulated pure-HGEMM mode) and groups containing any
low-rank operand are *not* batchable — the dispatcher falls back to the
per-tile kernels for those.

Scratch buffers
---------------
Operand gathering runs through a :class:`ScratchPool` of reusable flat
buffers (one per dtype, grown to the largest batch seen), so the hot
path performs no per-task allocation: one pooled gather per operand
stack, one fresh allocation per *batch* for the output (tiles keep
views into it, so it cannot be pooled).  SYRK/GEMM gather only the
``A``/``B`` operands: the update is computed stacked, then subtracted
from each stored ``C`` directly — NumPy's dtype promotion performs the
same exact upcast the per-tile kernel's operand cast does, so skipping
the ``C`` gather changes no bits while halving the memory traffic of
the dominant kernel.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np
from scipy import linalg as sla

from ..exceptions import ShapeError

from . import kernels as K
from .precision import Precision, compute_dtype
from .tile import DenseTile, Tile

# Raw LAPACK ``trtrs`` handles per supported compute dtype: the wrapper
# overhead of ``solve_triangular`` (finiteness checks, copies) is
# measurable at tile granularity, and ``trtrs`` is the same routine the
# wrapper ends up calling — identical bits, less Python.
_TRTRS = {
    np.dtype(np.float64): sla.get_lapack_funcs(
        ("trtrs",), (np.empty(0, dtype=np.float64),)
    )[0],
    np.dtype(np.float32): sla.get_lapack_funcs(
        ("trtrs",), (np.empty(0, dtype=np.float32),)
    )[0],
}

__all__ = [
    "ScratchPool",
    "batched_potrf",
    "batched_trsm",
    "batched_syrk",
    "batched_gemm",
]


def _make_lock():
    """Pool-internal lock constructor.

    The concurrency sanitizer (:mod:`repro.analysis.sanitize`)
    monkeypatches this seam to observe the scratch pool's
    acquire/release edges, exactly like the DAG executor's
    ``parallel._make_lock``.
    """
    return threading.Lock()


class ScratchPool:
    """Reusable per-precision scratch buffers for operand gathering.

    Buffers are flat 1-D arrays keyed by dtype; :meth:`stack` hands out
    a shaped view of the smallest free buffer with enough capacity
    (allocating only when none fits) and returns it to the free list on
    exit.  Because the largest batch of a Cholesky runs first (the
    ``k = 0`` panel), one allocation per dtype typically serves the
    whole factorization.

    Thread-safe: group executors borrow concurrently under ``workers >
    1``; the free lists are guarded by one lock, and a borrowed buffer
    is owned exclusively by its borrower until returned.  Borrowed
    buffers hold *transient* operand copies only — results are never
    returned as views into pooled storage, so reuse can never alias a
    live tile.
    """

    def __init__(self) -> None:
        self._lock = _make_lock()
        self._free: dict[str, list[np.ndarray]] = {}
        #: Buffers created because no free one had enough capacity.
        self.allocations = 0
        #: Borrows served from the free list.
        self.reuses = 0

    def _take(self, nelems: int, dtype: np.dtype) -> np.ndarray:
        key = np.dtype(dtype).str
        with self._lock:
            free = self._free.get(key)
            best = None
            if free:
                for idx, buf in enumerate(free):
                    if buf.size >= nelems and (
                        best is None or buf.size < free[best].size
                    ):
                        best = idx
                if best is not None:
                    self.reuses += 1
                    return free.pop(best)
            self.allocations += 1
        return np.empty(nelems, dtype=dtype)

    def _give(self, base: np.ndarray) -> None:
        with self._lock:
            self._free.setdefault(base.dtype.str, []).append(base)

    @contextmanager
    def stack(self, shape: tuple[int, ...], dtype):
        """Borrow a scratch array of ``shape``/``dtype`` (a shaped view
        of a pooled flat buffer; contents are uninitialized)."""
        nelems = 1
        for dim in shape:
            nelems *= int(dim)
        base = self._take(nelems, np.dtype(dtype))
        try:
            yield base[:nelems].reshape(shape)
        finally:
            self._give(base)

    @property
    def nbytes(self) -> int:
        """Bytes currently parked on the free lists."""
        with self._lock:
            return sum(
                buf.nbytes for bufs in self._free.values() for buf in bufs
            )

    def clear(self) -> None:
        with self._lock:
            self._free.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScratchPool(allocations={self.allocations}, "
            f"reuses={self.reuses}, nbytes={self.nbytes})"
        )


def _check_group(tiles: list, what: str) -> None:
    """Homogeneity preconditions the dispatcher guarantees; cheap
    asserts here so direct callers fail loudly instead of corrupting."""
    if not tiles:
        raise ShapeError(f"empty {what} batch")
    first = tiles[0]
    for t in tiles[1:]:
        if t.shape != first.shape or t.precision is not first.precision:
            raise ShapeError(
                f"{what} batch is not homogeneous: "
                f"{t.shape}/{t.precision.label} vs "
                f"{first.shape}/{first.precision.label}"
            )
        if t.is_low_rank:
            raise ShapeError(f"{what} batch must be all-dense")
    if first.is_low_rank:
        raise ShapeError(f"{what} batch must be all-dense")


def _gather(tiles: list[Tile], buf: np.ndarray) -> np.ndarray:
    """Copy each tile's stored data into one slice of ``buf``; the
    element-wise assignment cast is bit-identical to the per-tile
    ``to_dense64().astype(compute)`` chain (storage dtypes are exactly
    representable in float64)."""
    for p, tile in enumerate(tiles):
        buf[p] = tile.data  # type: ignore[union-attr]
    return buf


def _split_tiles(
    stack: np.ndarray, precision: Precision
) -> list[DenseTile]:
    """Slice a computed output stack into tiles at the group's storage
    precision.

    One cast over the whole stack replaces the per-tile
    ``compute -> float64 -> storage`` round trip (equal bits: the
    intermediate widening to float64 is exact).  Tiles keep views of
    the stack — it is freshly allocated by the caller, never pooled.
    """
    stored = stack.astype(precision.dtype) if stack.dtype != precision.dtype else stack
    return [DenseTile(stored[p]) for p in range(stored.shape[0])]


def _subtract_split(
    c_tiles: list[Tile], update: np.ndarray, precision: Precision
) -> list[DenseTile]:
    """``C_p <- C_p - update[p]`` against the *stored* tiles.

    ``c.data - update[p]`` promotes the narrower operand exactly (the
    same bits as the per-tile kernel's explicit cast to the compute
    dtype), and the one narrowing back to storage is a single rounding
    either way — so the result matches the per-tile kernel bit for bit
    without ever gathering ``C``.
    """
    storage = precision.dtype
    outs = []
    for p, c in enumerate(c_tiles):
        out = c.data - update[p]  # type: ignore[union-attr]
        if out.dtype != storage:
            out = out.astype(storage)
        outs.append(DenseTile(out))
    return outs


def batched_potrf(
    tiles: list[Tile],
    indices: list[tuple[int, int]],
    *,
    pool: ScratchPool | None = None,
    validate: bool = True,
) -> list[DenseTile]:
    """Stacked Cholesky of a homogeneous group of dense diagonal tiles.

    On any non-positive-definite slice the group replays per-tile so
    the raised :class:`~repro.exceptions.NotPositiveDefiniteError`
    names the exact failing tile, matching the per-tile path.
    """
    if validate:
        _check_group(tiles, "POTRF")
    pool = pool if pool is not None else ScratchPool()
    precision = tiles[0].precision
    dtype = compute_dtype(precision)
    n = tiles[0].shape[0]
    with pool.stack((len(tiles), n, n), dtype) as buf:
        _gather(tiles, buf)
        try:
            lows = np.linalg.cholesky(buf)
        except np.linalg.LinAlgError:
            # Replay per tile to identify the indefinite one.
            return [
                K.potrf(tile, index=index)
                for tile, index in zip(tiles, indices)
            ]
    return _split_tiles(lows, precision)


def batched_trsm(
    l_tile: Tile,
    tiles: list[Tile],
    *,
    fp16_accumulate_fp32: bool = True,
    pool: ScratchPool | None = None,
    validate: bool = True,
) -> list[DenseTile]:
    """Whole-panel triangular solve: every tile shares one diagonal
    factor ``L``, so the group is a single wide-RHS
    ``solve_triangular`` (columns are independent, hence per-tile
    bit-identical)."""
    if validate:
        _check_group(tiles, "TRSM")
        if l_tile.is_low_rank:
            raise ShapeError("the TRSM triangle must be dense")
    pool = pool if pool is not None else ScratchPool()
    precision = tiles[0].precision
    dtype = compute_dtype(precision, fp16_accumulate_fp32=fp16_accumulate_fp32)
    if dtype == np.float16:  # pragma: no cover - dispatcher never batches
        raise ShapeError("binary16 TRSM groups are not batchable")
    m, nk = tiles[0].shape
    low = l_tile.to_dense64()
    if low.dtype != dtype:
        low = low.astype(dtype)
    with pool.stack((nk, len(tiles) * m), dtype) as wide:
        for p, tile in enumerate(tiles):
            # Transposed gather: the per-tile kernel solves against
            # ``rhs.T``, and ``astype`` of that view is a C-contiguous
            # transpose copy — same bits, same BLAS layout.
            wide[:, p * m:(p + 1) * m] = tile.data.T  # type: ignore[union-attr]
        # Raw ``trtrs`` — the same LAPACK routine ``solve_triangular``
        # dispatches to (bit-identical), without the wrapper overhead
        # this hot path pays once per panel.
        x, info = _TRTRS[np.dtype(dtype)](low, wide, lower=1)
    if info != 0:
        raise np.linalg.LinAlgError(f"triangular solve failed (info={info})")
    stored = x.astype(precision.dtype) if x.dtype != precision.dtype else x
    # Contiguous copies (not views of the wide solve): downstream
    # SYRK/GEMM groups gather these tiles, and a strided source would
    # slow every one of those copies.
    return [
        DenseTile(np.ascontiguousarray(stored[:, p * m:(p + 1) * m].T))
        for p in range(len(tiles))
    ]


def batched_syrk(
    a_tiles: list[Tile],
    c_tiles: list[Tile],
    *,
    fp16_accumulate_fp32: bool = True,
    pool: ScratchPool | None = None,
    validate: bool = True,
) -> list[DenseTile]:
    """Stacked symmetric rank-k updates ``C <- C - A A^T`` over a
    homogeneous all-dense group.

    Only ``A`` is gathered; the stacked update is subtracted from each
    stored ``C`` slice-wise (dtype promotion upcasts exactly like the
    per-tile operand cast, and the final narrowing to storage is the
    same single rounding), so no ``C`` gather or stacked output cast is
    paid."""
    if validate:
        _check_group(a_tiles, "SYRK A")
        _check_group(c_tiles, "SYRK C")
    pool = pool if pool is not None else ScratchPool()
    precision = c_tiles[0].precision
    dtype = compute_dtype(precision, fp16_accumulate_fp32=fp16_accumulate_fp32)
    if dtype == np.float16:  # pragma: no cover - dispatcher never batches
        raise ShapeError("binary16 SYRK groups are not batchable")
    count = len(a_tiles)
    m, k = a_tiles[0].shape
    with pool.stack((count, m, k), dtype) as bufa, \
            pool.stack((count, m, m), dtype) as update:
        _gather(a_tiles, bufa)
        # ``out=`` lands the stacked update in pooled scratch: the
        # only per-group allocations left are the output tiles.
        np.matmul(bufa, bufa.transpose(0, 2, 1), out=update)
        return _subtract_split(c_tiles, update, precision)


def batched_gemm(
    a_tiles: list[Tile],
    b_tiles: list[Tile],
    c_tiles: list[Tile],
    *,
    fp16_accumulate_fp32: bool = True,
    pool: ScratchPool | None = None,
    validate: bool = True,
) -> list[DenseTile]:
    """Stacked Schur-complement updates ``C <- C - A B^T`` over a
    homogeneous all-dense group (the dominant kernel of Algorithm 1).

    As in :func:`batched_syrk`, only the ``A``/``B`` operands are
    gathered; the update subtracts from each stored ``C`` per slice."""
    if validate:
        _check_group(a_tiles, "GEMM A")
        _check_group(b_tiles, "GEMM B")
        _check_group(c_tiles, "GEMM C")
    pool = pool if pool is not None else ScratchPool()
    precision = c_tiles[0].precision
    dtype = compute_dtype(precision, fp16_accumulate_fp32=fp16_accumulate_fp32)
    if dtype == np.float16:  # pragma: no cover - dispatcher never batches
        raise ShapeError("binary16 GEMM groups are not batchable")
    count = len(a_tiles)
    m, k = a_tiles[0].shape
    n = b_tiles[0].shape[0]
    with pool.stack((count, m, k), dtype) as bufa, \
            pool.stack((count, n, k), dtype) as bufb, \
            pool.stack((count, m, n), dtype) as update:
        _gather(a_tiles, bufa)
        _gather(b_tiles, bufb)
        np.matmul(bufa, bufb.transpose(0, 2, 1), out=update)
        return _subtract_split(c_tiles, update, precision)
