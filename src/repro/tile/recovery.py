"""Numerical recovery ladder for mixed-precision / TLR Cholesky.

Aggressive precision demotion and low-rank compression can push a
covariance that is SPD in exact arithmetic below the positive-definite
floor of its *stored* representation — POTRF then raises
:class:`~repro.exceptions.NotPositiveDefiniteError` even though the
model parameters are perfectly valid.  Instead of rejecting the
optimizer step outright, :func:`factor_with_recovery` escalates through
a ladder of increasingly expensive (and increasingly sure-to-work)
repairs, rebuilding the matrix each time:

1. **promote-tile** — the failing diagonal tile's row and column are
   floored to FP64 (the breakdown is usually local to one panel);
2. **promote-band** — every tile is floored to FP64 (mixed precision
   off, structure kept);
3. **densify** — TLR compression is disabled on top of the FP64 floor
   (full dense FP64 rebuild);
4. **jitter** — a bounded, escalating diagonal shift (relative to the
   matrix's mean diagonal entry) is added via the nugget, the classic
   last-resort regularization.

Rebuilding (rather than patching tiles in place) is essential: tiles
store *rounded* data — promoting the declared precision of an existing
FP16 tile recovers none of the dropped bits — and
:func:`~repro.tile.cholesky.tile_cholesky` destroys its input.

When every rung fails, :class:`~repro.exceptions.RecoveryExhaustedError`
(a :class:`~repro.exceptions.NotPositiveDefiniteError`) carries the
full :class:`RecoveryReport`, so optimizer drivers that treat
indefinite steps as rejections keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..config import DEFAULT_RECOVERY_JITTER, DEFAULT_RECOVERY_MAX_JITTER
from ..exceptions import (
    ConfigurationError,
    NotPositiveDefiniteError,
    RecoveryExhaustedError,
)
from .cholesky import CholeskyStats, tile_cholesky
from .matrix import TileMatrix
from .precision import Precision

__all__ = [
    "RecoveryPolicy",
    "RecoveryAction",
    "RecoveryReport",
    "factor_with_recovery",
    "DEFAULT_RECOVERY",
]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Which rungs of the ladder are enabled, and how far jitter goes.

    ``initial_jitter`` / ``max_jitter`` are *relative* to the matrix's
    mean diagonal entry; each jitter attempt multiplies the shift by
    ``jitter_growth`` until ``max_jitter`` bounds it.
    """

    promote_tile: bool = True
    promote_band: bool = True
    densify: bool = True
    max_jitter_attempts: int = 3
    initial_jitter: float = DEFAULT_RECOVERY_JITTER
    max_jitter: float = DEFAULT_RECOVERY_MAX_JITTER
    jitter_growth: float = 100.0

    def __post_init__(self) -> None:
        if self.max_jitter_attempts < 0:
            raise ConfigurationError("max_jitter_attempts must be >= 0")
        if self.max_jitter_attempts:
            if self.initial_jitter <= 0:
                raise ConfigurationError("initial_jitter must be positive")
            if self.max_jitter < self.initial_jitter:
                raise ConfigurationError(
                    "max_jitter must be >= initial_jitter"
                )
            if self.jitter_growth <= 1.0:
                raise ConfigurationError("jitter_growth must be > 1")


#: The ladder with every rung enabled — the sensible default for MP/TLR
#: variants (``variant.with_(recovery=DEFAULT_RECOVERY)``).
DEFAULT_RECOVERY = RecoveryPolicy()


@dataclass(frozen=True)
class RecoveryAction:
    """One escalation attempt of the ladder.

    The resilience layer (:mod:`repro.resilience`) reuses this record
    for its own escalations: ``step`` is then ``"retry"`` (transient
    task retries absorbed during a fit attempt) or ``"downgrade"``
    (the fit fell to a safer compute variant).
    """

    step: str  # "promote_tile" | "promote_band" | "densify" | "jitter"
    #   resilience layer adds:  "retry" | "downgrade"
    tile_index: tuple[int, int] | None  # breakdown that triggered it
    detail: str
    succeeded: bool


@dataclass
class RecoveryReport:
    """What the ladder did for one factorization.

    The fit-level degradation ladder extends the same report shape:
    ``retries`` counts transient task retries the resilience layer
    absorbed, and ``variant_path`` records the compute variants a fit
    moved through (length 1 when no downgrade was needed).
    """

    actions: list[RecoveryAction] = field(default_factory=list)
    attempts: int = 1  # factorization attempts, including the first
    recovered: bool = False
    jitter_added: float = 0.0  # absolute diagonal shift of the success
    #: Transient task retries absorbed (resilience layer; 0 otherwise).
    retries: int = 0
    #: Variant names a degraded fit moved through, first to last.
    variant_path: list[str] = field(default_factory=list)

    @property
    def steps(self) -> tuple[str, ...]:
        """Escalation step names in the order they were tried."""
        return tuple(a.step for a in self.actions)

    def summary(self) -> str:
        if not self.actions:
            return "no recovery needed"
        tail = "recovered" if self.recovered else "exhausted"
        return f"{' -> '.join(self.steps)} ({tail})"


def _diag_scale(matrix: TileMatrix) -> float:
    """Mean diagonal entry — the natural unit for a jitter shift."""
    total = 0.0
    for i in range(matrix.nt):
        total += float(np.trace(matrix.get(i, i).to_dense64()))
    return total / matrix.layout.n


def _panel_floor(
    layout, k: int
) -> dict[tuple[int, int], Precision]:
    """FP64 floor for every lower tile in row/column ``k``."""
    return {
        (i, j): Precision.FP64
        for (i, j) in layout.lower_tiles()
        if i == k or j == k
    }


def factor_with_recovery(
    rebuild: Callable[..., tuple[TileMatrix, "object"]],
    *,
    policy: RecoveryPolicy,
    max_rank: int | None = None,
    fp16_accumulate_fp32: bool = True,
    factor_fn: "Callable[..., tuple[TileMatrix, CholeskyStats]] | None" = None,
) -> tuple[TileMatrix, CholeskyStats, "object", RecoveryReport]:
    """Factor with escalating numerical recovery.

    ``rebuild(min_precisions=..., force_dense=..., extra_nugget=...)``
    must construct a fresh planned covariance and return
    ``(matrix, report)`` where ``report.tile_tol`` is the recompression
    tolerance (an :class:`~repro.tile.assembly.AssemblyReport` fits).
    It is called once per attempt — the factorization is destructive
    and tiles store rounded data, so nothing can be reused.

    ``factor_fn(matrix, tile_tol=...)`` overrides how each attempt is
    factored (e.g. the threaded DAG executor); it must return
    ``(factor, stats)`` and raise
    :class:`~repro.exceptions.NotPositiveDefiniteError` on breakdown.
    The default is the sequential :func:`~repro.tile.cholesky.tile_cholesky`.

    Returns ``(factor, stats, assembly_report, recovery_report)`` of the
    first attempt that completes; raises
    :class:`~repro.exceptions.RecoveryExhaustedError` when the ladder
    runs dry.
    """
    if factor_fn is None:

        def factor_fn(matrix: TileMatrix, *, tile_tol: float):
            return tile_cholesky(
                matrix,
                tile_tol=tile_tol,
                max_rank=max_rank,
                fp16_accumulate_fp32=fp16_accumulate_fp32,
            )

    report = RecoveryReport()
    overrides: dict = {}
    matrix, build_report = rebuild(**overrides)
    scale = _diag_scale(matrix)
    try:
        factor, stats = factor_fn(matrix, tile_tol=build_report.tile_tol)
        return factor, stats, build_report, report
    except NotPositiveDefiniteError as exc:
        failure = exc

    steps: list[tuple[str, dict, str]] = []
    if policy.promote_tile and failure.tile_index is not None:
        k = failure.tile_index[0]
        steps.append((
            "promote_tile",
            {"min_precisions": _panel_floor(matrix.layout, k)},
            f"FP64 floor on row/column {k}",
        ))
    if policy.promote_band:
        steps.append((
            "promote_band",
            {"min_precisions": Precision.FP64},
            "FP64 floor on every tile",
        ))
    if policy.densify:
        steps.append((
            "densify",
            {"min_precisions": Precision.FP64, "force_dense": True},
            "dense FP64 rebuild (TLR off)",
        ))
    jitter = policy.initial_jitter
    for _ in range(policy.max_jitter_attempts):
        jitter = min(jitter, policy.max_jitter)
        steps.append((
            "jitter",
            {"extra_nugget": jitter * scale},
            f"diagonal shift {jitter:.1e} x mean diagonal",
        ))
        if jitter >= policy.max_jitter:
            break
        jitter *= policy.jitter_growth

    for step, extra, detail in steps:
        overrides.update(extra)
        matrix, build_report = rebuild(**overrides)
        report.attempts += 1
        try:
            factor, stats = factor_fn(matrix, tile_tol=build_report.tile_tol)
        except NotPositiveDefiniteError as exc:
            failure = exc
            report.actions.append(
                RecoveryAction(step, exc.tile_index, detail, succeeded=False)
            )
            continue
        report.actions.append(
            RecoveryAction(step, failure.tile_index, detail, succeeded=True)
        )
        report.recovered = True
        report.jitter_added = float(overrides.get("extra_nugget", 0.0))
        return factor, stats, build_report, report

    raise RecoveryExhaustedError(
        f"recovery ladder exhausted after {report.attempts} attempts "
        f"({report.summary()}): {failure}",
        tile_index=failure.tile_index,
        report=report,
    )
