"""Mixed-precision iterative refinement of tiled solves.

A factorization computed with low-precision / low-rank tiles gives a
slightly perturbed solve; classical iterative refinement recovers
working accuracy by iterating

    r = b - A x;   x <- x + solve(L, r)

with the *residual computed against the exact operator* (here: the
full-accuracy covariance applied tile-wise).  This is the standard
companion of mixed-precision factorizations (Higham et al.) and lets
the MP/TLR factor serve as a preconditioner-quality solver when the
application demands tighter residuals than the storage tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ShapeError
from .matrix import TileMatrix
from .solve import backward_solve, forward_solve, symmetric_matvec

__all__ = ["RefinementResult", "refine_solve"]


@dataclass
class RefinementResult:
    """Outcome of iterative refinement."""

    x: np.ndarray
    residual_norms: list[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else np.inf


def refine_solve(
    a_exact: TileMatrix,
    factor: TileMatrix,
    b: np.ndarray,
    *,
    tol: float = 1.0e-12,
    max_iter: int = 10,
) -> RefinementResult:
    """Solve ``A x = b`` with the (approximate) factor plus iterative
    refinement against the exact tiled operator ``a_exact``.

    ``tol`` is on the relative residual ``||b - A x|| / ||b||``.
    Diverging iterations (residual growth) stop early with
    ``converged = False``.
    """
    rhs = np.asarray(b, dtype=np.float64)
    if rhs.shape[0] != a_exact.n or factor.n != a_exact.n:
        raise ShapeError("dimension mismatch between operator, factor, rhs")
    b_norm = float(np.linalg.norm(rhs))
    if b_norm == 0.0:
        return RefinementResult(
            x=np.zeros_like(rhs), residual_norms=[0.0],
            iterations=0, converged=True,
        )

    x = backward_solve(factor, forward_solve(factor, rhs))
    result = RefinementResult(x=x)
    prev = np.inf
    for it in range(1, max_iter + 1):
        residual = rhs - symmetric_matvec(a_exact, x)
        rel = float(np.linalg.norm(residual)) / b_norm
        result.residual_norms.append(rel)
        result.iterations = it
        if rel <= tol:
            result.converged = True
            break
        if rel >= prev:  # stagnation/divergence guard
            break
        prev = rel
        x = x + backward_solve(factor, forward_solve(factor, residual))
        result.x = x
    return result
