"""Shared-memory tile store: `TileMatrix` payloads across processes.

The process-parallel backend (:mod:`repro.runtime.procpool`) runs tile
kernels in worker processes, so tile payloads must live somewhere every
process can reach without serialization.  A :class:`SharedTileStore`
backs each tile of a :class:`~repro.tile.matrix.TileMatrix` with
regions of :class:`multiprocessing.shared_memory.SharedMemory`
segments:

* a **slab allocator keyed by capacity class**: tiles of one shape
  share segments, each segment packing many fixed-capacity slabs, so a
  30x30-tile matrix costs a handful of ``shm_open`` calls, not 930;
* **fixed per-tile homes**: every tile gets two slabs of capacity
  ``8 * m * n`` bytes each — slab *a* holds a dense payload or the
  low-rank ``U`` factor, slab *b* the ``V`` factor.  The bound covers
  every representation a kernel can produce (dense FP64 is ``8mn``;
  a rank-``r`` factor with ``r <= min(m, n)`` fits because
  ``itemsize * r <= 8 * n``), so a tile can densify, re-compress, or
  change precision in place without ever reallocating;
* **picklable headers**: a :class:`TileHandle` names the slabs plus
  the current representation (kind / precision / shape / rank) — the
  only thing that ever crosses a process boundary;
* **zero-copy views**: :func:`tile_view` wraps the slab bytes in
  numpy arrays without copying, on both sides of the fork;
* **explicit lifecycle**: the creating process owns the segments and
  must :meth:`~SharedTileStore.close` (unlink-on-close); workers
  attach through a :class:`SegmentCache`, which keeps attaches off the
  resource tracker so only the owner ever unlinks (on this Python,
  attaching also registers — a tracked attach would tear segments out
  from under the owner's later cleanup).

In-place overwrite is race-free by construction: the runtime's
dependence edges (RAW/WAW/WAR) serialize every conflicting access, and
the dispatcher only releases a successor after its producers' results
have been observed, so no reader ever sees a half-written slab.
"""

from __future__ import annotations

import os
from contextlib import suppress
from multiprocessing import resource_tracker, shared_memory
from typing import NamedTuple

import numpy as np

from ..exceptions import ShapeError
from .layout import TileLayout
from .matrix import TileMatrix
from .precision import Precision
from .tile import DenseTile, LowRankTile, Tile

__all__ = [
    "SlabRef",
    "TileHandle",
    "SharedTileStore",
    "SegmentCache",
    "payload_nbytes",
    "leaked_segments",
]

#: Prefix of every segment name this module creates — leak checks grep
#: ``/dev/shm`` for it.
SEGMENT_PREFIX = "reproshm"

#: Target segment size for the slab allocator: large enough to
#: amortize ``shm_open``/``mmap`` per segment, small enough that the
#: trailing partially-used segment wastes little.
_SEGMENT_TARGET = 8 << 20

_store_counter = 0


class SlabRef(NamedTuple):
    """One fixed-capacity region of a named shared-memory segment."""

    segment: str
    offset: int
    capacity: int


class TileHandle(NamedTuple):
    """Picklable descriptor of a tile's current representation in the
    store.  ``a`` holds the dense payload or the ``U`` factor, ``b``
    the ``V`` factor (unused while dense); ``rank`` is meaningful only
    when ``lr``."""

    index: tuple[int, int]
    lr: bool
    precision: int
    shape: tuple[int, int]
    rank: int
    a: SlabRef
    b: SlabRef


def payload_nbytes(handle: TileHandle) -> int:
    """Bytes of the handle's payload in its wire representation —
    by construction identical to
    :func:`repro.runtime.comm.tile_wire_bytes` for the same
    representation (``itemsize * m * n`` dense,
    ``itemsize * rank * (m + n)`` low-rank)."""
    m, n = handle.shape
    itemsize = Precision(handle.precision).itemsize
    if handle.lr:
        return itemsize * handle.rank * (m + n)
    return itemsize * m * n


def _check_fits(nbytes: int, ref: SlabRef, what: str) -> None:
    if nbytes > ref.capacity:
        raise ShapeError(
            f"{what} needs {nbytes} bytes but its home slab holds "
            f"{ref.capacity}"
        )


def _write_payload(buf, ref: SlabRef, arr: np.ndarray) -> None:
    """Copy ``arr`` (C-order) into the slab bytes."""
    _check_fits(arr.nbytes, ref, "tile payload")
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=buf, offset=ref.offset)
    view[...] = arr


def _handle_for(index: tuple[int, int], tile: Tile, a: SlabRef, b: SlabRef) -> TileHandle:
    if isinstance(tile, LowRankTile):
        return TileHandle(
            index, True, int(tile.precision), tile.shape, tile.rank, a, b
        )
    return TileHandle(index, False, int(tile.precision), tile.shape, 0, a, b)


def tile_view(handle: TileHandle, buf_a, buf_b) -> Tile:
    """Zero-copy :class:`Tile` over the handle's slab bytes.

    ``buf_a``/``buf_b`` are the mapped buffers of the two segments the
    handle's slabs live in (the same object when they share a
    segment).  The arrays alias shared memory: callers that outlive
    the current task must copy.
    """
    m, n = handle.shape
    dtype = Precision(handle.precision).dtype
    if handle.lr:
        u = np.ndarray((m, handle.rank), dtype=dtype, buffer=buf_a,
                       offset=handle.a.offset)
        v = np.ndarray((n, handle.rank), dtype=dtype, buffer=buf_b,
                       offset=handle.b.offset)
        return LowRankTile(u, v)
    data = np.ndarray((m, n), dtype=dtype, buffer=buf_a,
                      offset=handle.a.offset)
    return DenseTile(data)


class _SlabClass:
    """Bump allocator for one capacity class: segments holding
    ``per_segment`` slabs each, plus a free list."""

    __slots__ = ("capacity", "per_segment", "free", "_cursor", "_room")

    def __init__(self, capacity: int):
        # 16-byte alignment keeps every payload dtype aligned.
        self.capacity = -(-capacity // 16) * 16
        self.per_segment = max(1, _SEGMENT_TARGET // self.capacity)
        self.free: list[SlabRef] = []
        self._cursor: str | None = None  # segment still being filled
        self._room = 0


class SharedTileStore:
    """Owner-side store backing one :class:`TileMatrix`'s tiles.

    The creating process is the owner: it allocates segments, writes
    initial payloads, and must call :meth:`close` (or use the store as
    a context manager) to unlink them — segments are kernel objects
    that outlive the process otherwise.  Worker processes never
    construct one of these; they attach via :class:`SegmentCache`.
    """

    def __init__(self, layout: TileLayout):
        global _store_counter
        _store_counter += 1
        self.layout = layout
        self._tag = f"{SEGMENT_PREFIX}{os.getpid():x}x{_store_counter:x}"
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._classes: dict[int, _SlabClass] = {}
        self._homes: dict[tuple[int, int], tuple[SlabRef, SlabRef]] = {}
        self.handles: dict[tuple[int, int], TileHandle] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # slab allocation
    # ------------------------------------------------------------------
    def _alloc(self, capacity: int) -> SlabRef:
        cls = self._classes.get(capacity)
        if cls is None:
            cls = self._classes[capacity] = _SlabClass(capacity)
        if cls.free:
            return cls.free.pop()
        if cls._room == 0:
            name = f"{self._tag}s{len(self._segments):x}"
            seg = shared_memory.SharedMemory(
                name=name, create=True,
                size=cls.capacity * cls.per_segment,
            )
            self._segments[seg.name] = seg
            cls._cursor = seg.name
            cls._room = cls.per_segment
        offset = (cls.per_segment - cls._room) * cls.capacity
        cls._room -= 1
        return SlabRef(cls._cursor, offset, cls.capacity)

    def free_slab(self, ref: SlabRef) -> None:
        """Return a slab to its class's free list (homes are stable for
        the store's lifetime; this exists for non-matrix scratch use)."""
        cls = self._classes.get(ref.capacity)
        if cls is not None:
            cls.free.append(ref)

    def _home(self, key: tuple[int, int]) -> tuple[SlabRef, SlabRef]:
        """The tile's two fixed slabs (allocated on first use).  Each
        has capacity ``8 * m * n``: enough for dense FP64 and for
        either low-rank factor at any legal rank."""
        home = self._homes.get(key)
        if home is None:
            m, n = self.layout.tile_shape(*key)
            home = self._homes[key] = (
                self._alloc(8 * m * n), self._alloc(8 * m * n)
            )
        return home

    # ------------------------------------------------------------------
    # tile I/O (owner side)
    # ------------------------------------------------------------------
    def _buf(self, ref: SlabRef):
        return self._segments[ref.segment].buf

    def put_tile(self, key: tuple[int, int], tile: Tile) -> TileHandle:
        """Write ``tile`` into its home slabs; returns (and records)
        the new handle."""
        a, b = self._home(key)
        if isinstance(tile, LowRankTile):
            _write_payload(self._buf(a), a, np.ascontiguousarray(tile.u))
            _write_payload(self._buf(b), b, np.ascontiguousarray(tile.v))
        else:
            _write_payload(self._buf(a), a, np.ascontiguousarray(tile.data))
        handle = _handle_for(key, tile, a, b)
        self.handles[key] = handle
        return handle

    def put_matrix(self, matrix: TileMatrix) -> dict[tuple[int, int], TileHandle]:
        """Write every stored tile of ``matrix``; returns the handle
        table (also kept on :attr:`handles`)."""
        if matrix.layout != self.layout:
            raise ShapeError("matrix layout differs from the store's")
        for key, tile in matrix.items():
            self.put_tile(key, tile)
        return dict(self.handles)

    def get_tile(self, handle: TileHandle) -> Tile:
        """Materialize a handle as a private (copied) tile — safe to
        use after the store is closed."""
        view = tile_view(
            handle, self._buf(handle.a),
            self._buf(handle.b) if handle.lr else None,
        )
        if isinstance(view, LowRankTile):
            return LowRankTile(view.u.copy(), view.v.copy(), view.precision)
        return DenseTile(view.data.copy(), None)

    def read_into(self, matrix: TileMatrix) -> TileMatrix:
        """Copy every current handle's payload back into ``matrix``
        (the factorization result escaping the store's lifetime)."""
        for key, handle in self.handles.items():
            matrix._tiles[key] = self.get_tile(handle)
        return matrix

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def segment_names(self) -> list[str]:
        return sorted(self._segments)

    @property
    def nbytes(self) -> int:
        return sum(seg.size for seg in self._segments.values())

    def close(self) -> None:
        """Close and unlink every segment (idempotent).  Any numpy
        view into the store is invalid after this."""
        if self._closed:
            return
        self._closed = True
        for seg in self._segments.values():
            # A live view pins the mapping (BufferError on close);
            # unlink still removes the name so nothing leaks past
            # process exit.  FileNotFoundError means already unlinked.
            with suppress(BufferError):
                seg.close()
            with suppress(FileNotFoundError):
                seg.unlink()
        self._segments.clear()
        self._homes.clear()
        self.handles.clear()

    def __enter__(self) -> "SharedTileStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            return  # interpreter teardown; close() is best-effort here


class SegmentCache:
    """Worker-side attach cache: one ``mmap`` per segment per worker,
    reused across every task of a factorization.

    Attaching registers the segment with the resource tracker on this
    Python, but cleanup responsibility stays with the owning process —
    otherwise the first worker to exit would unlink segments its
    siblings are still computing on.  Because fork/spawn children share
    the parent's tracker *process*, an attach-then-unregister would
    remove the owner's registration from the shared tracker (the
    tracker keys by name, not by registrant), so the cache instead
    suppresses registration for the attach call itself.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def buf(self, name: str):
        seg = self._segments.get(name)
        if seg is None:
            orig_register = resource_tracker.register
            resource_tracker.register = lambda *a, **k: None
            try:
                seg = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = orig_register
            self._segments[name] = seg
        return seg.buf

    def view(self, handle: TileHandle) -> Tile:
        """Zero-copy tile over the handle's current payload."""
        return tile_view(
            handle, self.buf(handle.a.segment),
            self.buf(handle.b.segment) if handle.lr else None,
        )

    def write(self, handle: TileHandle, tile: Tile) -> TileHandle:
        """Store a task's output tile into the (home) slabs named by
        ``handle`` and return the updated handle."""
        a, b = handle.a, handle.b
        if isinstance(tile, LowRankTile):
            _write_payload(self.buf(a.segment), a,
                           np.ascontiguousarray(tile.u))
            _write_payload(self.buf(b.segment), b,
                           np.ascontiguousarray(tile.v))
        else:
            _write_payload(self.buf(a.segment), a,
                           np.ascontiguousarray(tile.data))
        return _handle_for(handle.index, tile, a, b)

    def close(self) -> None:
        """Detach every cached mapping (never unlinks)."""
        for seg in self._segments.values():
            with suppress(BufferError):  # a leaked view pins the mmap
                seg.close()
        self._segments.clear()


def leaked_segments() -> list[str]:
    """Names under ``/dev/shm`` carrying this module's prefix — empty
    unless a store was abandoned without :meth:`SharedTileStore.close`
    (leak tests assert on this)."""
    try:
        return sorted(
            name for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        )
    except OSError:  # pragma: no cover - non-linux
        return []
