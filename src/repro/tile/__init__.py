"""Tile linear algebra: the mixed-precision + dense/TLR substrate.

Layering inside this subpackage (no cycles):

    precision -> tile -> compression -> layout -> matrix
    (perfmodel) -> decisions / bandtuning -> assembly
    kernels -> cholesky / solve -> recovery
"""

from .assembly import AssemblyReport, assemble_dense, build_planned_covariance
from .bandtuning import autotune_band_size, subdiagonal_times
from .batch import (
    ScratchPool,
    batched_gemm,
    batched_potrf,
    batched_syrk,
    batched_trsm,
)
from .cholesky import CholeskyStats, tile_cholesky
from .compression import (
    compress_block,
    compress_or_rank,
    compress_tile,
    fast_lr_enabled,
    frobenius_rank,
    lr_add,
    rank_of_block,
    recompress,
    truncated_svd,
    use_fast_lr,
)
from .geometry import (
    GeometryCache,
    TileGeometry,
    build_tile_geometry,
    locations_fingerprint,
)
from .decisions import (
    TilePlan,
    band_precision_map,
    frobenius_precision_map,
    plan_summary,
    structure_map,
)
from .layout import TileLayout
from .matrix import TileMatrix
from .precision import PRECISION_LADDER, Precision, cast_storage, compute_dtype
from .diagnostics import condition_estimate, power_norm_estimate
from .recovery import (
    DEFAULT_RECOVERY,
    RecoveryAction,
    RecoveryPolicy,
    RecoveryReport,
    factor_with_recovery,
)
from .refinement import RefinementResult, refine_solve
from .shm import (
    SegmentCache,
    SharedTileStore,
    TileHandle,
    leaked_segments,
    payload_nbytes,
)
from .solve import (
    PanelSolver,
    apply_lower,
    backward_solve,
    forward_solve,
    symmetric_matvec,
    tile_apply,
    tile_logdet,
)
from .tile import DenseTile, LowRankTile, Tile

__all__ = [
    "Precision",
    "PRECISION_LADDER",
    "cast_storage",
    "compute_dtype",
    "Tile",
    "DenseTile",
    "LowRankTile",
    "TileLayout",
    "TileMatrix",
    "truncated_svd",
    "frobenius_rank",
    "compress_block",
    "compress_or_rank",
    "compress_tile",
    "recompress",
    "lr_add",
    "rank_of_block",
    "use_fast_lr",
    "fast_lr_enabled",
    "GeometryCache",
    "TileGeometry",
    "build_tile_geometry",
    "locations_fingerprint",
    "TilePlan",
    "frobenius_precision_map",
    "band_precision_map",
    "structure_map",
    "plan_summary",
    "autotune_band_size",
    "subdiagonal_times",
    "AssemblyReport",
    "assemble_dense",
    "build_planned_covariance",
    "tile_cholesky",
    "CholeskyStats",
    "ScratchPool",
    "batched_potrf",
    "batched_trsm",
    "batched_syrk",
    "batched_gemm",
    "PanelSolver",
    "forward_solve",
    "backward_solve",
    "apply_lower",
    "tile_logdet",
    "RecoveryPolicy",
    "RecoveryAction",
    "RecoveryReport",
    "DEFAULT_RECOVERY",
    "factor_with_recovery",
    "RefinementResult",
    "refine_solve",
    "power_norm_estimate",
    "condition_estimate",
    "tile_apply",
    "symmetric_matvec",
    "SharedTileStore",
    "SegmentCache",
    "TileHandle",
    "payload_nbytes",
    "leaked_segments",
]
