"""Locality-preserving orderings of observation locations.

The covariance matrix of a well-ordered point set concentrates its
large entries near the diagonal, which is the structural property that
both the mixed-precision rule and TLR compression exploit (paper
Section III, citing the ordering of [10]).

:func:`order_points` is the dispatcher used by the data generators and
by :class:`repro.core.model.ExaGeoStatModel`.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..kernels.distance import as_locations, split_space_time
from .hilbert import hilbert_codes_2d, hilbert_order
from .kdtree import kdtree_order
from .morton import morton_codes, morton_order

__all__ = [
    "morton_codes",
    "morton_order",
    "hilbert_codes_2d",
    "hilbert_order",
    "kdtree_order",
    "order_points",
    "ORDERINGS",
]

#: Recognized ordering method names.
ORDERINGS = ("none", "morton", "hilbert", "kdtree", "random")


def order_points(
    x: np.ndarray,
    method: str = "morton",
    *,
    seed: int | None = None,
    space_time: bool = False,
) -> np.ndarray:
    """Return a permutation of the rows of ``x`` for the given method.

    Parameters
    ----------
    x:
        ``(n, d)`` locations.  With ``space_time=True`` the last column
        is time: points are ordered by a space-filling curve on the
        spatial columns with time as the secondary sort key, mimicking
        how ExaGeoStat orders space-time data (spatial blocks stay
        contiguous so temporal correlation lands near the diagonal).
    method:
        One of :data:`ORDERINGS`.  ``"none"`` returns the identity,
        ``"random"`` a seeded shuffle (the adversarial baseline used in
        the ordering ablation).
    """
    pts = as_locations(x)
    n = pts.shape[0]
    if method not in ORDERINGS:
        raise ShapeError(f"unknown ordering {method!r}; choose from {ORDERINGS}")
    if method == "none":
        return np.arange(n)
    if method == "random":
        rng = np.random.default_rng(seed)
        return rng.permutation(n)

    if space_time:
        space, time = split_space_time(pts)
        if method == "hilbert" and space.shape[1] == 2:
            primary = hilbert_codes_2d(space)
        elif method == "kdtree":
            # Rank of each *unique* spatial point within the bisection
            # order serves as the sort key, so time replicas of the
            # same pixel share a key and stay contiguous.
            unique, inverse = np.unique(space, axis=0, return_inverse=True)
            perm = kdtree_order(unique)
            rank = np.empty(len(unique), dtype=np.int64)
            rank[perm] = np.arange(len(unique))
            primary = rank[inverse]
        else:
            primary = morton_codes(space)
        # lexsort: last key is primary.
        return np.lexsort((time, primary))

    if method == "hilbert":
        if pts.shape[1] != 2:
            raise ShapeError("hilbert ordering requires 2-D locations")
        return hilbert_order(pts)
    if method == "kdtree":
        return kdtree_order(pts)
    return morton_order(pts)
