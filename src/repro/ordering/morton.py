"""Morton (Z-curve) ordering of point sets.

The paper relies on a "proper ordering [10]" of the observation
locations so that the significant covariance mass clusters near the
diagonal of the matrix, which is what makes off-diagonal tiles
low-rank.  Morton ordering quantizes each coordinate to ``bits`` bits
and interleaves them; sorting by the interleaved code places spatially
close points at nearby indices.

Everything here is vectorized over the point set (no per-point Python
loop): bit interleaving is done with the classic mask-shift "bit
spreading" sequence on ``uint64`` arrays.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..kernels.distance import as_locations

__all__ = ["morton_codes", "morton_order"]

_MAX_BITS = {2: 31, 3: 20}  # bits per coordinate that fit in 64-bit codes


def _spread_bits_2d(x: np.ndarray) -> np.ndarray:
    """Insert one zero bit between consecutive bits of each uint64."""
    x = x & np.uint64(0x00000000FFFFFFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << np.uint64(2))) & np.uint64(0x3333333333333333)
    x = (x | (x << np.uint64(1))) & np.uint64(0x5555555555555555)
    return x


def _spread_bits_3d(x: np.ndarray) -> np.ndarray:
    """Insert two zero bits between consecutive bits of each uint64."""
    x = x & np.uint64(0x00000000001FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _quantize(x: np.ndarray, bits: int) -> np.ndarray:
    """Affinely map each column of ``x`` onto ``[0, 2^bits - 1]``
    integers.  Degenerate (constant) columns map to 0."""
    lo = x.min(axis=0)
    hi = x.max(axis=0)
    span = hi - lo
    span[span == 0.0] = 1.0
    scaled = (x - lo) / span  # in [0, 1]
    q = np.floor(scaled * (2**bits - 1) + 0.5).astype(np.uint64)
    return q


def morton_codes(x: np.ndarray, *, bits: int | None = None) -> np.ndarray:
    """Morton codes (uint64) of a ``(n, d)`` point set, ``d in {1,2,3}``.

    Coordinates are first normalized to the data's bounding box, so the
    codes are invariant to translation and per-axis scale.
    """
    pts = as_locations(x)
    n, d = pts.shape
    if d == 1:
        q = _quantize(pts, 53)
        return q[:, 0]
    if d not in _MAX_BITS:
        raise ShapeError(f"Morton ordering supports 1-3 dimensions, got {d}")
    if bits is None:
        bits = _MAX_BITS[d]
    if not (1 <= bits <= _MAX_BITS[d]):
        raise ShapeError(f"bits must be in [1, {_MAX_BITS[d]}] for {d}-D")
    q = _quantize(pts, bits)
    if d == 2:
        return _spread_bits_2d(q[:, 0]) | (_spread_bits_2d(q[:, 1]) << np.uint64(1))
    return (
        _spread_bits_3d(q[:, 0])
        | (_spread_bits_3d(q[:, 1]) << np.uint64(1))
        | (_spread_bits_3d(q[:, 2]) << np.uint64(2))
    )


def morton_order(x: np.ndarray, *, bits: int | None = None) -> np.ndarray:
    """Permutation ``perm`` such that ``x[perm]`` follows the Z-curve.

    Ties (identical quantized cells) are broken by original index, so
    the permutation is deterministic.
    """
    codes = morton_codes(x, bits=bits)
    return np.argsort(codes, kind="stable")
