"""Recursive-bisection (k-d tree) ordering.

HiCMA/ExaGeoStat typically cluster points by recursive coordinate
bisection: split the point set at the median of its widest coordinate,
recurse, and concatenate the leaves.  Compared to space-filling curves
the leaves align with the tile size, which tends to give the cleanest
per-tile separation (and therefore ranks) when ``leaf_size`` matches
the tile size.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..kernels.distance import as_locations

__all__ = ["kdtree_order"]


def kdtree_order(x: np.ndarray, *, leaf_size: int = 32) -> np.ndarray:
    """Permutation ordering points by recursive median bisection.

    Splits along the coordinate with the largest spread; stable within
    leaves (original index order), so the result is deterministic.
    """
    pts = as_locations(x)
    if leaf_size < 1:
        raise ShapeError("leaf_size must be >= 1")
    n = pts.shape[0]
    out = np.empty(n, dtype=np.int64)
    cursor = 0

    # Iterative DFS to dodge recursion limits on large inputs.
    stack: list[np.ndarray] = [np.arange(n)]
    while stack:
        idx = stack.pop()
        if idx.size <= leaf_size:
            out[cursor : cursor + idx.size] = np.sort(idx)
            cursor += idx.size
            continue
        sub = pts[idx]
        spread = sub.max(axis=0) - sub.min(axis=0)
        axis = int(np.argmax(spread))
        order = np.argsort(sub[:, axis], kind="stable")
        half = idx.size // 2
        # Push the upper half first so the lower half is emitted first.
        stack.append(idx[order[half:]])
        stack.append(idx[order[:half]])
    if cursor != n:  # pragma: no cover - invariant
        raise ShapeError("bisection did not cover all points")
    return out
