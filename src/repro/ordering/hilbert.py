"""Hilbert-curve ordering for 2-D point sets.

The Hilbert curve preserves locality slightly better than the Morton
curve (no long diagonal jumps), which typically shaves a few ranks off
the off-diagonal tiles.  The transform is the classic iterative
rotate-and-flip algorithm, vectorized across all points with a loop
only over the ``bits`` refinement levels.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..kernels.distance import as_locations

__all__ = ["hilbert_codes_2d", "hilbert_order"]


def hilbert_codes_2d(x: np.ndarray, *, bits: int = 16) -> np.ndarray:
    """Hilbert curve indices (uint64) of a 2-D point set.

    Points are quantized to a ``2^bits`` per side grid normalized to
    the data bounding box.  ``bits`` up to 31 keeps the code in 62 bits.
    """
    pts = as_locations(x, dim=2)
    if not (1 <= bits <= 31):
        raise ShapeError("bits must be in [1, 31]")
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    span = hi - lo
    span[span == 0.0] = 1.0
    side = np.uint64(1) << np.uint64(bits)
    grid = np.floor((pts - lo) / span * (2**bits - 1) + 0.5).astype(np.uint64)
    px = grid[:, 0].copy()
    py = grid[:, 1].copy()

    rx = np.zeros_like(px)
    ry = np.zeros_like(py)
    d = np.zeros_like(px)
    s = side >> np.uint64(1)
    one = np.uint64(1)
    while s > 0:
        rx = ((px & s) > 0).astype(np.uint64)
        ry = ((py & s) > 0).astype(np.uint64)
        d += s * s * ((np.uint64(3) * rx) ^ ry)
        # Rotate the quadrant: where ry == 0.
        rotate = ry == 0
        flip = rotate & (rx == 1)
        px_f = px[flip]
        py_f = py[flip]
        px[flip] = s - one - px_f
        py[flip] = s - one - py_f
        tmp = px[rotate].copy()
        px[rotate] = py[rotate]
        py[rotate] = tmp
        s >>= one
    return d


def hilbert_order(x: np.ndarray, *, bits: int = 16) -> np.ndarray:
    """Permutation that sorts 2-D points along the Hilbert curve."""
    codes = hilbert_codes_2d(x, bits=bits)
    return np.argsort(codes, kind="stable")
