"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so downstream
users can catch the package's failures with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.

Hierarchy::

    ReproError
    ├── ParameterError(ValueError)        bad covariance/model parameters
    ├── ShapeError(ValueError)            incompatible array shapes
    ├── NotPositiveDefiniteError(ArithmeticError)
    │   ├── RecoveryExhaustedError        the numerical recovery ladder
    │   │                                 (tile/recovery.py) ran out of
    │   │                                 escalation steps
    │   └── NumericalCorruptionError      a tile kernel produced NaN/inf
    │                                     (FP16 overflow, injected chaos)
    ├── CompressionError(ArithmeticError) low-rank tolerance unreachable
    ├── SchedulingError(RuntimeError)     inconsistent task DAG/schedule
    │   └── WorkerLostError               a worker process died
    │                                     (SIGKILL/OOM) mid-execution
    ├── TaskFailedError(RuntimeError)     a simulated task exceeded its
    │                                     transient-failure retry budget
    ├── DeadlineExceededError(TimeoutError)
    │                                     a deadline/cancellation token
    │                                     expired mid-execution
    ├── ChaosError(RuntimeError)          an injected (opt-in, seeded)
    │                                     chaos failure fired
    ├── DeadlockDetectedError(RuntimeError)
    │                                     the concurrency sanitizer saw
    │                                     an operation that would hang
    ├── OptimizationError(RuntimeError)   optimizer hard failure
    └── ConfigurationError(ValueError)    inconsistent variant/runtime config
        └── PlanValidationError           static analysis found
                                          error-severity findings in a
                                          plan or task graph

``ConvergenceWarning`` is a :class:`UserWarning`, not an error: an
optimizer that stops early still returns a valid result.

:class:`RecoveryExhaustedError` deliberately *is a*
:class:`NotPositiveDefiniteError`: callers that treat indefinite trial
covariances as rejected optimizer steps (``except
NotPositiveDefiniteError``) keep working unchanged when the recovery
ladder is enabled but fails to rescue a factorization.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ParameterError(ReproError, ValueError):
    """A covariance/model parameter vector is invalid (wrong length,
    out of bounds, non-finite, ...)."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape."""


class NotPositiveDefiniteError(ReproError, ArithmeticError):
    """A matrix expected to be symmetric positive definite failed a
    Cholesky factorization.

    Attributes
    ----------
    tile_index:
        Index ``(k, k)`` of the diagonal tile whose local factorization
        failed, or ``None`` when the failure was detected on a full
        (untiled) matrix.
    """

    def __init__(self, message: str, tile_index: tuple[int, int] | None = None):
        super().__init__(message)
        self.tile_index = tile_index


class RecoveryExhaustedError(NotPositiveDefiniteError):
    """The numerical recovery ladder (:mod:`repro.tile.recovery`) tried
    every escalation step and the factorization still broke down.

    Attributes
    ----------
    tile_index:
        Diagonal tile of the *last* breakdown.
    report:
        The :class:`~repro.tile.recovery.RecoveryReport` accumulated up
        to the point of exhaustion (every step attempted), for
        diagnostics.
    """

    def __init__(
        self,
        message: str,
        tile_index: tuple[int, int] | None = None,
        report=None,
    ):
        super().__init__(message, tile_index)
        self.report = report


class NumericalCorruptionError(NotPositiveDefiniteError):
    """A tile kernel produced non-finite values (NaN/inf) — an FP16
    overflow mid-factorization, a diverged low-rank update, or an
    injected chaos corruption.

    Deliberately *is a* :class:`NotPositiveDefiniteError`: a corrupted
    factorization is a numerical breakdown, so optimizer drivers treat
    it as a rejected step and the recovery/degradation ladders escalate
    it exactly like an indefinite covariance.  The resilience layer's
    :class:`~repro.resilience.retry.RetryPolicy` classifies it as
    transient (a retried task may round differently or dodge the
    injected fault) before that escalation is paid for.
    """


class CompressionError(ReproError, ArithmeticError):
    """Low-rank compression could not reach the requested tolerance
    within the allowed maximum rank."""


class SchedulingError(ReproError, RuntimeError):
    """The task DAG is inconsistent (cycle, missing producer, ...)."""


class WorkerLostError(SchedulingError):
    """A worker *process* of the process-parallel backend died without
    reporting a result (SIGKILL, OOM kill, hard crash).

    Deliberately *is a* :class:`SchedulingError`: callers that treat a
    failed parallel factorization as one failed evaluation (MLE
    drivers, the recovery ladder) keep working unchanged.  Raised only
    after the surviving workers have been terminated and joined and
    the shared-memory store unlinked — no leaked processes or
    segments.

    Attributes
    ----------
    rank:
        The dead worker's rank, or ``None`` when unknown.
    exitcode:
        The process exit code (negative = killed by that signal).
    """

    def __init__(
        self,
        message: str,
        rank: int | None = None,
        exitcode: int | None = None,
    ):
        super().__init__(message)
        self.rank = rank
        self.exitcode = exitcode


class TaskFailedError(ReproError, RuntimeError):
    """A simulated task kept failing transiently past its retry budget
    (:class:`~repro.runtime.faults.FaultModel.max_task_retries`).

    Attributes
    ----------
    uid:
        The task's uid in the DAG, or ``None`` when unknown.
    attempts:
        Number of attempts made before giving up.
    """

    def __init__(self, message: str, uid: int | None = None, attempts: int = 0):
        super().__init__(message)
        self.uid = uid
        self.attempts = attempts


class DeadlineExceededError(ReproError, TimeoutError):
    """A :class:`~repro.resilience.deadline.Deadline` expired (or its
    cancellation token was cancelled) before the operation finished.

    Raised *after* the executing worker pool has drained: no worker
    threads are leaked and no partially-computed results are returned.

    Attributes
    ----------
    budget_s:
        The time budget that expired, in seconds (``None`` for a bare
        cancellation).
    where:
        Short description of the execution site that noticed expiry.
    """

    def __init__(
        self,
        message: str,
        budget_s: float | None = None,
        where: str = "",
    ):
        super().__init__(message)
        self.budget_s = budget_s
        self.where = where


class ChaosError(ReproError, RuntimeError):
    """An opt-in, seeded chaos injection
    (:class:`~repro.resilience.chaos.ChaosConfig`) failed a task or
    batch on purpose.  Classified as transient by the default
    :class:`~repro.resilience.retry.RetryPolicy`.

    Attributes
    ----------
    site:
        What was failed (``"task"`` / ``"batch"``) plus its key.
    """

    def __init__(self, message: str, site: str = ""):
        super().__init__(message)
        self.site = site


class ConvergenceWarning(UserWarning):
    """An iterative optimizer stopped before meeting its tolerance."""


class OptimizationError(ReproError, RuntimeError):
    """An optimizer failed in a way that cannot be expressed as a
    (valid but unconverged) result."""


class ConfigurationError(ReproError, ValueError):
    """A compute-variant / runtime configuration is inconsistent."""


class PlanValidationError(ConfigurationError):
    """Static verification (:mod:`repro.analysis`) rejected a tile plan
    or task graph before execution.

    Raised by the opt-in ``validate_plan=True`` prechecks in
    :func:`repro.tile.cholesky.tile_cholesky` and
    :func:`repro.runtime.simulator.simulate_tasks` when the analyzers
    report error-severity findings.

    Attributes
    ----------
    report:
        The full :class:`~repro.analysis.diagnostics.AnalysisReport`,
        including warnings that did not by themselves cause the raise.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class DeadlockDetectedError(ReproError, RuntimeError):
    """The concurrency sanitizer (:mod:`repro.analysis.sanitize`)
    detected an operation that would deadlock — e.g. a thread
    re-acquiring a non-reentrant sanitized lock it already holds —
    and raised instead of hanging the run."""
