"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so downstream
users can catch the package's failures with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.

Hierarchy::

    ReproError
    ├── ParameterError(ValueError)        bad covariance/model parameters
    ├── ShapeError(ValueError)            incompatible array shapes
    ├── NotPositiveDefiniteError(ArithmeticError)
    │   └── RecoveryExhaustedError        the numerical recovery ladder
    │                                     (tile/recovery.py) ran out of
    │                                     escalation steps
    ├── CompressionError(ArithmeticError) low-rank tolerance unreachable
    ├── SchedulingError(RuntimeError)     inconsistent task DAG/schedule
    ├── TaskFailedError(RuntimeError)     a simulated task exceeded its
    │                                     transient-failure retry budget
    ├── OptimizationError(RuntimeError)   optimizer hard failure
    └── ConfigurationError(ValueError)    inconsistent variant/runtime config
        └── PlanValidationError           static analysis found
                                          error-severity findings in a
                                          plan or task graph

``ConvergenceWarning`` is a :class:`UserWarning`, not an error: an
optimizer that stops early still returns a valid result.

:class:`RecoveryExhaustedError` deliberately *is a*
:class:`NotPositiveDefiniteError`: callers that treat indefinite trial
covariances as rejected optimizer steps (``except
NotPositiveDefiniteError``) keep working unchanged when the recovery
ladder is enabled but fails to rescue a factorization.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ParameterError(ReproError, ValueError):
    """A covariance/model parameter vector is invalid (wrong length,
    out of bounds, non-finite, ...)."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape."""


class NotPositiveDefiniteError(ReproError, ArithmeticError):
    """A matrix expected to be symmetric positive definite failed a
    Cholesky factorization.

    Attributes
    ----------
    tile_index:
        Index ``(k, k)`` of the diagonal tile whose local factorization
        failed, or ``None`` when the failure was detected on a full
        (untiled) matrix.
    """

    def __init__(self, message: str, tile_index: tuple[int, int] | None = None):
        super().__init__(message)
        self.tile_index = tile_index


class RecoveryExhaustedError(NotPositiveDefiniteError):
    """The numerical recovery ladder (:mod:`repro.tile.recovery`) tried
    every escalation step and the factorization still broke down.

    Attributes
    ----------
    tile_index:
        Diagonal tile of the *last* breakdown.
    report:
        The :class:`~repro.tile.recovery.RecoveryReport` accumulated up
        to the point of exhaustion (every step attempted), for
        diagnostics.
    """

    def __init__(
        self,
        message: str,
        tile_index: tuple[int, int] | None = None,
        report=None,
    ):
        super().__init__(message, tile_index)
        self.report = report


class CompressionError(ReproError, ArithmeticError):
    """Low-rank compression could not reach the requested tolerance
    within the allowed maximum rank."""


class SchedulingError(ReproError, RuntimeError):
    """The task DAG is inconsistent (cycle, missing producer, ...)."""


class TaskFailedError(ReproError, RuntimeError):
    """A simulated task kept failing transiently past its retry budget
    (:class:`~repro.runtime.faults.FaultModel.max_task_retries`).

    Attributes
    ----------
    uid:
        The task's uid in the DAG, or ``None`` when unknown.
    attempts:
        Number of attempts made before giving up.
    """

    def __init__(self, message: str, uid: int | None = None, attempts: int = 0):
        super().__init__(message)
        self.uid = uid
        self.attempts = attempts


class ConvergenceWarning(UserWarning):
    """An iterative optimizer stopped before meeting its tolerance."""


class OptimizationError(ReproError, RuntimeError):
    """An optimizer failed in a way that cannot be expressed as a
    (valid but unconverged) result."""


class ConfigurationError(ReproError, ValueError):
    """A compute-variant / runtime configuration is inconsistent."""


class PlanValidationError(ConfigurationError):
    """Static verification (:mod:`repro.analysis`) rejected a tile plan
    or task graph before execution.

    Raised by the opt-in ``validate_plan=True`` prechecks in
    :func:`repro.tile.cholesky.tile_cholesky` and
    :func:`repro.runtime.simulator.simulate_tasks` when the analyzers
    report error-severity findings.

    Attributes
    ----------
    report:
        The full :class:`~repro.analysis.diagnostics.AnalysisReport`,
        including warnings that did not by themselves cause the raise.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report
