"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so downstream
users can catch the package's failures with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ParameterError(ReproError, ValueError):
    """A covariance/model parameter vector is invalid (wrong length,
    out of bounds, non-finite, ...)."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape."""


class NotPositiveDefiniteError(ReproError, ArithmeticError):
    """A matrix expected to be symmetric positive definite failed a
    Cholesky factorization.

    Attributes
    ----------
    tile_index:
        Index ``(k, k)`` of the diagonal tile whose local factorization
        failed, or ``None`` when the failure was detected on a full
        (untiled) matrix.
    """

    def __init__(self, message: str, tile_index: tuple[int, int] | None = None):
        super().__init__(message)
        self.tile_index = tile_index


class CompressionError(ReproError, ArithmeticError):
    """Low-rank compression could not reach the requested tolerance
    within the allowed maximum rank."""


class SchedulingError(ReproError, RuntimeError):
    """The task DAG is inconsistent (cycle, missing producer, ...)."""


class ConvergenceWarning(UserWarning):
    """An iterative optimizer stopped before meeting its tolerance."""


class OptimizationError(ReproError, RuntimeError):
    """An optimizer failed in a way that cannot be expressed as a
    (valid but unconverged) result."""


class ConfigurationError(ReproError, ValueError):
    """A compute-variant / runtime configuration is inconsistent."""
