"""Irregular location generators.

The paper's datasets are irregularly spaced points over geographic
regions (Mississippi River basin; Central Asia).  The generators here
produce reproducible irregular point sets over simple planar regions —
uniform, jittered-grid (ExaGeoStat's own synthetic generator uses a
perturbed grid), and rectangles with the two regions' approximate
aspect ratios — plus replicated space-time location stacks.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError

__all__ = [
    "uniform_locations",
    "jittered_grid",
    "region_locations",
    "space_time_locations",
    "REGIONS",
]

#: Approximate (width, height) extents of the paper's regions in the
#: coordinate units their fitted ranges imply: the soil-moisture data
#: behaves like a ~unit-square domain (Table I range 0.173), while the
#: ET ranges (3.79 in space) are degree-like over the ~40 x 25 degree
#: Central-Asia box of Fig. 4(b).
REGIONS = {
    "unit_square": (1.0, 1.0),
    "mississippi_basin": (1.25, 1.0),  # Fig. 4(a): wider than tall
    "central_asia": (40.0, 25.0),      # Fig. 4(b), degree-like units
}


def uniform_locations(
    n: int, *, seed: int | None = None, aspect: float = 1.0
) -> np.ndarray:
    """``n`` i.i.d. uniform points in ``[0, aspect] x [0, 1]``."""
    if n < 1:
        raise ShapeError("need at least one location")
    rng = np.random.default_rng(seed)
    pts = rng.uniform(size=(n, 2))
    pts[:, 0] *= aspect
    return pts


def jittered_grid(
    n: int, *, seed: int | None = None, jitter: float = 0.4, aspect: float = 1.0
) -> np.ndarray:
    """Perturbed regular grid of at least ``n`` cells, truncated to
    ``n`` points — the ExaGeoStat synthetic-location recipe (grid plus
    uniform jitter keeps points distinct and quasi-uniform).

    ``jitter`` is the maximal displacement as a fraction of the cell.
    """
    if not 0.0 <= jitter < 0.5:
        raise ShapeError("jitter must be in [0, 0.5) to keep points distinct")
    rng = np.random.default_rng(seed)
    side = int(np.ceil(np.sqrt(n)))
    ii, jj = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    cell = 1.0 / side
    x = (ii.ravel() + 0.5) * cell
    y = (jj.ravel() + 0.5) * cell
    pts = np.column_stack([x, y])
    pts += rng.uniform(-jitter * cell, jitter * cell, size=pts.shape)
    keep = rng.permutation(pts.shape[0])[:n]
    out = pts[np.sort(keep)]
    out[:, 0] *= aspect
    return out


def region_locations(
    n: int, region: str, *, seed: int | None = None, irregular: bool = True
) -> np.ndarray:
    """Locations over a named region (see :data:`REGIONS`)."""
    try:
        width, height = REGIONS[region]
    except KeyError:
        raise ShapeError(
            f"unknown region {region!r}; choose from {sorted(REGIONS)}"
        ) from None
    if irregular:
        pts = uniform_locations(n, seed=seed, aspect=width / height)
    else:
        pts = jittered_grid(n, seed=seed, aspect=width / height)
    return pts * height


def space_time_locations(
    n_space: int,
    n_slots: int,
    *,
    seed: int | None = None,
    region: str = "unit_square",
    time_step: float = 1.0,
) -> np.ndarray:
    """Space-time stack: the *same* ``n_space`` spatial locations
    replicated at ``n_slots`` time points (the paper's ET data: ~83K
    fixed pixels x 12 months).  Returns ``(n_space * n_slots, 3)``
    with time as the last column, ordered time-major."""
    if n_slots < 1:
        raise ShapeError("need at least one time slot")
    space = region_locations(n_space, region, seed=seed)
    times = np.arange(n_slots, dtype=np.float64) * time_step
    blocks = [
        np.column_stack([space, np.full(n_space, t)]) for t in times
    ]
    return np.vstack(blocks)
