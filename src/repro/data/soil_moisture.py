"""Soil-moisture surrogate dataset (paper Table I).

The paper trains on 1M locations of top-layer soil moisture over the
Mississippi River basin (Jan 1, 2004) and tests on 100K.  We cannot
ship that dataset, so the surrogate draws an exact Gaussian random
field over an equally shaped region with exactly the covariance the
paper *estimated* on the real data (Table I, dense FP64 row):

    variance 0.672, spatial range 0.173, smoothness 0.4358
    (a medium-range, rough Matérn field — the regime the paper notes
    gives the adaptive approximations their opportunities).

This preserves what the accuracy experiment actually tests: whether
MP+dense and MP+dense/TLR recover the same parameters and prediction
error as dense FP64 on data with that correlation structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_SEED
from ..kernels.matern import MaternKernel
from .locations import region_locations
from .split import train_test_split
from .synthetic import sample_gaussian_field

__all__ = ["SOIL_MOISTURE_THETA", "SpatialSplitDataset", "soil_moisture_surrogate"]

#: Table I (dense FP64 row): (variance, range, smoothness).
SOIL_MOISTURE_THETA = np.array([0.6720, 0.1730, 0.4358])


@dataclass
class SpatialSplitDataset:
    """Train/test split with its generating truth."""

    x_train: np.ndarray
    z_train: np.ndarray
    x_test: np.ndarray
    z_test: np.ndarray
    theta_true: np.ndarray
    kernel: MaternKernel
    label: str = ""

    @property
    def n_train(self) -> int:
        return len(self.x_train)

    @property
    def n_test(self) -> int:
        return len(self.x_test)


def soil_moisture_surrogate(
    n_train: int = 900,
    n_test: int = 100,
    *,
    seed: int = DEFAULT_SEED,
) -> SpatialSplitDataset:
    """Generate the Mississippi-basin surrogate at the requested size.

    The paper's 1M/100K split shrinks to laptop scale; the train/test
    ratio and the random-holdout protocol are preserved.
    """
    kernel = MaternKernel()
    n = n_train + n_test
    x = region_locations(n, "mississippi_basin", seed=seed)
    z = sample_gaussian_field(kernel, SOIL_MOISTURE_THETA, x, seed=seed + 7)
    x_train, z_train, x_test, z_test = train_test_split(
        x, z, n_test=n_test, seed=seed + 13
    )
    return SpatialSplitDataset(
        x_train=x_train,
        z_train=z_train,
        x_test=x_test,
        z_test=z_test,
        theta_true=SOIL_MOISTURE_THETA.copy(),
        kernel=kernel,
        label=f"soil-moisture-surrogate-{n_train}/{n_test}",
    )
