"""Preprocessing pipeline of the paper's real datasets (Section VI-A).

For the ET space-time data the paper makes the field stationary by:

1. **temporal detrending** — subtracting, per location and calendar
   month, the 2001-2020 mean from the 2021 value
   (:func:`monthly_climatology_residuals`);
2. **spatial detrending** — fitting, per month, a linear regression of
   the observations on the coordinates and keeping the residuals
   (:func:`detrend_linear`);
3. standardizing to unit variance (:func:`standardize`).

These operate on plain arrays so they apply equally to the synthetic
surrogate "raw" fields and to any real data a user supplies.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError

__all__ = [
    "monthly_climatology_residuals",
    "detrend_linear",
    "standardize",
    "gaussianity_diagnostics",
]


def monthly_climatology_residuals(
    history: np.ndarray, target: np.ndarray
) -> np.ndarray:
    """Residuals of the target year against the historical monthly mean.

    ``history`` is ``(n_years, n_months, n_locations)``; ``target`` is
    ``(n_months, n_locations)`` (the year of interest).  Returns
    ``target - mean_over_years(history)`` per (month, location).
    """
    history = np.asarray(history, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if history.ndim != 3:
        raise ShapeError("history must be (years, months, locations)")
    if target.shape != history.shape[1:]:
        raise ShapeError(
            f"target shape {target.shape} does not match history months x "
            f"locations {history.shape[1:]}"
        )
    return target - history.mean(axis=0)


def detrend_linear(values: np.ndarray, locations: np.ndarray) -> np.ndarray:
    """Residuals of an ordinary least-squares fit of ``values`` on the
    coordinates (with intercept).  ``values``: ``(n,)`` or
    ``(n_fields, n)`` (each field detrended independently, as the paper
    does per month)."""
    locations = np.asarray(locations, dtype=np.float64)
    if locations.ndim != 2:
        raise ShapeError("locations must be (n, d)")
    vals = np.asarray(values, dtype=np.float64)
    squeeze = vals.ndim == 1
    vals = np.atleast_2d(vals)
    if vals.shape[1] != locations.shape[0]:
        raise ShapeError("values length does not match locations")
    design = np.column_stack([np.ones(locations.shape[0]), locations])
    coef, *_ = np.linalg.lstsq(design, vals.T, rcond=None)
    residuals = (vals.T - design @ coef).T
    return residuals[0] if squeeze else residuals


def standardize(values: np.ndarray) -> tuple[np.ndarray, float, float]:
    """Center/scale to zero mean, unit variance; returns
    ``(standardized, mean, std)`` so predictions can be mapped back."""
    vals = np.asarray(values, dtype=np.float64)
    mean = float(vals.mean())
    std = float(vals.std())
    if std == 0.0:
        raise ShapeError("cannot standardize a constant field")
    return (vals - mean) / std, mean, std


def gaussianity_diagnostics(values: np.ndarray) -> dict[str, float]:
    """Simple moments-based diagnostics (skewness, excess kurtosis)
    used to sanity-check the "display Gaussianity" claim after
    preprocessing."""
    vals = np.asarray(values, dtype=np.float64).ravel()
    if vals.size < 8:
        raise ShapeError("need at least 8 values for diagnostics")
    centered = vals - vals.mean()
    m2 = float(np.mean(centered**2))
    if m2 == 0.0:
        raise ShapeError("constant field")
    m3 = float(np.mean(centered**3))
    m4 = float(np.mean(centered**4))
    return {
        "skewness": m3 / m2**1.5,
        "excess_kurtosis": m4 / m2**2 - 3.0,
        "mean": float(vals.mean()),
        "std": float(np.sqrt(m2)),
    }
