"""Evapotranspiration (ET) space-time surrogate (paper Table II).

The paper's ET data: ~83K Central-Asia pixels x 12 monthly fields of
2021 residuals (after removing the 2001-2020 monthly climatology and a
per-month linear spatial trend).  The surrogate draws an exact
space-time Gaussian random field with the covariance the paper
*estimated* on the real residuals (Table II, dense FP64 row):

    theta = (1.0087, 3.7904, 0.3164, 0.0101, 3.4941, 0.1860)
            (variance, range-space, smoothness-space, range-time,
             smoothness-time, nonseparability)

i.e. strong spatial correlation, medium space-time interaction — the
regime where the paper observes fewer low-precision opportunities.

**Substitution note**: the published smoothness-time 3.4941 violates
the Gneiting validity constraint ``alpha in (0, 1]`` and makes Eq. (6)
as printed strongly indefinite (lambda_min ~ -13 on a monthly lattice),
so the *generating* vector used here clamps it to 0.9
(:data:`ET_THETA`); the verbatim published vector is kept as
:data:`ET_THETA_PAPER` for the record.

``raw=True`` additionally returns a synthetic 21-year "raw" panel so
the preprocessing pipeline (climatology removal + linear detrend) can
be exercised end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_SEED
from ..kernels.gneiting import GneitingMaternKernel
from .locations import space_time_locations
from .split import train_test_split
from .synthetic import sample_gaussian_field

__all__ = [
    "ET_THETA",
    "ET_THETA_PAPER",
    "SpaceTimeDataset",
    "et_surrogate",
    "et_raw_panel",
]

#: Table II (dense FP64 row), verbatim — NOT a valid Gneiting
#: parameter vector (see module docstring); kept for the record.
ET_THETA_PAPER = np.array([1.0087, 3.7904, 0.3164, 0.0101, 3.4941, 0.1860])

#: Generating vector of the surrogate: Table II with smoothness-time
#: clamped into the validity region.
ET_THETA = np.array([1.0087, 3.7904, 0.3164, 0.0101, 0.9, 0.1860])

#: The ET data has 12 monthly fields (paper Section VI-A).
N_MONTHS = 12


@dataclass
class SpaceTimeDataset:
    """Space-time train/test split with its generating truth."""

    x_train: np.ndarray
    z_train: np.ndarray
    x_test: np.ndarray
    z_test: np.ndarray
    theta_true: np.ndarray
    kernel: GneitingMaternKernel
    label: str = ""

    @property
    def n_train(self) -> int:
        return len(self.x_train)


def et_surrogate(
    n_space: int = 84,
    n_slots: int = N_MONTHS,
    n_test: int = 100,
    *,
    seed: int = DEFAULT_SEED,
    jitter: float = 1.0e-6,
) -> SpaceTimeDataset:
    """Central-Asia ET surrogate: ``n_space`` pixels x ``n_slots``
    months, random 100-point holdout (scaled from the paper's
    1M train / 100K test).

    ``jitter`` regularizes sampling: the fitted ``alpha = 3.49`` lies
    outside Gneiting's validity region, so positive definiteness is
    empirical, not guaranteed (see module docstring of
    :mod:`repro.kernels.gneiting`).
    """
    kernel = GneitingMaternKernel()
    x = space_time_locations(
        n_space, n_slots, seed=seed, region="central_asia", time_step=1.0
    )
    z = sample_gaussian_field(kernel, ET_THETA, x, seed=seed + 3, jitter=jitter)
    x_train, z_train, x_test, z_test = train_test_split(
        x, z, n_test=n_test, seed=seed + 11
    )
    return SpaceTimeDataset(
        x_train=x_train,
        z_train=z_train,
        x_test=x_test,
        z_test=z_test,
        theta_true=ET_THETA.copy(),
        kernel=kernel,
        label=f"et-surrogate-{n_space}x{n_slots}",
    )


def et_raw_panel(
    n_space: int = 84,
    n_years: int = 21,
    *,
    seed: int = DEFAULT_SEED,
    trend_scale: float = 0.5,
    climatology_scale: float = 2.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic raw ET panel for exercising the preprocessing chain.

    Returns ``(locations, history, target)`` with ``history`` shaped
    ``(n_years - 1, 12, n_space)`` and ``target`` ``(12, n_space)``:
    each month carries a fixed climatology, a linear spatial trend, and
    a GRF residual — so climatology-removal + detrending recovers an
    approximately stationary zero-mean field, like the paper's 2021
    residuals.
    """
    rng = np.random.default_rng(seed)
    kernel = GneitingMaternKernel()
    x = space_time_locations(
        n_space, N_MONTHS, seed=seed, region="central_asia", time_step=1.0
    )
    space = x[:n_space, :2]

    climatology = climatology_scale * rng.standard_normal((N_MONTHS, n_space))
    slope = trend_scale * rng.standard_normal((N_MONTHS, 2))
    trend = np.stack([space @ slope[m] for m in range(N_MONTHS)])

    def one_year(year_seed: int) -> np.ndarray:
        resid = sample_gaussian_field(
            kernel, ET_THETA, x, seed=year_seed, jitter=1e-6
        )
        return climatology + trend + resid.reshape(N_MONTHS, n_space)

    history = np.stack(
        [one_year(seed + 100 + y) for y in range(n_years - 1)]
    )
    target = one_year(seed + 100 + n_years - 1)
    return space, history, target
