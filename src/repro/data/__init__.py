"""Datasets: irregular locations, exact GRF simulation, the paper's
two dataset surrogates, preprocessing, and splitting."""

from .evapotranspiration import (
    ET_THETA,
    ET_THETA_PAPER,
    N_MONTHS,
    SpaceTimeDataset,
    et_raw_panel,
    et_surrogate,
)
from .locations import (
    REGIONS,
    jittered_grid,
    region_locations,
    space_time_locations,
    uniform_locations,
)
from .masks import apply_mask, band_mask, disk_mask, random_mask
from .preprocess import (
    detrend_linear,
    gaussianity_diagnostics,
    monthly_climatology_residuals,
    standardize,
)
from .soil_moisture import (
    SOIL_MOISTURE_THETA,
    SpatialSplitDataset,
    soil_moisture_surrogate,
)
from .split import train_test_split
from .synthetic import (
    CORRELATION_RANGES,
    SyntheticDataset,
    sample_gaussian_field,
    simulate_matern_dataset,
)

__all__ = [
    "uniform_locations",
    "jittered_grid",
    "region_locations",
    "space_time_locations",
    "REGIONS",
    "sample_gaussian_field",
    "simulate_matern_dataset",
    "SyntheticDataset",
    "CORRELATION_RANGES",
    "train_test_split",
    "random_mask",
    "disk_mask",
    "band_mask",
    "apply_mask",
    "soil_moisture_surrogate",
    "SpatialSplitDataset",
    "SOIL_MOISTURE_THETA",
    "et_surrogate",
    "et_raw_panel",
    "SpaceTimeDataset",
    "ET_THETA",
    "ET_THETA_PAPER",
    "N_MONTHS",
    "monthly_climatology_residuals",
    "detrend_linear",
    "standardize",
    "gaussianity_diagnostics",
]
