"""Train/test splitting of spatial datasets.

The paper holds out 100K of ~2M soil-moisture locations (and 100K ET
space-time points) for prediction scoring; :func:`train_test_split`
reproduces that protocol at any size.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError

__all__ = ["train_test_split"]


def train_test_split(
    x: np.ndarray,
    z: np.ndarray,
    *,
    n_test: int,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random split into ``(x_train, z_train, x_test, z_test)``."""
    x = np.asarray(x)
    z = np.asarray(z, dtype=np.float64).ravel()
    n = len(x)
    if len(z) != n:
        raise ShapeError("x and z lengths differ")
    if not 0 < n_test < n:
        raise ShapeError(f"n_test must be in (0, {n}), got {n_test}")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    test_idx = np.sort(perm[:n_test])
    train_idx = np.sort(perm[n_test:])
    return x[train_idx], z[train_idx], x[test_idx], z[test_idx]
