"""Exact Gaussian random field simulation.

Synthetic realizations are drawn exactly — ``z = L e`` with
``Sigma = L L^T`` and ``e ~ N(0, I)`` — which is also how ExaGeoStat's
synthetic dataset generator works.  A growing jitter ladder guards
against borderline positive definiteness (relevant for the space-time
kernel at the paper's fitted ``alpha > 1``, outside Gneiting's validity
region).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DEFAULT_SAMPLING_JITTER, DEFAULT_SEED
from ..exceptions import NotPositiveDefiniteError
from ..kernels.base import CovarianceKernel
from ..kernels.matern import MaternKernel
from .locations import region_locations

__all__ = ["sample_gaussian_field", "SyntheticDataset", "simulate_matern_dataset",
           "CORRELATION_RANGES"]

#: Fig. 6's weak/medium/strong spatial dependence settings
#: (``theta_1 = 0.03 / 0.1 / 0.3``).
CORRELATION_RANGES = {"weak": 0.03, "medium": 0.1, "strong": 0.3}


def sample_gaussian_field(
    kernel: CovarianceKernel,
    theta: np.ndarray,
    x: np.ndarray,
    *,
    seed: int | None = None,
    size: int = 1,
    jitter: float = DEFAULT_SAMPLING_JITTER,
    max_jitter_growth: int = 6,
) -> np.ndarray:
    """Draw ``size`` exact realizations of the zero-mean field at ``x``.

    Returns ``(n,)`` for ``size == 1`` else ``(size, n)``.  The jitter
    is multiplied by 100 on a Cholesky failure, up to
    ``max_jitter_growth`` attempts, after which
    :class:`~repro.exceptions.NotPositiveDefiniteError` propagates.
    """
    rng = np.random.default_rng(seed)
    sigma = kernel.covariance_matrix(theta, x)
    n = sigma.shape[0]
    current = jitter
    low = None
    for _ in range(max_jitter_growth):
        try:
            low = np.linalg.cholesky(
                sigma + current * np.eye(n) if current else sigma
            )
            break
        except np.linalg.LinAlgError:
            current = max(current, 1e-12) * 100.0
    if low is None:
        raise NotPositiveDefiniteError(
            f"covariance not positive definite even with jitter {current:g}"
        )
    noise = rng.standard_normal((n, size))
    fields = (low @ noise).T
    return fields[0] if size == 1 else fields


@dataclass
class SyntheticDataset:
    """A simulated dataset with its generating truth."""

    x: np.ndarray
    z: np.ndarray
    theta_true: np.ndarray
    kernel: CovarianceKernel
    label: str = ""

    @property
    def n(self) -> int:
        return len(self.x)


def simulate_matern_dataset(
    n: int,
    correlation: str = "medium",
    *,
    variance: float = 1.0,
    smoothness: float = 0.5,
    seed: int = DEFAULT_SEED,
    region: str = "unit_square",
) -> SyntheticDataset:
    """One Fig. 6-style synthetic space dataset.

    ``correlation`` picks the range parameter from
    :data:`CORRELATION_RANGES` (weak/medium/strong).
    """
    rng_range = CORRELATION_RANGES[correlation]
    kernel = MaternKernel()
    theta = np.array([variance, rng_range, smoothness])
    x = region_locations(n, region, seed=seed)
    z = sample_gaussian_field(kernel, theta, x, seed=seed + 1)
    return SyntheticDataset(
        x=x, z=z, theta_true=theta, kernel=kernel,
        label=f"matern-{correlation}-n{n}",
    )
