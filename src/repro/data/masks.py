"""Structured missing-data patterns.

The paper's prediction experiments hold out random subsets; real
remote-sensing data is missing in *structured* ways (cloud cover,
swath gaps).  These helpers build both patterns so prediction studies
can compare the easy and the hard regime.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ShapeError
from ..kernels.distance import as_locations

__all__ = ["random_mask", "disk_mask", "band_mask", "apply_mask"]


def random_mask(n: int, fraction: float, *, seed: int | None = None) -> np.ndarray:
    """Boolean mask with ~``fraction`` of entries True (missing)."""
    if not 0.0 < fraction < 1.0:
        raise ShapeError("fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    k = max(1, int(round(fraction * n)))
    mask = np.zeros(n, dtype=bool)
    mask[rng.choice(n, size=k, replace=False)] = True
    return mask


def disk_mask(
    x: np.ndarray, center: np.ndarray, radius: float
) -> np.ndarray:
    """Mask of points within ``radius`` of ``center`` — a cloud-shaped
    gap."""
    pts = as_locations(x)
    c = np.asarray(center, dtype=np.float64).ravel()
    if c.shape[0] != pts.shape[1]:
        raise ShapeError("center dimension mismatch")
    if radius <= 0:
        raise ShapeError("radius must be positive")
    return np.linalg.norm(pts - c, axis=1) <= radius


def band_mask(
    x: np.ndarray, *, axis: int = 0, low: float = 0.4, high: float = 0.6
) -> np.ndarray:
    """Mask of points whose ``axis`` coordinate falls in
    ``[low, high]`` — a swath-gap pattern."""
    pts = as_locations(x)
    if not 0 <= axis < pts.shape[1]:
        raise ShapeError("axis out of range")
    if low >= high:
        raise ShapeError("low must be < high")
    return (pts[:, axis] >= low) & (pts[:, axis] <= high)


def apply_mask(
    x: np.ndarray, z: np.ndarray, mask: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split ``(x, z)`` into observed (mask False) and missing (True)
    parts: ``(x_obs, z_obs, x_miss, z_miss)``."""
    pts = as_locations(x)
    vals = np.asarray(z, dtype=np.float64).ravel()
    m = np.asarray(mask, dtype=bool).ravel()
    if len(pts) != len(vals) or len(m) != len(vals):
        raise ShapeError("x, z, mask lengths differ")
    if m.all() or not m.any():
        raise ShapeError("mask must leave both observed and missing points")
    return pts[~m], vals[~m], pts[m], vals[m]
