"""Unified telemetry layer: span tracing, metrics, exporters.

Three pieces (DESIGN.md §16):

* :mod:`repro.obs.tracer` — context-var structured span tracer,
  thread-aware and cross-process (worker spans merge into one
  timeline);
* :mod:`repro.obs.metrics` — central :class:`MetricsRegistry` with
  adapters for the six legacy stats objects;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto),
  Prometheus text exposition, JSON profile dump, per-op breakdown.

:class:`Telemetry` bundles a tracer and a registry and is what the
``telemetry=`` parameters on the engines accept::

    from repro.obs import Telemetry

    telemetry = Telemetry()
    result = fit_mle(..., telemetry=telemetry)
    telemetry.write_chrome_trace("trace.json")   # open in Perfetto
    print(telemetry.render_prometheus())
"""

from .export import (
    chrome_trace_events,
    op_breakdown,
    profile_dump,
    render_breakdown,
    render_prometheus,
    write_chrome_trace,
)
from .metrics import (
    MetricsRegistry,
    record_chaos_stats,
    record_cholesky_stats,
    record_comm_stats,
    record_engine_stats,
    record_health,
    record_run_report,
    record_serving_stats,
)
from .telemetry import Telemetry, maybe_span
from .tracer import Span, SpanEvent, Tracer, current_span_id

__all__ = [
    "Telemetry",
    "maybe_span",
    "Tracer",
    "Span",
    "SpanEvent",
    "current_span_id",
    "MetricsRegistry",
    "record_cholesky_stats",
    "record_engine_stats",
    "record_serving_stats",
    "record_comm_stats",
    "record_chaos_stats",
    "record_run_report",
    "record_health",
    "chrome_trace_events",
    "write_chrome_trace",
    "render_prometheus",
    "profile_dump",
    "op_breakdown",
    "render_breakdown",
]
