"""Telemetry exporters: Perfetto (Chrome trace events), Prometheus
text exposition, and a JSON profile dump.

The Chrome trace-event export follows the same conventions as the
simulator's :meth:`repro.runtime.trace.ExecutionTrace.to_chrome_trace`
— complete (``ph: "X"``) events with microsecond ``ts``/``dur``,
``pid`` per process, ``tid`` per thread — so simulator traces and real
runs render identically in Perfetto / ``chrome://tracing``.  The
driver process is pid 0; merged `ProcessPoolEngine` worker spans keep
their rank-derived pid (rank + 1), giving one timeline spanning parent
and workers.

The Prometheus export is the plain text exposition format (``# HELP``
/ ``# TYPE`` headers, label-set samples, histogram ``_bucket`` /
``_sum`` / ``_count`` triples) — scrape-able as-is from a file or a
trivial HTTP handler.
"""

from __future__ import annotations

import json
import math
from collections import defaultdict

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "render_prometheus",
    "profile_dump",
    "op_breakdown",
    "render_breakdown",
]


def _tid_map(spans, events) -> dict:
    """Remap raw thread idents to small per-process ids (Perfetto
    renders tid as a lane; 0 = the process's first-seen thread)."""
    mapping: dict = {}
    for record in spans:
        key = (record.pid, record.tid)
        if key not in mapping:
            mapping[key] = len([k for k in mapping if k[0] == record.pid])
    for record in events:
        key = (record.pid, record.tid)
        if key not in mapping:
            mapping[key] = len([k for k in mapping if k[0] == record.pid])
    return mapping


def chrome_trace_events(tracer: Tracer) -> list:
    """Chrome trace-event list (the ``traceEvents`` payload)."""
    spans = tracer.sorted_spans()
    span_events = tracer.sorted_events()
    origin = tracer.origin()
    tids = _tid_map(spans, span_events)
    events = []
    pids = sorted({s.pid for s in spans} | {e.pid for e in span_events})
    for pid in pids:
        name = "driver" if pid == 0 else f"worker-{pid - 1}"
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
    for (pid, _raw), tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": f"thread-{tid}"},
        })
    for s in spans:
        args = {k: v for k, v in s.attrs.items()}
        if s.parent is not None:
            args["parent_span"] = s.parent
        args["span_id"] = s.sid
        events.append({
            "name": s.name,
            "ph": "X",
            "ts": (s.start - origin) * 1e6,
            "dur": max(s.end - s.start, 0.0) * 1e6,
            "pid": s.pid,
            "tid": tids[(s.pid, s.tid)],
            "args": args,
        })
    for e in span_events:
        events.append({
            "name": e.name,
            "ph": "i",
            "s": "g",
            "ts": (e.ts - origin) * 1e6,
            "pid": e.pid,
            "tid": tids[(e.pid, e.tid)],
            "args": dict(e.attrs),
        })
    return events


def write_chrome_trace(path, tracer: Tracer) -> None:
    """Write a Perfetto-loadable JSON object trace to ``path``."""
    payload = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, default=_jsonable)


def _jsonable(value):
    """JSON fallback for numpy scalars / arrays living in attrs."""
    if hasattr(value, "item"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape(value: str) -> str:
    return (
        str(value).replace("\\", r"\\").replace('"', r'\"')
        .replace("\n", r"\n")
    )


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every registered series."""
    lines = []
    for metric in sorted(registry.metrics(), key=lambda m: m.name):
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        with registry._lock:
            items = list(metric._series.items())
        for key, series in sorted(items, key=lambda kv: kv[0]):
            labels = metric._series_labels(key)
            if metric.kind == "histogram":
                cumulative = metric.cumulative(key)
                bounds = [*(str(b) for b in metric.buckets), "+Inf"]
                for bound, count in zip(bounds, cumulative):
                    bucket_labels = dict(labels, le=bound)
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_format_labels(bucket_labels)} {count}"
                    )
                lines.append(
                    f"{metric.name}_sum{_format_labels(labels)} "
                    f"{_format_value(series.total)}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(labels)} "
                    f"{series.n}"
                )
            else:
                lines.append(
                    f"{metric.name}{_format_labels(labels)} "
                    f"{_format_value(series.value)}"
                )
    lines.append(
        "# HELP repro_metrics_dropped_series Label combinations the "
        "registry refused beyond its cardinality bound"
    )
    lines.append("# TYPE repro_metrics_dropped_series gauge")
    lines.append(f"repro_metrics_dropped_series {registry.dropped_series}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSON profile dump + per-op breakdown
# ----------------------------------------------------------------------

def op_breakdown(tracer: Tracer) -> list:
    """Flamegraph-style per-name aggregation of the span buffer.

    *Total* time sums each span's duration; *self* time subtracts the
    duration of its direct children, so nested instrumentation (a
    ``loglikelihood`` span containing ``factorize`` containing
    per-task spans) attributes each microsecond exactly once.
    Rows are sorted by self time, descending.
    """
    spans = tracer.sorted_spans()
    child_time: dict = defaultdict(float)
    for s in spans:
        if s.parent is not None:
            child_time[s.parent] += s.duration
    rows: dict = {}
    for s in spans:
        row = rows.setdefault(
            s.name, {"name": s.name, "count": 0, "total_s": 0.0,
                     "self_s": 0.0},
        )
        row["count"] += 1
        row["total_s"] += s.duration
        row["self_s"] += max(s.duration - child_time.get(s.sid, 0.0), 0.0)
    return sorted(rows.values(), key=lambda r: -r["self_s"])


def render_breakdown(tracer: Tracer) -> str:
    """Human-readable per-op table of :func:`op_breakdown`."""
    rows = op_breakdown(tracer)
    if not rows:
        return "(no spans recorded)"
    total_self = sum(r["self_s"] for r in rows) or 1.0
    width = max(len(r["name"]) for r in rows)
    width = max(width, len("span"))
    lines = [
        f"{'span':{width}s} {'count':>7s} {'total_s':>10s} "
        f"{'self_s':>10s} {'self%':>6s}"
    ]
    for r in rows:
        lines.append(
            f"{r['name']:{width}s} {r['count']:7d} "
            f"{r['total_s']:10.4f} {r['self_s']:10.4f} "
            f"{100.0 * r['self_s'] / total_self:5.1f}%"
        )
    return "\n".join(lines)


def profile_dump(tracer: Tracer, registry: MetricsRegistry) -> dict:
    """One JSON document holding the whole profile: span list, event
    list, per-op breakdown, metrics snapshot."""
    origin = tracer.origin()
    return {
        "spans": [
            {
                "sid": s.sid, "name": s.name, "parent": s.parent,
                "start_s": s.start - origin, "end_s": s.end - origin,
                "pid": s.pid, "tid": s.tid, "attrs": s.attrs,
            }
            for s in tracer.sorted_spans()
        ],
        "events": [
            {
                "name": e.name, "ts_s": e.ts - origin, "pid": e.pid,
                "attrs": e.attrs,
            }
            for e in tracer.sorted_events()
        ],
        "breakdown": op_breakdown(tracer),
        "metrics": registry.snapshot(),
    }
