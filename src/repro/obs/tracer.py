"""Structured span tracer: nested timed regions across threads and
processes.

The paper's performance story is built on measurement ("Timers;
Flops"); this tracer is the measurement backbone of the *real*
execution paths.  A :class:`Span` is one timed region with attributes
(op, tile index, worker slot, backend, attempt); spans nest through a
:class:`contextvars.ContextVar`, so ``fit_mle -> loglikelihood ->
assembly/factorize/solve -> per-task kernels`` forms a proper tree
without any explicit parent plumbing on the happy path.

Design constraints (pinned by tests and the overhead benchmark):

* **near-zero cost when disabled** — every instrumented call site
  checks ``telemetry is None`` (or ``tracer.enabled``) and takes the
  original code path; a disabled tracer records nothing;
* **thread-aware** — spans carry the recording thread id; worker
  threads buffer locally and flush under one lock, so the hot loops
  never contend per task;
* **cross-process** — worker processes cannot share the buffer, so
  they record plain tuples (:func:`span_tuple`) and ship them back
  with task results; :meth:`Tracer.add_span` merges them into the
  parent's timeline under a synthetic process id.  All clocks are
  ``time.perf_counter`` (CLOCK_MONOTONIC on Linux, shared across
  processes), and exporters normalize to the trace origin;
* **no numeric side effects** — tracing touches no kernel input or
  output; traced runs are bit-identical to untraced ones.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = ["Span", "SpanEvent", "Tracer", "current_span_id"]

#: Process id of the driver process in every exported timeline; pool
#: workers are merged as ``rank + 1``.
DRIVER_PID = 0

#: Sentinel: "no explicit parent passed — inherit the context parent".
_INHERIT = object()

#: The active span of the *current context* (one per thread; freshly
#: spawned threads start with ``None``, and the executors pass their
#: enclosing span explicitly instead).
_CURRENT: ContextVar["int | None"] = ContextVar(
    "repro_obs_current_span", default=None
)


def _make_lock():
    """Tracer-buffer lock constructor.

    The concurrency sanitizer (:mod:`repro.analysis.sanitize`) patches
    this seam to observe the buffer lock's acquire/release edges, the
    same way it watches the DAG executor's dispatch lock.
    """
    return threading.Lock()


def current_span_id() -> int | None:
    """Span id enclosing the caller's context (``None`` outside any
    span or on a thread that never opened one)."""
    return _CURRENT.get()


@dataclass
class Span:
    """One completed timed region."""

    sid: int
    name: str
    parent: int | None
    start: float
    end: float
    pid: int = DRIVER_PID
    tid: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class SpanEvent:
    """One instantaneous event on the span stream (e.g. per-iteration
    MLE progress: loglik, theta, rank histogram, precision mix)."""

    name: str
    ts: float
    pid: int = DRIVER_PID
    tid: int = 0
    attrs: dict = field(default_factory=dict)


def span_tuple(name: str, start: float, end: float, attrs: dict) -> tuple:
    """Picklable span record for cross-process shipping: a worker
    cannot append to the parent's buffer, so it records these and the
    parent merges them via :meth:`Tracer.add_span`."""
    return (name, float(start), float(end), attrs)


class _NullSpan:
    """Shared no-op context manager of every disabled call site."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager of one live span (enabled tracers only)."""

    __slots__ = ("_tracer", "_name", "_parent", "_attrs", "_sid",
                 "_start", "_token")

    def __init__(self, tracer: "Tracer", name: str, parent, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attrs = attrs

    def __enter__(self) -> int:
        self._sid = next(self._tracer._ids)
        if self._parent is _INHERIT:
            self._parent = _CURRENT.get()
        self._token = _CURRENT.set(self._sid)
        self._start = time.perf_counter()
        return self._sid

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        _CURRENT.reset(self._token)
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        tracer = self._tracer
        record = Span(
            sid=self._sid, name=self._name, parent=self._parent,
            start=self._start, end=end, pid=DRIVER_PID,
            tid=threading.get_ident(), attrs=self._attrs,
        )
        with tracer._lock:
            tracer.spans.append(record)
        return False


class Tracer:
    """Thread-safe buffer of completed spans and events.

    One tracer spans one workload (a fit, a serving session); it never
    resets implicitly, so a fit's hundreds of evaluations accumulate
    into a single timeline.  Spans are appended *at completion* — the
    buffer is insertion-ordered by end time per thread, and exporters
    sort by start time, which defines the merged cross-process
    ordering.
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = bool(enabled)
        self.spans: list[Span] = []
        self.events: list[SpanEvent] = []
        self._lock = _make_lock()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, *, parent=_INHERIT, **attrs):
        """Context manager timing a region; yields the span id.

        ``parent`` defaults to the context's current span; executors
        pass the enclosing span id explicitly when crossing a thread
        or process boundary (fresh threads have no context parent).
        Disabled tracers return a shared no-op context manager.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, parent, attrs)

    def event(self, name: str, *, parent=None, **attrs) -> None:
        """Record an instantaneous event (no-op when disabled)."""
        if not self.enabled:
            return
        record = SpanEvent(
            name=name, ts=time.perf_counter(), pid=DRIVER_PID,
            tid=threading.get_ident(), attrs=attrs,
        )
        with self._lock:
            self.events.append(record)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent: int | None = None,
        pid: int = DRIVER_PID,
        tid: int = 0,
        attrs: dict | None = None,
    ) -> int:
        """Append a fully-formed span (executor buffers, merged worker
        records).  Returns the assigned span id."""
        if not self.enabled:
            return 0
        sid = next(self._ids)
        record = Span(
            sid=sid, name=name, parent=parent, start=float(start),
            end=float(end), pid=pid, tid=tid,
            attrs={} if attrs is None else attrs,
        )
        with self._lock:
            self.spans.append(record)
        return sid

    def merge_foreign(
        self,
        records: "list[tuple] | tuple",
        *,
        pid: int,
        parent: int | None = None,
        tid: int | None = None,
    ) -> None:
        """Merge :func:`span_tuple` records shipped from a worker
        process into this timeline under process id ``pid``."""
        if not self.enabled:
            return
        for name, start, end, attrs in records:
            self.add_span(
                name, start, end, parent=parent, pid=pid,
                tid=pid if tid is None else tid, attrs=dict(attrs),
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    def sorted_spans(self) -> list[Span]:
        """Spans in merged timeline order (start time, then id) — the
        canonical cross-process ordering of exports and checks."""
        with self._lock:
            snapshot = list(self.spans)
        return sorted(snapshot, key=lambda s: (s.start, s.sid))

    def sorted_events(self) -> list[SpanEvent]:
        with self._lock:
            snapshot = list(self.events)
        return sorted(snapshot, key=lambda e: e.ts)

    def origin(self) -> float:
        """Earliest timestamp in the buffer (0.0 when empty); exports
        are normalized relative to this."""
        with self._lock:
            starts = [s.start for s in self.spans]
            starts.extend(e.ts for e in self.events)
        return min(starts) if starts else 0.0

    def by_name(self, name: str) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Tracer({state}, spans={len(self.spans)}, "
            f"events={len(self.events)})"
        )
