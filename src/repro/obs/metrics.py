"""Central metrics registry: counters, gauges, histograms with labels.

The repository grew six shape-incompatible stats dataclasses
(`CholeskyStats`, `EngineStats`, `ServingStats`, `CommStats`,
`ChaosStats`, `ParallelRunReport`) across five subsystems.  The
:class:`MetricsRegistry` gives them one mouth: thin adapter functions
(:func:`record_cholesky_stats` et al.) translate each legacy object
into labelled series, so a single :meth:`MetricsRegistry.snapshot`
covers kernel counts, comm bytes, cache hit rates, retries,
degradations, clamp events, and circuit-breaker state — and one
Prometheus exposition (:func:`repro.obs.export.render_prometheus`)
serves them all.

Cardinality is bounded: the registry refuses to materialize more than
``max_series`` distinct label combinations per metric; excess
observations collapse into a single ``overflow="1"`` series and are
counted in ``dropped_series``, so a mislabelled hot loop can degrade
the *metrics*, never the process.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "record_cholesky_stats",
    "record_engine_stats",
    "record_serving_stats",
    "record_comm_stats",
    "record_chaos_stats",
    "record_run_report",
    "record_health",
]

#: Default histogram bucket upper bounds (seconds-flavored, but any
#: positive quantity works; +Inf is implicit).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Label tuple every over-cardinality observation collapses into.
_OVERFLOW = ("__overflow__",)


def _label_values(values: tuple) -> tuple:
    return tuple(str(v) for v in values)


@dataclass
class _Series:
    value: float = 0.0


@dataclass
class _HistSeries:
    counts: list = field(default_factory=list)
    total: float = 0.0
    n: int = 0


class _Metric:
    """Base: one named metric family with labelled child series."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labels: tuple):
        self._registry = registry
        self.name = name
        self.help = help
        self.labels = tuple(labels)
        self._series: dict = {}

    def _resolve(self, values: tuple) -> tuple:
        """Map label values onto a series key, collapsing overflow."""
        values = _label_values(values)
        if len(values) != len(self.labels):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labels}, "
                f"got {len(values)} values"
            )
        if values in self._series:
            return values
        if len(self._series) >= self._registry.max_series:
            self._registry._dropped += 1
            return _OVERFLOW
        return values

    def _series_labels(self, key: tuple) -> dict:
        if key == _OVERFLOW:
            return {"overflow": "1"}
        return dict(zip(self.labels, key))


class Counter(_Metric):
    """Monotone accumulator (``inc`` only)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, *values) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._registry._lock:
            key = self._resolve(values)
            series = self._series.setdefault(key, _Series())
            series.value += amount

    def value(self, *values) -> float:
        with self._registry._lock:
            series = self._series.get(_label_values(values))
            return 0.0 if series is None else series.value


class Gauge(_Metric):
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    def set(self, value: float, *values) -> None:
        with self._registry._lock:
            key = self._resolve(values)
            self._series.setdefault(key, _Series()).value = float(value)

    def inc(self, amount: float = 1.0, *values) -> None:
        with self._registry._lock:
            key = self._resolve(values)
            series = self._series.setdefault(key, _Series())
            series.value += amount

    def value(self, *values) -> float:
        with self._registry._lock:
            series = self._series.get(_label_values(values))
            return 0.0 if series is None else series.value


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, registry, name, help, labels, buckets):
        super().__init__(registry, name, help, labels)
        self.buckets = tuple(sorted(buckets))

    def observe(self, value: float, *values) -> None:
        with self._registry._lock:
            key = self._resolve(values)
            series = self._series.get(key)
            if series is None:
                # one slot per finite bucket + a trailing +Inf slot
                series = _HistSeries(counts=[0] * (len(self.buckets) + 1))
                self._series[key] = series
            series.counts[bisect_left(self.buckets, value)] += 1
            series.total += float(value)
            series.n += 1

    def cumulative(self, key: tuple) -> list:
        """Cumulative per-bucket counts (``le`` semantics, +Inf last)."""
        series = self._series[key]
        out, running = [], 0
        for c in series.counts:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """Thread-safe home of every metric family.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling
    twice with the same name returns the same object (and raises if
    the kind or labels differ), so adapters can run repeatedly —
    e.g. once per MLE evaluation — without bookkeeping.
    """

    def __init__(self, *, max_series: int = 256):
        self.max_series = int(max_series)
        self._lock = threading.Lock()
        self._metrics: dict = {}
        self._dropped = 0

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labels != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labels}"
                    )
                return existing
            metric = cls(self, name, help, tuple(labels), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: tuple = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "", labels: tuple = (),
        buckets: tuple = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    @property
    def dropped_series(self) -> int:
        """Observations collapsed into overflow series because a
        metric exceeded ``max_series`` label combinations."""
        with self._lock:
            return self._dropped

    def metrics(self) -> list:
        with self._lock:
            return list(self._metrics.values())

    def snapshot(self) -> dict:
        """JSON-able dump of every series (the profile-dump payload)."""
        out = {}
        with self._lock:
            for name, metric in self._metrics.items():
                entry = {"kind": metric.kind, "help": metric.help,
                         "series": []}
                for key, series in metric._series.items():
                    labels = metric._series_labels(key)
                    if metric.kind == "histogram":
                        entry["series"].append({
                            "labels": labels,
                            "count": series.n,
                            "sum": series.total,
                            "buckets": dict(zip(
                                [str(b) for b in metric.buckets]
                                + ["+Inf"],
                                metric.cumulative(key),
                            )),
                        })
                    else:
                        entry["series"].append(
                            {"labels": labels, "value": series.value}
                        )
                out[name] = entry
            out["_meta"] = {"dropped_series": self._dropped,
                            "max_series": self.max_series}
        return out


# ----------------------------------------------------------------------
# Adapters: legacy stats objects -> registry series.
#
# Counters receive *deltas* (per-factorization / per-run objects);
# gauges receive cumulative process-lifetime values (engine/serving
# stats objects accumulate internally, so re-recording them must not
# double-count).
# ----------------------------------------------------------------------

def record_cholesky_stats(registry: MetricsRegistry, stats) -> None:
    """One factorization's :class:`~repro.tile.cholesky.CholeskyStats`."""
    kernels = registry.counter(
        "repro_cholesky_kernels_total",
        "Tile kernels executed by the Cholesky engines", ("op",),
    )
    for op, count in stats.kernel_counts.items():
        kernels.inc(count, op)
    registry.counter(
        "repro_cholesky_densified_tiles_total",
        "Low-rank tiles densified during factorization",
    ).inc(stats.densified_tiles)
    registry.counter(
        "repro_cholesky_retries_total",
        "Task retries inside factorization",
    ).inc(stats.retries)
    registry.gauge(
        "repro_cholesky_max_rank_seen",
        "Largest low-rank tile rank touched by the last factorization",
    ).set(stats.max_rank_seen)


def record_engine_stats(registry: MetricsRegistry, stats) -> None:
    """Cumulative :class:`~repro.core.engine.EngineStats`."""
    registry.gauge(
        "repro_engine_evaluations",
        "Likelihood evaluations served by the evaluation engine",
    ).set(stats.evaluations)
    hits = registry.gauge(
        "repro_engine_geometry_cache",
        "Geometry cache traffic of the evaluation engine", ("result",),
    )
    hits.set(stats.geometry_hits, "hit")
    hits.set(stats.geometry_misses, "miss")
    registry.gauge(
        "repro_engine_warm_tiles",
        "Tiles kept warm across evaluations",
    ).set(stats.warm_tiles)


def record_serving_stats(registry: MetricsRegistry, stats) -> None:
    """Cumulative :class:`~repro.core.serving.ServingStats`."""
    gauge = registry.gauge(
        "repro_serving", "Prediction serving engine counters", ("field",),
    )
    for name in (
        "predict_calls", "predictions", "batches", "weight_solves",
        "tile_casts", "solves", "clamped_variances", "failed_calls",
        "batch_retries",
    ):
        gauge.set(getattr(stats, name), name)
    cross = registry.gauge(
        "repro_serving_cross_cache",
        "Cross-covariance cache traffic", ("result",),
    )
    cross.set(stats.cross_hits, "hit")
    cross.set(stats.cross_misses, "miss")
    registry.gauge(
        "repro_serving_cross_cache_bytes",
        "Bytes held by the cross-covariance cache",
    ).set(stats.cross_cache_bytes)


def record_comm_stats(registry: MetricsRegistry, stats) -> None:
    """One run's :class:`~repro.runtime.comm.CommStats` deltas."""
    reads = registry.counter(
        "repro_comm_tile_reads_total",
        "Tile reads by locality (owner-computes accounting)",
        ("locality",),
    )
    reads.inc(stats.remote_reads, "remote")
    reads.inc(stats.local_reads, "local")
    registry.counter(
        "repro_comm_remote_bytes_total",
        "Bytes moved across ownership boundaries",
    ).inc(stats.remote_bytes)


def record_chaos_stats(registry: MetricsRegistry, stats) -> None:
    """Cumulative :class:`~repro.resilience.chaos.ChaosStats`."""
    gauge = registry.gauge(
        "repro_chaos_injections",
        "Faults injected by the chaos hooks", ("kind",),
    )
    gauge.set(stats.corrupted_tiles, "corrupted_tile")
    gauge.set(stats.failed_tasks, "failed_task")
    gauge.set(stats.delayed_tasks, "delayed_task")
    gauge.set(stats.failed_batches, "failed_batch")


def record_run_report(registry: MetricsRegistry, report) -> None:
    """One execution's :class:`~repro.runtime.parallel.ParallelRunReport`
    (threaded / batched / process backends)."""
    registry.counter(
        "repro_run_tasks_total", "Tasks executed by the DAG executors",
    ).inc(report.tasks)
    registry.counter(
        "repro_run_retries_total", "Task retries in the DAG executors",
    ).inc(report.retries)
    registry.counter(
        "repro_run_chaos_events_total", "Chaos events hit during runs",
    ).inc(report.chaos_events)
    registry.counter(
        "repro_run_batches_total", "Fused batches dispatched",
    ).inc(report.batches)
    registry.counter(
        "repro_run_batched_tasks_total", "Tasks executed inside batches",
    ).inc(report.batched_tasks)
    registry.counter(
        "repro_run_fallback_tasks_total",
        "Batch members retried on the scalar path",
    ).inc(report.fallback_tasks)
    registry.gauge(
        "repro_run_workers", "Worker count of the last run",
    ).set(report.workers)
    registry.gauge(
        "repro_run_max_concurrency",
        "Peak concurrent tasks observed in the last run",
    ).set(report.max_concurrency)
    registry.histogram(
        "repro_run_wall_seconds", "Wall time of DAG executor runs",
    ).observe(report.wall_time_s)
    # report.stats (CholeskyStats) is NOT recorded here — the
    # likelihood layer records it once per evaluation, covering the
    # sequential path too, so executor-level recording would
    # double-count kernels.
    if report.comm is not None:
        record_comm_stats(registry, report.comm)


def record_health(registry: MetricsRegistry, health) -> None:
    """Serving :class:`~repro.resilience.health.HealthReport` — maps
    circuit-breaker state into gauges."""
    breaker = getattr(health, "breaker", None) or {}
    if isinstance(breaker, dict):
        consecutive = breaker.get("consecutive", 0)
        trips = breaker.get("trips", 0)
        is_open = breaker.get("is_open", False)
    else:  # snapshot object
        consecutive = getattr(breaker, "consecutive", 0)
        trips = getattr(breaker, "trips", 0)
        is_open = getattr(breaker, "is_open", False)
    registry.gauge(
        "repro_breaker_open",
        "1 when the serving circuit breaker is open",
    ).set(1.0 if is_open else 0.0)
    registry.gauge(
        "repro_breaker_consecutive_failures",
        "Consecutive serving failures seen by the breaker",
    ).set(consecutive)
    registry.gauge(
        "repro_breaker_trips", "Times the serving breaker has tripped",
    ).set(trips)
