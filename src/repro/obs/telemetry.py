"""The :class:`Telemetry` façade: one object to thread through the
engines.

``telemetry=`` parameters across :func:`repro.core.mle.fit_mle`,
:func:`repro.core.likelihood.loglikelihood`,
:class:`~repro.core.engine.EvaluationEngine`,
:class:`~repro.core.serving.PredictionEngine`, and
:class:`~repro.core.model.ExaGeoStatModel` all accept one of these.
It bundles a :class:`~repro.obs.tracer.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry`, and forwards the span /
event / record APIs so instrumented code holds a single handle.

Every instrumented call site is guarded by ``telemetry is None`` (or
an early-returned no-op), so the untraced paths execute exactly the
code they executed before this layer existed.
"""

from __future__ import annotations

from contextlib import nullcontext

from . import metrics as _metrics
from .export import (
    chrome_trace_events,
    profile_dump,
    render_breakdown,
    render_prometheus,
    write_chrome_trace,
)
from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = ["Telemetry", "maybe_span"]

_NULL = nullcontext()


def maybe_span(telemetry: "Telemetry | None", name: str, **attrs):
    """``telemetry.span(...)`` or a shared no-op context manager.

    The one-line guard of every instrumented call site: ``telemetry``
    may be ``None`` (the untraced path) or a disabled bundle — both
    cost a ``None`` check and nothing else.
    """
    if telemetry is None:
        return _NULL
    return telemetry.span(name, **attrs)


class Telemetry:
    """Tracer + metrics registry bundle.

    Parameters
    ----------
    enabled:
        When false, the bundle is a recording no-op: spans/events
        vanish and stats recording is skipped.  Engines still accept
        the object, so a single flag flips a deployment between
        profiled and bare.
    max_series:
        Label-cardinality bound of the metrics registry.
    """

    def __init__(self, *, enabled: bool = True, max_series: int = 256):
        self.enabled = bool(enabled)
        self.tracer = Tracer(enabled=self.enabled)
        self.registry = MetricsRegistry(max_series=max_series)

    # -- tracing -------------------------------------------------------
    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        self.tracer.event(name, **attrs)

    # -- legacy stats adapters ----------------------------------------
    def record_cholesky_stats(self, stats) -> None:
        if self.enabled and stats is not None:
            _metrics.record_cholesky_stats(self.registry, stats)

    def record_engine_stats(self, stats) -> None:
        if self.enabled and stats is not None:
            _metrics.record_engine_stats(self.registry, stats)

    def record_serving_stats(self, stats) -> None:
        if self.enabled and stats is not None:
            _metrics.record_serving_stats(self.registry, stats)

    def record_comm_stats(self, stats) -> None:
        if self.enabled and stats is not None:
            _metrics.record_comm_stats(self.registry, stats)

    def record_chaos_stats(self, stats) -> None:
        if self.enabled and stats is not None:
            _metrics.record_chaos_stats(self.registry, stats)

    def record_run_report(self, report) -> None:
        if self.enabled and report is not None:
            _metrics.record_run_report(self.registry, report)

    def record_health(self, health) -> None:
        if self.enabled and health is not None:
            _metrics.record_health(self.registry, health)

    # -- exports -------------------------------------------------------
    def chrome_trace_events(self) -> list:
        return chrome_trace_events(self.tracer)

    def write_chrome_trace(self, path) -> None:
        write_chrome_trace(path, self.tracer)

    def render_prometheus(self) -> str:
        return render_prometheus(self.registry)

    def profile_dump(self) -> dict:
        return profile_dump(self.tracer, self.registry)

    def render_breakdown(self) -> str:
        return render_breakdown(self.tracer)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Telemetry(enabled={self.enabled}, "
            f"spans={len(self.tracer.spans)}, "
            f"metrics={len(self.registry.metrics())})"
        )
