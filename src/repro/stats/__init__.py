"""Metrics (MSPE and friends) and report summaries."""

from .metrics import crps_gaussian, interval_coverage, mae, mspe, rmse
from .summaries import BoxplotSummary, boxplot_summary, format_table
from .variogram import VariogramEstimate, empirical_variogram, theoretical_variogram

__all__ = [
    "mspe",
    "rmse",
    "mae",
    "interval_coverage",
    "crps_gaussian",
    "boxplot_summary",
    "BoxplotSummary",
    "format_table",
    "empirical_variogram",
    "theoretical_variogram",
    "VariogramEstimate",
]
