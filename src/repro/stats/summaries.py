"""Boxplot-style summaries and table formatting.

Fig. 6 of the paper is a grid of boxplots of parameter estimates over
100 synthetic replicates; in a terminal reproduction the same content
is a five-number summary per (parameter, variant, correlation) cell.
:func:`format_table` renders the Tables I/II layouts for the benches'
text artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ShapeError

__all__ = ["BoxplotSummary", "boxplot_summary", "format_table"]


@dataclass(frozen=True)
class BoxplotSummary:
    """Five-number summary plus mean of a sample."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    n: int

    def covers(self, value: float) -> bool:
        """Whether ``value`` lies inside the interquartile box — the
        visual check Fig. 6 invites (red truth line inside the box)."""
        return self.q1 <= value <= self.q3

    def covers_whiskers(self, value: float) -> bool:
        return self.minimum <= value <= self.maximum

    def as_row(self) -> list[float]:
        return [self.minimum, self.q1, self.median, self.q3, self.maximum]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.minimum:.4f} | {self.q1:.4f} {self.median:.4f} "
            f"{self.q3:.4f} | {self.maximum:.4f}] (n={self.n})"
        )


def boxplot_summary(samples: np.ndarray) -> BoxplotSummary:
    """Five-number summary of a 1-D sample."""
    arr = np.asarray(samples, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ShapeError("empty sample")
    q1, med, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
    return BoxplotSummary(
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        n=arr.size,
    )


def format_table(
    headers: list[str],
    rows: list[list[object]],
    *,
    title: str = "",
    float_fmt: str = "{:.4f}",
) -> str:
    """Plain-text table used by the benchmark artifacts."""
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_fmt.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    widths = [max(len(r[c]) for r in rendered) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for idx, row in enumerate(rendered):
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append(sep)
    return "\n".join(lines)
