"""Prediction-quality metrics.

The paper scores prediction with the mean square prediction error
(MSPE, Tables I-II); companions (MAE, RMSE, coverage of Gaussian
prediction intervals from Eq. 5 uncertainties) are included for the
extended studies.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from ..exceptions import ShapeError

__all__ = ["mspe", "rmse", "mae", "interval_coverage", "crps_gaussian"]


def _pair(pred: np.ndarray, truth: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p = np.asarray(pred, dtype=np.float64).ravel()
    t = np.asarray(truth, dtype=np.float64).ravel()
    if p.shape != t.shape:
        raise ShapeError(f"shape mismatch: {p.shape} vs {t.shape}")
    if p.size == 0:
        raise ShapeError("empty prediction arrays")
    return p, t


def mspe(pred: np.ndarray, truth: np.ndarray) -> float:
    """Mean square prediction error (the paper's accuracy metric)."""
    p, t = _pair(pred, truth)
    return float(np.mean((p - t) ** 2))


def rmse(pred: np.ndarray, truth: np.ndarray) -> float:
    return float(np.sqrt(mspe(pred, truth)))


def mae(pred: np.ndarray, truth: np.ndarray) -> float:
    p, t = _pair(pred, truth)
    return float(np.mean(np.abs(p - t)))


def interval_coverage(
    pred: np.ndarray,
    se: np.ndarray,
    truth: np.ndarray,
    *,
    level: float = 0.95,
) -> float:
    """Fraction of truths inside the central Gaussian prediction
    interval at ``level`` — validates the Eq. (5) uncertainties."""
    p, t = _pair(pred, truth)
    s = np.asarray(se, dtype=np.float64).ravel()
    if s.shape != p.shape:
        raise ShapeError("standard errors shape mismatch")
    if not 0.0 < level < 1.0:
        raise ShapeError("level must be in (0, 1)")
    zcrit = float(np.sqrt(2.0) * special.erfinv(level))
    inside = np.abs(t - p) <= zcrit * s
    return float(np.mean(inside))


def crps_gaussian(pred: np.ndarray, se: np.ndarray, truth: np.ndarray) -> float:
    """Mean continuous ranked probability score of Gaussian predictive
    distributions (lower is better)."""
    p, t = _pair(pred, truth)
    s = np.asarray(se, dtype=np.float64).ravel()
    if s.shape != p.shape:
        raise ShapeError("standard errors shape mismatch")
    if np.any(s <= 0):
        raise ShapeError("standard errors must be positive")
    zz = (t - p) / s
    pdf = np.exp(-0.5 * zz * zz) / np.sqrt(2.0 * np.pi)
    cdf = 0.5 * (1.0 + special.erf(zz / np.sqrt(2.0)))
    crps = s * (zz * (2.0 * cdf - 1.0) + 2.0 * pdf - 1.0 / np.sqrt(np.pi))
    return float(np.mean(crps))
