"""Empirical semivariogram estimation.

The classical diagnostic connecting data to covariance models:

    gamma(h) = 0.5 * E[(Z(s) - Z(s + h))^2]
             = C(0) - C(h)   (for a stationary field)

:func:`empirical_variogram` bins squared increments by distance
(Matheron's estimator); :func:`theoretical_variogram` evaluates a
kernel's implied curve so surrogates and fits can be eyeballed against
the data — the validation step between "we have numbers" and "the
surrogate behaves like the dataset it stands in for".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ShapeError
from ..kernels.base import CovarianceKernel
from ..kernels.distance import pairwise_distance

__all__ = ["VariogramEstimate", "empirical_variogram", "theoretical_variogram"]


@dataclass(frozen=True)
class VariogramEstimate:
    """Binned empirical semivariogram."""

    bin_centers: np.ndarray
    gamma: np.ndarray
    counts: np.ndarray

    def valid(self) -> np.ndarray:
        """Mask of bins with at least one pair."""
        return self.counts > 0


def empirical_variogram(
    x: np.ndarray,
    z: np.ndarray,
    *,
    n_bins: int = 15,
    max_distance: float | None = None,
) -> VariogramEstimate:
    """Matheron estimator over equal-width distance bins.

    ``max_distance`` defaults to half the maximum pairwise distance
    (beyond which pairs are scarce and the estimator noisy).
    """
    z = np.asarray(z, dtype=np.float64).ravel()
    if len(z) != len(x):
        raise ShapeError("x and z lengths differ")
    if len(z) < 2:
        raise ShapeError("need at least two observations")
    if n_bins < 1:
        raise ShapeError("need at least one bin")
    d = pairwise_distance(np.asarray(x, dtype=np.float64))
    iu = np.triu_indices(len(z), k=1)
    dists = d[iu]
    sq = 0.5 * (z[iu[0]] - z[iu[1]]) ** 2
    if max_distance is None:
        max_distance = 0.5 * float(dists.max())
    keep = dists <= max_distance
    dists, sq = dists[keep], sq[keep]
    edges = np.linspace(0.0, max_distance, n_bins + 1)
    idx = np.clip(np.digitize(dists, edges) - 1, 0, n_bins - 1)
    gamma = np.zeros(n_bins)
    counts = np.zeros(n_bins, dtype=np.int64)
    np.add.at(gamma, idx, sq)
    np.add.at(counts, idx, 1)
    nonzero = counts > 0
    gamma[nonzero] /= counts[nonzero]
    centers = 0.5 * (edges[:-1] + edges[1:])
    return VariogramEstimate(bin_centers=centers, gamma=gamma, counts=counts)


def theoretical_variogram(
    kernel: CovarianceKernel,
    theta: np.ndarray,
    distances: np.ndarray,
) -> np.ndarray:
    """``gamma(h) = C(0) - C(h)`` along an array of spatial distances
    (2-D kernels; the lag is laid along the x-axis)."""
    theta = kernel.validate_theta(theta)
    distances = np.asarray(distances, dtype=np.float64).ravel()
    dim = kernel.ndim_locations or 2
    origin = np.zeros((1, dim))
    pts = np.zeros((len(distances), dim))
    pts[:, 0] = distances
    c_h = kernel(theta, origin, pts)[0]
    c_0 = kernel.variance(theta)
    return c_0 - c_h
