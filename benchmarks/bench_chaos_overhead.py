"""Resilience-hook overhead: disabled hooks must cost (almost) nothing.

The resilience layer's contract is *zero-overhead when off*: with
``resilience=None`` the executors take the original code paths, and
with an inert config (no retry, zero-rate chaos) every hook
short-circuits on one ``None``/rate check per task.  This bench times
repeated likelihood evaluations and batched predictions in three
configurations —

* ``plain``  — ``resilience=None`` (the seed path);
* ``inert``  — zero-rate :class:`~repro.resilience.ChaosConfig`
  (hooks installed, nothing fires);
* ``chaos``  — 5% tile-NaN injection with retries absorbing the
  corruption (the price of an actual chaos experiment, for scale);

asserts the ``plain`` and ``inert`` results are bit-identical, and
writes ``benchmarks/out/BENCH_chaos_overhead.json``.
``BENCH_CHAOS_N`` scales the dataset (default 600, tile 40).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import loglikelihood
from repro.core.serving import PredictionEngine
from repro.data import sample_gaussian_field
from repro.kernels import MaternKernel
from repro.ordering import order_points
from repro.resilience import ChaosConfig, ResilienceConfig, RetryPolicy

N = int(os.environ.get("BENCH_CHAOS_N", "600"))
TILE = 40
VARIANT = "mp-dense-tlr-recover"
REPEATS = 5
THETA = np.array([1.0, 0.1, 0.5])
NUGGET = 1.0e-8

INERT = ResilienceConfig(chaos=ChaosConfig())  # every rate zero
CHAOS = ResilienceConfig(
    retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, max_delay_s=0.0),
    chaos=ChaosConfig(seed=13, tile_nan_rate=0.05),
)


def _dataset():
    gen = np.random.default_rng(2)
    x = gen.uniform(size=(N, 2))
    x = x[order_points(x, "morton")]
    kern = MaternKernel()
    z = sample_gaussian_field(kern, THETA, x, seed=9)
    return kern, x, z


def _median_time(fn, repeats=REPEATS):
    times = []
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times)), out


def test_chaos_hook_overhead(artifact_dir, benchmark):
    kern, x, z = _dataset()

    def loglik(resilience):
        return loglikelihood(
            kern, THETA, x, z, tile_size=TILE, variant=VARIANT,
            nugget=NUGGET, resilience=resilience,
        )

    t_plain, r_plain = _median_time(lambda: loglik(None))
    t_inert, r_inert = _median_time(lambda: loglik(INERT))
    t_chaos, r_chaos = _median_time(lambda: loglik(CHAOS))

    # Serving: same three configurations over a repeated batch grid.
    gen = np.random.default_rng(3)
    x_test = gen.uniform(size=(200, 2))

    def serve(resilience):
        engine = PredictionEngine(
            kern, THETA, x, z, loglik(None).factor,
            batch=50, resilience=resilience,
        )
        return engine.predict(x_test, return_uncertainty=True)

    t_serve_plain, p_plain = _median_time(lambda: serve(None), repeats=3)
    t_serve_inert, p_inert = _median_time(lambda: serve(INERT), repeats=3)

    overhead_fit = t_inert / t_plain - 1.0
    overhead_serve = t_serve_inert / t_serve_plain - 1.0
    record = {
        "experiment": "chaos_overhead",
        "n": N,
        "tile_size": TILE,
        "variant": VARIANT,
        "repeats": REPEATS,
        "seconds": {
            "loglik_plain": round(t_plain, 4),
            "loglik_inert_hooks": round(t_inert, 4),
            "loglik_chaos_5pct_nan": round(t_chaos, 4),
            "predict_plain": round(t_serve_plain, 4),
            "predict_inert_hooks": round(t_serve_inert, 4),
        },
        "overhead_fraction": {
            "loglik_inert": round(overhead_fit, 4),
            "predict_inert": round(overhead_serve, 4),
        },
        "chaos_run": {
            "loglik": r_chaos.value,
            "retries": r_chaos.stats.retries,
            "recovered": r_chaos.recovery is not None,
        },
        "bit_identical_inert": bool(r_inert.value == r_plain.value),
    }
    path = artifact_dir / "BENCH_chaos_overhead.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n[artifact] {path}\n{json.dumps(record, indent=2)}")

    # Inert hooks must not change a single bit of any result.
    assert r_inert.value == r_plain.value
    assert r_inert.logdet == r_plain.logdet
    np.testing.assert_array_equal(p_inert.mean, p_plain.mean)
    np.testing.assert_array_equal(p_inert.variance, p_plain.variance)
    # The chaos run must still end finite (retries + recovery absorb it).
    assert np.isfinite(r_chaos.value)
    # Disabled hooks are a rate/None check per task: allow generous
    # timer noise but catch anything resembling real work (>25%).
    assert overhead_fit < 0.25, f"inert fit overhead {overhead_fit:.1%}"
    assert overhead_serve < 0.25, (
        f"inert serving overhead {overhead_serve:.1%}"
    )
