"""Fault-tolerance overhead — makespan inflation vs MTBF and
checkpoint interval.

At the paper's 48,384 Fugaku nodes the application-level MTBF is hours,
not weeks, yet the paper's runs model a failure-free machine.  This
bench injects seeded node crashes into the discrete-event simulator,
sweeps the mean-time-between-failures and the coordinated-checkpoint
interval, and compares the measured makespan inflation against the
Young/Daly first-order waste prediction.  Runs are bit-reproducible per
seed — the property the resilience tests pin — and the artifact records
the failure schedule summary alongside the inflation.
"""

import numpy as np
import pytest

from repro.kernels import MaternKernel
from repro.ordering import order_points
from repro.perfmodel import application_mtbf, daly_interval, expected_waste
from repro.runtime import (
    CheckpointConfig,
    FaultModel,
    SimConfig,
    build_dag,
    cholesky_tasks,
    simulate_tasks,
)
from repro.stats import format_table
from repro.tile import build_planned_covariance

NODES = 4
SEED = 11


@pytest.fixture(scope="module")
def fault_problem():
    gen = np.random.default_rng(21)
    x = gen.uniform(size=(360, 2))
    x = x[order_points(x, "morton")]
    mat, report = build_planned_covariance(
        MaternKernel(), np.array([1.0, 0.08, 0.5]), x, 40,
        nugget=1e-8, use_mp=True, use_tlr=True, band_size=2,
    )
    tasks = list(cholesky_tasks(mat.nt))
    dag = build_dag(tasks)
    base = simulate_tasks(
        tasks, mat.layout, report.plan, SimConfig(nodes=NODES), dag=dag
    )
    return mat.layout, report.plan, tasks, dag, base


def _run(fault_problem, faults=None, checkpoint=None):
    layout, plan, tasks, dag, _ = fault_problem
    cfg = SimConfig(nodes=NODES, faults=faults, checkpoint=checkpoint)
    return simulate_tasks(tasks, layout, plan, cfg, dag=dag)


def test_makespan_inflation_vs_mtbf(fault_problem, write_artifact, benchmark):
    """Inflation grows monotonically as the machine gets flakier."""
    *_, base = fault_problem
    ms = base.makespan
    rows = []
    inflations = {}
    for factor in (64.0, 16.0, 4.0, 2.0):
        fm = FaultModel(
            node_mtbf_s=factor * ms, restart_s=ms / 100, seed=SEED
        )
        ck = CheckpointConfig(interval_s=ms / 10, cost_s=ms / 500)
        trace = _run(fault_problem, faults=fm, checkpoint=ck)
        inflation = trace.makespan / ms
        inflations[factor] = inflation
        rows.append([
            factor,
            trace.recovery_count,
            trace.checkpoint_count,
            trace.summary()["resilience_overhead_s"] / ms,
            inflation,
        ])
    write_artifact(
        "fault_overhead_mtbf",
        format_table(
            [
                "node_mtbf/makespan",
                "recoveries",
                "checkpoints",
                "overhead/makespan",
                "inflation",
            ],
            rows,
            title=(
                f"Fault overhead vs MTBF ({NODES} nodes, seeded "
                "crashes, checkpoint every makespan/10)"
            ),
            float_fmt="{:.3g}",
        ),
    )
    assert all(v >= 1.0 for v in inflations.values())
    assert inflations[2.0] > inflations[64.0]

    fm = FaultModel(node_mtbf_s=4 * ms, restart_s=ms / 100, seed=SEED)
    benchmark(_run, fault_problem, fm, CheckpointConfig(ms / 10, ms / 500))


def test_checkpoint_interval_sweep(fault_problem, write_artifact):
    """Sweep the checkpoint interval around the Daly optimum and put the
    measured inflation next to the first-order waste prediction."""
    *_, base = fault_problem
    ms = base.makespan
    node_mtbf = 2.0 * ms
    restart = ms / 100
    cost = ms / 200
    app_mtbf = application_mtbf(node_mtbf, NODES)
    daly = daly_interval(cost, app_mtbf, restart)
    fm = FaultModel(node_mtbf_s=node_mtbf, restart_s=restart, seed=SEED)

    rows = []
    measured = {}
    for mult in (0.25, 1.0, 4.0, 16.0):
        interval = mult * daly
        trace = _run(
            fault_problem, faults=fm,
            checkpoint=CheckpointConfig(interval_s=interval, cost_s=cost),
        )
        measured[mult] = trace.makespan
        rows.append([
            mult,
            interval / ms,
            expected_waste(interval, cost, app_mtbf, restart),
            trace.makespan / ms,
        ])
    no_ck = _run(fault_problem, faults=fm)
    rows.append(["none", float("inf"), 1.0, no_ck.makespan / ms])
    write_artifact(
        "fault_overhead_interval",
        format_table(
            ["interval/daly", "interval/makespan", "daly_waste", "inflation"],
            rows,
            title=(
                f"Checkpoint interval sweep (node MTBF = 2x makespan, "
                f"Daly optimum = {daly / ms:.3f}x makespan)"
            ),
            float_fmt="{:.3g}",
        ),
    )
    # The Young/Daly prediction is convex with its minimum at the
    # optimum; the simulated machine agrees on the gross trend: a
    # near-optimal interval beats both no checkpointing and a
    # pathologically long interval.
    assert measured[1.0] < no_ck.makespan
    assert measured[1.0] <= measured[16.0]


def test_failure_schedule_reproducible(fault_problem, write_artifact):
    """Same seed -> bit-identical failure schedule and makespan;
    different seed -> different realization."""
    *_, base = fault_problem
    ms = base.makespan
    ck = CheckpointConfig(interval_s=ms / 10, cost_s=ms / 500)

    def run(seed):
        fm = FaultModel(node_mtbf_s=2 * ms, restart_s=ms / 100, seed=seed)
        return _run(fault_problem, faults=fm, checkpoint=ck)

    a, b, c = run(SEED), run(SEED), run(SEED + 1)
    assert a.makespan == b.makespan
    assert [
        (r.uid, r.kind, r.node, r.core, r.start, r.end) for r in a.records
    ] == [(r.uid, r.kind, r.node, r.core, r.start, r.end) for r in b.records]
    assert c.makespan != a.makespan
    write_artifact(
        "fault_overhead_reproducibility",
        format_table(
            ["seed", "makespan/base", "recoveries", "reexecuted"],
            [
                [SEED, a.makespan / ms, a.recovery_count, a.reexecuted_tasks],
                [SEED, b.makespan / ms, b.recovery_count, b.reexecuted_tasks],
                [SEED + 1, c.makespan / ms, c.recovery_count, c.reexecuted_tasks],
            ],
            title="Seeded fault injection is bit-reproducible",
            float_fmt="{:.6g}",
        ),
    )
