"""Fig. 9 — adaptive decision maps and memory footprints (WC/SC).

The paper renders, for a 1M Matérn matrix at tile 2700, the per-tile
precision/structure decision maps of MP+dense and MP+dense/TLR under
weak and strong correlation, with memory footprints
4356 GB (dense FP64) -> 1607/915 GB (WC) and 3877/1830 GB (SC).

We compute the *actual* decision maps on a measured laptop-scale matrix
(ASCII heat map in the artifact) and project the footprints to the
paper's 1M / tile-2700 configuration through the offset-class profile.
"""

from repro.perfmodel import A64FX, estimate_cholesky
from repro.stats import format_table

PAPER_N = 1_000_000
PAPER_TILE = 2700
PAPER_DENSE_GB = 8.0 * PAPER_N * PAPER_N / 1e9 / 2  # lower triangle

_GLYPH = {0: " ", 64: "8", 32: "4", 16: "2"}


def ascii_map(plan) -> str:
    """Render precision (digit = bytes) and structure (lowercase =
    low-rank) per tile."""
    grid_p = plan.precision_grid()
    grid_s = plan.structure_grid()
    lines = []
    for i in range(plan.nt):
        row = []
        for j in range(plan.nt):
            g = _GLYPH[int(grid_p[i, j])]
            if grid_s[i, j] == 2:
                g = {"8": "l", "4": "h", "2": "q"}[g]  # lr tiles
            row.append(g)
        lines.append("".join(row))
    return "\n".join(lines)


def test_fig9_maps_and_footprints(correlation_profiles, write_artifact, benchmark):
    plans = correlation_profiles["_plans"]
    sections = []
    rows = []
    for corr in ("weak", "strong"):
        plan = plans[corr]
        sections.append(
            f"--- {corr} correlation, measured {plan.nt}x{plan.nt} plan "
            "(8/4/2 = dense FP64/FP32/FP16 bytes; l/h = low-rank FP64/FP32) ---\n"
            + ascii_map(plan)
        )
        est = estimate_cholesky(
            correlation_profiles[corr], PAPER_N, PAPER_TILE, A64FX,
            nodes=1024, band_size=3,
        )
        rows.append([
            corr, PAPER_DENSE_GB, est.storage_bytes / 1e9,
            est.memory_reduction,
        ])
    table = format_table(
        ["correlation", "dense_fp64_GB", "mp_tlr_GB", "reduction"],
        rows,
        title=(
            "Fig. 9 — projected memory footprint at the paper's 1M/"
            "tile-2700 configuration (paper: 4356 GB -> 915 GB WC, "
            "1830 GB SC; 79% max reduction)"
        ),
        float_fmt="{:.3g}",
    )
    write_artifact("fig9_decision_maps", "\n\n".join(sections) + "\n\n" + table)

    # Shape claims.
    reductions = {r[0]: r[3] for r in rows}
    assert reductions["weak"] > reductions["strong"], (
        "weak correlation must create more reduction opportunities"
    )
    # Paper: 79% (WC) and 58% (SC).  Our scale-invariant rank
    # projection compresses somewhat deeper (see EXPERIMENTS.md).
    assert 0.5 < reductions["weak"] < 0.97
    assert reductions["strong"] > 0.2

    # WC demotes more tiles than SC in the measured plans too.
    def low_fraction(plan):
        counts = plan.counts()
        total = sum(counts.values())
        return 1.0 - counts.get("dense/FP64", 0) / total

    assert low_fraction(plans["weak"]) >= low_fraction(plans["strong"])

    benchmark(ascii_map, plans["weak"])


def test_fig9_band_structure_visible(correlation_profiles, write_artifact, benchmark):
    """The decision maps must show the paper's band structure: dense
    FP64 hugging the diagonal, cheaper classes further out."""
    plan = correlation_profiles["_plans"]["weak"]
    by_offset = {}
    for (i, j), p in plan.precisions.items():
        cls = ("lr" if plan.use_lr[(i, j)] else "dense", p.label)
        by_offset.setdefault(i - j, []).append(cls)
    # Offset 0: all dense FP64.
    assert all(c == ("dense", "FP64") for c in by_offset[0])
    # Far offsets: majority non-FP64-dense.
    far = max(by_offset)
    far_classes = by_offset[far] + by_offset.get(far - 1, [])
    non_dense64 = [c for c in far_classes if c != ("dense", "FP64")]
    assert len(non_dense64) >= len(far_classes) // 2
    benchmark(lambda: plan.counts())
