"""Table I — soil-moisture 2D space dataset: MLE + prediction accuracy.

The paper trains the Matérn model on 1M Mississippi-basin locations
(test 100K) with the three compute variants and reports nearly
identical parameter estimates, log-likelihoods, and MSPE.  Here the
surrogate dataset (same fitted covariance, laptop size) plays the role
of the real data; the artifact prints the Table I layout.
"""

import numpy as np
import pytest

from repro import ExaGeoStatModel
from repro.data import soil_moisture_surrogate
from repro.stats import format_table

N_TRAIN, N_TEST, TILE = 900, 100, 100
VARIANTS = ("dense-fp64", "mp-dense", "mp-dense-tlr")


@pytest.fixture(scope="module")
def table1_results():
    data = soil_moisture_surrogate(n_train=N_TRAIN, n_test=N_TEST, seed=42)
    rows = {}
    for variant in VARIANTS:
        model = ExaGeoStatModel(kernel="matern", variant=variant, tile_size=TILE)
        model.fit(data.x_train, data.z_train,
                  theta0=data.theta_true, max_iter=60)
        # The prediction phase goes through the serving engine, as the
        # paper's production path would: factor + Eq.-4 weights are
        # solved once and shared by every predict/score call.
        rows[variant] = {
            "theta": model.theta_.copy(),
            "loglik": model.loglik_,
            "mspe": model.serving_engine().score(data.x_test, data.z_test),
        }
    return data, rows


def test_table1_artifact_and_agreement(table1_results, write_artifact, benchmark):
    data, rows = table1_results
    table = format_table(
        ["Approach", "Variance", "Range", "Smoothness", "Log-Likelihood", "MSPE"],
        [
            [v, r["theta"][0], r["theta"][1], r["theta"][2],
             r["loglik"], r["mspe"]]
            for v, r in rows.items()
        ] + [["(generating truth)", *data.theta_true, float("nan"), float("nan")]],
        title=(
            f"Table I — soil-moisture surrogate, {N_TRAIN} train / "
            f"{N_TEST} test (paper: 1M / 100K)"
        ),
    )
    write_artifact("table1_soil_moisture", table)

    base = rows["dense-fp64"]
    for variant in VARIANTS[1:]:
        r = rows[variant]
        # "very close estimations between the three variants"
        np.testing.assert_allclose(r["theta"], base["theta"], rtol=0.2)
        # "the prediction errors closely match"
        assert r["mspe"] == pytest.approx(base["mspe"], rel=0.1)
        assert r["loglik"] == pytest.approx(base["loglik"], abs=2.0)

    # Estimates land near the generating (paper-fitted) parameters.
    np.testing.assert_allclose(base["theta"], data.theta_true, rtol=0.6)

    # Payload: the prediction step (Eq. 4) under the TLR variant,
    # served by a warm engine (factor, weights, and cross values
    # amortized — the repeated-prediction hot path).
    model = ExaGeoStatModel(kernel="matern", variant="mp-dense-tlr",
                            tile_size=TILE)
    model.set_params(data.theta_true, data.x_train, data.z_train)
    engine = model.serving_engine()
    engine.predict(data.x_test[:10])  # warm the factor + weights
    benchmark(lambda: engine.predict(data.x_test).mean.sum())


def test_table1_medium_correlation_gives_demotions(
    table1_results, write_artifact, benchmark
):
    """The paper notes Table I's medium correlation 'gives more
    opportunities to represent the covariance matrix tiles in lower
    accuracy'; verify the plan actually demotes tiles."""
    from repro.core import loglikelihood
    from repro.ordering import order_points

    data, _ = table1_results
    perm = order_points(data.x_train, "morton")
    res = loglikelihood(
        data.kernel, data.theta_true, data.x_train[perm], data.z_train[perm],
        tile_size=60, variant="mp-dense-tlr",
    )
    counts = res.report.plan.counts()
    low = sum(v for k, v in counts.items() if k != "dense/FP64")
    total = sum(counts.values())
    assert low / total > 0.2
    write_artifact(
        "table1_plan_counts",
        f"Table I companion — tile classes at the fitted parameters: {counts}",
    )
    benchmark(
        lambda: loglikelihood(
            data.kernel, data.theta_true, data.x_train[perm],
            data.z_train[perm], tile_size=60, variant="mp-dense-tlr",
        ).value
    )
