"""Telemetry overhead: tracing must be near-free, off or on.

The observability layer's contract (DESIGN.md §16) mirrors the
resilience layer's: with ``telemetry=None`` the engines execute the
exact pre-existing code paths, and with a live
:class:`~repro.obs.Telemetry` the numerics are bit-identical — spans
only *observe*.  This bench times the same bounded MLE fit three
ways —

* ``untraced`` — ``telemetry=None`` (the seed path);
* ``disabled`` — ``Telemetry(enabled=False)`` (the bundle threads
  through every engine but records nothing);
* ``traced``   — a live bundle capturing the full span tree, the
  per-iteration progress events, and every legacy stats object;

asserts the three optimizer traces are bit-identical (loglik, theta,
iterate history), that the traced run's Chrome export is a valid
Perfetto-loadable document, and gates the traced/untraced wall-clock
ratio at <= 1.10x.  A second case runs one traced
``backend="process"`` fit and checks the merged timeline spans the
driver *and* every worker process.

Writes ``benchmarks/out/BENCH_observability_overhead.json``.
``BENCH_OBS_N`` scales the dataset (default 1800, tile 60 — the
hot-path size where the committed artifact shows <5% overhead).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import fit_mle
from repro.data import sample_gaussian_field
from repro.kernels import ExponentialKernel
from repro.obs import Telemetry
from repro.ordering import order_points

N = int(os.environ.get("BENCH_OBS_N", "1800"))
TILE = 60 if N >= 900 else 40
VARIANT = "mp-dense-tlr"
REPEATS = 3
MAX_NFEV = 8
THETA = np.array([1.0, 0.1])
#: CI gate: traced / untraced wall clock (generous for timer noise on
#: small replay sizes; the committed full-size artifact shows <5%).
MAX_RATIO = 1.10


def _dataset():
    gen = np.random.default_rng(0)
    x = gen.uniform(size=(N, 2))
    x = x[order_points(x, "morton")]
    kern = ExponentialKernel()
    z = sample_gaussian_field(kern, THETA, x, seed=5)
    return kern, x, z


def _median_fit(kern, x, z, telemetry_factory, repeats=REPEATS):
    times, result, telemetry = [], None, None
    for _ in range(repeats):
        telemetry = telemetry_factory()
        t0 = time.perf_counter()
        result = fit_mle(
            kern, x, z, tile_size=TILE, variant=VARIANT,
            theta0=THETA, max_nfev=MAX_NFEV, max_iter=MAX_NFEV,
            cache=True, telemetry=telemetry,
        )
        times.append(time.perf_counter() - t0)
    return float(np.median(times)), result, telemetry


def test_observability_overhead(artifact_dir, benchmark):
    kern, x, z = _dataset()

    t_plain, r_plain, _ = _median_fit(kern, x, z, lambda: None)
    t_off, r_off, _ = _median_fit(
        kern, x, z, lambda: Telemetry(enabled=False)
    )
    t_traced, r_traced, telemetry = _median_fit(kern, x, z, Telemetry)

    # Bit-identity: tracing observes the fit, it never steers it.
    assert r_traced.loglik == r_plain.loglik
    assert r_off.loglik == r_plain.loglik
    np.testing.assert_array_equal(r_traced.theta, r_plain.theta)
    np.testing.assert_array_equal(r_off.theta, r_plain.theta)
    assert r_traced.history == r_plain.history
    assert r_off.history == r_plain.history

    # The traced run's export must be a loadable Perfetto document.
    doc = json.loads(json.dumps({
        "traceEvents": telemetry.chrome_trace_events(),
        "displayTimeUnit": "ms",
    }))
    assert doc["traceEvents"], "traced fit produced an empty trace"
    iterations = [
        e for e in telemetry.tracer.sorted_events()
        if e.name == "mle_iteration"
    ]
    assert len(iterations) == r_plain.nfev

    ratio_traced = t_traced / t_plain
    ratio_off = t_off / t_plain
    record = {
        "experiment": "observability_overhead",
        "n": N,
        "tile_size": TILE,
        "variant": VARIANT,
        "repeats": REPEATS,
        "max_nfev": MAX_NFEV,
        "cores": os.cpu_count() or 1,
        "seconds": {
            "fit_untraced": round(t_plain, 4),
            "fit_disabled_bundle": round(t_off, 4),
            "fit_traced": round(t_traced, 4),
        },
        "ratio": {
            "disabled_over_untraced": round(ratio_off, 4),
            "traced_over_untraced": round(ratio_traced, 4),
        },
        "overhead_fraction_traced": round(ratio_traced - 1.0, 4),
        "trace": {
            "spans": len(telemetry.tracer),
            "events": len(telemetry.tracer.sorted_events()),
            "metrics": len(telemetry.registry.metrics()),
            "chrome_events": len(doc["traceEvents"]),
        },
        "bit_identical": {
            "loglik": bool(r_traced.loglik == r_plain.loglik),
            "history": bool(r_traced.history == r_plain.history),
        },
        "gate_max_ratio": MAX_RATIO,
    }
    path = artifact_dir / "BENCH_observability_overhead.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n[artifact] {path}\n{json.dumps(record, indent=2)}")

    assert ratio_traced <= MAX_RATIO, (
        f"traced fit is {ratio_traced:.2f}x the untraced one "
        f"(gate {MAX_RATIO}x)"
    )
    assert ratio_off <= MAX_RATIO, (
        f"disabled telemetry bundle costs {ratio_off:.2f}x (gate "
        f"{MAX_RATIO}x)"
    )

    benchmark(
        fit_mle, kern, x, z, tile_size=TILE, variant=VARIANT,
        theta0=THETA, max_nfev=2, max_iter=2, cache=True,
        telemetry=Telemetry(),
    )


def test_process_backend_merged_trace(artifact_dir):
    """One traced ``backend="process"`` fit: the merged timeline must
    span the driver (pid 0) and every worker (pid = rank + 1)."""
    kern, x, z = _dataset()
    workers = 2
    telemetry = Telemetry()
    result = fit_mle(
        kern, x, z, tile_size=TILE, variant=VARIANT, theta0=THETA,
        max_nfev=4, max_iter=4, cache=True, backend="process",
        workers=workers, telemetry=telemetry,
    )
    plain = fit_mle(
        kern, x, z, tile_size=TILE, variant=VARIANT, theta0=THETA,
        max_nfev=4, max_iter=4, cache=True, backend="process",
        workers=workers,
    )
    assert result.loglik == plain.loglik
    assert result.history == plain.history

    pids = {s.pid for s in telemetry.tracer.spans}
    assert pids == set(range(workers + 1)), (
        f"merged trace covers pids {sorted(pids)}, expected driver + "
        f"{workers} workers"
    )
    doc = json.loads(json.dumps({
        "traceEvents": telemetry.chrome_trace_events(),
    }))
    names = {
        e["args"]["name"] for e in doc["traceEvents"]
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    assert "driver" in names and "worker-0" in names, names
