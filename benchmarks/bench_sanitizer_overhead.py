"""Concurrency-sanitizer overhead: off must be free, on must be usable.

The sanitizer's contract mirrors the resilience layer's: with
:func:`~repro.analysis.sanitize.enable_sanitizer` never called, the
only residue in the production code is the DAG executor's one-call
``_make_lock`` indirection — so fits and predictions must stay
bit-identical to the pre-instrumentation tree.  With it enabled, every
tile access, cache operation, counter update, and lock edge pays a
bookkeeping callback; that slowdown is the price of a race-checked run
and is measured here for the record (CI runs the sanitized workload,
so its cost must stay sane).

Times repeated threaded likelihood evaluations and parallel batched
predictions in two configurations —

* ``off`` — sanitizer never enabled (the seed path);
* ``on``  — full instrumentation recording lockset + happens-before
  events;

asserts the two produce bit-identical numerics and that the sanitized
run reports zero findings, and writes
``benchmarks/out/BENCH_sanitizer_overhead.json``.
``BENCH_SANITIZE_N`` scales the dataset (default 400, tile 25).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.analysis.sanitize import disable_sanitizer, enable_sanitizer
from repro.core import loglikelihood
from repro.core.serving import PredictionEngine
from repro.data import sample_gaussian_field
from repro.kernels import MaternKernel
from repro.ordering import order_points
from repro.tile.geometry import GeometryCache

N = int(os.environ.get("BENCH_SANITIZE_N", "400"))
TILE = 25
REPEATS = 3
WORKERS = 4
THETA = np.array([1.0, 0.1, 0.5])
NUGGET = 1.0e-8


def _dataset():
    gen = np.random.default_rng(2)
    x = gen.uniform(size=(N, 2))
    x = x[order_points(x, "morton")]
    kern = MaternKernel()
    z = sample_gaussian_field(kern, THETA, x, seed=9)
    x_test = gen.uniform(size=(120, 2))
    return kern, x, z, x_test


def _median_time(fn, repeats=REPEATS):
    times = []
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times)), out


def test_sanitizer_overhead(artifact_dir, benchmark):
    kern, x, z, x_test = _dataset()

    def fit_and_predict():
        result = loglikelihood(
            kern, THETA, x, z, tile_size=TILE, variant="dense-fp64",
            nugget=NUGGET, workers=WORKERS, cache=GeometryCache(),
        )
        engine = PredictionEngine(
            kern, THETA, x, z, result.factor,
            cache=GeometryCache(), batch=30, workers=WORKERS,
        )
        pred = engine.predict(x_test, return_uncertainty=True)
        return result, pred

    t_off, (r_off, p_off) = _median_time(fit_and_predict)

    state = enable_sanitizer()
    try:
        t_on, (r_on, p_on) = _median_time(fit_and_predict)
        findings = state.report()
        events = state.stats.events
    finally:
        disable_sanitizer()

    # Back to the plain path: a second uninstrumented run must again be
    # bit-identical (enable/disable leaves no residue).
    _, (r_off2, p_off2) = _median_time(fit_and_predict, repeats=1)

    slowdown = t_on / t_off
    record = {
        "experiment": "sanitizer_overhead",
        "n": N,
        "tile_size": TILE,
        "workers": WORKERS,
        "repeats": REPEATS,
        "seconds": {
            "fit_predict_off": round(t_off, 4),
            "fit_predict_sanitized": round(t_on, 4),
        },
        "sanitized_slowdown_x": round(slowdown, 2),
        "sanitized_events": events,
        "sanitized_findings": len(findings.diagnostics),
        "bit_identical_off": bool(
            r_off.value == r_off2.value
            and np.array_equal(p_off.mean, p_off2.mean)
            and np.array_equal(p_off.variance, p_off2.variance)
        ),
        "bit_identical_instrumented": bool(
            r_off.value == r_on.value
            and np.array_equal(p_off.mean, p_on.mean)
            and np.array_equal(p_off.variance, p_on.variance)
        ),
    }
    path = artifact_dir / "BENCH_sanitizer_overhead.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n[artifact] {path}\n{json.dumps(record, indent=2)}")

    # Sanitizer-off runs are the seed path: bit-identical across the
    # enable/disable cycle.
    assert record["bit_identical_off"]
    # Instrumentation observes, never perturbs.
    assert record["bit_identical_instrumented"]
    # The clean tree must stay clean under instrumentation.
    assert findings.diagnostics == [], findings.render_text()
    assert events > 0
