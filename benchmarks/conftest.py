"""Shared benchmark fixtures.

Every bench file reproduces one table/figure of the paper: it runs the
(scaled-down or simulated) experiment once per session, writes a
human-readable artifact to ``benchmarks/out/``, asserts the paper's
*shape* claims, and times a representative hot kernel with
pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.kernels import MaternKernel
from repro.ordering import order_points
from repro.perfmodel import PlanProfile
from repro.tile import build_planned_covariance

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def write_artifact(artifact_dir):
    """Write (and echo) a named experiment artifact."""

    def _write(name: str, text: str) -> pathlib.Path:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[artifact] {path}\n{text}")
        return path

    return _write


@pytest.fixture(scope="session")
def correlation_profiles():
    """Measured offset-class profiles for weak/medium/strong Matérn
    correlation — the calibration input of every scaling figure.

    Measured once per session on an 1800-point Morton-ordered plan
    (tile 60, nt = 30), under the full MP+dense/TLR decision pipeline.
    """
    gen = np.random.default_rng(2022)
    x = gen.uniform(size=(1800, 2))
    x = x[order_points(x, "morton")]
    kern = MaternKernel()
    profiles = {}
    plans = {}
    for name, rng_ in (("weak", 0.03), ("medium", 0.1), ("strong", 0.3)):
        # Uncapped ranks (max_rank_fraction=0.95): the projection to
        # paper scale re-applies the structure decision at the target
        # tile size, so the profile must record true ranks, not the
        # laptop-scale cap.
        _, rep = build_planned_covariance(
            kern, np.array([1.0, rng_, 0.5]), x, 60, nugget=1e-8,
            use_mp=True, use_tlr=True, band_size=1, max_rank_fraction=0.95,
        )
        profiles[name] = PlanProfile.from_plan(rep.plan, label=name)
        plans[name] = rep.plan
    profiles["mp-dense"] = _mp_dense_profile(kern, x)
    profiles["dense"] = PlanProfile.dense_fp64()
    profiles["_plans"] = plans
    return profiles


def _mp_dense_profile(kern, x):
    _, rep = build_planned_covariance(
        kern, np.array([1.0, 0.03, 0.5]), x, 60, nugget=1e-8, use_mp=True
    )
    return PlanProfile.from_plan(rep.plan, label="mp-dense")
