"""Batched kernel execution speedup: per-tile hot path vs batched.

Times two configurations of the same bounded ``fit_mle`` on one
dataset (the PR-8 acceptance experiment):

* ``pertile`` — the PR-3 hot path: geometry cache + warm rank hints +
  ``fast_lr`` + a 4-thread DAG executor, one Python-level kernel call
  per tile;
* ``batched`` — the same knobs routed through the batched execution
  layer: one vectorized covariance evaluation per ``theta``
  (``from_geometry_batch``) and homogeneous ready-set groups executed
  as stacked BLAS calls (:mod:`repro.runtime.batchdispatch`).

Writes the machine-readable ``benchmarks/out/BENCH_batched_kernels.json``.
``BENCH_BATCHED_N`` scales the dataset (default 1800, tile 60 — the
paper-style single-node problem); the committed artifact records the
full-size run, CI's perf-smoke job replays a small one and only
asserts no regression (the Python-dispatch overhead being amortized
shrinks with the tile count).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import fit_mle
from repro.core.likelihood import loglikelihood
from repro.data import sample_gaussian_field
from repro.kernels import ExponentialKernel
from repro.ordering import order_points

N = int(os.environ.get("BENCH_BATCHED_N", "1800"))
TILE = 60 if N >= 900 else 40
VARIANT = "mp-dense-tlr"
WORKERS = 4
MAX_NFEV = 12
THETA = np.array([1.0, 0.1])


def _dataset():
    gen = np.random.default_rng(0)
    x = gen.uniform(size=(N, 2))
    x = x[order_points(x, "morton")]
    kern = ExponentialKernel()
    z = sample_gaussian_field(kern, THETA, x, seed=5)
    return kern, x, z


def _timed_fit(kern, x, z, **engine_kwargs):
    t0 = time.perf_counter()
    result = fit_mle(
        kern, x, z, tile_size=TILE, variant=VARIANT,
        theta0=THETA, max_nfev=MAX_NFEV, max_iter=MAX_NFEV,
        cache=True, fast_lr=True, workers=WORKERS,
        **engine_kwargs,
    )
    return time.perf_counter() - t0, result


def test_batched_kernels_speedup(artifact_dir, benchmark):
    kern, x, z = _dataset()
    # Best-of-3 per configuration: single runs on a loaded box are
    # noisy enough to flake the gate; the minimum of three is a stable
    # estimate of each configuration's true cost.
    t_pertile, r_pertile = min(
        (_timed_fit(kern, x, z) for _ in range(3)), key=lambda tr: tr[0]
    )
    t_batched, r_batched = min(
        (_timed_fit(kern, x, z, batch=True) for _ in range(3)),
        key=lambda tr: tr[0],
    )

    record = {
        "experiment": "batched_kernels",
        "n": N,
        "tile_size": TILE,
        "variant": VARIANT,
        "kernel": "exponential",
        "nfev": MAX_NFEV,
        "workers": WORKERS,
        "seconds": {
            "pertile": round(t_pertile, 4),
            "batched": round(t_batched, 4),
        },
        "speedup": round(t_pertile / t_batched, 3),
        "loglik": {
            "pertile": r_pertile.loglik,
            "batched": r_batched.loglik,
        },
    }
    path = artifact_dir / "BENCH_batched_kernels.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n[artifact] {path}\n{json.dumps(record, indent=2)}")

    # Batching regroups the same per-tile operations, so the optimizer
    # trace must be unchanged — not merely close.
    assert r_batched.loglik == r_pertile.loglik
    np.testing.assert_array_equal(r_batched.theta, r_pertile.theta)
    # Acceptance: >= 1.5x at the full benchmark size; CI smoke replays
    # only assert the batched path is not a regression.
    if N >= 1800:
        assert record["speedup"] >= 1.5
    else:
        assert record["speedup"] >= 1.0

    # Steady-state single-evaluation timing through the batched layer.
    from repro.tile.geometry import GeometryCache

    cache = GeometryCache()
    loglikelihood(
        kern, THETA, x, z, tile_size=TILE, variant=VARIANT,
        cache=cache, fast_lr=True, workers=WORKERS, batch=True,
    )
    benchmark(
        loglikelihood,
        kern, THETA, x, z, tile_size=TILE, variant=VARIANT,
        cache=cache, fast_lr=True, workers=WORKERS, batch=True,
    )
