"""Fig. 11 — Matérn 2D space-time, strong correlation, 4096 and
48384 Fugaku nodes.

The paper: the MP+dense/TLR speedup is just under an order of magnitude
on 4096 nodes ("ranks are higher and opportunities for low precision
computations are rare") and shrinks further at 48384 nodes because of
strong-scaling limits ("there may not be enough tasks to keep the
computational resources busy") — while the memory-footprint gain
remains.  Reproduced with a strong-correlation *space-time* profile
measured from the Gneiting kernel plan.
"""

import numpy as np
import pytest

from repro.kernels import GneitingMaternKernel
from repro.ordering import order_points
from repro.perfmodel import A64FX, PlanProfile, estimate_cholesky
from repro.stats import format_table
from repro.tile import build_planned_covariance

NODE_COUNTS = (4096, 48384)
MATRIX_N = 10_000_000  # "ten million geospatial locations"
DENSE_TILE = 2700
TLR_TILE = 2700  # the space-time runs share the dense tile size


@pytest.fixture(scope="module")
def spacetime_profile():
    """Offset-class profile of the ET-like strong-correlation
    space-time covariance (the Fig. 11 workload).

    Measured at the densest laptop-feasible sampling with uncapped
    ranks: the rank-saturation study in EXPERIMENTS.md shows ranks at
    fixed normalized offset decrease slowly toward their continuum
    epsilon-ranks as sampling densifies, so this measurement *bounds*
    the paper-scale ranks from above (conservative for TLR).
    """
    from repro.data import ET_THETA
    from repro.data.locations import space_time_locations

    kern = GneitingMaternKernel()
    x = space_time_locations(480, 12, seed=3, region="central_asia")
    x = x[order_points(x, "morton", space_time=True)]
    _, rep = build_planned_covariance(
        kern, ET_THETA, x, 60, nugget=1e-8,
        use_mp=True, use_tlr=True, band_size=1, max_rank_fraction=0.95,
    )
    return PlanProfile.from_plan(rep.plan, label="spacetime-strong")


def test_fig11_artifact_and_shape(spacetime_profile, write_artifact, benchmark):
    rows = []
    speedups = {}
    for nodes in NODE_COUNTS:
        dense = estimate_cholesky(
            PlanProfile.dense_fp64(), MATRIX_N, DENSE_TILE, A64FX, nodes=nodes
        )
        tlr = estimate_cholesky(
            spacetime_profile, MATRIX_N, TLR_TILE, A64FX,
            nodes=nodes, band_size=3,
        )
        speedups[nodes] = dense.time_s / tlr.time_s
        rows.append([
            nodes, dense.time_s, tlr.time_s, speedups[nodes],
            tlr.memory_reduction,
        ])
    table = format_table(
        ["nodes", "dense_fp64_s", "mp_tlr_s", "speedup", "mem_reduction"],
        rows,
        title=(
            f"Fig. 11 — space-time strong correlation, N={MATRIX_N:,} "
            "(aggregate model; paper: just under 10x at 4096 nodes, "
            "less at 48384)"
        ),
        float_fmt="{:.4g}",
    )
    write_artifact("fig11_spacetime_scaling", table)

    # Shape claims: TLR wins at 4096, by less than Fig. 10's WC;
    # the advantage shrinks at 48384 (strong-scaling limitation).
    assert 2.0 < speedups[4096] < 12.0
    assert speedups[48384] < speedups[4096]
    # Memory gain persists at both scales.
    assert all(r[4] > 0.3 for r in rows)

    benchmark(
        estimate_cholesky,
        spacetime_profile, MATRIX_N, TLR_TILE, A64FX, 4096,
    )


def test_fig11_spacetime_ranks_higher_than_space(
    spacetime_profile, correlation_profiles, write_artifact, benchmark
):
    """'ranks are higher' for the strongly correlated space-time data
    than for the weak-correlation space data of Fig. 10."""
    st_rank = float(np.mean(spacetime_profile.mean_rank[2:]))
    wc_rank = float(np.mean(correlation_profiles["weak"].mean_rank[2:]))
    write_artifact(
        "fig11_rank_comparison",
        "Fig. 11 companion — mean off-band tile rank: space-time strong "
        f"{st_rank:.1f} vs space weak {wc_rank:.1f}",
    )
    assert st_rank > wc_rank
    benchmark(lambda: np.mean(spacetime_profile.mean_rank))
