"""Table II — evapotranspiration space-time dataset (Gneiting model).

Six-parameter nonseparable space-time MLE on the ET surrogate with the
three compute variants; the artifact prints the Table II layout.  The
paper's observations reproduced here: strong spatial correlation leaves
fewer low-precision opportunities than Table I, yet the approximate
variants still match dense FP64 estimates and MSPE.
"""

import numpy as np
import pytest

from repro import ExaGeoStatModel
from repro.core import loglikelihood
from repro.data import et_surrogate
from repro.stats import format_table

N_SPACE, N_SLOTS, N_TEST, TILE = 70, 12, 100, 84
VARIANTS = ("dense-fp64", "mp-dense", "mp-dense-tlr")
COLUMNS = (
    "Variance", "Range", "Smoothness", "Range-time",
    "Smoothness-time", "Nonsep-param",
)


@pytest.fixture(scope="module")
def table2_results():
    data = et_surrogate(n_space=N_SPACE, n_slots=N_SLOTS, n_test=N_TEST,
                        seed=77)
    rows = {}
    for variant in VARIANTS:
        model = ExaGeoStatModel(
            kernel="gneiting", variant=variant, tile_size=TILE, nugget=1e-8
        )
        model.fit(data.x_train, data.z_train,
                  theta0=data.theta_true, max_iter=60)
        rows[variant] = {
            "theta": model.theta_.copy(),
            "loglik": model.loglik_,
            # Prediction served by the engine (one weight solve,
            # amortized tile casts), as in the table-1 benchmark.
            "mspe": model.serving_engine().score(data.x_test, data.z_test),
        }
    return data, rows


def test_table2_artifact_and_agreement(table2_results, write_artifact, benchmark):
    data, rows = table2_results
    table = format_table(
        ["Approach", *COLUMNS, "Log-Likelihood", "MSPE"],
        [
            [v, *r["theta"], r["loglik"], r["mspe"]]
            for v, r in rows.items()
        ] + [["(generating truth)", *data.theta_true, float("nan"), float("nan")]],
        title=(
            f"Table II — ET space-time surrogate, {N_SPACE} pixels x "
            f"{N_SLOTS} months / {N_TEST} test (paper: ~83K x 12 / 100K; "
            "smoothness-time clamped to 0.9, see DESIGN.md)"
        ),
    )
    write_artifact("table2_et_spacetime", table)

    base = rows["dense-fp64"]
    for variant in VARIANTS[1:]:
        r = rows[variant]
        np.testing.assert_allclose(r["theta"], base["theta"], rtol=0.25,
                                   atol=0.05)
        assert r["mspe"] == pytest.approx(base["mspe"], rel=0.15)

    # Nonseparability is recovered as clearly nonzero (the paper's
    # point about not dropping the interaction parameter).
    assert base["theta"][5] > 0.02

    # Payload: one space-time likelihood under the TLR variant.
    from repro.ordering import order_points

    perm = order_points(data.x_train, "morton", space_time=True)
    xo, zo = data.x_train[perm], data.z_train[perm]
    benchmark(
        lambda: loglikelihood(
            data.kernel, data.theta_true, xo, zo,
            tile_size=TILE, variant="mp-dense-tlr", nugget=1e-8,
        ).value
    )


def test_table2_strong_space_correlation_limits_demotion(
    table2_results, write_artifact, benchmark
):
    """Paper: the ET data's strong spatial correlation 'makes most of
    the matrix values important and increases the number of dense FP64
    tiles'.  Verify within the space-time kernel: the same
    configuration with a 10x weaker spatial range must demote more
    tiles than the fitted (strong) one."""
    from repro.ordering import order_points

    data, _ = table2_results
    perm = order_points(data.x_train, "morton", space_time=True)
    xo, zo = data.x_train[perm], data.z_train[perm]

    def fp64_fraction(theta):
        res = loglikelihood(
            data.kernel, theta, xo, zo,
            tile_size=TILE, variant="mp-dense", nugget=1e-8,
        )
        counts = res.report.plan.counts()
        return counts.get("dense/FP64", 0) / sum(counts.values())

    strong = fp64_fraction(data.theta_true)
    weak_theta = data.theta_true.copy()
    weak_theta[1] /= 10.0  # range-space 3.79 -> 0.38 degrees
    weak = fp64_fraction(weak_theta)
    write_artifact(
        "table2_fp64_fractions",
        "Table II companion — FP64 tile fraction under the space-time "
        f"kernel: fitted strong spatial range {strong:.2f} vs 10x weaker "
        f"range {weak:.2f}",
    )
    assert strong >= weak
    benchmark(lambda: fp64_fraction(data.theta_true))
