"""Ordering ablation (paper Section III: "under a proper ordering [10]
the most significant information clusters around the diagonal").

Compares Morton, Hilbert, and random orderings of the same point set by
the quantities the adaptive algorithms feed on: off-diagonal tile
ranks, demoted-tile fractions, planned memory footprint, and the
projected paper-scale time-to-solution.
"""

import numpy as np
import pytest

from repro.kernels import MaternKernel
from repro.ordering import order_points
from repro.perfmodel import A64FX, PlanProfile, estimate_cholesky
from repro.stats import format_table
from repro.tile import build_planned_covariance

N, TILE = 1500, 60
ORDERINGS = ("morton", "hilbert", "kdtree", "random")


@pytest.fixture(scope="module")
def ordering_plans():
    gen = np.random.default_rng(88)
    x = gen.uniform(size=(N, 2))
    kern = MaternKernel()
    theta = np.array([1.0, 0.05, 0.5])
    out = {}
    for method in ORDERINGS:
        xo = x[order_points(x, method, seed=1)]
        matrix, rep = build_planned_covariance(
            kern, theta, xo, TILE, nugget=1e-8,
            use_mp=True, use_tlr=True, band_size=1,
            max_rank_fraction=0.95,
        )
        out[method] = (matrix, rep)
    return out


def test_ordering_ablation(ordering_plans, write_artifact, benchmark):
    rows = []
    stats = {}
    for method, (matrix, rep) in ordering_plans.items():
        ranks = list(rep.ranks.values())
        counts = matrix.structure_counts()
        total = sum(counts.values())
        fp64_frac = counts.get("dense/FP64", 0) / total
        profile = PlanProfile.from_plan(rep.plan, label=method)
        est = estimate_cholesky(
            profile, 2_000_000, 1350, A64FX, nodes=1024, band_size=2
        )
        stats[method] = dict(
            mean_rank=float(np.mean(ranks)),
            fp64_frac=fp64_frac,
            nbytes=matrix.nbytes,
            time=est.time_s,
        )
        rows.append([
            method, stats[method]["mean_rank"], fp64_frac,
            matrix.nbytes / 1e6, est.time_s,
        ])
    table = format_table(
        ["ordering", "mean_offdiag_rank", "frac_dense_fp64", "matrix_MB",
         "projected_2M@1024n_s"],
        rows,
        title=(
            "Ordering ablation — Morton/Hilbert vs random on the same "
            f"{N}-point Matérn problem (tile {TILE})"
        ),
        float_fmt="{:.4g}",
    )
    write_artifact("ordering_ablation", table)

    # Locality-preserving orderings must beat random on every axis.
    for curve in ("morton", "hilbert", "kdtree"):
        assert stats[curve]["mean_rank"] < stats["random"]["mean_rank"]
        assert stats[curve]["nbytes"] < stats["random"]["nbytes"]
        assert stats[curve]["time"] < stats["random"]["time"]

    gen = np.random.default_rng(0)
    pts = gen.uniform(size=(2000, 2))
    benchmark(order_points, pts, "morton")


def test_hilbert_at_least_as_local_as_morton(ordering_plans, benchmark):
    """Hilbert's stronger locality shows up as equal-or-lower mean rank
    (small margins at this size; the assertion allows a 10% slack)."""
    morton_rank = np.mean(list(ordering_plans["morton"][1].ranks.values()))
    hilbert_rank = np.mean(list(ordering_plans["hilbert"][1].ranks.values()))
    assert hilbert_rank <= morton_rank * 1.1
    gen = np.random.default_rng(0)
    pts = gen.uniform(size=(2000, 2))
    benchmark(order_points, pts, "hilbert")
