"""Section VI-D — weak scaling via particle-swarm parallel MLE.

The paper turns strongly-scaling-limited MLE into a weak-scaling
workload: a PSO swarm evaluates many independent log-likelihoods
(Cholesky factorizations) per iteration, loosely synchronized.  We run
a real PSO fit on a small dataset, then model the weak-scaling
efficiency: a swarm of q particles on q x P nodes costs (per iteration)
the time of one Cholesky on P nodes plus the loose synchronization —
near-constant as q grows, which is the claim.
"""

import numpy as np

from repro.core import loglikelihood
from repro.data import simulate_matern_dataset
from repro.optim import particle_swarm
from repro.perfmodel import A64FX, estimate_cholesky
from repro.stats import format_table

NODES_PER_MLE = 1024
MATRIX_N = 1_000_000


def test_pso_weak_scaling_model(correlation_profiles, write_artifact, benchmark):
    base = estimate_cholesky(
        correlation_profiles["medium"], MATRIX_N, 1350, A64FX,
        nodes=NODES_PER_MLE, band_size=2,
    )
    sync_overhead = 0.05 * base.time_s  # loose per-iteration sync
    rows = []
    effs = []
    for swarm in (1, 2, 4, 8, 16, 47):
        total_nodes = swarm * NODES_PER_MLE
        iter_time = base.time_s + sync_overhead * np.log2(max(swarm, 1) + 1)
        throughput = swarm / iter_time  # likelihood evals per second
        eff = throughput / (swarm / base.time_s)
        effs.append(eff)
        rows.append([swarm, total_nodes, iter_time, throughput, eff])
    table = format_table(
        ["swarm", "total_nodes", "iter_time_s", "evals_per_s", "weak_eff"],
        rows,
        title=(
            "Section VI-D — PSO weak scaling (model): independent MLEs "
            f"on {NODES_PER_MLE}-node groups; 47 x 1024 ~ full-Fugaku "
            "class (48,384 nodes)"
        ),
        float_fmt="{:.4g}",
    )
    write_artifact("pso_weak_scaling", table)

    # Weak-scaling efficiency stays high out to full-machine swarm.
    assert effs[-1] > 0.7
    assert all(b <= a + 1e-12 for a, b in zip(effs, effs[1:]))

    benchmark(
        estimate_cholesky,
        correlation_profiles["medium"], MATRIX_N, 1350, A64FX,
        NODES_PER_MLE,
    )


def test_pso_actually_optimizes_likelihood(write_artifact, benchmark):
    """End-to-end PSO-MLE on a real (small) dataset: the swarm's best
    negative log-likelihood approaches the truth's."""
    data = simulate_matern_dataset(150, "medium", seed=314)
    evals = [0]

    def batch(positions):
        out = []
        for theta in positions:
            evals[0] += 1
            try:
                out.append(
                    -loglikelihood(
                        data.kernel, theta, data.x, data.z, tile_size=50
                    ).value
                )
            except Exception:
                out.append(np.inf)
        return out

    res = particle_swarm(
        batch, [(0.2, 3.0), (0.02, 0.4), (0.2, 1.5)],
        n_particles=12, max_iter=15, seed=11,
    )
    truth_nll = -loglikelihood(
        data.kernel, data.theta_true, data.x, data.z, tile_size=50
    ).value
    write_artifact(
        "pso_optimization",
        "PSO-MLE on 150-location synthetic data: best NLL "
        f"{res.fun:.2f} vs truth NLL {truth_nll:.2f} "
        f"({evals[0]} likelihood evaluations, {res.nit} iterations)",
    )
    assert res.fun <= truth_nll + 3.0

    theta = data.theta_true
    benchmark(
        lambda: loglikelihood(
            data.kernel, theta, data.x, data.z, tile_size=50
        ).value
    )
