"""Fig. 8 — GEMM kernel comparison: DGEMM / SGEMM / SHGEMM / HGEMM.

The paper compares SSL DGEMM and SGEMM (SCO disabled) against the BLIS
FP32-accumulating SHGEMM contributed for this work, finding SHGEMM
*slower* than SGEMM on A64FX — hence the production fallback of storing
FP16 and computing with SGEMM.  We regenerate the modeled rate ladder
and verify the numerical side of the story (SHGEMM accuracy ~ FP16
storage error; pure HGEMM unusable) with live NumPy kernels.
"""

import numpy as np
import pytest

from repro.perfmodel import A64FX
from repro.stats import format_table
from repro.tile import DenseTile, Precision
from repro.tile import kernels as K

TILE = 800


def modeled_rate(precision, mode):
    return A64FX.dense_rate(precision, shgemm_mode=mode) / 1e9


def test_fig8_rate_ladder(write_artifact, benchmark):
    rows = [
        ["DGEMM (FP64)", modeled_rate(Precision.FP64, "sgemm_fallback")],
        ["SGEMM (FP32)", modeled_rate(Precision.FP32, "sgemm_fallback")],
        ["SHGEMM (BLIS, FP16 in / FP32 acc)", modeled_rate(Precision.FP16, "shgemm")],
        ["FP16-store + SGEMM fallback", modeled_rate(Precision.FP16, "sgemm_fallback")],
        ["HGEMM (pure FP16)", modeled_rate(Precision.FP16, "hgemm")],
    ]
    table = format_table(
        ["kernel", "modeled Gflop/s per core (SCO disabled)"],
        rows,
        title="Fig. 8 — A64FX GEMM kernel rates (model)",
        float_fmt="{:.1f}",
    )
    write_artifact("fig8_gemm_kernels", table)

    rates = {name: r for name, r in rows}
    assert rates["SGEMM (FP32)"] == pytest.approx(
        2 * rates["DGEMM (FP64)"]
    )
    # The paper's finding: SHGEMM < SGEMM, so fall back to SGEMM.
    assert rates["SHGEMM (BLIS, FP16 in / FP32 acc)"] < rates["SGEMM (FP32)"]
    assert rates["FP16-store + SGEMM fallback"] == rates["SGEMM (FP32)"]

    gen = np.random.default_rng(1)
    a64 = gen.standard_normal((512, 512))
    benchmark(lambda: a64 @ a64.T)


def test_fig8_live_fp32_vs_fp64_speed(write_artifact, benchmark):
    """Live check on this host: FP32 GEMM is faster than FP64 GEMM
    (the hardware premise of the whole MP story)."""
    import time

    gen = np.random.default_rng(2)
    a64 = gen.standard_normal((TILE, TILE))
    a32 = a64.astype(np.float32)  # lint: ignore[LINT005] — FP32 operand prep

    def time_gemm(mat, reps=5):
        best = np.inf
        for _ in range(reps):
            t0 = time.perf_counter()
            mat @ mat.T
            best = min(best, time.perf_counter() - t0)
        return best

    t64 = time_gemm(a64)
    t32 = time_gemm(a32)
    write_artifact(
        "fig8_live_gemm",
        f"Fig. 8 companion — live host GEMM {TILE}x{TILE}: "
        f"FP64 {t64 * 1e3:.2f} ms, FP32 {t32 * 1e3:.2f} ms "
        f"(speedup {t64 / t32:.2f}x)",
    )
    assert t32 < t64 * 1.1  # FP32 at least not slower
    benchmark(lambda: a32 @ a32.T)


def test_fig8_accuracy_ladder(write_artifact, benchmark):
    """SHGEMM emulation keeps FP16-storage-level accuracy; pure HGEMM
    loses digits in the accumulation — the reason the paper rejects it
    for MLE."""
    gen = np.random.default_rng(3)
    n = 256
    a = gen.standard_normal((n, n))
    b = gen.standard_normal((n, n))
    exact = -a @ b.T

    def gemm_error(fp16_acc32):
        out = K.gemm(
            DenseTile(a, Precision.FP16),
            DenseTile(b, Precision.FP16),
            DenseTile(np.zeros((n, n)), Precision.FP16),
            fp16_accumulate_fp32=fp16_acc32,
        )
        return float(
            np.linalg.norm(out.to_dense64() - exact) / np.linalg.norm(exact)
        )

    err_shgemm = gemm_error(True)
    err_hgemm = gemm_error(False)
    write_artifact(
        "fig8_accuracy_ladder",
        "Fig. 8 companion — relative GEMM error with FP16 operands: "
        f"FP32 accumulation {err_shgemm:.2e}, pure FP16 accumulation "
        f"{err_hgemm:.2e}",
    )
    assert err_shgemm < err_hgemm
    assert err_shgemm < 5e-3
    benchmark(lambda: gemm_error(True))
