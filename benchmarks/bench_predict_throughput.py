"""Prediction serving throughput: cold per-call path vs warm engine.

Times repeated kriging prediction (the PR-4 acceptance experiment) in
two configurations on the same factored training covariance:

* ``baseline`` — the seed path: every call re-solves the Eq.-4
  weights with one-shot triangular sweeps (re-casting every tile) and
  re-evaluates the train/test cross covariance;
* ``engine``   — a warm :class:`~repro.core.serving.PredictionEngine`:
  weights solved once, tiles cast once, cross values served from the
  byte-bounded LRU.

Writes the machine-readable
``benchmarks/out/BENCH_predict_throughput.json``.  ``BENCH_PREDICT_N``
scales the training set (default 1800, tile 60 — the paper-style
single-node problem); the committed artifact records the full-size
run, CI's perf-smoke job replays a small one.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import PredictionEngine
from repro.data import sample_gaussian_field
from repro.kernels import ExponentialKernel
from repro.core.likelihood import loglikelihood
from repro.core.variants import get_variant
from repro.ordering import order_points
from repro.tile.solve import backward_solve, forward_solve

N = int(os.environ.get("BENCH_PREDICT_N", "1800"))
TILE = 60 if N >= 900 else 40
M_TEST = 400
REPEATS = 5
BATCH = 200
THETA = np.array([1.0, 0.1])
VARIANTS = ("mp-dense-tlr", "dense-fp64")


def _dataset():
    gen = np.random.default_rng(0)
    x = gen.uniform(size=(N + M_TEST, 2))
    x_train = x[:N][order_points(x[:N], "morton")]
    x_test = x[N:]
    kern = ExponentialKernel()
    z = sample_gaussian_field(kern, THETA, x_train, seed=5)
    return kern, x_train, z, x_test


def _baseline_predict(kern, x_train, z, x_test, factor, *, uncertainty):
    """The seed per-call path: weight re-solve + fresh cross values
    per call, one-shot (transient-solver) triangular sweeps."""
    weights = backward_solve(factor, forward_solve(factor, z))
    marginal = kern.variance(THETA)
    means, variances = [], []
    for start in range(0, len(x_test), BATCH):
        xb = x_test[start:start + BATCH]
        cross = kern(THETA, x_train, xb)
        means.append(cross.T @ weights)
        if uncertainty:
            half = forward_solve(factor, cross)
            v = marginal - np.einsum("ij,ij->j", half, half)
            variances.append(np.where(v < 0.0, 0.0, v))
    mean = np.concatenate(means)
    return mean, (np.concatenate(variances) if uncertainty else None)


def _throughput(fn, repeats=REPEATS):
    """Predictions per second over ``repeats`` identical calls."""
    fn()  # warm-up outside the timed region (JIT-free, but page-in)
    t0 = time.perf_counter()
    for _ in range(repeats):
        fn()
    dt = time.perf_counter() - t0
    return repeats * M_TEST / dt, dt


def test_predict_throughput(artifact_dir, benchmark):
    kern, x_train, z, x_test = _dataset()
    record = {
        "experiment": "predict_throughput",
        "n_train": N,
        "m_test": M_TEST,
        "tile_size": TILE,
        "batch": BATCH,
        "repeats": REPEATS,
        "kernel": "exponential",
        "variants": {},
    }
    engines = {}
    for variant in VARIANTS:
        cfg = get_variant(variant)
        factor = loglikelihood(
            kern, THETA, x_train, z, tile_size=TILE, variant=cfg
        ).factor
        engine = PredictionEngine(kern, THETA, x_train, z, factor, batch=BATCH)
        engines[variant] = engine

        base_mean, _ = _baseline_predict(
            kern, x_train, z, x_test, factor, uncertainty=False)
        eng_mean = engine.predict(x_test).mean
        tp_base, t_base = _throughput(lambda: _baseline_predict(
            kern, x_train, z, x_test, factor, uncertainty=False))
        tp_eng, t_eng = _throughput(lambda: engine.predict(x_test))
        tp_base_u, t_base_u = _throughput(lambda: _baseline_predict(
            kern, x_train, z, x_test, factor, uncertainty=True))
        tp_eng_u, t_eng_u = _throughput(
            lambda: engine.predict(x_test, return_uncertainty=True))
        stats = engine.stats()
        record["variants"][variant] = {
            "mean_only": {
                "baseline_pred_per_s": round(tp_base, 1),
                "engine_pred_per_s": round(tp_eng, 1),
                "speedup": round(tp_eng / tp_base, 2),
            },
            "mean_and_variance": {
                "baseline_pred_per_s": round(tp_base_u, 1),
                "engine_pred_per_s": round(tp_eng_u, 1),
                "speedup": round(tp_eng_u / tp_base_u, 2),
            },
            "mean_bit_identical_to_baseline": bool(
                np.array_equal(base_mean, eng_mean)),
            "engine": {
                "weight_solves": stats.weight_solves,
                "tile_casts": stats.tile_casts,
                "cross_hits": stats.cross_hits,
                "cross_cache_bytes": stats.cross_cache_bytes,
            },
        }

    path = artifact_dir / "BENCH_predict_throughput.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n[artifact] {path}\n{json.dumps(record, indent=2)}")

    for variant, row in record["variants"].items():
        # The engine serves the same numbers the seed path produced:
        # same factor, same arithmetic, cached operands.
        assert row["mean_bit_identical_to_baseline"], variant
        # One weight solve and one cast per stored tile, ever.
        assert row["engine"]["weight_solves"] == 1
        # Acceptance: >= 3x repeated-prediction throughput at the full
        # benchmark size (small CI replays only assert no regression).
        if N >= 1800:
            assert row["mean_only"]["speedup"] >= 3.0, (variant, row)
        else:
            assert row["mean_only"]["speedup"] > 0.7, (variant, row)

    # Steady-state timing of the warm mp-dense-tlr engine.
    engine = engines["mp-dense-tlr"]
    benchmark(lambda: engine.predict(x_test).mean.sum())
