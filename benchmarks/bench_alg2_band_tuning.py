"""Algorithm 2 — auto-tuning band_size_dense (ablation).

The paper's structure-aware decision grows a dense band while the
modeled dense execution of the next sub-diagonal beats its TLR
execution.  This bench runs the auto-tuner on measured rank profiles at
the paper's tile size, sweeps the fluctuation parameter, and compares
the auto-tuned band against fixed bands by estimated time-to-solution —
the ablation DESIGN.md calls out.
"""

import numpy as np
import pytest

from repro.perfmodel import A64FX, crossover_rank, estimate_cholesky
from repro.stats import format_table
from repro.tile import TileLayout, autotune_band_size
from repro.tile.precision import Precision

TILE = 2700
NT = 200


def ranks_from_profile(profile, layout):
    """Expand a measured per-offset rank profile into per-tile ranks."""
    _, mean_rank = profile.at_offsets(layout.nt)
    out = {}
    for i, j in layout.lower_tiles():
        if i != j:
            out[(i, j)] = int(max(mean_rank[i - j], 1))
    return out


@pytest.fixture(scope="module")
def tuning_setup(correlation_profiles):
    layout = TileLayout(NT * TILE, TILE)
    precisions = {k: Precision.FP64 for k in layout.lower_tiles()}
    ranks = {
        corr: ranks_from_profile(correlation_profiles[corr], layout)
        for corr in ("weak", "medium", "strong")
    }
    return layout, precisions, ranks


def test_alg2_band_sizes(tuning_setup, write_artifact, benchmark):
    layout, precisions, ranks = tuning_setup
    rows = []
    bands = {}
    for corr, rank_map in ranks.items():
        band = autotune_band_size(layout, rank_map, precisions, A64FX)
        bands[corr] = band
        near_rank = np.mean([rank_map[(j + 1, j)] for j in range(layout.nt - 1)])
        rows.append([corr, band, near_rank, crossover_rank(TILE, A64FX)])
    table = format_table(
        ["correlation", "band_size_dense", "mean_rank_offset1", "crossover"],
        rows,
        title=(
            f"Algorithm 2 — auto-tuned dense band at tile {TILE} "
            "(paper's Fig. 3 example: a band of 3 tiles)"
        ),
        float_fmt="{:.1f}",
    )
    write_artifact("alg2_band_tuning", table)

    # Bands stay small (measured ranks are well below the crossover)
    # and never shrink when correlation strengthens.
    assert 1 <= bands["weak"] <= bands["strong"] <= 6
    benchmark(
        autotune_band_size, layout, ranks["weak"], precisions, A64FX
    )


def test_alg2_fluctuation_sweep(tuning_setup, write_artifact, benchmark):
    layout, precisions, ranks = tuning_setup
    flucts = (0.25, 0.5, 1.0, 2.0, 4.0)
    bands = [
        autotune_band_size(
            layout, ranks["strong"], precisions, A64FX, fluctuation=f
        )
        for f in flucts
    ]
    write_artifact(
        "alg2_fluctuation_sweep",
        format_table(
            ["fluctuation", "band_size_dense"],
            [[f, b] for f, b in zip(flucts, bands)],
            title="Algorithm 2 ablation — band vs fluctuation (strong corr)",
        ),
    )
    assert bands == sorted(bands)
    benchmark(
        autotune_band_size, layout, ranks["strong"], precisions, A64FX
    )


def test_alg2_auto_band_near_optimal(correlation_profiles, write_artifact, benchmark):
    """Ablation: the auto-tuned band's estimated time-to-solution is
    within 20% of the best fixed band in a sweep."""
    profile = correlation_profiles["medium"]
    layout = TileLayout(NT * TILE, TILE)
    precisions = {k: Precision.FP64 for k in layout.lower_tiles()}
    rank_map = ranks_from_profile(profile, layout)
    auto_band = autotune_band_size(layout, rank_map, precisions, A64FX)

    times = {}
    for band in (1, 2, 3, 5, 8, 12):
        est = estimate_cholesky(
            profile, NT * TILE, TILE, A64FX, nodes=256, band_size=band
        )
        times[band] = est.time_s
    auto_time = estimate_cholesky(
        profile, NT * TILE, TILE, A64FX, nodes=256, band_size=auto_band
    ).time_s
    best = min(times.values())
    write_artifact(
        "alg2_band_ablation",
        format_table(
            ["band", "estimated_time_s"],
            [[b, t] for b, t in sorted(times.items())]
            + [[f"auto({auto_band})", auto_time]],
            title="Algorithm 2 ablation — fixed bands vs auto-tuned",
            float_fmt="{:.4g}",
        ),
    )
    assert auto_time <= best * 1.2
    benchmark(autotune_band_size, layout, rank_map, precisions, A64FX)
