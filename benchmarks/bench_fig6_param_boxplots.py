"""Fig. 6 — boxplots of Matérn parameter estimates on synthetic data.

The paper fits 100 replicates of 50K-location synthetic fields at
weak/medium/strong spatial correlation with the three compute variants
and shows that the adaptive variants recover the generating parameters
as well as dense FP64.  Scaled here to ``REPS`` replicates of ``N``
locations; the artifact prints the five-number summaries per
(correlation, variant, parameter) — the textual Fig. 6.
"""

import numpy as np
import pytest

from repro.core import fit_mle
from repro.data import CORRELATION_RANGES, simulate_matern_dataset
from repro.stats import boxplot_summary, format_table

REPS = 10          # paper: 100
N = 256            # paper: 50_000
TILE = 64
VARIANTS = ("dense-fp64", "mp-dense", "mp-dense-tlr")
PARAMS = ("variance", "range", "smoothness")


@pytest.fixture(scope="module")
def fig6_estimates():
    """estimates[corr][variant] -> (REPS, 3) array of theta hats."""
    out = {}
    for corr in CORRELATION_RANGES:
        out[corr] = {v: [] for v in VARIANTS}
        for rep in range(REPS):
            data = simulate_matern_dataset(N, corr, seed=5000 + rep)
            for variant in VARIANTS:
                res = fit_mle(
                    data.kernel, data.x, data.z,
                    tile_size=TILE, variant=variant,
                    theta0=data.theta_true, max_iter=40,
                )
                out[corr][variant].append(res.theta)
        for variant in VARIANTS:
            out[corr][variant] = np.array(out[corr][variant])
    return out


def test_fig6_artifact_and_recovery(fig6_estimates, write_artifact, benchmark):
    rows = []
    for corr, true_range in CORRELATION_RANGES.items():
        truth = {"variance": 1.0, "range": true_range, "smoothness": 0.5}
        for variant in VARIANTS:
            thetas = fig6_estimates[corr][variant]
            for p, pname in enumerate(PARAMS):
                s = boxplot_summary(thetas[:, p])
                rows.append([
                    corr, variant, pname, truth[pname],
                    s.q1, s.median, s.q3,
                ])
    table = format_table(
        ["correlation", "variant", "parameter", "truth", "q1", "median", "q3"],
        rows,
        title=(
            f"Fig. 6 — parameter recovery over {REPS} replicates of "
            f"{N}-location synthetic fields (paper: 100 x 50K)"
        ),
    )
    write_artifact("fig6_param_boxplots", table)

    # Shape claims: medians near truth; variants agree with dense FP64.
    for corr, true_range in CORRELATION_RANGES.items():
        truth = np.array([1.0, true_range, 0.5])
        dense_med = np.median(fig6_estimates[corr]["dense-fp64"], axis=0)
        # Variance and range medians within 50% of truth (n is small).
        assert abs(dense_med[0] - truth[0]) / truth[0] < 0.5
        assert abs(dense_med[1] - truth[1]) / truth[1] < 0.6
        for variant in VARIANTS[1:]:
            med = np.median(fig6_estimates[corr][variant], axis=0)
            np.testing.assert_allclose(med, dense_med, rtol=0.3, atol=0.05)

    # Payload: one likelihood evaluation (the unit of Fig. 6's cost).
    from repro.core import loglikelihood

    data = simulate_matern_dataset(N, "medium", seed=1)
    benchmark(
        lambda: loglikelihood(
            data.kernel, data.theta_true, data.x, data.z, tile_size=TILE
        ).value
    )


def test_fig6_iqr_covers_truth_for_range(fig6_estimates, write_artifact, benchmark):
    """The Fig. 6 visual check: the truth line falls inside (or near)
    the interquartile box for the range parameter in most cells."""
    hits = 0
    cells = 0
    for corr, true_range in CORRELATION_RANGES.items():
        for variant in VARIANTS:
            s = boxplot_summary(fig6_estimates[corr][variant][:, 1])
            cells += 1
            lo = s.q1 - 0.5 * (s.q3 - s.q1)
            hi = s.q3 + 0.5 * (s.q3 - s.q1)
            hits += int(lo <= true_range <= hi)
    assert hits >= cells - 2
    benchmark(boxplot_summary, fig6_estimates["weak"]["dense-fp64"][:, 0])
