"""Fig. 7 — mixed-precision dense Cholesky on 1024 nodes, tile 800.

The paper shows sustained throughput vs matrix size for the dense
Cholesky in FP64 vs mixed-precision GEMM variants on 1024 Fugaku nodes
(94% parallel efficiency vs a single node for FP64).  We regenerate the
series from the aggregate estimator (documented Fugaku substitution)
and cross-check the small-N end against the real-DAG discrete-event
simulator.
"""

import pytest

from repro.perfmodel import A64FX, PlanProfile, estimate_cholesky
from repro.stats import format_table

NODES = 1024
TILE = 800
SIZES = [250_000, 500_000, 1_000_000, 2_000_000]


@pytest.fixture(scope="module")
def fig7_series(correlation_profiles):
    dense = correlation_profiles["dense"]
    mp = correlation_profiles["mp-dense"]
    rows = []
    for n in SIZES:
        ed = estimate_cholesky(dense, n, TILE, A64FX, nodes=NODES)
        em = estimate_cholesky(mp, n, TILE, A64FX, nodes=NODES)
        rows.append((n, ed, em))
    return rows


def test_fig7_artifact_and_throughput(fig7_series, write_artifact, benchmark):
    table_rows = []
    for n, ed, em in fig7_series:
        table_rows.append([
            n, ed.time_s, ed.sustained_pflops, em.time_s,
            em.sustained_pflops, ed.time_s / em.time_s,
        ])
    table = format_table(
        ["matrix_n", "fp64_s", "fp64_pflops", "mp_s", "mp_pflops",
         "mp_speedup"],
        table_rows,
        title=(
            f"Fig. 7 — dense Cholesky on {NODES} A64FX nodes, tile {TILE} "
            "(aggregate model; FP64 vs adaptive mixed precision)"
        ),
        float_fmt="{:.4g}",
    )
    write_artifact("fig7_mp_cholesky_1024", table)

    # Shape claims: FP64 efficiency is high at the large end; the MP
    # variant is consistently faster; throughput grows with N.
    n, ed, em = fig7_series[-1]
    ideal = (n**3 / 3) / (NODES * 3.072e12 * 0.65)
    assert ed.time_s <= ideal / 0.75, "FP64 efficiency must be >= 75%"
    pf = [row[1].sustained_pflops for row in fig7_series]
    assert pf == sorted(pf)
    for _, ed, em in fig7_series:
        # MP never loses; the small-N end may be chain-bound where both
        # variants share the FP64 critical chain (ratio -> 1).
        assert 1.0 <= ed.time_s / em.time_s < 4.0
    _, ed_big, em_big = fig7_series[-1]
    assert ed_big.time_s / em_big.time_s > 1.2

    benchmark(
        estimate_cholesky,
        PlanProfile.dense_fp64(), 1_000_000, TILE, A64FX, NODES,
    )


def test_fig7_simulator_crosscheck(correlation_profiles, write_artifact, benchmark):
    """At a DAG-enumerable size, the aggregate estimator and the
    discrete-event simulator must agree within a factor ~2 (they share
    kernel models but differ in scheduling fidelity)."""
    from repro.runtime import SimConfig, cholesky_tasks, simulate_tasks
    from repro.tile import TileLayout
    from repro.tile.decisions import TilePlan
    from repro.tile.precision import Precision

    nt = 16
    layout = TileLayout(nt * TILE, TILE)
    plan = TilePlan(
        layout,
        {k: Precision.FP64 for k in layout.lower_tiles()},
        {k: False for k in layout.lower_tiles()},
    )
    tasks = list(cholesky_tasks(nt))
    trace = simulate_tasks(tasks, layout, plan, SimConfig(nodes=4))
    est = estimate_cholesky(
        PlanProfile.dense_fp64(), nt * TILE, TILE, A64FX, nodes=4
    )
    ratio = trace.makespan / est.time_s
    write_artifact(
        "fig7_simulator_crosscheck",
        "Fig. 7 companion — DAG simulator vs aggregate estimator at "
        f"N={nt * TILE}, 4 nodes: sim {trace.makespan:.3f}s, "
        f"estimate {est.time_s:.3f}s, ratio {ratio:.2f}",
    )
    assert 0.4 < ratio < 2.5
    benchmark(lambda: simulate_tasks(tasks, layout, plan, SimConfig(nodes=4)))
