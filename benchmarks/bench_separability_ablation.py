"""Separability ablation (paper Section VII-B).

"Some studies drop this value [the nonseparability parameter] to
reduce the complexity of the optimization process from six parameters
to five.  However, it may dramatically impact the prediction accuracy
as illustrated in [40]."

We reproduce that claim on the ET surrogate: fit the space-time model
with beta free (nonseparable) vs pinned to ~0 (separable) and compare
held-out MSPE and log-likelihood.
"""

import pytest

from repro import ExaGeoStatModel
from repro.data import et_surrogate
from repro.stats import format_table


@pytest.fixture(scope="module")
def strongly_interacting_results():
    """The effect the paper warns about needs a genuinely interacting
    field: generate with beta = 0.9 and compare the fits."""
    from repro.data import ET_THETA
    from repro.data.locations import space_time_locations
    from repro.data.split import train_test_split
    from repro.data.synthetic import sample_gaussian_field
    from repro.kernels import GneitingMaternKernel

    kern = GneitingMaternKernel()
    theta = ET_THETA.copy()
    theta[5] = 0.9  # strong space-time interaction
    x = space_time_locations(60, 10, seed=4321, region="central_asia")
    z = sample_gaussian_field(kern, theta, x, seed=4322, jitter=1e-8)
    x_tr, z_tr, x_te, z_te = train_test_split(x, z, n_test=80, seed=4323)
    out = {}
    for label, beta_fixed in (("nonseparable", None), ("separable", 1e-11)):
        model = ExaGeoStatModel(
            kernel="gneiting", variant="mp-dense-tlr", tile_size=60,
            nugget=1e-8,
        )
        theta0 = theta.copy()
        if beta_fixed is not None:
            theta0[5] = beta_fixed
        model.fit(x_tr, z_tr, theta0=theta0, max_iter=60)
        fitted = model.theta_.copy()
        if beta_fixed is not None:
            fitted[5] = beta_fixed
            model.set_params(fitted, x_tr, z_tr)
        out[label] = {
            "theta": fitted,
            "mspe": model.score(x_te, z_te),
        }
    return theta, out


def test_strong_interaction_separable_predicts_worse(
    strongly_interacting_results, write_artifact, benchmark
):
    theta_true, res = strongly_interacting_results
    write_artifact(
        "separability_strong_interaction",
        format_table(
            ["model", "beta", "MSPE"],
            [[label, r["theta"][5], r["mspe"]] for label, r in res.items()],
            title=(
                "Separability ablation, strong interaction (generating "
                "beta = 0.9): the paper's 'may dramatically impact the "
                "prediction accuracy'"
            ),
            float_fmt="{:.4g}",
        ),
    )
    assert res["nonseparable"]["theta"][5] > 0.3
    assert res["nonseparable"]["mspe"] < res["separable"]["mspe"]
    benchmark(lambda: res["nonseparable"]["mspe"])


@pytest.fixture(scope="module")
def separability_results():
    data = et_surrogate(n_space=60, n_slots=10, n_test=80, seed=1234)
    out = {}
    for label, beta_fixed in (("nonseparable", None), ("separable", 1e-11)):
        model = ExaGeoStatModel(
            kernel="gneiting", variant="mp-dense-tlr", tile_size=60,
            nugget=1e-8,
        )
        theta0 = data.theta_true.copy()
        if beta_fixed is not None:
            theta0[5] = beta_fixed
            # Pin beta by shrinking its bounds via a derived kernel
            # parameterization: simplest honest pin is a fit with beta
            # started at ~0 and a likelihood that cannot improve by
            # moving it (we refit with max_iter then force beta back).
        model.fit(data.x_train, data.z_train, theta0=theta0, max_iter=60)
        theta = model.theta_.copy()
        if beta_fixed is not None:
            theta[5] = beta_fixed
            model.set_params(theta, data.x_train, data.z_train)
        out[label] = {
            "theta": theta,
            "mspe": model.score(data.x_test, data.z_test),
            "loglik": model.loglik_,
        }
    return data, out


def test_separability_matters(separability_results, write_artifact, benchmark):
    data, res = separability_results
    table = format_table(
        ["model", "beta", "MSPE", "loglik(fit)"],
        [
            [label, r["theta"][5], r["mspe"],
             r["loglik"] if r["loglik"] is not None else float("nan")]
            for label, r in res.items()
        ],
        title=(
            "Separability ablation — nonseparable (beta free) vs "
            "separable (beta ~ 0) space-time model on the ET surrogate "
            "(generating beta = 0.186)"
        ),
        float_fmt="{:.4g}",
    )
    write_artifact("separability_ablation", table)

    # The nonseparable fit recovers a clearly positive interaction and
    # predicts at least as well as the separable restriction.
    assert res["nonseparable"]["theta"][5] > 0.02
    assert res["nonseparable"]["mspe"] <= res["separable"]["mspe"] * 1.02

    model = ExaGeoStatModel(kernel="gneiting", variant="mp-dense-tlr",
                            tile_size=60, nugget=1e-8)
    model.set_params(data.theta_true, data.x_train, data.z_train)
    benchmark(lambda: model.score(data.x_test, data.z_test))
