"""Process backend speedup + strong scaling: threads vs processes.

The PR-10 acceptance experiment, in two parts:

* ``fit`` — the same bounded ``fit_mle`` under ``backend="thread"``
  (the PR-7 DAG executor, parallel only as far as BLAS releases the
  GIL) and ``backend="process"`` (the shared-memory owner-computes
  pool, :mod:`repro.runtime.procpool`).  The optimizer traces must be
  bit-identical — the backends may only differ in wall clock;
* ``scaling`` — strong scaling of one factorization across 1/2/4/8
  worker processes on a fixed planned matrix, with each run's
  *measured* cross-owner traffic recorded next to the simulator's
  wire-format *prediction* (exact on the dense plan, drifting on the
  TLR plan exactly where execution's ranks leave the planned ones).

Writes ``benchmarks/out/BENCH_process_backend.json``.  ``BENCH_PROC_N``
scales the dataset (default 1800, tile 60).  The speedup gate is
honest about hardware: processes can only beat threads when there are
cores to spread over, so it arms at >= 4 physical cores and full size
(``cores`` is recorded in the artifact either way); CI's perf-smoke
replay at n=400 asserts no regression under the same condition.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import fit_mle
from repro.data import sample_gaussian_field
from repro.kernels import ExponentialKernel
from repro.ordering import order_points
from repro.runtime import ProcessPoolEngine, cholesky_tasks, model_comm_volume
from repro.tile import build_planned_covariance

N = int(os.environ.get("BENCH_PROC_N", "1800"))
TILE = 60 if N >= 900 else 40
VARIANT = "mp-dense-tlr"
WORKERS = 4
MAX_NFEV = 8
THETA = np.array([1.0, 0.1])
CORES = os.cpu_count() or 1
#: Processes only pay off with cores to spread over; below this the
#: artifact still records the measurement but the gate stays off.
GATE = CORES >= 4


def _dataset():
    gen = np.random.default_rng(0)
    x = gen.uniform(size=(N, 2))
    x = x[order_points(x, "morton")]
    kern = ExponentialKernel()
    z = sample_gaussian_field(kern, THETA, x, seed=5)
    return kern, x, z


def _timed_fit(kern, x, z, backend):
    t0 = time.perf_counter()
    result = fit_mle(
        kern, x, z, tile_size=TILE, variant=VARIANT,
        theta0=THETA, max_nfev=MAX_NFEV, max_iter=MAX_NFEV,
        cache=True, workers=WORKERS, backend=backend,
    )
    return time.perf_counter() - t0, result


def _comm_dict(stats):
    return {
        "remote_reads": stats.remote_reads,
        "remote_bytes": stats.remote_bytes,
        "local_reads": stats.local_reads,
    }


def test_process_backend_speedup_and_scaling(artifact_dir, benchmark):
    kern, x, z = _dataset()

    # -- fit: thread vs process, bit-identical traces -------------------
    t_thread, r_thread = min(
        (_timed_fit(kern, x, z, "thread") for _ in range(2)),
        key=lambda tr: tr[0],
    )
    t_process, r_process = min(
        (_timed_fit(kern, x, z, "process") for _ in range(2)),
        key=lambda tr: tr[0],
    )
    assert r_process.loglik == r_thread.loglik
    np.testing.assert_array_equal(r_process.theta, r_thread.theta)
    assert r_process.history == r_thread.history

    # -- strong scaling of one factorization ----------------------------
    from repro.analysis import plan_from_matrix

    theta_fac = np.array([1.0, 0.1, 0.5])
    from repro.kernels import MaternKernel

    mat, rep = build_planned_covariance(
        MaternKernel(), theta_fac, x, TILE, nugget=1e-8,
        use_mp=True, use_tlr=True, band_size=2,
    )
    dense_mat, _ = build_planned_covariance(
        MaternKernel(), theta_fac, x, TILE, nugget=1e-8,
    )
    tasks = list(cholesky_tasks(mat.nt))
    tlr_plan = plan_from_matrix(mat)
    dense_plan = plan_from_matrix(dense_mat)

    scaling = {}
    for workers in (1, 2, 4, 8):
        with ProcessPoolEngine(workers=workers) as engine:
            t0 = time.perf_counter()
            _, run = engine.execute(mat.copy(), tile_tol=rep.tile_tol)
            elapsed = time.perf_counter() - t0
            _, dense_run = engine.execute(dense_mat.copy())
            modeled_tlr = model_comm_volume(tlr_plan, engine.grid, tasks)
            modeled_dense = model_comm_volume(dense_plan, engine.grid, tasks)
        # The dense plan's wire model is exact — pin it here too, so
        # the committed artifact can never record a divergence.
        assert _comm_dict(dense_run.comm) == _comm_dict(modeled_dense)
        scaling[str(workers)] = {
            "seconds": round(elapsed, 4),
            "max_concurrency": run.max_concurrency,
            "blas_clamp": run.blas_clamp,
            "comm_measured": _comm_dict(run.comm),
            "comm_modeled": _comm_dict(modeled_tlr),
            "comm_dense_measured": _comm_dict(dense_run.comm),
            "comm_dense_modeled": _comm_dict(modeled_dense),
        }

    record = {
        "experiment": "process_backend",
        "n": N,
        "tile_size": TILE,
        "variant": VARIANT,
        "kernel": "exponential",
        "nfev": MAX_NFEV,
        "workers": WORKERS,
        "cores": CORES,
        "gate_armed": bool(GATE and N >= 1800),
        "seconds": {
            "thread": round(t_thread, 4),
            "process": round(t_process, 4),
        },
        "speedup": round(t_thread / t_process, 3),
        "loglik": {
            "thread": r_thread.loglik,
            "process": r_process.loglik,
        },
        "strong_scaling": scaling,
    }
    path = artifact_dir / "BENCH_process_backend.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n[artifact] {path}\n{json.dumps(record, indent=2)}")

    # Acceptance: with real cores to spread over, the process backend
    # must beat threads at full size and at minimum not regress on the
    # CI smoke replay.  On narrower boxes the numbers are recorded but
    # a speedup is physically impossible, so the gate stays off.
    if GATE and N >= 1800:
        assert record["speedup"] >= 1.1
    elif GATE:
        assert record["speedup"] >= 1.0

    # Steady-state single-factorization timing on a persistent pool.
    with ProcessPoolEngine(workers=min(WORKERS, CORES)) as engine:
        engine.execute(mat.copy(), tile_tol=rep.tile_tol)  # warm-up
        benchmark(
            lambda: engine.execute(mat.copy(), tile_tol=rep.tile_tol)
        )
