"""MLE hot-path engine speedup: cold vs cached vs cached+parallel.

Times three configurations of the same bounded ``fit_mle`` on one
dataset (the PR-3 acceptance experiment):

* ``cold``            — the seed path: no geometry cache, sequential,
                        default low-rank arithmetic;
* ``cached``          — geometry cache + warm rank hints only
                        (bit-identical results);
* ``cached_parallel`` — cache + ``fast_lr`` + a 4-thread pool
                        (results identical to rounding).

Writes the machine-readable ``benchmarks/out/BENCH_mle_hotpath.json``.
``BENCH_MLE_HOTPATH_N`` scales the dataset (default 1800, tile 60 —
the paper-style single-node problem); the committed artifact records
the full-size run, CI's perf-smoke job replays a small one.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core import EvaluationEngine, fit_mle
from repro.data import sample_gaussian_field
from repro.kernels import ExponentialKernel
from repro.ordering import order_points

N = int(os.environ.get("BENCH_MLE_HOTPATH_N", "1800"))
TILE = 60 if N >= 900 else 40
VARIANT = "mp-dense-tlr"
WORKERS = 4
MAX_NFEV = 12
THETA = np.array([1.0, 0.1])


def _dataset():
    gen = np.random.default_rng(0)
    x = gen.uniform(size=(N, 2))
    x = x[order_points(x, "morton")]
    kern = ExponentialKernel()
    z = sample_gaussian_field(kern, THETA, x, seed=5)
    return kern, x, z


def _timed_fit(kern, x, z, **engine_kwargs):
    t0 = time.perf_counter()
    result = fit_mle(
        kern, x, z, tile_size=TILE, variant=VARIANT,
        theta0=THETA, max_nfev=MAX_NFEV, max_iter=MAX_NFEV,
        **engine_kwargs,
    )
    return time.perf_counter() - t0, result


def test_mle_hotpath_speedup(artifact_dir, benchmark):
    kern, x, z = _dataset()
    t_cold, r_cold = _timed_fit(kern, x, z, cache=False)
    t_cache, r_cache = _timed_fit(kern, x, z, cache=True)
    t_par, r_par = _timed_fit(
        kern, x, z, cache=True, fast_lr=True, workers=WORKERS
    )

    record = {
        "experiment": "mle_hotpath",
        "n": N,
        "tile_size": TILE,
        "variant": VARIANT,
        "kernel": "exponential",
        "nfev": MAX_NFEV,
        "workers": WORKERS,
        "seconds": {
            "cold": round(t_cold, 4),
            "cached": round(t_cache, 4),
            "cached_parallel": round(t_par, 4),
        },
        "speedup": {
            "cached": round(t_cold / t_cache, 3),
            "cached_parallel": round(t_cold / t_par, 3),
        },
        "loglik": {
            "cold": r_cold.loglik,
            "cached": r_cache.loglik,
            "cached_parallel": r_par.loglik,
        },
    }
    path = artifact_dir / "BENCH_mle_hotpath.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n[artifact] {path}\n{json.dumps(record, indent=2)}")

    # The cache must be invisible in the optimizer trace.
    assert r_cache.loglik == r_cold.loglik
    np.testing.assert_array_equal(r_cache.theta, r_cold.theta)
    # The fast path must agree to rounding.
    np.testing.assert_allclose(r_par.loglik, r_cold.loglik, rtol=1e-6)
    np.testing.assert_allclose(r_par.theta, r_cold.theta, rtol=1e-4)
    # Acceptance: >= 2x at the full benchmark size (small CI replays
    # only assert the fast path is not a regression).
    if N >= 1800:
        assert record["speedup"]["cached_parallel"] >= 2.0
    else:
        assert record["speedup"]["cached_parallel"] > 0.7

    # Steady-state per-evaluation timing of the warm engine.
    eng = EvaluationEngine(
        kern, x, z, tile_size=TILE, variant=VARIANT,
        fast_lr=True, workers=WORKERS,
    )
    eng.evaluate(THETA)
    benchmark(eng.evaluate, THETA)
