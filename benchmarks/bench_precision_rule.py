"""Precision-rule validation bench (paper Section VI-C).

Validates, over a sweep of correlation regimes, the error bound the
paper states for the Frobenius-norm adaptive precision rule:
``||A_hat - A||_F <= u_high ||A||_F``, and times the rule itself
(it runs once per likelihood evaluation at generation time).
"""

import numpy as np
import pytest

from repro.kernels import MaternKernel
from repro.ordering import order_points
from repro.stats import format_table
from repro.tile import (
    build_planned_covariance,
    frobenius_precision_map,
)

N, TILE = 1200, 60
U_HIGH = 1e-8


@pytest.fixture(scope="module")
def demotion_sweep():
    gen = np.random.default_rng(55)
    x = gen.uniform(size=(N, 2))
    x = x[order_points(x, "morton")]
    kern = MaternKernel()
    rows = []
    for corr in (0.01, 0.03, 0.1, 0.3):
        theta = np.array([1.0, corr, 0.5])
        mat, rep = build_planned_covariance(
            kern, theta, x, TILE, nugget=1e-8, use_mp=True,
            mp_accuracy=U_HIGH,
        )
        sigma = kern.covariance_matrix(theta, x, nugget=1e-8)
        err = np.linalg.norm(mat.to_dense() - sigma)
        counts = mat.structure_counts()
        total = sum(counts.values())
        rows.append({
            "corr": corr,
            "err_ratio": err / rep.global_norm,
            "fp64": counts.get("dense/FP64", 0) / total,
            "fp32": counts.get("dense/FP32", 0) / total,
            "fp16": counts.get("dense/FP16", 0) / total,
            "norms": rep.tile_norms,
            "global": rep.global_norm,
        })
    return rows


def test_precision_rule_error_bound(demotion_sweep, write_artifact, benchmark):
    table = format_table(
        ["range", "||A_hat-A||/||A||", "bound", "frac_fp64", "frac_fp32",
         "frac_fp16"],
        [
            [r["corr"], r["err_ratio"], U_HIGH, r["fp64"], r["fp32"], r["fp16"]]
            for r in demotion_sweep
        ],
        title=(
            "Precision rule — storage error vs the u_high bound and "
            "class fractions across correlation regimes"
        ),
        float_fmt="{:.3g}",
    )
    write_artifact("precision_rule_bound", table)

    for r in demotion_sweep:
        assert r["err_ratio"] <= U_HIGH * 1.01
    # Weaker correlation -> more demotion.
    fp64_fracs = [r["fp64"] for r in demotion_sweep]
    assert fp64_fracs == sorted(fp64_fracs)
    # At least one regime demotes most tiles.
    assert fp64_fracs[0] < 0.5

    sample = demotion_sweep[0]
    benchmark(
        frobenius_precision_map,
        sample["norms"], sample["global"], N // TILE,
    )


def test_precision_rule_tightening_accuracy(write_artifact, benchmark):
    """Ablation: shrinking u_high monotonically reduces the storage
    error and the number of demoted tiles."""
    gen = np.random.default_rng(56)
    x = gen.uniform(size=(600, 2))
    x = x[order_points(x, "morton")]
    kern = MaternKernel()
    theta = np.array([1.0, 0.03, 0.5])
    sigma = kern.covariance_matrix(theta, x, nugget=1e-8)
    rows = []
    for acc in (1e-4, 1e-6, 1e-8, 1e-10):
        mat, rep = build_planned_covariance(
            kern, theta, x, 50, nugget=1e-8, use_mp=True, mp_accuracy=acc
        )
        err = np.linalg.norm(mat.to_dense() - sigma) / rep.global_norm
        counts = mat.structure_counts()
        demoted = sum(v for k, v in counts.items() if k != "dense/FP64")
        rows.append([acc, err, demoted])
    write_artifact(
        "precision_rule_tightening",
        format_table(
            ["u_high", "rel_storage_error", "demoted_tiles"],
            rows,
            title="Precision rule ablation — accuracy knob",
            float_fmt="{:.3g}",
        ),
    )
    errs = [r[1] for r in rows]
    demoted = [r[2] for r in rows]
    assert errs == sorted(errs, reverse=True)
    assert demoted == sorted(demoted, reverse=True)
    assert all(err <= acc * 1.01 for acc, err, _ in rows)

    benchmark(
        lambda: build_planned_covariance(
            kern, theta, x, 50, nugget=1e-8, use_mp=True
        )[0].nbytes
    )
