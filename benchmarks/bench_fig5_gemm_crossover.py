"""Fig. 5 — dense vs TLR FP64 GEMM on one A64FX core vs rank.

Regenerates the time-vs-rank and dense/TLR-ratio series of the paper's
Fig. 5 from the calibrated kernel model, asserts the crossover lands
near the paper's rank ~200 (tile 2700), and live-times this host's
actual dense GEMM as the pytest-benchmark payload.
"""

import numpy as np
import pytest

from repro.perfmodel import (
    A64FX,
    crossover_rank,
    gemm_ratio_curve,
    gemm_time_dense,
)
from repro.stats import format_table

TILE = 2700
RANKS = np.arange(25, 625, 25)


@pytest.fixture(scope="module")
def fig5_series():
    tlr, dense, ratio = gemm_ratio_curve(TILE, RANKS, A64FX)
    return tlr, dense, ratio


def test_fig5_artifact_and_crossover(fig5_series, write_artifact, benchmark):
    tlr, dense, ratio = fig5_series
    xover = crossover_rank(TILE, A64FX)

    rows = [
        [int(r), t, d, rr]
        for r, t, d, rr in zip(RANKS, tlr, dense, ratio)
    ]
    table = format_table(
        ["rank", "tlr_gemm_s", "dense_gemm_s", "dense/tlr"],
        rows,
        title=(
            f"Fig. 5 — single-core A64FX GEMM, tile {TILE} "
            f"(model; crossover rank = {xover}, paper reports ~200)"
        ),
        float_fmt="{:.4g}",
    )
    write_artifact("fig5_gemm_crossover", table)

    # Shape assertions (the paper's claims).
    assert 120 <= xover <= 320, "crossover must land near the paper's ~200"
    assert ratio[0] > 5.0, "low ranks must show a large TLR advantage"
    assert ratio[-1] < 1.0, "high ranks must favor dense"
    assert np.all(np.diff(tlr) >= 0), "TLR time grows with rank"

    # Live payload: one dense GEMM at a laptop-scale tile.
    gen = np.random.default_rng(0)
    a = gen.standard_normal((256, 256))
    b = gen.standard_normal((256, 256))
    benchmark(lambda: a @ b.T)


def test_fig5_crossover_scales_with_tile(write_artifact, benchmark):
    """Companion sweep: the crossover rank grows with tile size, so
    production tile choices (800-2700) sit in the regime where measured
    covariance ranks (tens) stay far below it."""
    tiles = [400, 800, 1350, 2700]
    xovers = [crossover_rank(b, A64FX) for b in tiles]
    table = format_table(
        ["tile", "crossover_rank", "dense_gemm_s"],
        [[b, x, gemm_time_dense(b, A64FX)] for b, x in zip(tiles, xovers)],
        title="Fig. 5 companion — crossover rank vs tile size (model)",
        float_fmt="{:.4g}",
    )
    write_artifact("fig5_crossover_vs_tile", table)
    assert xovers == sorted(xovers)
    benchmark(crossover_rank, 2700, A64FX)
