"""Energy and memory-feasibility extension benches.

The paper motivates mixed precision partly through "fast and
energy-efficient low precision floating-point units" (Section V-A) and
stresses that dense memory footprints gate problem size (Sections III,
VII-E).  These benches quantify both with the extension models:
Cholesky energy per variant at scale, and the largest feasible matrix
per variant on a Fugaku-node-memory budget.
"""

from repro.perfmodel import (
    estimate_energy,
    max_feasible_n,
    storage_per_node,
)
from repro.stats import format_table

N, TILE = 2_000_000, 1350


def test_energy_per_variant(correlation_profiles, write_artifact, benchmark):
    rows = []
    energies = {}
    for label, profile, band in (
        ("dense-fp64", correlation_profiles["dense"], 1),
        ("mp-dense", correlation_profiles["mp-dense"], 1),
        ("mp-dense-tlr (weak)", correlation_profiles["weak"], 2),
        ("mp-dense-tlr (strong)", correlation_profiles["strong"], 2),
    ):
        e = estimate_energy(profile, N, TILE, band_size=band)
        energies[label] = e
        rows.append([label, e / 1e6, energies["dense-fp64"] / e])
    table = format_table(
        ["variant", "energy_MJ", "savings_vs_dense"],
        rows,
        title=(
            f"Energy extension — one Cholesky at N={N:,}, tile {TILE} "
            "(A64FX energy model)"
        ),
        float_fmt="{:.4g}",
    )
    write_artifact("energy_per_variant", table)

    assert energies["mp-dense"] < energies["dense-fp64"]
    assert energies["mp-dense-tlr (weak)"] < energies["mp-dense"]
    # TLR's flop removal dominates: at least 3x total savings.
    assert energies["dense-fp64"] / energies["mp-dense-tlr (weak)"] > 3.0

    benchmark(estimate_energy, correlation_profiles["weak"], N, TILE)


def test_feasibility_frontier(correlation_profiles, write_artifact, benchmark):
    """Largest solvable matrix per node count and variant with 32 GB
    nodes — the quantitative version of 'dense can only handle the
    smaller matrix sizes'."""
    rows = []
    for nodes in (1024, 2048, 8192):
        n_dense = max_feasible_n(correlation_profiles["dense"], nodes, 2700)
        n_tlr = max_feasible_n(
            correlation_profiles["weak"], nodes, 2700, band_size=3
        )
        rows.append([nodes, n_dense, n_tlr, n_tlr / max(n_dense, 1)])
    table = format_table(
        ["nodes", "max_n_dense_fp64", "max_n_mp_tlr", "ratio"],
        rows,
        title=(
            "Feasibility extension — largest matrix fitting 80% of "
            "32 GB/node (paper: 9M dense infeasible on small partitions)"
        ),
        float_fmt="{:.3g}",
    )
    write_artifact("feasibility_frontier", table)

    for _, n_dense, n_tlr, ratio in rows:
        assert n_tlr > 2 * n_dense
    # 9M dense truly does not fit 2048 nodes (the Fig. 10 point).
    assert rows[1][1] < 9_000_000

    benchmark(
        storage_per_node, correlation_profiles["weak"], N, 2700, 1024
    )
