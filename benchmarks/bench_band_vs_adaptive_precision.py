"""Ablation: adaptive Frobenius precision rule (Fig. 2(d)) vs the
brute-force band rule of the earlier work [11, 12] (Fig. 2(c)).

The paper's motivation for the tile-centric rule: a band "may engender
more operations than required in case actual low precision tiles reside
in a band region with high precision" — i.e. for the same accuracy the
band must be conservative, leaving performance on the table.  We
compare, on the same matrix: storage error, bytes, and the projected
time-to-solution, with the band width swept to find its best
accuracy-matched setting.
"""

import numpy as np
import pytest

from repro.kernels import MaternKernel
from repro.ordering import order_points
from repro.perfmodel import A64FX, PlanProfile, estimate_cholesky
from repro.stats import format_table
from repro.tile import build_planned_covariance

N, TILE = 1200, 60
ACCURACY = 1e-8


@pytest.fixture(scope="module")
def rule_comparison():
    gen = np.random.default_rng(91)
    x = gen.uniform(size=(N, 2))
    x = x[order_points(x, "morton")]
    kern = MaternKernel()
    theta = np.array([1.0, 0.03, 0.5])
    sigma = kern.covariance_matrix(theta, x, nugget=1e-8)
    norm = np.linalg.norm(sigma)

    results = {}

    def run(label, **kwargs):
        matrix, rep = build_planned_covariance(
            kern, theta, x, TILE, nugget=1e-8, use_mp=True, **kwargs
        )
        err = np.linalg.norm(matrix.to_dense() - sigma) / norm
        profile = PlanProfile.from_plan(rep.plan, label=label)
        est = estimate_cholesky(
            profile, 2_000_000, 800, A64FX, nodes=1024
        )
        results[label] = dict(err=err, nbytes=matrix.nbytes, time=est.time_s)

    run("adaptive", mp_mode="adaptive", mp_accuracy=ACCURACY)
    nt = -(-N // TILE)
    for fp64_band in range(1, nt):
        label = f"band{fp64_band}"
        run(label, mp_mode="band", mp_fp64_band=fp64_band,
            mp_fp32_band=min(2 * fp64_band, nt))
    return results


def test_band_vs_adaptive(rule_comparison, write_artifact, benchmark):
    adaptive = rule_comparison["adaptive"]
    # The smallest band meeting the adaptive rule's accuracy.
    bands = sorted(
        (k for k in rule_comparison if k.startswith("band")),
        key=lambda k: int(k[4:]),
    )
    matched = None
    for k in bands:
        if rule_comparison[k]["err"] <= ACCURACY:
            matched = k
            break
    rows = [
        [k, rule_comparison[k]["err"], rule_comparison[k]["nbytes"] / 1e6,
         rule_comparison[k]["time"]]
        for k in ["adaptive"] + bands
    ]
    table = format_table(
        ["rule", "rel_storage_err", "matrix_MB", "projected_2M@1024n_s"],
        rows,
        title=(
            "Precision-rule ablation — adaptive Frobenius rule vs "
            f"band rule (accuracy target {ACCURACY:g}); accuracy-matched "
            f"band = {matched}"
        ),
        float_fmt="{:.4g}",
    )
    write_artifact("band_vs_adaptive_precision", table)

    # The adaptive rule meets the accuracy target.
    assert adaptive["err"] <= ACCURACY
    # And is at least as compact/fast as the accuracy-matched band rule.
    assert matched is not None, "some band must reach the target accuracy"
    assert adaptive["nbytes"] <= rule_comparison[matched]["nbytes"] * 1.05
    assert adaptive["time"] <= rule_comparison[matched]["time"] * 1.05
    # Narrow bands are fast but violate the accuracy target — the
    # "sacrifice performance for code simplicity" trade-off.
    assert rule_comparison[bands[0]]["err"] > ACCURACY

    gen = np.random.default_rng(0)
    x = gen.uniform(size=(600, 2))
    x = x[order_points(x, "morton")]
    kern = MaternKernel()
    theta = np.array([1.0, 0.03, 0.5])
    benchmark(
        lambda: build_planned_covariance(
            kern, theta, x, 60, nugget=1e-8, use_mp=True
        )[0].nbytes
    )
