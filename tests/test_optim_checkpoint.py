"""Optimizer checkpoint/resume and MLE driver budget guards."""

import os

import numpy as np
import pytest

from repro.core import fit_mle
from repro.exceptions import ConfigurationError, ParameterError
from repro.kernels import MaternKernel
from repro.optim import (
    load_checkpoint,
    nelder_mead,
    particle_swarm,
    save_checkpoint,
)


def rosenbrock(x):
    return float(100.0 * (x[1] - x[0] ** 2) ** 2 + (1.0 - x[0]) ** 2)


def rosenbrock_batch(pos):
    return [rosenbrock(p) for p in pos]


class TestCheckpointFile:
    def test_missing_file_returns_none(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "nope.json"), kind="pso") is None

    def test_kind_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ck.json")
        save_checkpoint(path, kind="nelder-mead", state={"it": 1})
        with pytest.raises(ConfigurationError):
            load_checkpoint(path, kind="pso")

    def test_foreign_file_rejected(self, tmp_path):
        path = str(tmp_path / "junk.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"hello": "world"}')
        with pytest.raises(ConfigurationError):
            load_checkpoint(path, kind="pso")

    def test_corrupt_file_rejected(self, tmp_path):
        path = str(tmp_path / "corrupt.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        with pytest.raises(ConfigurationError):
            load_checkpoint(path, kind="pso")

    def test_arrays_round_trip(self, tmp_path):
        path = str(tmp_path / "ck.json")
        state = {"a": np.arange(6.0).reshape(2, 3), "n": np.int64(3)}
        save_checkpoint(path, kind="x", state=state)
        loaded = load_checkpoint(path, kind="x")
        np.testing.assert_array_equal(np.asarray(loaded["a"]), state["a"])
        assert loaded["n"] == 3


class TestNelderMeadResume:
    def test_round_trip_equality(self, tmp_path):
        """Interrupt at 40 iterations, resume, and land bit-identically
        where the uninterrupted run lands."""
        x0 = np.array([-1.0, 2.0])
        path = str(tmp_path / "nm.json")
        full = nelder_mead(rosenbrock, x0, max_iter=120)
        nelder_mead(
            rosenbrock, x0, max_iter=40,
            checkpoint_path=path, checkpoint_every=5,
        )
        assert os.path.exists(path)
        resumed = nelder_mead(
            rosenbrock, x0, max_iter=120,
            checkpoint_path=path, checkpoint_every=5,
        )
        assert np.array_equal(full.x, resumed.x)
        assert full.fun == resumed.fun
        assert full.nit == resumed.nit
        assert full.history == resumed.history

    def test_checkpointing_does_not_change_result(self, tmp_path):
        x0 = np.array([0.5, -0.5])
        plain = nelder_mead(rosenbrock, x0, max_iter=60)
        ck = nelder_mead(
            rosenbrock, x0, max_iter=60,
            checkpoint_path=str(tmp_path / "nm.json"), checkpoint_every=7,
        )
        assert np.array_equal(plain.x, ck.x)
        assert plain.fun == ck.fun and plain.nfev == ck.nfev


class TestPSOResume:
    def test_round_trip_equality(self, tmp_path):
        """The swarm *and* its bit-generator state must survive the
        round trip: positions, velocities, bests, and every subsequent
        random draw."""
        bounds = [(-3.0, 3.0), (-3.0, 3.0)]
        path = str(tmp_path / "pso.json")
        kwargs = dict(n_particles=12, seed=4, patience=100)
        full = particle_swarm(rosenbrock_batch, bounds, max_iter=60, **kwargs)
        particle_swarm(
            rosenbrock_batch, bounds, max_iter=25,
            checkpoint_path=path, checkpoint_every=4, **kwargs,
        )
        resumed = particle_swarm(
            rosenbrock_batch, bounds, max_iter=60,
            checkpoint_path=path, checkpoint_every=4, **kwargs,
        )
        assert np.array_equal(full.x, resumed.x)
        assert full.fun == resumed.fun
        assert full.nfev == resumed.nfev
        assert full.history == resumed.history


@pytest.fixture(scope="module")
def small_field():
    gen = np.random.default_rng(11)
    x = gen.uniform(size=(120, 2))
    kernel = MaternKernel()
    theta = np.array([1.0, 0.12, 0.5])
    sigma = kernel.covariance_matrix(theta, x, nugget=1e-6)
    z = np.linalg.cholesky(sigma) @ gen.standard_normal(120)
    return kernel, theta, x, z


class TestFitBudget:
    def test_max_nfev_stops_with_best_seen(self, small_field):
        kernel, theta, x, z = small_field
        result = fit_mle(kernel, x, z, tile_size=40, theta0=theta, max_nfev=12)
        assert result.stopped_on == "max_nfev"
        assert result.nfev == 12
        assert not result.converged
        assert np.isfinite(result.loglik)

    def test_zero_time_budget_raises(self, small_field):
        kernel, theta, x, z = small_field
        with pytest.raises(ParameterError):
            fit_mle(kernel, x, z, tile_size=40, theta0=theta, time_budget_s=0.0)

    def test_checkpoint_passthrough_resumes(self, small_field, tmp_path):
        kernel, theta, x, z = small_field
        path = str(tmp_path / "mle.json")
        first = fit_mle(
            kernel, x, z, tile_size=40, theta0=theta,
            max_iter=15, checkpoint_path=path, checkpoint_every=5,
        )
        assert os.path.exists(path)
        resumed = fit_mle(
            kernel, x, z, tile_size=40, theta0=theta,
            max_iter=40, checkpoint_path=path, checkpoint_every=5,
        )
        assert resumed.nit > first.nit
