"""Tests for task objects and the PTG-style generators."""

import pytest

from repro.runtime import (
    Task,
    cholesky_task_count,
    cholesky_tasks,
    forward_solve_tasks,
)


class TestTask:
    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Task(0, "axpy", 0, output=(0, 0))

    def test_tiles_output_first(self):
        t = Task(1, "gemm", 0, output=(2, 1), inputs=((2, 0), (1, 0)))
        assert t.tiles == ((2, 1), (2, 0), (1, 0))

    def test_frozen(self):
        t = Task(0, "potrf", 0, output=(0, 0))
        with pytest.raises(AttributeError):
            t.op = "trsm"


class TestCholeskyTasks:
    def test_count_matches_closed_form(self):
        for nt in (1, 2, 3, 5, 8):
            tasks = list(cholesky_tasks(nt))
            assert len(tasks) == cholesky_task_count(nt)

    def test_uids_sequential(self):
        tasks = list(cholesky_tasks(5))
        assert [t.uid for t in tasks] == list(range(len(tasks)))

    def test_nt1_single_potrf(self):
        tasks = list(cholesky_tasks(1))
        assert len(tasks) == 1
        assert tasks[0].op == "potrf"

    def test_nt3_structure(self):
        ops = [t.op for t in cholesky_tasks(3)]
        assert ops == [
            "potrf", "trsm", "trsm", "syrk", "syrk", "gemm",
            "potrf", "trsm", "syrk",
            "potrf",
        ]

    def test_outputs_in_lower_triangle(self):
        for t in cholesky_tasks(6):
            i, j = t.output
            assert 0 <= j <= i < 6

    def test_gemm_inputs_are_panel_tiles(self):
        for t in cholesky_tasks(6):
            if t.op == "gemm":
                (m, k1), (n, k2) = t.inputs
                assert k1 == k2 == t.k
                assert t.output == (m, n)
                assert k1 < n < m

    def test_each_tile_written(self):
        """Every lower tile is written at least once (as output)."""
        nt = 5
        written = {t.output for t in cholesky_tasks(nt)}
        expected = {(i, j) for i in range(nt) for j in range(i + 1)}
        assert written == expected


class TestForwardSolveTasks:
    def test_counts(self):
        tasks = list(forward_solve_tasks(4))
        # i GEMMs per row i, one TRSM per row.
        assert len(tasks) == 6 + 4

    def test_rhs_column_convention(self):
        for t in forward_solve_tasks(4):
            assert t.output[1] == -1

    def test_base_uid_offset(self):
        tasks = list(forward_solve_tasks(3, base_uid=100))
        assert tasks[0].uid == 100
