"""Tests for the programmatic experiment drivers (tiny sizes)."""

import numpy as np
import pytest

from repro.experiments import (
    measure_profile,
    measure_spacetime_profile,
    run_fig6,
    run_space_scaling,
    run_spacetime_scaling,
    run_table1,
    run_table2,
)


class TestAccuracyDrivers:
    @pytest.fixture(scope="class")
    def table1(self):
        return run_table1(n_train=220, n_test=30, tile_size=44, max_iter=30)

    def test_table1_variants_agree(self, table1):
        assert len(table1.rows) == 3
        assert table1.max_theta_spread() < 0.25

    def test_table1_table_renders(self, table1):
        text = table1.table()
        assert "dense-fp64" in text and "Smoothness" in text

    def test_table1_mspe_fields(self, table1):
        for row in table1.rows:
            assert np.isfinite(row.mspe) and row.mspe > 0

    def test_table2_runs_small(self):
        study = run_table2(n_space=30, n_slots=5, n_test=30, tile_size=30,
                           max_iter=15)
        assert len(study.rows) == 3
        assert study.max_theta_spread() < 0.5
        assert "Nonsep-param" in study.table()

    def test_fig6_structure(self):
        study = run_fig6(reps=2, n=100, tile_size=25, max_iter=10,
                         correlations=("medium",),
                         variants=("dense-fp64",))
        rows = study.summary_rows()
        assert len(rows) == 3  # one correlation x one variant x 3 params
        assert "Fig. 6" in study.table()


class TestScalingDrivers:
    @pytest.fixture(scope="class")
    def profile(self):
        return measure_profile(0.03, n=600, tile_size=50, label="weak")

    def test_profile_label(self, profile):
        assert profile.label == "weak"

    def test_space_scaling_speedups(self, profile):
        study = run_space_scaling(
            profile, matrix_n=2_000_000, node_counts=(1024, 4096),
        )
        assert study.speedup(1024) > 2.0
        assert "speedup" in study.table()

    def test_spacetime_scaling_shape(self):
        from repro.data import ET_THETA

        profile = measure_spacetime_profile(
            ET_THETA, n_space=120, n_slots=6, tile_size=48
        )
        study = run_spacetime_scaling(
            profile, matrix_n=4_000_000, node_counts=(2048, 16384),
        )
        # Strong-scaling limit: relative TLR advantage shrinks with
        # node count (Fig. 11).
        assert study.speedup(16384) <= study.speedup(2048) * 1.05

    def test_dense_estimates_scale(self, profile):
        study = run_space_scaling(
            profile, matrix_n=2_000_000, node_counts=(1024, 4096),
        )
        assert study.dense[4096].time_s < study.dense[1024].time_s
