"""MLE hot-path engine: geometry cache, warm hints, parallel execution.

Covers the equivalence contracts of the evaluation engine:

* ``from_geometry`` reproduces direct kernel evaluation per kernel
  (bit-identical except the anisotropic Matérn, whose quadratic form
  rounds differently; that one matches to ``allclose``);
* geometry caching is invisible to results across an optimizer trace,
  and stale reuse is structurally impossible (content-hashed keys,
  explicit-geometry validation);
* parallel factorization matches sequential per variant (bit-identical
  for dense FP64, value-identical for the mixed-precision variants);
* ``fast_lr`` matches the default low-rank arithmetic to rounding;
* replicated likelihoods route through the recovery ladder.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EvaluationEngine,
    fit_mle,
    loglikelihood,
    loglikelihood_replicated,
)
from repro.core.variants import get_variant
from repro.exceptions import ConfigurationError
from repro.kernels import (
    AnisotropicMaternKernel,
    BivariateMaternKernel,
    ExponentialKernel,
    GaussianKernel,
    GneitingMaternKernel,
    MaternKernel,
    NuggetKernel,
    stack_bivariate,
)
from repro.ordering import order_points
from repro.tile import (
    GeometryCache,
    build_planned_covariance,
    build_tile_geometry,
)

N = 240
TILE = 40


def _locations(n=N, d=2, seed=99):
    gen = np.random.default_rng(seed)
    x = gen.uniform(size=(n, d))
    return x[order_points(x[:, :2], "morton")]


def _observations(kernel, theta, x, seed=7):
    sigma = kernel.covariance_matrix(theta, x, nugget=1e-8)
    gen = np.random.default_rng(seed)
    return np.linalg.cholesky(sigma) @ gen.standard_normal(len(x))


@pytest.fixture(scope="module")
def xz():
    kern = MaternKernel()
    theta = np.array([1.0, 0.1, 0.5])
    x = _locations()
    z = _observations(kern, theta, x)
    return kern, theta, x, z


# ----------------------------------------------------------------------
# from_geometry equivalence per kernel
# ----------------------------------------------------------------------

def _kernel_cases():
    x2 = _locations(60, 2)
    x3 = _locations(60, 3)  # last column doubles as time
    xb = stack_bivariate(_locations(30, 2))
    return [
        ("matern", MaternKernel(), None, x2, True),
        ("exponential", ExponentialKernel(), None, x2, True),
        ("gaussian", GaussianKernel(), None, x2, True),
        ("gneiting", GneitingMaternKernel(), None, x3, True),
        ("anisotropic", AnisotropicMaternKernel(), None, x2, False),
        ("bivariate", BivariateMaternKernel(), None, xb, True),
        ("nugget", NuggetKernel(MaternKernel()), None, x2, True),
    ]


@pytest.mark.parametrize(
    "name,kernel,theta,x,exact",
    _kernel_cases(),
    ids=[c[0] for c in _kernel_cases()],
)
def test_from_geometry_matches_direct(name, kernel, theta, x, exact):
    theta = kernel.default_theta() if theta is None else theta
    half = len(x) // 2
    xa, xb = x[:half], x[half:]
    # Same-set (diagonal tile) form.
    same = kernel(theta, xa)
    via_same = kernel.from_geometry(theta, kernel.prepare_geometry(xa))
    # Cross-set (off-diagonal tile) form.
    cross = kernel(theta, xa, xb)
    via_cross = kernel.from_geometry(theta, kernel.prepare_geometry(xa, xb))
    if exact:
        np.testing.assert_array_equal(via_same, same)
        np.testing.assert_array_equal(via_cross, cross)
    else:
        np.testing.assert_allclose(via_same, same, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(via_cross, cross, rtol=1e-12, atol=1e-14)


def test_cached_assembly_bit_identical(xz):
    kern, theta, x, _ = xz
    cache = GeometryCache()
    direct, _ = build_planned_covariance(kern, theta, x, TILE, nugget=1e-8)
    cached, _ = build_planned_covariance(
        kern, theta, x, TILE, nugget=1e-8, cache=cache
    )
    assert cache.misses == 1
    for key, tile in direct.items():
        np.testing.assert_array_equal(
            cached.get(*key).to_dense64(), tile.to_dense64()
        )
    # Second build hits.
    build_planned_covariance(kern, theta, x, TILE, nugget=1e-8, cache=cache)
    assert cache.hits == 1


# ----------------------------------------------------------------------
# Cache correctness: invariance along a fit, impossible staleness
# ----------------------------------------------------------------------

def test_fit_trace_invariant_under_cache(xz):
    kern, theta, x, z = xz
    kwargs = dict(
        tile_size=TILE, variant="mp-dense-tlr", nugget=1e-8,
        theta0=theta, max_nfev=5, max_iter=5,
    )
    off = fit_mle(kern, x, z, cache=False, **kwargs)
    on = fit_mle(kern, x, z, cache=True, **kwargs)
    assert off.nfev == on.nfev
    assert off.loglik == on.loglik
    np.testing.assert_array_equal(off.theta, on.theta)
    np.testing.assert_array_equal(off.history, on.history)


def test_engine_reuses_geometry_and_warms_hints(xz):
    kern, theta, x, z = xz
    eng = EvaluationEngine(
        kern, x, z, tile_size=TILE, variant="mp-dense-tlr", nugget=1e-8
    )
    first = eng.evaluate(theta)
    second = eng.evaluate(theta * 1.01)
    stats = eng.stats()
    assert stats.evaluations == 2
    assert stats.geometry_misses == 1
    assert stats.geometry_hits == 1
    assert stats.warm_tiles == len(first.report.ranks)
    assert np.isfinite(second.value)


def test_changed_locations_never_reuse_geometry(xz):
    kern, theta, x, z = xz
    cache = GeometryCache()
    loglikelihood(
        kern, theta, x, z, tile_size=TILE, nugget=1e-8, cache=cache
    )
    assert (cache.hits, cache.misses) == (0, 1)
    # Perturbing one coordinate changes the content hash: miss, not hit.
    x2 = x.copy()
    x2[3, 0] += 1e-9
    loglikelihood(
        kern, theta, x2, z, tile_size=TILE, nugget=1e-8, cache=cache
    )
    assert (cache.hits, cache.misses) == (0, 2)


def test_explicit_stale_geometry_rejected(xz):
    kern, theta, x, z = xz
    geom = build_tile_geometry(kern, x, TILE)
    x2 = x.copy()
    x2[0, 1] += 1e-9
    with pytest.raises(ConfigurationError):
        build_planned_covariance(kern, theta, x2, TILE, geometry=geom)
    with pytest.raises(ConfigurationError):
        # Wrong tile size is caught too.
        build_planned_covariance(kern, theta, x, TILE + 1, geometry=geom)


# ----------------------------------------------------------------------
# Parallel equivalence
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_dense_fp64_bit_identical(xz, workers):
    kern, theta, x, z = xz
    seq = loglikelihood(kern, theta, x, z, tile_size=TILE, nugget=1e-8)
    par = loglikelihood(
        kern, theta, x, z, tile_size=TILE, nugget=1e-8, workers=workers
    )
    assert par.value == seq.value
    assert par.logdet == seq.logdet
    for key, tile in seq.factor.items():
        np.testing.assert_array_equal(
            par.factor.get(*key).to_dense64(), tile.to_dense64()
        )


@pytest.mark.parametrize("variant", ["mp-dense", "mp-dense-tlr"])
@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_variants_value_identical(xz, variant, workers):
    kern, theta, x, z = xz
    seq = loglikelihood(
        kern, theta, x, z, tile_size=TILE, variant=variant, nugget=1e-8
    )
    par = loglikelihood(
        kern, theta, x, z, tile_size=TILE, variant=variant, nugget=1e-8,
        workers=workers,
    )
    assert par.value == seq.value
    # Same representation decisions tile by tile.
    for key, tile in seq.factor.items():
        assert par.factor.get(*key).is_low_rank == tile.is_low_rank


def test_workers_threads_through_variant_config(xz):
    kern, theta, x, z = xz
    cfg = get_variant("mp-dense-tlr")
    from dataclasses import replace

    par_cfg = replace(cfg, name="mp-dense-tlr-w2", workers=2)
    seq = loglikelihood(
        kern, theta, x, z, tile_size=TILE, variant=cfg, nugget=1e-8
    )
    par = loglikelihood(
        kern, theta, x, z, tile_size=TILE, variant=par_cfg, nugget=1e-8
    )
    assert par.value == seq.value


# ----------------------------------------------------------------------
# fast_lr and recovery routing
# ----------------------------------------------------------------------

def test_fast_lr_matches_default_to_rounding(xz):
    kern, theta, x, z = xz
    base = loglikelihood(
        kern, theta, x, z, tile_size=TILE, variant="mp-dense-tlr",
        nugget=1e-8,
    )
    fast = loglikelihood(
        kern, theta, x, z, tile_size=TILE, variant="mp-dense-tlr",
        nugget=1e-8, fast_lr=True,
    )
    np.testing.assert_allclose(fast.value, base.value, rtol=1e-6)
    np.testing.assert_allclose(fast.logdet, base.logdet, rtol=1e-6)


def test_replicated_routes_through_recovery(xz):
    kern, theta, x, _ = xz
    gen = np.random.default_rng(11)
    reps = gen.standard_normal((3, len(x)))
    # The recovery variant must produce values, not raise, and agree
    # with the plain variant when no rescue is needed.
    plain = loglikelihood_replicated(
        kern, theta, x, reps, tile_size=TILE,
        variant="mp-dense-tlr", nugget=1e-8,
    )
    recovered = loglikelihood_replicated(
        kern, theta, x, reps, tile_size=TILE,
        variant="mp-dense-tlr-recover", nugget=1e-8,
    )
    assert recovered.shape == (3,)
    np.testing.assert_allclose(recovered, plain, rtol=1e-8)


def test_replicated_recovery_rescues_indefinite():
    # A near-singular covariance (duplicated locations, no nugget) that
    # breaks the aggressive variant must be rescued by the ladder.
    kern = MaternKernel()
    theta = np.array([1.0, 0.8, 2.5])
    gen = np.random.default_rng(5)
    x = gen.uniform(size=(96, 2))
    x = x[order_points(x, "morton")]
    reps = gen.standard_normal((2, len(x)))
    values = loglikelihood_replicated(
        kern, theta, x, reps, tile_size=24,
        variant="mp-dense-tlr-recover",
    )
    assert np.all(np.isfinite(values))
